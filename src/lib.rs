//! # silent-ranking
//!
//! A from-scratch Rust reproduction of *Silent Self-Stabilizing Ranking:
//! Time Optimal and Space Efficient* (Berenbrink, Elsässer, Götte, Hintze,
//! Kaaser; ICDCS 2025).
//!
//! This facade crate re-exports the whole workspace so downstream users and
//! the examples can depend on a single crate:
//!
//! * [`population`] — the population-protocol simulation engine.
//! * [`leader_election`] — leader-election substrates (the Protocol 5
//!   lottery and the tournament substitute for the paper's black box).
//! * [`ranking`] — the paper's protocols: `SpaceEfficientRanking`
//!   (Theorem 1) and `StableRanking` (Theorem 2).
//! * [`baselines`] — comparison protocols from the related-work section.
//! * [`scenarios`] — fault injection, adversarial schedulers, and
//!   recovery-time measurement (sustained-fault workloads on top of the
//!   engine).
//! * [`shard`] — the sharded multi-threaded single-run simulator
//!   (per-shard sub-schedules + boundary-pair exchange).
//! * [`dynamic`] — dynamic populations: agent lifecycle
//!   (`Spawning → Active → Hibernating → Dormant → revived`), M/M/∞
//!   churn, epoch-based re-parameterization, and rank leasing, with a
//!   zero-churn path bit-identical to the fixed-n engine. See
//!   `docs/DYNAMICS.md`.
//! * [`snapshot`] — crash-consistent checkpoint/restore: versioned
//!   CRC-checked snapshot files, rotation directories with graceful
//!   fallback past corruption, corruption injection for testing, and
//!   bit-for-bit resume on every execution path. See
//!   `docs/DURABILITY.md`.
//! * [`telemetry`] — the flight-recorder observability layer: the
//!   [`Recorder`](telemetry::Recorder) probe (structured event traces in
//!   bounded ring buffers), the unified metrics registry
//!   (counters + log₂ histograms), JSONL trace schema, and run-provenance
//!   manifests. See `docs/OBSERVABILITY.md`.
//! * [`topology`] — interaction topologies: graph generators (ring,
//!   torus, geometric, regular/expander, preferential attachment),
//!   CSR adjacency with spectral-gap estimation, and the edge-restricted
//!   [`GraphSchedule`](topology::GraphSchedule) pair source. See
//!   `docs/TOPOLOGY.md`.
//! * [`analysis`] — statistics and tail-bound helpers used by experiments.
//!
//! # Quickstart
//!
//! ```
//! use silent_ranking::population::{is_valid_ranking, Simulator};
//! use silent_ranking::ranking::stable::StableRanking;
//! use silent_ranking::ranking::Params;
//!
//! // 32 agents, arbitrary garbage initial configuration (self-stabilizing!)
//! let protocol = StableRanking::new(Params::new(32));
//! let init = protocol.adversarial_uniform(12345);
//! let mut sim = Simulator::new(protocol, init, 1);
//! let stop = sim.run_until(|s| is_valid_ranking(s), 50_000_000, 32);
//! assert!(stop.converged_at().is_some());
//! ```

pub use analysis;
pub use baselines;
pub use dynamic;
pub use leader_election;
pub use population;
pub use ranking;
pub use scenarios;
pub use shard;
pub use snapshot;
pub use telemetry;
pub use topology;
