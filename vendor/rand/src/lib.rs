//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods `random_range` / `random_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s 64-bit `SmallRng` uses. Statistical quality is
//! more than sufficient for simulation scheduling; cryptographic use is
//! out of scope. Determinism is the load-bearing property: every
//! simulation in this repository is reproducible from a `u64` seed, and
//! all integer sampling is unbiased (widening-multiply with rejection).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a deterministic RNG from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can sample a value of type `T` from an RNG — implemented
/// for half-open and inclusive integer ranges.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Unbiased uniform draw from `[0, range)` via Lemire's widening-multiply
/// method with rejection.
fn u64_below(rng: &mut dyn RngCore, range: u64) -> u64 {
    debug_assert!(range > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(range);
    let mut lo = m as u64;
    if lo < range {
        let threshold = range.wrapping_neg() % range;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(range);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Extension methods on any [`RngCore`] (the subset of `rand::Rng` this
/// workspace uses).
pub trait RngExt: RngCore {
    /// Uniform draw from an integer range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits -> uniform f64 in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small, fast, high-quality non-cryptographic PRNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// SplitMix64 state expander (the reference seeding procedure for
    /// xoshiro generators).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl SmallRng {
        /// The generator's raw xoshiro256++ state words — the
        /// serialization seam for checkpoint/restore. **Extension beyond
        /// the real `rand` API** (which deliberately hides generator
        /// state); the snapshot layer needs it to resume a pair stream
        /// mid-orbit, and replaying the draw history instead would make
        /// restore cost proportional to run length.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state words previously returned
        /// by [`state`](SmallRng::state). The restored generator
        /// produces bit-for-bit the continuation of the captured one.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is not in xoshiro's
        /// state space (the generator would emit zeros forever); a
        /// captured state can never be all-zero, so hitting this means
        /// the words did not come from [`state`](SmallRng::state).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero xoshiro state is invalid"
            );
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn range_draws_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.random_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
        for _ in 0..1000 {
            let x = rng.random_range(5..=7u32);
            assert!((5..=7).contains(&x));
        }
    }

    #[test]
    fn range_draws_are_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c} far from 10000");
        }
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let heads = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&heads), "got {heads}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.random_range(5..5u64);
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut restored = SmallRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_rejected() {
        let _ = SmallRng::from_state([0; 4]);
    }
}
