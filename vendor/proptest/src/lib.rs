//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of proptest it uses: the [`proptest!`]
//! test macro, [`strategy::Strategy`] with `prop_map`, range and `any`
//! strategies, [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs and panics; it
//!   is not minimized. Re-run with the printed inputs to debug.
//! * **Deterministic sampling.** The per-test RNG is seeded from the test
//!   name, so a given test binary always explores the same cases —
//!   failures are reproducible by re-running the test.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate per test.
        pub cases: u32,
        /// Accepted for compatibility with real proptest; this shim does
        /// not shrink, so the value is unused.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic RNG used to sample strategy values.
    #[derive(Debug)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seed deterministically from the test's identity.
        pub fn deterministic(file: &str, test_name: &str) -> Self {
            // FNV-1a over file + name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in file.bytes().chain(test_name.bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(SmallRng::seed_from_u64(h))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Access the underlying generator.
        pub fn rng(&mut self) -> &mut SmallRng {
            &mut self.0
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use rand::RngExt;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among several strategies with a common value type
    /// (the desugaring of [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the (non-empty) list of arms.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().random_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Types with a canonical whole-domain strategy (only what this
    /// workspace needs).
    pub trait ArbitraryValue {
        /// Draw a uniform value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    /// Strategy for a whole type domain; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng().random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod prelude {
    //! Everything a proptest-using module imports.

    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            panic!("prop_assert_eq failed: {a:?} != {b:?}");
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            panic!("prop_assert_eq failed: {a:?} != {b:?}: {}", format!($($fmt)+));
        }
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            panic!("prop_assert_ne failed: both sides are {a:?}");
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples `config.cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(file!(), stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let __repr = format!("{:?}", ($(&$arg,)+));
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = __outcome {
                        eprintln!(
                            "proptest case {} of {} failed: {} = {}",
                            __case + 1,
                            config.cases,
                            stringify!(($($arg),+)),
                            __repr,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_covers_all_arms() {
        let s = prop_oneof![(0u64..1).prop_map(|_| "lo"), (0u64..1).prop_map(|_| "hi"),];
        let mut rng = crate::test_runner::TestRng::deterministic(file!(), "union");
        let mut lo = false;
        let mut hi = false;
        for _ in 0..100 {
            match s.sample(&mut rng) {
                "lo" => lo = true,
                _ => hi = true,
            }
        }
        assert!(lo && hi);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 1u32..=3, b in any::<bool>()) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert_eq!(b, b);
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
        }
    }
}
