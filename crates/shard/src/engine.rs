//! The sharded single-run simulator.

use std::sync::{Barrier, Mutex};

use population::observe::{Convergence, ShardObserver};
use population::schedule::{Pair, ScheduleCursor, SubSchedule, BLOCK_PAIRS};
use population::{
    Checkpointer, CursorSource, FaultHook, Frame, HookState, NoFaults, Observer, PairSource, Probe,
    Protocol, StopReason, WordState,
};

use crate::partition::{bounds, rounds, OwnerMap};

/// One shard's lane: a contiguous slice of the population plus the
/// shard's private pair stream and outgoing boundary-pair buffers.
#[derive(Debug)]
struct Slot<S> {
    /// Global index of the first agent in this lane.
    start: usize,
    /// The shard's slice of the configuration (`states[i - start]` is
    /// agent `i`).
    states: Vec<S>,
    /// The shard's private sub-stream of the uniform scheduler.
    sched: SubSchedule,
    /// Boundary pairs drawn this block, bucketed by the responder's
    /// shard; drained (in draw order) by the exchange phase.
    outbox: Vec<Vec<Pair>>,
    /// Reusable buffer of lane-local pairs (indices rebased to the
    /// lane), collected per sampled block and executed with one
    /// [`Protocol::transition_block`] call — so a packed protocol's
    /// block kernel runs on the shard hot path too.
    local: Vec<Pair>,
}

/// A multi-threaded, deterministic executor for a single run of a
/// [`Protocol`], partitioning the configuration into per-shard lanes.
///
/// # Execution model
///
/// Agents `0..n` are split into `shards` contiguous, balanced lanes.
/// Each shard owns its lane plus a private
/// [`SubSchedule`] — a sub-stream of the uniform scheduler whose
/// initiators lie in the lane and whose responders span the whole
/// population (`SubSchedule::split` derives the per-shard seeds from
/// the run seed). Time advances in **blocks**; each block distributes
/// its interaction budget evenly over the shards and runs two phases:
///
/// 1. **Intra phase** — every shard draws its quota of pairs from its
///    sub-stream. Pairs whose responder is local execute immediately,
///    in draw order, lock-free on the owning worker (lanes are
///    disjoint, so no other thread can touch either word). Pairs whose
///    responder lives in another lane are *boundary pairs*: they are
///    deferred into a per-peer outbox.
/// 2. **Exchange phase** — boundary pairs execute in a fixed
///    round-robin tournament over shard pairs
///    ([`rounds`](crate::partition::rounds)): each round is a set of
///    disjoint shard pairs, each match executed by one worker holding
///    *both* lanes, applying first `a`'s deferred pairs to `b` and then
///    `b`'s to `a`, each in draw order. Interactions therefore remain
///    atomic pairwise state updates — population-protocol semantics are
///    preserved; only the interleaving differs from a sequential run.
///
/// # Determinism
///
/// The trajectory is a pure function of `(seed, shards)` plus the block
/// structure (the configured [`block_pairs`](Self::with_block_pairs)
/// and the sequence of `run*` calls, which may split blocks at
/// checkpoint and fault boundaries). It does **not** depend on the
/// number of worker threads: workers only decide *who* executes a
/// phase, never *what* or *in which order within a lane* — phases are
/// separated by barriers and touch disjoint lanes, so
/// `workers = 1` (fully inline, no threads) and any `workers > 1`
/// produce bit-for-bit identical trajectories. Two identical calls are
/// always identical.
///
/// # Equivalence at `shards = 1`
///
/// With a single shard every pair is intra-shard and the lone
/// sub-schedule *is* the uniform [`Schedule`](population::Schedule)
/// (same seed, bit-identical stream), so a 1-shard run is **bit-for-bit
/// trajectory-equivalent** to
/// [`Simulator::run_batched`](population::Simulator::run_batched) —
/// property-tested in `tests/shard_equivalence.rs`. Sharded runs with
/// `shards > 1` follow a different (equally valid) trajectory of the
/// same balanced-uniform scheduler family.
///
/// # Observation and faults
///
/// [`run_observed`](Self::run_observed) polls a whole-configuration
/// [`Observer`] on a concatenated snapshot (an `O(n)` copy per
/// checkpoint); [`run_merged`](Self::run_merged) avoids the copy by
/// evaluating a [`ShardObserver`] through per-shard summaries.
/// [`run_faulted`](Self::run_faulted) splits blocks at exact fault
/// interaction counts, exactly like the sequential engine, so
/// `scenarios` fault plans drive sharded runs unchanged.
#[derive(Debug)]
pub struct ShardedSimulator<P: Protocol> {
    protocol: P,
    slots: Vec<Mutex<Slot<P::State>>>,
    rounds: Vec<Vec<(usize, usize)>>,
    owners: OwnerMap,
    n: usize,
    shards: usize,
    workers: usize,
    block_pairs: usize,
    interactions: u64,
}

/// The share of a block's `total` interactions executed by shard `s`:
/// an even split, with `total mod shards` shards taking one extra —
/// starting from shard `rot` and wrapping, so the remainder *rotates*
/// across blocks instead of always favoring the lowest-indexed shards.
/// Without the rotation, repeated small bursts (e.g. `check_every <
/// shards`) would hand every leftover interaction to shard 0 and starve
/// the high shards' sub-schedules entirely. `rot` is derived from the
/// interaction count at the block's start, so it is identical across
/// the inline and threaded paths (determinism) and cycles through all
/// shards under any fixed burst size not divisible by the shard count.
#[inline]
fn quota(total: u64, shards: usize, s: usize, rot: usize) -> u64 {
    let idx = (s + shards - rot) % shards;
    total / shards as u64 + u64::from((idx as u64) < total % shards as u64)
}

/// Intra phase for one shard: draw `quota` pairs from the shard's
/// sub-stream; partition each sampled block into lane-local pairs
/// (executed in draw order with a single
/// [`Protocol::transition_block`] call, which dispatches to a packed
/// protocol's block kernel) and boundary pairs (deferred into the
/// outbox). Only this shard's lane is read or written. Deferring a
/// boundary pair executes nothing, so the draw-order trajectory is
/// identical to the old pair-at-a-time loop. Returns the number of
/// lane-local interactions that changed at least one state (callers on
/// the plain hot path discard it; the probed path feeds it to
/// [`Probe::block`]).
fn intra_phase<P: Protocol>(
    protocol: &P,
    owners: &OwnerMap,
    slot: &Mutex<Slot<P::State>>,
    quota: u64,
) -> u64 {
    let mut guard = slot.lock().expect("shard lane poisoned");
    let Slot {
        start,
        states,
        sched,
        outbox,
        local,
    } = &mut *guard;
    let (start, len) = (*start, states.len());
    let mut remaining = quota;
    let mut changed = 0;
    while remaining > 0 {
        let want = remaining.min(BLOCK_PAIRS as u64) as usize;
        let block = sched.sample_block(want);
        for &(i, j) in block {
            let lj = (j as usize).wrapping_sub(start);
            if lj < len {
                local.push(((i as usize - start) as u32, lj as u32));
            } else {
                outbox[owners.owner(j)].push((i, j));
            }
        }
        changed += protocol.transition_block(states, local);
        local.clear();
        remaining -= block.len() as u64;
    }
    changed
}

/// One exchange match: with both lanes held, apply shard `a`'s deferred
/// pairs into `b`, then `b`'s into `a`, each in draw order.
fn exchange<P: Protocol>(
    protocol: &P,
    slot_a: &Mutex<Slot<P::State>>,
    slot_b: &Mutex<Slot<P::State>>,
    a: usize,
    b: usize,
) {
    debug_assert!(a < b, "matches are normalized to (low, high)");
    let mut ga = slot_a.lock().expect("shard lane poisoned");
    let mut gb = slot_b.lock().expect("shard lane poisoned");
    let sa = &mut *ga;
    let sb = &mut *gb;
    let Slot {
        start: a_start,
        states: a_states,
        outbox: a_outbox,
        ..
    } = sa;
    let Slot {
        start: b_start,
        states: b_states,
        outbox: b_outbox,
        ..
    } = sb;
    // Copy-free split borrow: the two lanes are distinct `Vec`s, so
    // both sides mutate in place with no clone and no write-back pass.
    for &(i, j) in &a_outbox[b] {
        let (li, lj) = (i as usize - *a_start, j as usize - *b_start);
        protocol.transition(&mut a_states[li], &mut b_states[lj]);
    }
    a_outbox[b].clear();
    for &(i, j) in &b_outbox[a] {
        let (li, lj) = (i as usize - *b_start, j as usize - *a_start);
        protocol.transition(&mut b_states[li], &mut a_states[lj]);
    }
    b_outbox[a].clear();
}

impl<P: Protocol> ShardedSimulator<P> {
    /// Create a sharded simulator over `initial` states, partitioned
    /// into `shards` lanes, with the uniform scheduler split into
    /// per-shard sub-streams derived from `seed`.
    ///
    /// Workers default to the machine's parallelism capped at the shard
    /// count ([`population::runner::available_workers`], overridable
    /// with `SSR_WORKERS`); see [`with_workers`](Self::with_workers).
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != protocol.n()`, the population has
    /// fewer than two agents or exceeds `u32::MAX`, or `shards` is not
    /// in `1..=n`.
    pub fn new(protocol: P, initial: Vec<P::State>, seed: u64, shards: usize) -> Self {
        let n = initial.len();
        assert_eq!(
            n,
            protocol.n(),
            "initial configuration size must match protocol.n()"
        );
        assert!(n >= 2, "population needs at least two agents");
        assert!(u32::try_from(n).is_ok(), "population size exceeds u32");
        assert!(
            (1..=n).contains(&shards),
            "shard count must be within 1..=n"
        );
        let scheds = SubSchedule::split(n, seed, shards);
        let mut initial = initial;
        let mut lanes: Vec<Vec<P::State>> = Vec::with_capacity(shards);
        for s in (0..shards).rev() {
            let (start, _) = bounds(n, shards, s);
            lanes.push(initial.split_off(start));
        }
        let slots = scheds
            .into_iter()
            .zip(lanes.into_iter().rev())
            .map(|(sched, states)| {
                let (start, end) = sched.range();
                debug_assert_eq!(end - start, states.len());
                Mutex::new(Slot {
                    start,
                    states,
                    sched,
                    outbox: vec![Vec::new(); shards],
                    local: Vec::new(),
                })
            })
            .collect();
        let workers = population::runner::available_workers().get().min(shards);
        Self {
            protocol,
            slots,
            rounds: rounds(shards),
            owners: OwnerMap::new(n, shards),
            n,
            shards,
            workers,
            block_pairs: BLOCK_PAIRS,
            interactions: 0,
        }
    }

    /// Pin the number of worker threads (clamped to the shard count at
    /// run time; `1` runs fully inline with no threads or barriers).
    /// The trajectory never depends on this.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker is required");
        self.workers = workers;
        self
    }

    /// Override the per-shard block size (pairs drawn by each shard per
    /// block). Part of the determinism contract: changing it changes
    /// the `shards > 1` trajectory (block boundaries move), so two runs
    /// compare bit-for-bit only under the same block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_pairs == 0`.
    pub fn with_block_pairs(mut self, block_pairs: usize) -> Self {
        assert!(block_pairs >= 1, "blocks must hold at least one pair");
        self.block_pairs = block_pairs;
        self
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of interactions executed so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Number of lanes the population is partitioned into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of worker threads phases fan out over (after clamping).
    pub fn workers(&self) -> usize {
        self.workers.min(self.shards).max(1)
    }

    /// Snapshot of the full configuration, concatenated in agent-index
    /// order (an `O(n)` copy — the price a partitioned representation
    /// pays at whole-configuration boundaries).
    pub fn states(&self) -> Vec<P::State> {
        let mut out = Vec::with_capacity(self.n);
        for slot in &self.slots {
            out.extend_from_slice(&slot.lock().expect("shard lane poisoned").states);
        }
        out
    }

    /// Scatter a full configuration back into the lanes (the inverse of
    /// [`states`](Self::states); used at fault boundaries).
    fn scatter(&mut self, all: &[P::State]) {
        debug_assert_eq!(all.len(), self.n);
        for slot in &self.slots {
            let mut guard = slot.lock().expect("shard lane poisoned");
            let start = guard.start;
            let end = start + guard.states.len();
            guard.states.clone_from_slice(&all[start..end]);
        }
    }

    /// Per-shard scheduler cursors, in shard order — together with
    /// [`states`](Self::states) and the interaction count, the complete
    /// trajectory-determining position of a sharded run (see
    /// [`resume`](Self::resume)).
    pub fn cursors(&self) -> Vec<ScheduleCursor> {
        self.slots
            .iter()
            .map(|slot| slot.lock().expect("shard lane poisoned").sched.cursor())
            .collect()
    }

    /// Rebuild a sharded simulator at a captured position: `initial` is
    /// the concatenated configuration, `cursors` the per-shard scheduler
    /// cursors (their count *is* the shard count), `interactions` the
    /// interaction count at capture. The resumed run continues the
    /// captured run's trajectory bit for bit **under the same block
    /// structure** — restore the captured
    /// [`block_pairs`](Self::with_block_pairs) and issue the same burst
    /// sequence (worker count remains free; it never affects the
    /// trajectory).
    ///
    /// # Panics
    ///
    /// Panics if the configuration size is illegal, `cursors` is empty,
    /// or any cursor's `(n, start, len)` disagrees with the balanced
    /// partition of `n` agents into `cursors.len()` lanes — a cursor set
    /// from a different population or shard count never silently
    /// resumes.
    pub fn resume(
        protocol: P,
        initial: Vec<P::State>,
        cursors: Vec<ScheduleCursor>,
        interactions: u64,
    ) -> Self {
        let n = initial.len();
        assert_eq!(
            n,
            protocol.n(),
            "initial configuration size must match protocol.n()"
        );
        assert!(n >= 2, "population needs at least two agents");
        assert!(u32::try_from(n).is_ok(), "population size exceeds u32");
        let shards = cursors.len();
        assert!(
            (1..=n).contains(&shards),
            "shard count must be within 1..=n"
        );
        for (s, cursor) in cursors.iter().enumerate() {
            let (start, end) = bounds(n, shards, s);
            assert!(
                cursor.n == n as u64
                    && cursor.start == start as u64
                    && cursor.len == (end - start) as u64,
                "cursor {s} covers {}..{} of n = {} — expected lane {start}..{end} of n = {n}",
                cursor.start,
                cursor.start + cursor.len,
                cursor.n,
            );
        }
        let mut initial = initial;
        let mut lanes: Vec<Vec<P::State>> = Vec::with_capacity(shards);
        for s in (0..shards).rev() {
            let (start, _) = bounds(n, shards, s);
            lanes.push(initial.split_off(start));
        }
        let slots = cursors
            .into_iter()
            .zip(lanes.into_iter().rev())
            .map(|(cursor, states)| {
                let sched = SubSchedule::from_cursor(cursor);
                let (start, end) = sched.range();
                debug_assert_eq!(end - start, states.len());
                Mutex::new(Slot {
                    start,
                    states,
                    sched,
                    outbox: vec![Vec::new(); shards],
                    local: Vec::new(),
                })
            })
            .collect();
        let workers = population::runner::available_workers().get().min(shards);
        Self {
            protocol,
            slots,
            rounds: rounds(shards),
            owners: OwnerMap::new(n, shards),
            n,
            shards,
            workers,
            block_pairs: BLOCK_PAIRS,
            interactions,
        }
    }

    /// Consume the simulator, returning the final configuration.
    pub fn into_states(self) -> Vec<P::State> {
        self.slots
            .into_iter()
            .flat_map(|m| m.into_inner().expect("shard lane poisoned").states)
            .collect()
    }
}

impl<P: Protocol + Sync> ShardedSimulator<P>
where
    P::State: Send,
{
    /// Execute exactly `count` interactions through the sharded block
    /// loop (see the type-level docs for the execution model).
    pub fn run(&mut self, count: u64) {
        let workers = self.workers();
        if workers <= 1 {
            self.run_inline(count);
        } else {
            self.run_threaded(count, workers);
        }
        self.interactions += count;
    }

    /// The single-worker path: same blocks, same phases, same order —
    /// executed on the calling thread with no synchronization at all.
    fn run_inline(&mut self, count: u64) {
        let cap = (self.shards * self.block_pairs) as u64;
        let mut remaining = count;
        while remaining > 0 {
            let total = remaining.min(cap);
            let rot = ((self.interactions + (count - remaining)) % self.shards as u64) as usize;
            for s in 0..self.shards {
                intra_phase(
                    &self.protocol,
                    &self.owners,
                    &self.slots[s],
                    quota(total, self.shards, s, rot),
                );
            }
            for round in &self.rounds {
                for &(a, b) in round {
                    exchange(&self.protocol, &self.slots[a], &self.slots[b], a, b);
                }
            }
            remaining -= total;
        }
    }

    /// The multi-worker path: persistent scoped workers advance through
    /// the same block sequence in lock step. Barriers separate the
    /// phases; within a phase every worker touches only lanes it
    /// exclusively owns (its shards in the intra phase, its matches'
    /// lane pairs in an exchange round), so the trajectory is identical
    /// to [`run_inline`](Self::run_inline) regardless of scheduling.
    fn run_threaded(&mut self, count: u64, workers: usize) {
        let cap = (self.shards * self.block_pairs) as u64;
        let num_blocks = count.div_ceil(cap);
        let barrier = Barrier::new(workers);
        let base = self.interactions;
        let (protocol, slots, rounds, owners, shards) = (
            &self.protocol,
            &self.slots,
            &self.rounds,
            &self.owners,
            self.shards,
        );
        std::thread::scope(|scope| {
            for w in 0..workers {
                let barrier = &barrier;
                scope.spawn(move || {
                    for k in 0..num_blocks {
                        let total = cap.min(count - k * cap);
                        let rot = ((base + k * cap) % shards as u64) as usize;
                        for s in (w..shards).step_by(workers) {
                            intra_phase(protocol, owners, &slots[s], quota(total, shards, s, rot));
                        }
                        barrier.wait();
                        for round in rounds {
                            for (m, &(a, b)) in round.iter().enumerate() {
                                if m % workers == w {
                                    exchange(protocol, &slots[a], &slots[b], a, b);
                                }
                            }
                            barrier.wait();
                        }
                    }
                });
            }
        });
    }

    /// Drive the sharded run under a whole-configuration [`Observer`]:
    /// polled once up front and then every `check_every` interactions
    /// (each poll snapshots the configuration), until it stops the run
    /// or the budget is exhausted. Checkpoint times match the
    /// sequential engine's exactly.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_observed<O: Observer<P>>(
        &mut self,
        max_interactions: u64,
        check_every: u64,
        observer: &mut O,
    ) -> StopReason {
        assert!(check_every > 0, "check_every must be positive");
        let snapshot = self.states();
        if observer
            .observe(&self.protocol, self.interactions, &snapshot)
            .is_stop()
        {
            return StopReason::Converged(self.interactions);
        }
        let deadline = self.interactions + max_interactions;
        while self.interactions < deadline {
            let burst = check_every.min(deadline - self.interactions);
            self.run(burst);
            let snapshot = self.states();
            if observer
                .observe(&self.protocol, self.interactions, &snapshot)
                .is_stop()
            {
                return StopReason::Converged(self.interactions);
            }
        }
        StopReason::BudgetExhausted
    }

    /// Run until `converged` holds over a snapshot (polled every
    /// `check_every` interactions) or the budget is exhausted — sugar
    /// for [`run_observed`](Self::run_observed) with a [`Convergence`]
    /// observer, mirroring
    /// [`Simulator::run_until`](population::Simulator::run_until).
    pub fn run_until(
        &mut self,
        converged: impl FnMut(&[P::State]) -> bool,
        max_interactions: u64,
        check_every: u64,
    ) -> StopReason {
        let mut observer = Convergence::new(converged);
        self.run_observed(max_interactions, check_every, &mut observer)
    }

    /// Drive the sharded run under a [`ShardObserver`]: at every
    /// checkpoint each lane is summarized in place (no concatenated
    /// snapshot; lanes summarize in parallel on the worker pool) and
    /// the summaries are merged into the global verdict.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_merged<O: ShardObserver<P> + Sync>(
        &mut self,
        max_interactions: u64,
        check_every: u64,
        observer: &mut O,
    ) -> StopReason {
        assert!(check_every > 0, "check_every must be positive");
        if self.merge_checkpoint(observer) {
            return StopReason::Converged(self.interactions);
        }
        let deadline = self.interactions + max_interactions;
        while self.interactions < deadline {
            let burst = check_every.min(deadline - self.interactions);
            self.run(burst);
            if self.merge_checkpoint(observer) {
                return StopReason::Converged(self.interactions);
            }
        }
        StopReason::BudgetExhausted
    }

    /// Summarize every lane and merge; returns `true` on a stop
    /// verdict. On large populations the lanes are summarized on
    /// short-lived scoped worker threads (summaries are `Send`,
    /// `summarize` takes `&self`), so a checkpoint costs one parallel
    /// pass over the lanes rather than a serialized `O(n)` scan — the
    /// point of the merge path. Small populations summarize inline:
    /// below [`PARALLEL_SUMMARIZE_MIN_N`] the per-checkpoint thread
    /// spawns would cost more than the scan they parallelize.
    fn merge_checkpoint<O: ShardObserver<P> + Sync>(&self, observer: &mut O) -> bool {
        /// Population size below which a summarize pass is cheaper than
        /// spawning threads for it (a lane scan is ~µs work; a thread
        /// spawn+join is ~tens of µs).
        const PARALLEL_SUMMARIZE_MIN_N: usize = 1 << 17;
        let workers = self.workers();
        let summarize_shard = |s: usize| {
            let guard = self.slots[s].lock().expect("shard lane poisoned");
            observer.summarize(&self.protocol, guard.start, &guard.states)
        };
        let summaries: Vec<O::Summary> =
            if workers <= 1 || self.shards <= 1 || self.n < PARALLEL_SUMMARIZE_MIN_N {
                (0..self.shards).map(summarize_shard).collect()
            } else {
                let mut slots: Vec<Option<O::Summary>> = (0..self.shards).map(|_| None).collect();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let summarize_shard = &summarize_shard;
                            scope.spawn(move || {
                                (w..self.shards)
                                    .step_by(workers)
                                    .map(|s| (s, summarize_shard(s)))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        for (s, summary) in h.join().expect("summarize worker panicked") {
                            slots[s] = Some(summary);
                        }
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.expect("every lane summarized"))
                    .collect()
            };
        observer
            .merge(&self.protocol, self.interactions, summaries)
            .is_stop()
    }

    /// Execute exactly `count` interactions, handing control to `hook`
    /// at every interaction count where it asks to fire — the sharded
    /// counterpart of
    /// [`Simulator::run_faulted`](population::Simulator::run_faulted).
    /// Blocks are split *exactly* at fire points (a fault scheduled at
    /// `t` sees the configuration after exactly `t` interactions); the
    /// hook receives the concatenated configuration and the lanes are
    /// re-scattered afterwards, so `scenarios` fault plans (wrapped in
    /// [`UnpackedHook`](population::UnpackedHook) for packed runs)
    /// drive sharded runs unchanged.
    pub fn run_faulted<H: FaultHook<P>>(&mut self, count: u64, hook: &mut H) {
        let deadline = self.interactions + count;
        loop {
            while hook
                .next_fire(self.interactions)
                .is_some_and(|t| t <= self.interactions)
            {
                let mut all = self.states();
                hook.fire(&self.protocol, self.interactions, &mut all);
                self.scatter(&all);
            }
            if self.interactions >= deadline {
                return;
            }
            let stop = match hook.next_fire(self.interactions) {
                Some(t) if t < deadline => t,
                _ => deadline,
            };
            let burst = stop - self.interactions;
            self.run(burst);
        }
    }

    /// Execute exactly `count` interactions while reporting each block
    /// to `probe` — the sharded counterpart of
    /// [`Simulator::run_probed`](population::Simulator::run_probed).
    ///
    /// When `B::ACTIVE` is `false` (the [`population::NullProbe`]
    /// build) this delegates to [`run`](Self::run) immediately, so the
    /// untraced hot path is exactly today's code. An active probe runs
    /// the same block sequence single-threaded (the determinism
    /// contract makes worker count irrelevant to the trajectory): after
    /// each block's exchange rounds, [`Probe::block`] fires once per
    /// lane with the lane's intra-phase `changed` count, its global
    /// `start` offset, and its post-block states, followed by one
    /// [`Probe::exchange`] carrying the block's boundary-pair count.
    /// Block timestamps are the interaction count at the end of the
    /// block.
    pub fn run_probed<B: Probe<P>>(&mut self, count: u64, probe: &mut B) {
        if !B::ACTIVE {
            return self.run(count);
        }
        let cap = (self.shards * self.block_pairs) as u64;
        let mut changed = vec![0u64; self.shards];
        let mut remaining = count;
        while remaining > 0 {
            let total = remaining.min(cap);
            let rot = (self.interactions % self.shards as u64) as usize;
            for (s, slot) in self.slots.iter().enumerate() {
                changed[s] = intra_phase(
                    &self.protocol,
                    &self.owners,
                    slot,
                    quota(total, self.shards, s, rot),
                );
            }
            let boundary: u64 = self
                .slots
                .iter()
                .map(|slot| {
                    let guard = slot.lock().expect("shard lane poisoned");
                    guard.outbox.iter().map(|o| o.len() as u64).sum::<u64>()
                })
                .sum();
            for round in &self.rounds {
                for &(a, b) in round {
                    exchange(&self.protocol, &self.slots[a], &self.slots[b], a, b);
                }
            }
            self.interactions += total;
            remaining -= total;
            for (s, slot) in self.slots.iter().enumerate() {
                let guard = slot.lock().expect("shard lane poisoned");
                probe.block(
                    &self.protocol,
                    self.interactions,
                    changed[s],
                    s,
                    guard.start,
                    &guard.states,
                );
            }
            probe.exchange(&self.protocol, self.interactions, boundary);
        }
    }

    /// [`run_faulted`](Self::run_faulted) with a probe seam: blocks are
    /// split at the exact same fire points, [`Probe::fault`] fires
    /// after every `hook.fire` with the post-fault concatenated
    /// configuration, and the bursts in between run through
    /// [`run_probed`](Self::run_probed). Delegates to
    /// [`run_faulted`](Self::run_faulted) when `B::ACTIVE` is `false`,
    /// and follows the identical trajectory when it is not.
    pub fn run_faulted_probed<H: FaultHook<P>, B: Probe<P>>(
        &mut self,
        count: u64,
        hook: &mut H,
        probe: &mut B,
    ) {
        if !B::ACTIVE {
            return self.run_faulted(count, hook);
        }
        let deadline = self.interactions + count;
        loop {
            while hook
                .next_fire(self.interactions)
                .is_some_and(|t| t <= self.interactions)
            {
                let mut all = self.states();
                hook.fire(&self.protocol, self.interactions, &mut all);
                self.scatter(&all);
                probe.fault(&self.protocol, self.interactions, &all);
            }
            if self.interactions >= deadline {
                return;
            }
            let stop = match hook.next_fire(self.interactions) {
                Some(t) if t < deadline => t,
                _ => deadline,
            };
            let burst = stop - self.interactions;
            self.run_probed(burst, probe);
        }
    }
}

impl<P: WordState> ShardedSimulator<P> {
    /// Capture the run's position as a portable [`Frame`]: interaction
    /// count, shard count, block size, encoded configuration words, and
    /// per-shard cursors. Between `run*` calls the outboxes are empty
    /// (every block drains them in its exchange phase), so the frame is
    /// the *complete* trajectory-determining state — feed it to
    /// [`resume`](Self::resume) (decoding words through the same
    /// [`WordState`] codec) to continue bit for bit.
    pub fn frame(&self) -> Frame {
        Frame {
            interactions: self.interactions,
            shards: self.shards as u32,
            block_pairs: self.block_pairs as u64,
            words: self
                .states()
                .iter()
                .map(|s| self.protocol.state_to_word(s))
                .collect(),
            cursors: self.cursors(),
        }
    }
}

impl<P: WordState + Sync> ShardedSimulator<P>
where
    P::State: Send,
{
    /// Execute exactly `count` interactions, handing a [`Frame`] to
    /// `ckpt` at every interaction count where it asks for a save — the
    /// sharded counterpart of
    /// [`Simulator::run_checkpointed`](population::Simulator::run_checkpointed).
    ///
    /// Delegates to [`run`](Self::run) when `C::ACTIVE` is `false`
    /// ([`NullCheckpointer`](population::NullCheckpointer)), so the
    /// un-checkpointed hot path is untouched. Unlike the sequential
    /// engine, saving is **not** trajectory-inert here: bursts split at
    /// save points, and the sharded trajectory depends on block
    /// structure. A checkpointed sharded run is its own deterministic
    /// trajectory — resume comparisons run against a
    /// checkpointed-but-uninterrupted twin with the same cadence.
    pub fn run_checkpointed<C: Checkpointer>(&mut self, count: u64, ckpt: &mut C) {
        if !C::ACTIVE {
            return self.run(count);
        }
        self.run_faulted_checkpointed(count, &mut NoFaults, ckpt);
    }

    /// [`run_faulted`](Self::run_faulted) and
    /// [`run_checkpointed`](Self::run_checkpointed) merged: bursts split
    /// at the earlier of the next fault and the next save. At equal
    /// times the fault fires first, so a frame saved at `t` reflects the
    /// post-fault configuration with the hook's exported state already
    /// advanced past `t` — a resume from it replays nothing.
    pub fn run_faulted_checkpointed<H, C>(&mut self, count: u64, hook: &mut H, ckpt: &mut C)
    where
        H: FaultHook<P> + HookState,
        C: Checkpointer,
    {
        if !C::ACTIVE {
            return self.run_faulted(count, hook);
        }
        let deadline = self.interactions + count;
        loop {
            while hook
                .next_fire(self.interactions)
                .is_some_and(|t| t <= self.interactions)
            {
                let mut all = self.states();
                hook.fire(&self.protocol, self.interactions, &mut all);
                self.scatter(&all);
            }
            while ckpt
                .next_due(self.interactions)
                .is_some_and(|t| t <= self.interactions)
            {
                let frame = self.frame();
                ckpt.save(&frame, hook.export_state().as_ref());
            }
            if self.interactions >= deadline {
                return;
            }
            let next_event = [
                hook.next_fire(self.interactions),
                ckpt.next_due(self.interactions),
            ]
            .into_iter()
            .flatten()
            .min();
            let stop = match next_event {
                Some(t) if t < deadline => t,
                _ => deadline,
            };
            self.run(stop - self.interactions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{NoFaults, Simulator};

    /// Counts interactions on each side, like the engine's own test
    /// protocol.
    struct Count(usize);
    impl Protocol for Count {
        type State = (u64, u64);
        fn n(&self) -> usize {
            self.0
        }
        fn transition(&self, u: &mut Self::State, v: &mut Self::State) -> bool {
            u.0 += 1;
            v.1 += 1;
            true
        }
    }

    fn init(n: usize) -> Vec<(u64, u64)> {
        vec![(0, 0); n]
    }

    #[test]
    fn one_shard_is_bit_for_bit_run_batched() {
        for count in [1u64, 5000, 12_345] {
            let mut reference = Simulator::new(Count(16), init(16), 42);
            reference.run_batched(count);
            let mut sharded = ShardedSimulator::new(Count(16), init(16), 42, 1);
            sharded.run(count);
            assert_eq!(sharded.states(), reference.states(), "count={count}");
            assert_eq!(sharded.interactions(), reference.interactions());
        }
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        for shards in [1, 2, 3, 4] {
            let run = || {
                let mut sim = ShardedSimulator::new(Count(20), init(20), 7, shards);
                sim.run(30_000);
                sim.into_states()
            };
            assert_eq!(run(), run(), "shards={shards}");
        }
    }

    #[test]
    fn trajectory_is_independent_of_worker_count() {
        for shards in [2, 4, 5] {
            let run = |workers| {
                let mut sim =
                    ShardedSimulator::new(Count(24), init(24), 3, shards).with_workers(workers);
                sim.run(25_000);
                sim.into_states()
            };
            let inline = run(1);
            assert_eq!(inline, run(2), "shards={shards} workers=2");
            assert_eq!(inline, run(3), "shards={shards} workers=3");
            assert_eq!(inline, run(8), "shards={shards} workers=8 (clamped)");
        }
    }

    #[test]
    fn every_interaction_is_executed_exactly_once() {
        // The initiator-side counters sum to the interaction count even
        // across boundary pairs and odd block splits.
        for shards in [1, 2, 3, 4, 7] {
            let mut sim = ShardedSimulator::new(Count(21), init(21), 5, shards)
                .with_block_pairs(97)
                .with_workers(2);
            sim.run(10_001);
            let total: u64 = sim.states().iter().map(|s| s.0).sum();
            assert_eq!(total, 10_001, "shards={shards}");
            assert_eq!(sim.interactions(), 10_001);
        }
    }

    #[test]
    fn tiny_bursts_do_not_starve_high_shards() {
        // Regression: without remainder rotation, bursts smaller than
        // the shard count hand every interaction to shard 0 and the
        // other shards' sub-schedules never draw. 400 bursts of 1 over
        // 4 shards must leave initiations in every shard's range.
        let mut sim = ShardedSimulator::new(Count(16), init(16), 11, 4);
        for _ in 0..400 {
            sim.run(1);
        }
        let states = sim.states();
        for s in 0..4 {
            let initiated: u64 = states[s * 4..(s + 1) * 4].iter().map(|x| x.0).sum();
            assert!(initiated > 0, "shard {s} never initiated");
        }
        assert_eq!(states.iter().map(|x| x.0).sum::<u64>(), 400);
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let mut sim = ShardedSimulator::new(Count(16), init(16), seed, 4);
            sim.run(10_000);
            sim.into_states()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn run_observed_checkpoints_match_sequential_times() {
        let mut sim = ShardedSimulator::new(Count(16), init(16), 5, 4);
        let mut times = Vec::new();
        let mut sampler = population::observe::Sampler::new(|t, _: &[(u64, u64)]| times.push(t));
        let stop = sim.run_observed(500, 150, &mut sampler);
        assert_eq!(stop, StopReason::BudgetExhausted);
        assert_eq!(times, vec![0, 150, 300, 450, 500]);
    }

    #[test]
    fn run_until_stops_on_convergence() {
        let mut sim = ShardedSimulator::new(Count(16), init(16), 5, 4);
        let stop = sim.run_until(|s| s.iter().map(|x| x.0).sum::<u64>() >= 77, 10_000, 50);
        let t = stop.converged_at().expect("must converge");
        assert!((77..77 + 50).contains(&t), "t = {t}");
    }

    #[test]
    fn run_faulted_with_no_faults_equals_run() {
        let mut plain = ShardedSimulator::new(Count(16), init(16), 9, 3);
        let mut faulted = ShardedSimulator::new(Count(16), init(16), 9, 3);
        plain.run(12_345);
        faulted.run_faulted(12_345, &mut NoFaults);
        assert_eq!(plain.states(), faulted.states());
        assert_eq!(plain.interactions(), faulted.interactions());
    }

    /// A hook that zeroes every counter at a fixed list of times.
    struct ZeroAt {
        times: Vec<u64>,
        fired: Vec<u64>,
    }

    impl FaultHook<Count> for ZeroAt {
        fn next_fire(&mut self, now: u64) -> Option<u64> {
            self.times.iter().copied().find(|&t| t >= now)
        }

        fn fire(&mut self, _p: &Count, t: u64, states: &mut [(u64, u64)]) {
            states.iter_mut().for_each(|s| *s = (0, 0));
            self.fired.push(t);
            self.times.retain(|&x| x > t);
        }
    }

    #[test]
    fn faults_fire_at_exact_interaction_counts() {
        let mut sim = ShardedSimulator::new(Count(16), init(16), 4, 4);
        let mut hook = ZeroAt {
            times: vec![0, 100, 250, 1000],
            fired: Vec::new(),
        };
        sim.run_faulted(1000, &mut hook);
        assert_eq!(hook.fired, vec![0, 100, 250, 1000]);
        assert_eq!(sim.interactions(), 1000);
        assert!(sim.states().iter().all(|&s| s == (0, 0)));
        // Interaction counting restarts after the mid-run zeroing: a
        // second faulted run totals only post-fault interactions.
        let mut sim = ShardedSimulator::new(Count(16), init(16), 4, 4);
        let mut hook = ZeroAt {
            times: vec![400],
            fired: Vec::new(),
        };
        sim.run_faulted(1000, &mut hook);
        let total: u64 = sim.states().iter().map(|s| s.0).sum();
        assert_eq!(total, 600);
    }

    #[test]
    fn run_merged_agrees_with_run_observed() {
        // ShardedSilence over a protocol that goes quiet: all counters
        // saturate at 3.
        struct Saturate(usize);
        impl Protocol for Saturate {
            type State = u8;
            fn n(&self) -> usize {
                self.0
            }
            fn transition(&self, u: &mut u8, _v: &mut u8) -> bool {
                if *u < 3 {
                    *u += 1;
                    return true;
                }
                false
            }
        }
        let mut sharded = ShardedSimulator::new(Saturate(12), vec![0; 12], 3, 3);
        let mut merged = population::ShardedSilence::new();
        let stop = sharded.run_merged(100_000, 24, &mut merged);
        let t_merged = stop.converged_at().expect("must go silent");
        assert_eq!(merged.silent_at(), Some(t_merged));
        // The parallel summarize path (workers > 1, n above the spawn
        // threshold) must see the same checkpoint verdicts as the
        // inline one.
        let big = 1 << 17;
        let run_big = |workers: usize| {
            let mut sim =
                ShardedSimulator::new(Saturate(big), vec![0; big], 3, 4).with_workers(workers);
            let mut merged = population::ShardedSilence::new();
            let stop = sim.run_merged(10_000_000, 500_000, &mut merged);
            stop.converged_at()
        };
        let t_inline = run_big(1).expect("inline run must go silent");
        assert_eq!(run_big(3), Some(t_inline), "parallel summarize diverged");
        // The merged verdict matches a whole-configuration Silence
        // observer replayed over the same sharded trajectory.
        let mut replay = ShardedSimulator::new(Saturate(12), vec![0; 12], 3, 3);
        let mut whole = population::observe::Silence::new();
        let stop_whole = replay.run_observed(100_000, 24, &mut whole);
        assert_eq!(stop_whole.converged_at(), Some(t_merged));
    }

    /// A probe that tallies its callbacks and remembers the last block
    /// timestamp per lane.
    #[derive(Default)]
    struct Tally {
        blocks: u64,
        changed: u64,
        exchanges: u64,
        boundary: u64,
        faults: u64,
        last_t: u64,
    }

    impl Probe<Count> for Tally {
        fn block(
            &mut self,
            _p: &Count,
            t: u64,
            changed: u64,
            _shard: usize,
            _start: usize,
            _lane: &[(u64, u64)],
        ) {
            self.blocks += 1;
            self.changed += changed;
            self.last_t = t;
        }
        fn exchange(&mut self, _p: &Count, _t: u64, pairs: u64) {
            self.exchanges += 1;
            self.boundary += pairs;
        }
        fn fault(&mut self, _p: &Count, _t: u64, _states: &[(u64, u64)]) {
            self.faults += 1;
        }
    }

    #[test]
    fn probed_run_matches_plain_run_and_reports_blocks() {
        for shards in [1, 3, 4] {
            let mut plain = ShardedSimulator::new(Count(20), init(20), 13, shards);
            let mut probed = ShardedSimulator::new(Count(20), init(20), 13, shards);
            plain.run(25_000);
            let mut tally = Tally::default();
            probed.run_probed(25_000, &mut tally);
            assert_eq!(plain.states(), probed.states(), "shards={shards}");
            assert_eq!(plain.interactions(), probed.interactions());
            assert!(tally.blocks >= shards as u64, "one block call per lane");
            assert_eq!(tally.blocks, tally.exchanges * shards as u64);
            assert_eq!(tally.last_t, 25_000, "timestamps are block-end counts");
            // Count's transition always changes both sides; intra-lane
            // changed counts plus boundary pairs cover every interaction.
            assert_eq!(tally.changed + tally.boundary, 25_000);
        }
    }

    #[test]
    fn faulted_probed_matches_run_faulted_and_sees_fires() {
        let mut plain = ShardedSimulator::new(Count(16), init(16), 4, 4);
        let mut probed = ShardedSimulator::new(Count(16), init(16), 4, 4);
        let mut hook_a = ZeroAt {
            times: vec![100, 250],
            fired: Vec::new(),
        };
        let mut hook_b = ZeroAt {
            times: vec![100, 250],
            fired: Vec::new(),
        };
        plain.run_faulted(1000, &mut hook_a);
        let mut tally = Tally::default();
        probed.run_faulted_probed(1000, &mut hook_b, &mut tally);
        assert_eq!(plain.states(), probed.states());
        assert_eq!(hook_a.fired, hook_b.fired);
        assert_eq!(tally.faults, 2);
    }

    #[test]
    fn null_probe_run_probed_is_run() {
        let mut plain = ShardedSimulator::new(Count(16), init(16), 9, 3);
        let mut probed = ShardedSimulator::new(Count(16), init(16), 9, 3);
        plain.run(12_345);
        probed.run_probed(12_345, &mut population::NullProbe);
        assert_eq!(plain.states(), probed.states());
    }

    #[test]
    #[should_panic(expected = "shard count must be within")]
    fn rejects_zero_shards() {
        let _ = ShardedSimulator::new(Count(8), init(8), 0, 0);
    }

    #[test]
    #[should_panic(expected = "shard count must be within")]
    fn rejects_more_shards_than_agents() {
        let _ = ShardedSimulator::new(Count(8), init(8), 0, 9);
    }

    #[test]
    #[should_panic(expected = "must match protocol.n()")]
    fn rejects_mismatched_initial_configuration() {
        let _ = ShardedSimulator::new(Count(8), init(5), 0, 2);
    }

    /// An order-sensitive protocol with word-serializable state: the
    /// non-commutative mix makes any trajectory divergence visible in
    /// the final words.
    struct Mark(usize);
    impl Protocol for Mark {
        type State = u64;
        fn n(&self) -> usize {
            self.0
        }
        fn transition(&self, u: &mut u64, v: &mut u64) -> bool {
            *u = u.wrapping_mul(6364136223846793005).wrapping_add(*v | 1);
            *v = v.wrapping_add(*u >> 32);
            true
        }
    }
    impl WordState for Mark {
        fn state_to_word(&self, state: &u64) -> u64 {
            *state
        }
        fn state_from_word(&self, word: u64) -> Result<u64, String> {
            Ok(word)
        }
    }

    fn marks(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn cursor_resume_continues_the_trajectory_bit_for_bit() {
        for shards in [1, 4] {
            let mut reference = ShardedSimulator::new(Mark(24), marks(24), 17, shards);
            reference.run(10_000);
            let (states, cursors, t) = (
                reference.states(),
                reference.cursors(),
                reference.interactions(),
            );
            reference.run(10_000);
            let mut resumed = ShardedSimulator::resume(Mark(24), states, cursors, t);
            assert_eq!(resumed.shards(), shards);
            resumed.run(10_000);
            assert_eq!(resumed.states(), reference.states(), "shards={shards}");
            assert_eq!(resumed.interactions(), reference.interactions());
        }
    }

    #[test]
    fn checkpointed_resume_matches_the_checkpointed_twin() {
        // The sharded trajectory depends on burst structure, so the
        // reference is a checkpointed-but-uninterrupted twin with the
        // same cadence. The crashed run dies at 8_000; its last frame
        // (at 6_000) resumes and both reach 20_000 on the same grid.
        for shards in [1, 4] {
            let mut twin = ShardedSimulator::new(Mark(24), marks(24), 5, shards);
            let mut twin_ckpt = population::MemoryCheckpointer::every(3_000);
            twin.run_checkpointed(20_000, &mut twin_ckpt);

            let mut crashed = ShardedSimulator::new(Mark(24), marks(24), 5, shards);
            let mut crash_ckpt = population::MemoryCheckpointer::every(3_000);
            crashed.run_checkpointed(8_000, &mut crash_ckpt);
            let (frame, _) = crash_ckpt.saved.last().expect("saves before the crash");
            assert_eq!(frame.interactions, 6_000);
            drop(crashed); // the "crash"

            let states = frame
                .words
                .iter()
                .map(|&w| Mark(24).state_from_word(w).unwrap())
                .collect();
            let mut resumed =
                ShardedSimulator::resume(Mark(24), states, frame.cursors.clone(), 6_000);
            let mut resume_ckpt = population::MemoryCheckpointer::every(3_000);
            resumed.run_checkpointed(14_000, &mut resume_ckpt);

            assert_eq!(resumed.states(), twin.states(), "shards={shards}");
            assert_eq!(resumed.interactions(), twin.interactions());
            // Frames on the shared grid agree too (the resumed run
            // re-saves at 6_000 on entry; overlap starts at 9_000).
            let twin_at_12k = twin_ckpt
                .saved
                .iter()
                .find(|(f, _)| f.interactions == 12_000)
                .expect("twin saved at 12k");
            let resumed_at_12k = resume_ckpt
                .saved
                .iter()
                .find(|(f, _)| f.interactions == 12_000)
                .expect("resumed saved at 12k");
            assert_eq!(twin_at_12k.0, resumed_at_12k.0, "shards={shards}");
        }
    }

    /// A hook zeroing every word at fixed times, with exportable (empty)
    /// state.
    struct ZeroWordsAt(Vec<u64>);
    impl FaultHook<Mark> for ZeroWordsAt {
        fn next_fire(&mut self, now: u64) -> Option<u64> {
            self.0.iter().copied().find(|&t| t >= now)
        }
        fn fire(&mut self, _p: &Mark, t: u64, states: &mut [u64]) {
            states.iter_mut().for_each(|s| *s = 0);
            self.0.retain(|&x| x > t);
        }
    }
    impl HookState for ZeroWordsAt {
        fn export_state(&self) -> Option<population::FaultState> {
            None
        }
        fn import_state(&mut self, _state: &population::FaultState) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn faults_fire_before_saves_at_equal_times() {
        // A fault and a save both due at 3_000: the frame must hold the
        // post-fault (all-zero) configuration.
        let mut sim = ShardedSimulator::new(Mark(16), marks(16), 9, 2);
        let mut hook = ZeroWordsAt(vec![3_000]);
        let mut ckpt = population::MemoryCheckpointer::every(3_000);
        sim.run_faulted_checkpointed(3_000, &mut hook, &mut ckpt);
        let (frame, _) = ckpt
            .saved
            .iter()
            .find(|(f, _)| f.interactions == 3_000)
            .expect("save at the fault time");
        assert!(
            frame.words.iter().all(|&w| w == 0),
            "frame must reflect the post-fault configuration"
        );
    }

    #[test]
    fn null_checkpointer_run_checkpointed_is_run() {
        let mut plain = ShardedSimulator::new(Mark(16), marks(16), 9, 3);
        let mut ckpt = ShardedSimulator::new(Mark(16), marks(16), 9, 3);
        plain.run(12_345);
        ckpt.run_checkpointed(12_345, &mut population::NullCheckpointer);
        assert_eq!(plain.states(), ckpt.states());
    }

    #[test]
    #[should_panic(expected = "expected lane")]
    fn resume_rejects_cursors_from_a_different_partition() {
        // Cursors captured from a 4-shard split cannot resume as 2
        // shards of the right population: lane bounds disagree.
        let sim = ShardedSimulator::new(Mark(24), marks(24), 17, 4);
        let mut cursors = sim.cursors();
        cursors.truncate(2);
        let _ = ShardedSimulator::resume(Mark(24), sim.states(), cursors, 0);
    }

    #[test]
    #[should_panic(expected = "shard count must be within")]
    fn resume_rejects_empty_cursor_set() {
        let _ = ShardedSimulator::resume(Mark(8), marks(8), Vec::new(), 0);
    }
}
