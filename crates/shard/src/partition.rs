//! Population partitioning and the exchange-round schedule.
//!
//! A sharded run splits the agent index space `0..n` into `shards`
//! contiguous, balanced ranges (sizes differ by at most one). Shard
//! membership is a pure function of the index — [`owner`] — so boundary
//! pairs can be routed without any lookup table. Cross-shard
//! interactions are executed in *exchange rounds*: a round-robin
//! tournament ([`rounds`]) in which every round is a set of disjoint
//! shard pairs, so all matches of a round can run concurrently while
//! each executor exclusively owns both of its shards' state lanes.

/// The agent-index range `[start, end)` owned by shard `s` in the
/// balanced contiguous split of `n` agents into `shards` shards.
///
/// Matches the ranges produced by
/// [`SubSchedule::split`](population::schedule::SubSchedule::split):
/// `⌈s·n/shards⌉ .. ⌈(s+1)·n/shards⌉`.
pub fn bounds(n: usize, shards: usize, s: usize) -> (usize, usize) {
    debug_assert!(s < shards);
    ((s * n).div_ceil(shards), ((s + 1) * n).div_ceil(shards))
}

/// The shard owning agent `i`: the inverse of [`bounds`],
/// `⌊i·shards/n⌋`.
#[inline]
pub fn owner(n: usize, shards: usize, i: usize) -> usize {
    debug_assert!(i < n);
    // n ≤ u32::MAX and i < n, so the product fits in u64.
    ((i as u64 * shards as u64) / n as u64) as usize
}

/// Division-free shard lookup for the hot path.
///
/// [`owner`] costs a 64-bit division per boundary pair — tens of cycles
/// in a loop whose whole budget is ~50. `OwnerMap` precomputes the
/// fixed-point reciprocal `⌊shards·2³²/n⌋` and the shard start offsets;
/// a lookup is then one widening multiply, a shift, and (rarely) a
/// +1 correction against the start table. The approximation
/// `⌊i·⌊shards·2³²/n⌋/2³²⌋` never exceeds the true `⌊i·shards/n⌋` and
/// undershoots by less than `i/2³² < 1`, so a single upward correction
/// step suffices — exactness is property-tested against [`owner`].
#[derive(Debug, Clone)]
pub struct OwnerMap {
    /// `starts[s]` is the first agent of shard `s`; `starts[shards] = n`.
    starts: Vec<u32>,
    /// `⌊shards · 2³² / n⌋`.
    mul: u64,
}

impl OwnerMap {
    /// Build the lookup for `n` agents in `shards` shards.
    pub fn new(n: usize, shards: usize) -> Self {
        let starts = (0..=shards)
            .map(|s| ((s * n).div_ceil(shards)) as u32)
            .collect();
        Self {
            starts,
            mul: ((shards as u64) << 32) / n as u64,
        }
    }

    /// The shard owning agent `i` — equal to [`owner`]`(n, shards, i)`.
    #[inline]
    pub fn owner(&self, i: u32) -> usize {
        let mut s = ((u64::from(i) * self.mul) >> 32) as usize;
        // The estimate is never high and at most one low.
        if self.starts[s + 1] <= i {
            s += 1;
        }
        debug_assert!(self.starts[s] <= i && i < self.starts[s + 1]);
        s
    }
}

/// The exchange-round schedule for `shards` shards: a round-robin
/// tournament (circle method). Every returned round is a list of shard
/// pairs `(a, b)` with `a < b`; within a round the pairs are disjoint
/// (no shard appears twice), and across all rounds every unordered
/// shard pair appears exactly once. For `shards < 2` there is nothing
/// to exchange and the schedule is empty; otherwise there are
/// `shards − 1` rounds (`shards` when odd, with one shard idle per
/// round).
pub fn rounds(shards: usize) -> Vec<Vec<(usize, usize)>> {
    if shards < 2 {
        return Vec::new();
    }
    // Pad to an even team count; the phantom team (index `m − 1` when
    // shards is odd) gives its opponent a bye.
    let m = shards + (shards % 2);
    let mut out = Vec::with_capacity(m - 1);
    for r in 0..m - 1 {
        let mut round = Vec::with_capacity(m / 2);
        for slot in 0..m / 2 {
            let (a, b) = if slot == 0 {
                (m - 1, r % (m - 1))
            } else {
                ((r + slot) % (m - 1), (r + m - 1 - slot) % (m - 1))
            };
            if a < shards && b < shards {
                round.push((a.min(b), a.max(b)));
            }
        }
        out.push(round);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn bounds_partition_the_population() {
        for (n, shards) in [(2, 1), (2, 2), (10, 3), (16, 4), (100, 7), (5, 5)] {
            let mut next = 0;
            for s in 0..shards {
                let (start, end) = bounds(n, shards, s);
                assert_eq!(start, next, "n={n} shards={shards} s={s}");
                assert!(end > start, "every shard owns at least one agent");
                assert!(
                    end - start <= n.div_ceil(shards),
                    "n={n} shards={shards} s={s}: size {} unbalanced",
                    end - start
                );
                next = end;
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn owner_inverts_bounds() {
        for (n, shards) in [(2, 1), (2, 2), (10, 3), (16, 4), (100, 7), (31, 8)] {
            for s in 0..shards {
                let (start, end) = bounds(n, shards, s);
                for i in start..end {
                    assert_eq!(
                        owner(n, shards, i),
                        s,
                        "n={n} shards={shards}: agent {i} misrouted"
                    );
                }
            }
        }
    }

    #[test]
    fn owner_map_matches_the_division_formula() {
        for (n, shards) in [
            (2, 1),
            (2, 2),
            (10, 3),
            (16, 4),
            (100, 7),
            (31, 8),
            (1_000_003, 8),
            (65_536, 16),
        ] {
            let map = OwnerMap::new(n, shards);
            // Exhaustive for small n, boundary-focused for large n.
            let probes: Vec<usize> = if n <= 4096 {
                (0..n).collect()
            } else {
                (0..shards)
                    .flat_map(|s| {
                        let (start, end) = bounds(n, shards, s);
                        [start, start + 1, end - 1, (start + end) / 2]
                    })
                    .collect()
            };
            for i in probes {
                assert_eq!(
                    map.owner(i as u32),
                    owner(n, shards, i),
                    "n={n} shards={shards} i={i}"
                );
            }
        }
    }

    #[test]
    fn rounds_cover_every_shard_pair_exactly_once() {
        for shards in 2..=9 {
            let schedule = rounds(shards);
            let mut seen = HashSet::new();
            for round in &schedule {
                let mut in_round = HashSet::new();
                for &(a, b) in round {
                    assert!(a < b && b < shards, "invalid match ({a}, {b})");
                    assert!(in_round.insert(a), "shard {a} doubly booked in a round");
                    assert!(in_round.insert(b), "shard {b} doubly booked in a round");
                    assert!(seen.insert((a, b)), "match ({a}, {b}) repeated");
                }
            }
            assert_eq!(
                seen.len(),
                shards * (shards - 1) / 2,
                "shards={shards}: not all pairs scheduled"
            );
        }
    }

    #[test]
    fn no_exchange_rounds_for_a_single_shard() {
        assert!(rounds(0).is_empty());
        assert!(rounds(1).is_empty());
    }
}
