//! Sharded parallel simulation: a multi-threaded **single-run** engine
//! over partitioned state lanes.
//!
//! The `population` engine executes one run on one core; its `runner`
//! parallelizes across *seeds*. This crate parallelizes *within* a run:
//! the configuration is partitioned into per-shard lanes (for packed
//! protocols, contiguous stretches of the flat word vector), each shard
//! draws pairs from its own [`SubSchedule`](population::SubSchedule)
//! sub-stream of the uniform scheduler, and cross-shard interactions
//! are resolved through a boundary-pair exchange protocol — see
//! [`ShardedSimulator`] for the full execution model, determinism
//! contract, and the `shards = 1 ≡ run_batched` equivalence.
//!
//! # Block lifecycle (phase / exchange)
//!
//! Time advances in blocks; every block runs two phases:
//!
//! 1. **Intra phase** — each shard draws its quota of pairs from its
//!    sub-stream and executes the pairs whose responder is local,
//!    lock-free and in draw order (lanes are disjoint). Pairs whose
//!    responder lives in another lane are deferred into a per-peer
//!    outbox.
//! 2. **Exchange phase** — deferred boundary pairs execute in a fixed
//!    round-robin tournament over shard pairs: each round is a set of
//!    disjoint matches, each match executed by one worker holding
//!    *both* lanes (first `a`'s deferred pairs into `b`, then `b`'s
//!    into `a`, each in draw order). Every interaction stays an atomic
//!    pairwise update; only the interleaving differs from a
//!    sequential run.
//!
//! Barriers separate the phases; within a phase every worker touches
//! only lanes it exclusively owns, which is why the trajectory is a
//! pure function of `(seed, shards, block size)` and never of the
//! worker count. `run_faulted` splits blocks at exact fault
//! interaction counts, and checkpoints (`run_observed` snapshots /
//! `run_merged` per-lane summaries) land between blocks at exact
//! interaction counts, so the `scenarios` fault plans and the
//! observer pipeline behave identically to the sequential engine.
//!
//! The engine plugs into every existing seam:
//!
//! * **state** — any [`Protocol`](population::Protocol) whose value is
//!   `Sync` (wrap a [`PackedProtocol`](population::PackedProtocol) in
//!   [`Packed`](population::Packed) to run over flat words);
//! * **observation** — whole-configuration
//!   [`Observer`](population::Observer)s via snapshots
//!   ([`ShardedSimulator::run_observed`]) or copy-free per-shard
//!   summaries via [`ShardObserver`](population::ShardObserver)
//!   ([`ShardedSimulator::run_merged`]);
//! * **faults** — [`FaultHook`](population::FaultHook)s fire at exact
//!   interaction counts ([`ShardedSimulator::run_faulted`]), so the
//!   `scenarios` crate's fault plans drive sharded runs unchanged.
//!
//! # Example
//!
//! ```
//! use population::Protocol;
//! use shard::ShardedSimulator;
//!
//! struct Max;
//! impl Protocol for Max {
//!     type State = u32;
//!     fn n(&self) -> usize {
//!         64
//!     }
//!     fn transition(&self, u: &mut u32, v: &mut u32) -> bool {
//!         let m = (*u).max(*v);
//!         let changed = *u != m || *v != m;
//!         *u = m;
//!         *v = m;
//!         changed
//!     }
//! }
//!
//! let mut sim = ShardedSimulator::new(Max, (0..64).collect(), 1, 4);
//! sim.run(100_000);
//! assert!(sim.states().iter().all(|&s| s == 63));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod partition;

pub use engine::ShardedSimulator;

use std::num::NonZeroUsize;

/// Default shard count for sharded runs.
///
/// Reads the `SSR_SHARDS` environment variable (any positive integer;
/// invalid or zero values are ignored), mirroring the `SSR_WORKERS`
/// override of [`population::runner::available_workers`] — so CI and
/// benchmarks can pin the partition deterministically without touching
/// call sites. Falls back to the machine parallelism (which
/// `SSR_WORKERS` in turn overrides).
pub fn default_shards() -> NonZeroUsize {
    std::env::var("SSR_SHARDS")
        .ok()
        .as_deref()
        .and_then(parse_shards)
        .unwrap_or_else(population::runner::available_workers)
}

/// Parse an `SSR_SHARDS` value: any positive integer; anything else
/// (including `0`) is ignored. Factored out of [`default_shards`] so
/// the parsing rules are testable without mutating the process
/// environment (`setenv` racing concurrent `getenv` from other test
/// threads is undefined behavior on glibc); the env plumbing itself is
/// exercised end to end by the CI shard smoke step (`SSR_SHARDS=4`).
fn parse_shards(value: &str) -> Option<NonZeroUsize> {
    value
        .trim()
        .parse::<usize>()
        .ok()
        .and_then(NonZeroUsize::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssr_shards_values_parse_like_ssr_workers() {
        assert_eq!(parse_shards("3").map(NonZeroUsize::get), Some(3));
        assert_eq!(parse_shards(" 16 ").map(NonZeroUsize::get), Some(16));
        assert_eq!(parse_shards("0"), None); // invalid: ignored
        assert_eq!(parse_shards("many"), None); // invalid: ignored
        assert_eq!(parse_shards(""), None);
        assert!(default_shards().get() >= 1);
    }
}
