//! Recovery-time measurement: timestamps of fault → re-stabilization
//! intervals.
//!
//! The paper's Theorem 2 promises stabilization from *any*
//! configuration, which implies recovery from any mid-run corruption.
//! [`Recovery`] turns that claim into a measurement: it pairs every
//! fault fired by a [`FaultPlan`] with the
//! first subsequent checkpoint at which the caller's legality predicate
//! holds again, producing a list of [`RecoveryEvent`]s whose
//! `recovered_at − injected_at` intervals are the recovery times the
//! `recovery` bench binary aggregates.
//!
//! [`run_recovery`] is the driver: it interleaves
//! [`Simulator::run_faulted`](population::Simulator::run_faulted)
//! bursts (faults fire at exact interaction counts) with legality
//! checkpoints every `check_every` interactions, so — as everywhere else
//! in the engine — recorded recovery times overshoot the true
//! re-stabilization time by less than the polling period.

use population::{Control, Observer, PairSource, Protocol, Simulator};

use crate::fault::FaultPlan;

/// One fault → re-stabilization interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The [`Fault::name`](crate::fault::Fault::name) of the injector.
    pub name: &'static str,
    /// Interaction count at which the fault was applied.
    pub injected_at: u64,
    /// First checkpoint at which the configuration was legal again
    /// (`None` if the run's budget was exhausted first).
    pub recovered_at: Option<u64>,
}

impl RecoveryEvent {
    /// Interactions from injection to re-stabilization, if recovered.
    pub fn recovery_interactions(&self) -> Option<u64> {
        self.recovered_at.map(|r| r - self.injected_at)
    }
}

/// An [`Observer`] that closes pending fault events when the
/// configuration becomes legal again.
///
/// Faults are announced through [`note_fault`](Recovery::note_fault)
/// (the [`run_recovery`] driver forwards them from the plan's fired
/// log); at every checkpoint where the legality predicate holds, all
/// pending events are stamped with the current interaction count. A
/// fault that strikes an already-broken configuration simply opens a
/// second pending event — both close at the next legal checkpoint.
#[derive(Debug)]
pub struct Recovery<F> {
    legal: F,
    events: Vec<RecoveryEvent>,
}

impl<F> Recovery<F> {
    /// Observe with legality predicate `legal(protocol, states)` — for
    /// the ranking protocols this is
    /// `|_, s| population::is_valid_ranking(s)` (a valid ranking is
    /// silent by the closure property, so validity is re-stabilization).
    pub fn new(legal: F) -> Self {
        Self {
            legal,
            events: Vec::new(),
        }
    }

    /// Record that a fault named `name` fired after `at` interactions.
    pub fn note_fault(&mut self, at: u64, name: &'static str) {
        self.events.push(RecoveryEvent {
            name,
            injected_at: at,
            recovered_at: None,
        });
    }

    /// All events so far, in injection order.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Consume the observer, returning the events.
    pub fn into_events(self) -> Vec<RecoveryEvent> {
        self.events
    }

    /// Replace the event list wholesale — the checkpoint-restore path:
    /// a resumed recovery run reconstructs its observer fresh, then
    /// imports the events recorded up to the snapshot (names re-interned
    /// against the resumed plan by the snapshot layer). Normal runs
    /// never call this.
    pub fn import_events(&mut self, events: Vec<RecoveryEvent>) {
        self.events = events;
    }

    /// Has every injected fault been recovered from?
    pub fn all_recovered(&self) -> bool {
        self.events.iter().all(|e| e.recovered_at.is_some())
    }
}

impl<P: Protocol, F: FnMut(&P, &[P::State]) -> bool> Observer<P> for Recovery<F> {
    fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control {
        if !self.all_recovered() && (self.legal)(protocol, states) {
            for e in self.events.iter_mut().filter(|e| e.recovered_at.is_none()) {
                e.recovered_at = Some(t);
            }
        }
        Control::Continue
    }
}

/// Drive `sim` for up to `max_interactions` under `plan`, recording
/// every fault → re-stabilization interval into `recovery`.
///
/// Faults fire at their exact scheduled interaction counts (the engine
/// splits its batched loop there); legality is polled every
/// `check_every` interactions and once up front. Returns early once
/// every injected fault has recovered and no further fault can fire
/// within the budget — so single-shot plans don't burn the full budget
/// after re-stabilizing.
///
/// # Panics
///
/// Panics if `check_every == 0`.
pub fn run_recovery<P, S, F>(
    sim: &mut Simulator<P, S>,
    plan: &mut FaultPlan<P::State>,
    recovery: &mut Recovery<F>,
    max_interactions: u64,
    check_every: u64,
) where
    P: Protocol,
    S: PairSource,
    F: FnMut(&P, &[P::State]) -> bool,
{
    drive(sim, plan, recovery, max_interactions, check_every);
}

/// The engine operations the recovery driver needs, implemented for the
/// sequential and the sharded simulator so the driver loop ([`drive`])
/// exists exactly once and cannot diverge between the two.
trait RecoveryEngine<P: Protocol> {
    /// Interactions executed so far.
    fn interactions(&self) -> u64;

    /// Execute exactly `burst` interactions under the plan (faults fire
    /// at their exact scheduled counts).
    fn run_faulted_burst(&mut self, burst: u64, plan: &mut FaultPlan<P::State>);

    /// Poll the recovery observer on the current configuration.
    fn observe_into<F: FnMut(&P, &[P::State]) -> bool>(&self, recovery: &mut Recovery<F>);
}

impl<P: Protocol, S: PairSource> RecoveryEngine<P> for Simulator<P, S> {
    fn interactions(&self) -> u64 {
        Simulator::interactions(self)
    }

    fn run_faulted_burst(&mut self, burst: u64, plan: &mut FaultPlan<P::State>) {
        self.run_faulted(burst, plan);
    }

    fn observe_into<F: FnMut(&P, &[P::State]) -> bool>(&self, recovery: &mut Recovery<F>) {
        recovery.observe(
            self.protocol(),
            Simulator::interactions(self),
            self.states(),
        );
    }
}

impl<P> RecoveryEngine<P> for shard::ShardedSimulator<P>
where
    P: Protocol + Sync,
    P::State: Send,
{
    fn interactions(&self) -> u64 {
        shard::ShardedSimulator::interactions(self)
    }

    fn run_faulted_burst(&mut self, burst: u64, plan: &mut FaultPlan<P::State>) {
        self.run_faulted(burst, plan);
    }

    fn observe_into<F: FnMut(&P, &[P::State]) -> bool>(&self, recovery: &mut Recovery<F>) {
        recovery.observe(
            self.protocol(),
            shard::ShardedSimulator::interactions(self),
            &self.states(),
        );
    }
}

/// The shared driver loop behind [`run_recovery`] and
/// [`run_recovery_sharded`].
fn drive<P, E, F>(
    sim: &mut E,
    plan: &mut FaultPlan<P::State>,
    recovery: &mut Recovery<F>,
    max_interactions: u64,
    check_every: u64,
) where
    P: Protocol,
    E: RecoveryEngine<P>,
    F: FnMut(&P, &[P::State]) -> bool,
{
    assert!(check_every > 0, "check_every must be positive");
    let deadline = sim.interactions() + max_interactions;
    sim.observe_into(recovery);
    while sim.interactions() < deadline {
        let burst = check_every.min(deadline - sim.interactions());
        let seen = plan.fired().len();
        sim.run_faulted_burst(burst, plan);
        for f in plan.fired()[seen..].iter().copied() {
            recovery.note_fault(f.at, f.name);
        }
        sim.observe_into(recovery);
        let more_faults_due = plan.peek_next().is_some_and(|t| t <= deadline);
        if recovery.all_recovered() && !more_faults_due {
            break;
        }
    }
}

/// Drive a **sharded** run for up to `max_interactions` under `plan`,
/// recording every fault → re-stabilization interval into `recovery` —
/// the sharded counterpart of [`run_recovery`], built on
/// [`ShardedSimulator::run_faulted`](shard::ShardedSimulator::run_faulted).
///
/// Faults still fire at their exact scheduled interaction counts (the
/// sharded engine splits its blocks there, just like the sequential
/// one), and legality is polled on configuration snapshots every
/// `check_every` interactions. With `shards = 1` this is
/// trajectory-equivalent to [`run_recovery`] over a uniform
/// [`Schedule`](population::Schedule).
///
/// # Panics
///
/// Panics if `check_every == 0`.
pub fn run_recovery_sharded<P, F>(
    sim: &mut shard::ShardedSimulator<P>,
    plan: &mut FaultPlan<P::State>,
    recovery: &mut Recovery<F>,
    max_interactions: u64,
    check_every: u64,
) where
    P: Protocol + Sync,
    P::State: Send,
    F: FnMut(&P, &[P::State]) -> bool,
{
    drive(sim, plan, recovery, max_interactions, check_every);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StateRewrite;
    use population::Protocol;
    use rand::rngs::SmallRng;

    /// "Infection" protocol: state counts down to 0; legal iff all zero.
    /// Interactions pull both agents one step toward 0, so recovery from
    /// a corruption that sets counters to `c` takes a predictable number
    /// of interactions.
    struct Decay(usize);
    impl Protocol for Decay {
        type State = u32;
        fn n(&self) -> usize {
            self.0
        }
        fn transition(&self, u: &mut u32, v: &mut u32) -> bool {
            let before = (*u, *v);
            *u = u.saturating_sub(1);
            *v = v.saturating_sub(1);
            before != (*u, *v)
        }
    }

    fn corrupt_to(value: u32, k: usize) -> StateRewrite<impl FnMut(&mut SmallRng) -> u32> {
        StateRewrite::corrupt(k, move |_: &mut SmallRng| value)
    }

    #[test]
    fn single_fault_recovery_is_timestamped() {
        let n = 16;
        let mut sim = Simulator::new(Decay(n), vec![0; n], 3);
        let mut plan = FaultPlan::new(1).once(1000, corrupt_to(50, 4));
        let mut rec = Recovery::new(|_: &Decay, s: &[u32]| s.iter().all(|&x| x == 0));
        run_recovery(&mut sim, &mut plan, &mut rec, 100_000, 100);

        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "corrupt");
        assert_eq!(events[0].injected_at, 1000);
        let t = events[0].recovery_interactions().expect("must recover");
        assert!(t > 0, "recovery cannot be instantaneous");
        assert!(t < 20_000, "decay from 50 is fast, got {t}");
        // Early exit: the budget was not exhausted after recovery.
        assert!(sim.interactions() < 100_000);
    }

    #[test]
    fn periodic_faults_produce_one_event_each() {
        let n = 16;
        let mut sim = Simulator::new(Decay(n), vec![0; n], 3);
        let mut plan = FaultPlan::new(1).periodic(5_000, 30_000, corrupt_to(20, 2));
        let mut rec = Recovery::new(|_: &Decay, s: &[u32]| s.iter().all(|&x| x == 0));
        run_recovery(&mut sim, &mut plan, &mut rec, 95_000, 50);

        // Fires at 5k, 35k, 65k, 95k.
        assert_eq!(rec.events().len(), 4);
        for e in &rec.events()[..3] {
            assert!(
                e.recovery_interactions().is_some(),
                "event at {} unrecovered",
                e.injected_at
            );
        }
    }

    #[test]
    fn unrecovered_events_stay_open_at_budget_exhaustion() {
        let n = 16;
        let mut sim = Simulator::new(Decay(n), vec![0; n], 3);
        // Corruption far too large to decay within the budget.
        let mut plan = FaultPlan::new(1).once(100, corrupt_to(u32::MAX, n));
        let mut rec = Recovery::new(|_: &Decay, s: &[u32]| s.iter().all(|&x| x == 0));
        run_recovery(&mut sim, &mut plan, &mut rec, 10_000, 100);

        assert_eq!(rec.events().len(), 1);
        assert!(rec.events()[0].recovered_at.is_none());
        assert!(!rec.all_recovered());
        assert_eq!(sim.interactions(), 10_000, "budget fully used");
    }

    #[test]
    fn sharded_recovery_with_one_shard_matches_sequential() {
        let n = 16;
        let make_plan = || FaultPlan::new(1).once(1000, corrupt_to(50, 4));
        let legal = |_: &Decay, s: &[u32]| s.iter().all(|&x| x == 0);

        let mut seq = Simulator::new(Decay(n), vec![0; n], 3);
        let mut seq_plan = make_plan();
        let mut seq_rec = Recovery::new(legal);
        run_recovery(&mut seq, &mut seq_plan, &mut seq_rec, 100_000, 100);

        let mut sharded = shard::ShardedSimulator::new(Decay(n), vec![0; n], 3, 1);
        let mut sh_plan = make_plan();
        let mut sh_rec = Recovery::new(legal);
        run_recovery_sharded(&mut sharded, &mut sh_plan, &mut sh_rec, 100_000, 100);

        assert_eq!(sh_rec.events(), seq_rec.events());
        assert_eq!(sharded.states(), seq.states());
        assert_eq!(sharded.interactions(), seq.interactions());
    }

    #[test]
    fn sharded_recovery_timestamps_faults_across_shards() {
        let n = 24;
        let mut sim = shard::ShardedSimulator::new(Decay(n), vec![0; n], 7, 4);
        let mut plan = FaultPlan::new(1).once(500, corrupt_to(40, 6));
        let mut rec = Recovery::new(|_: &Decay, s: &[u32]| s.iter().all(|&x| x == 0));
        run_recovery_sharded(&mut sim, &mut plan, &mut rec, 100_000, 100);

        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].injected_at, 500);
        let t = events[0].recovery_interactions().expect("must recover");
        assert!(t > 0 && t < 20_000, "decay from 40 is fast, got {t}");
        assert!(sim.interactions() < 100_000, "early exit after recovery");
    }

    #[test]
    fn fault_that_preserves_legality_recovers_immediately() {
        let n = 8;
        let mut sim = Simulator::new(Decay(n), vec![0; n], 3);
        let mut plan = FaultPlan::new(1).once(500, corrupt_to(0, 3));
        let mut rec = Recovery::new(|_: &Decay, s: &[u32]| s.iter().all(|&x| x == 0));
        run_recovery(&mut sim, &mut plan, &mut rec, 50_000, 100);
        assert_eq!(rec.events()[0].recovery_interactions(), Some(0));
    }
}
