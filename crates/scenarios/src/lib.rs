//! Fault injection, adversarial scheduling, and recovery-time
//! measurement for the ranking protocols.
//!
//! The paper's headline claim (Theorem 2) is *self-stabilization*:
//! `StableRanking` reaches a silent, valid ranking from **any**
//! configuration. The rest of this repository exercises adversarial
//! *initial* states; this crate makes the adversary persistent —
//! corrupting state mid-run, replacing agents, biasing coins, and bending
//! the scheduler away from the uniform assumption — and measures how
//! long the protocol takes to climb back.
//!
//! # The four layers
//!
//! The three adversary axes escalate from transient to persistent, and
//! the fourth layer measures the climb back:
//!
//! * **Fault injection** ([`fault`]) — *transient* state adversity:
//!   composable [`fault::Fault`] injectors bound to firing schedules by
//!   a [`fault::FaultPlan`] (exact interaction counts, fixed periods,
//!   or stochastic rates). The plan implements
//!   [`population::FaultHook`], so
//!   [`Simulator::run_faulted`](population::Simulator::run_faulted)
//!   splits its batched loop at exactly the scheduled counts. An empty
//!   plan is bit-for-bit trajectory-equivalent to `run_batched`.
//!   Ready-made injectors for `StableRanking` (corruption, churn, rank
//!   duplication/erasure, coin bias, full randomization) live in
//!   [`ranking_faults`]. The plan lifecycle is: build fluently (`once` /
//!   `periodic` / `poisson`) → the engine asks
//!   [`peek_next`](fault::FaultPlan::peek_next) where to split → each
//!   firing corrupts the configuration and appends to the
//!   [`fired`](fault::FaultPlan::fired) log that recovery measurement
//!   consumes.
//! * **Adversarial schedulers** ([`sched`]) — *scheduler* adversity:
//!   [`sched::BiasedSchedule`], [`sched::ClusteredSchedule`], and
//!   [`sched::RoundRobinSchedule`] implement
//!   [`population::PairSource`], plugging into the engine via
//!   [`Simulator::with_source`](population::Simulator::with_source).
//! * **Byzantine agents** ([`byzantine`]) — *persistent* agent
//!   adversity: the [`byzantine::Byzantine`] wrapper designates `k`
//!   agents as adversaries following a pluggable
//!   [`byzantine::Strategy`] (ready-made `StableRanking` strategies in
//!   [`ranking_byz`]); honest-subset stabilization is observed with
//!   [`population::HonestRanking`] and classified exhaustively at tiny
//!   `n` by [`byzantine::classify`].
//! * **Recovery measurement** ([`recovery`]) — [`recovery::Recovery`]
//!   pairs each fired fault with the first checkpoint at which legality
//!   holds again; [`recovery::run_recovery`] is the driver the `recovery`
//!   bench binary (and `BENCH_recovery.json`) is built on, and
//!   [`recovery::run_recovery_sharded`] is its counterpart over the
//!   `shard` crate's multi-threaded single-run engine (fault plans fire
//!   at the same exact interaction counts there), and
//!   [`traced::run_recovery_traced`] is the same driver with a
//!   [`telemetry::Recorder`] riding the engine's probe seam — a
//!   structured event trace and metrics alongside the recovery log.
//!
//! # Example: inject, recover, measure
//!
//! ```
//! use population::{is_valid_ranking, Simulator};
//! use ranking::stable::StableRanking;
//! use ranking::Params;
//! use scenarios::{ranking_faults, FaultPlan, Recovery, run_recovery};
//!
//! let n = 16;
//! let protocol = StableRanking::new(Params::new(n));
//! let plan_protocol = protocol.clone();
//! // Start silent and legal, then corrupt 4 agents after 100 interactions.
//! let mut sim = Simulator::new(protocol, plan_protocol.legal(), 7);
//! let mut plan = FaultPlan::new(1).once(100, ranking_faults::corrupt(&plan_protocol, 4));
//! let mut recovery = Recovery::new(|_: &StableRanking, s: &[_]| is_valid_ranking(s));
//! run_recovery(&mut sim, &mut plan, &mut recovery, 50_000_000, n as u64);
//!
//! let event = &recovery.events()[0];
//! assert_eq!(event.injected_at, 100);
//! assert!(event.recovery_interactions().is_some(), "Theorem 2 in action");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod fault;
pub mod ranking_byz;
pub mod ranking_faults;
pub mod recovery;
pub mod sched;
pub mod traced;
mod util;

pub use byzantine::{
    classify, run_honest, run_honest_sharded, ByzState, Byzantine, Classification, Strategy,
    Tolerance,
};
pub use fault::{DuplicateRank, EraseRank, Fault, FaultPlan, FiredFault, MapStates, StateRewrite};
pub use recovery::{run_recovery, run_recovery_sharded, Recovery, RecoveryEvent};
pub use sched::{BiasedSchedule, ClusteredSchedule, RoundRobinSchedule};
pub use traced::run_recovery_traced;
