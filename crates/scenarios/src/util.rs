//! Crate-private sampling helpers shared by schedulers and injectors.

use rand::rngs::SmallRng;
use rand::RngExt;

/// Uniform index in `0..n` distinct from `excluded`: draw from the
/// `n − 1` remaining slots and skip over the excluded one.
///
/// # Panics
///
/// Panics if `n < 2` (no distinct index exists).
#[inline]
pub(crate) fn distinct_from(rng: &mut SmallRng, n: usize, excluded: usize) -> usize {
    let r = rng.random_range(0..n as u32 - 1) as usize;
    if r >= excluded {
        r + 1
    } else {
        r
    }
}
