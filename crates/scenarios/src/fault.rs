//! Composable fault injectors and the [`FaultPlan`] that schedules them.
//!
//! A [`Fault`] is a state corruption: given mutable access to the whole
//! configuration and a seeded RNG, it rewrites some agents. A
//! [`FaultPlan`] binds faults to *firing schedules* — exact interaction
//! counts ([`FaultPlan::once`]), fixed periods ([`FaultPlan::periodic`]),
//! or stochastic per-interaction rates ([`FaultPlan::poisson`]) — and
//! implements [`population::FaultHook`], so the engine's
//! [`run_faulted`](population::Simulator::run_faulted) splits its batched
//! loop exactly at the scheduled counts.
//!
//! Faults only ever mutate agent states. The pair stream is untouched,
//! which is what keeps an **empty plan bit-for-bit
//! trajectory-equivalent** to an unfaulted run (property-tested in
//! `tests/fault_recovery.rs`).
//!
//! Generic injectors live here ([`StateRewrite`], [`DuplicateRank`],
//! [`EraseRank`], [`MapStates`]); ready-made constructors for the
//! paper's `StableRanking` are in [`crate::ranking_faults`].

use population::{FaultHook, Protocol, RankOutput};
use rand::rngs::SmallRng;
use rand::{RngCore, RngExt, SeedableRng};

use crate::util::distinct_from;

/// A single kind of state corruption, applied to the whole configuration.
pub trait Fault<S> {
    /// Short stable identifier, used in recovery events and artifacts
    /// (e.g. `"corrupt"`, `"duplicate_rank"`).
    fn name(&self) -> &'static str;

    /// Corrupt `states` in place, drawing any randomness from `rng`.
    fn apply(&mut self, states: &mut [S], rng: &mut SmallRng);
}

impl<S> Fault<S> for Box<dyn Fault<S>> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn apply(&mut self, states: &mut [S], rng: &mut SmallRng) {
        self.as_mut().apply(states, rng);
    }
}

/// Rewrites `k` distinct, uniformly chosen agents with freshly generated
/// states (all agents when `k >= n`).
///
/// One mechanism, three scenario flavors distinguished by name and by
/// the generator you pass:
///
/// * [`corrupt`](StateRewrite::corrupt) — transient memory corruption:
///   `make` returns uniform garbage from the state space;
/// * [`churn`](StateRewrite::churn) — agent replacement: `make` returns
///   the protocol's fresh-joiner state, modeling an adversary swapping
///   agents out for factory-new ones;
/// * [`randomize`](StateRewrite::randomize) — full-population
///   randomization, the harshest transient fault.
#[derive(Debug, Clone)]
pub struct StateRewrite<F> {
    name: &'static str,
    k: usize,
    make: F,
}

impl<F> StateRewrite<F> {
    /// Transient corruption of `k` uniformly chosen agents.
    pub fn corrupt(k: usize, make: F) -> Self {
        Self::named("corrupt", k, make)
    }

    /// Churn: replace `k` uniformly chosen agents with fresh joiners.
    pub fn churn(k: usize, make: F) -> Self {
        Self::named("churn", k, make)
    }

    /// Rewrite the entire population.
    pub fn randomize(make: F) -> Self {
        Self::named("randomize", usize::MAX, make)
    }

    /// A rewrite fault with a custom scenario name.
    pub fn named(name: &'static str, k: usize, make: F) -> Self {
        Self { name, k, make }
    }
}

impl<S, F: FnMut(&mut SmallRng) -> S> Fault<S> for StateRewrite<F> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn apply(&mut self, states: &mut [S], rng: &mut SmallRng) {
        let n = states.len();
        let k = self.k.min(n);
        if k == n {
            for s in states.iter_mut() {
                *s = (self.make)(rng);
            }
            return;
        }
        // Partial Fisher–Yates: the first k slots of `idx` end up holding
        // k distinct uniform indices.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.random_range(i..n);
            idx.swap(i, j);
            states[idx[i]] = (self.make)(rng);
        }
    }
}

/// Copies one uniformly chosen *ranked* agent's state onto `copies`
/// other agents, injecting duplicate ranks — the exact inconsistency the
/// paper's unaware-leader design must detect via the duplicate-meeting
/// argument (`Θ(n² log n)` expected interactions).
///
/// No-op when no agent is ranked. Victims are drawn with replacement, so
/// *up to* `copies` duplicates are created.
#[derive(Debug, Clone, Copy)]
pub struct DuplicateRank {
    copies: usize,
}

impl DuplicateRank {
    /// Duplicate one ranked state onto `copies` victims.
    pub fn new(copies: usize) -> Self {
        assert!(copies >= 1, "duplicating zero times is a no-op");
        Self { copies }
    }
}

impl<S: RankOutput + Clone> Fault<S> for DuplicateRank {
    fn name(&self) -> &'static str {
        "duplicate_rank"
    }

    fn apply(&mut self, states: &mut [S], rng: &mut SmallRng) {
        let ranked: Vec<usize> = (0..states.len())
            .filter(|&i| states[i].rank().is_some())
            .collect();
        if ranked.is_empty() || states.len() < 2 {
            return;
        }
        let src = ranked[rng.random_range(0..ranked.len())];
        for _ in 0..self.copies {
            let victim = distinct_from(rng, states.len(), src);
            states[victim] = states[src].clone();
        }
    }
}

/// Erases the ranks of up to `k` uniformly chosen ranked agents,
/// replacing each with a generated (unranked) state — rank *loss*, the
/// complement of [`DuplicateRank`]'s rank duplication.
#[derive(Debug, Clone)]
pub struct EraseRank<F> {
    k: usize,
    make: F,
}

impl<F> EraseRank<F> {
    /// Erase up to `k` ranks, replacing the victims with `make(rng)`.
    pub fn new(k: usize, make: F) -> Self {
        Self { k, make }
    }
}

impl<S: RankOutput, F: FnMut(&mut SmallRng) -> S> Fault<S> for EraseRank<F> {
    fn name(&self) -> &'static str {
        "erase_rank"
    }

    fn apply(&mut self, states: &mut [S], rng: &mut SmallRng) {
        let mut ranked: Vec<usize> = (0..states.len())
            .filter(|&i| states[i].rank().is_some())
            .collect();
        let k = self.k.min(ranked.len());
        for i in 0..k {
            let j = rng.random_range(i..ranked.len());
            ranked.swap(i, j);
            states[ranked[i]] = (self.make)(rng);
        }
    }
}

/// Applies a closure to every agent state — the escape hatch for
/// protocol-specific corruptions (e.g. biasing every synthetic coin to
/// one side; see [`crate::ranking_faults::coin_bias`]).
#[derive(Debug, Clone)]
pub struct MapStates<F> {
    name: &'static str,
    f: F,
}

impl<F> MapStates<F> {
    /// A whole-population map fault with the given scenario name.
    pub fn new(name: &'static str, f: F) -> Self {
        Self { name, f }
    }
}

impl<S, F: FnMut(&mut S, &mut SmallRng)> Fault<S> for MapStates<F> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn apply(&mut self, states: &mut [S], rng: &mut SmallRng) {
        for s in states.iter_mut() {
            (self.f)(s, rng);
        }
    }
}

/// One fault firing, as recorded in the plan's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// Interaction count at which the fault was applied.
    pub at: u64,
    /// The fault's [`Fault::name`].
    pub name: &'static str,
}

#[derive(Debug, Clone, Copy)]
enum Timing {
    Once,
    Periodic { every: u64 },
    Poisson { rate: f64 },
}

struct Entry<S> {
    fault: Box<dyn Fault<S>>,
    timing: Timing,
    next: Option<u64>,
}

impl<S> std::fmt::Debug for Entry<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("fault", &self.fault.name())
            .field("timing", &self.timing)
            .field("next", &self.next)
            .finish()
    }
}

/// A schedule of faults over a run, built fluently:
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::RngExt;
/// use scenarios::fault::{FaultPlan, StateRewrite};
///
/// let plan: FaultPlan<u32> = FaultPlan::new(7)
///     .once(
///         10_000,
///         StateRewrite::corrupt(4, |rng: &mut SmallRng| rng.random_range(0..100u32)),
///     )
///     .periodic(
///         50_000,
///         50_000,
///         StateRewrite::randomize(|_: &mut SmallRng| 0u32),
///     );
/// assert!(!plan.is_empty());
/// ```
///
/// The plan owns its own RNG (seeded independently of the scheduler), so
/// fault randomness never perturbs pair selection, and every fired fault
/// is appended to a [`log`](FaultPlan::fired) with its exact interaction
/// count — the timestamps the recovery observer pairs with
/// re-stabilization times.
#[derive(Debug)]
pub struct FaultPlan<S> {
    rng: SmallRng,
    entries: Vec<Entry<S>>,
    log: Vec<FiredFault>,
}

impl<S> FaultPlan<S> {
    /// An empty plan whose fault RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            entries: Vec::new(),
            log: Vec::new(),
        }
    }

    /// An empty plan (never fires): `run_faulted` under this plan is
    /// trajectory-equivalent to `run_batched`.
    pub fn empty() -> Self {
        Self::new(0)
    }

    /// Fire `fault` once, after exactly `at` interactions.
    pub fn once(mut self, at: u64, fault: impl Fault<S> + 'static) -> Self {
        self.entries.push(Entry {
            fault: Box::new(fault),
            timing: Timing::Once,
            next: Some(at),
        });
        self
    }

    /// Fire `fault` at `start`, then every `every` interactions forever.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn periodic(mut self, start: u64, every: u64, fault: impl Fault<S> + 'static) -> Self {
        assert!(every > 0, "period must be positive");
        self.entries.push(Entry {
            fault: Box::new(fault),
            timing: Timing::Periodic { every },
            next: Some(start),
        });
        self
    }

    /// Fire `fault` stochastically at per-interaction rate `rate`
    /// (geometric inter-arrival times, expected `1/rate` interactions
    /// apart), deterministically in the plan's seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1`.
    pub fn poisson(mut self, rate: f64, fault: impl Fault<S> + 'static) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "rate must be a per-interaction probability in (0, 1]"
        );
        let first = geometric(&mut self.rng, rate);
        self.entries.push(Entry {
            fault: Box::new(fault),
            timing: Timing::Poisson { rate },
            next: Some(first),
        });
        self
    }

    /// Does this plan contain no faults at all?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every fault fired so far, in firing order, with exact interaction
    /// counts.
    pub fn fired(&self) -> &[FiredFault] {
        &self.log
    }

    /// The earliest pending fire time across all entries, if any.
    pub fn peek_next(&self) -> Option<u64> {
        self.entries.iter().filter_map(|e| e.next).min()
    }

    /// Resolve `name` to the `&'static str` of the entry that carries
    /// it, if any — the interning step of checkpoint import: fired-log
    /// names come back from disk as owned strings, and re-anchoring
    /// them on the reconstructed plan's entries both restores the
    /// zero-allocation log representation and rejects logs that don't
    /// belong to this plan.
    pub fn intern_name(&self, name: &str) -> Option<&'static str> {
        self.entries
            .iter()
            .map(|e| e.fault.name())
            .find(|&n| n == name)
    }
}

/// The checkpoint seam: a plan's trajectory-determining state is its
/// RNG (Poisson inter-arrival draws and fault randomness share it), the
/// per-entry next-fire times, and the fired log. Faults themselves are
/// *not* serialized — the restoring caller reconstructs the plan from
/// the same experiment parameters (same builder calls, same seed), then
/// imports the dynamic position on top. [`import_state`] checks the
/// structural agreement it can (entry count, log names) and the
/// snapshot layer's CRCs cover the rest.
///
/// [`import_state`]: population::HookState::import_state
impl<S> population::HookState for FaultPlan<S> {
    fn export_state(&self) -> Option<population::FaultState> {
        Some(population::FaultState {
            rng: self.rng.state(),
            next: self.entries.iter().map(|e| e.next).collect(),
            fired: self
                .log
                .iter()
                .map(|f| (f.at, f.name.to_string()))
                .collect(),
        })
    }

    fn import_state(&mut self, state: &population::FaultState) -> Result<(), String> {
        if state.next.len() != self.entries.len() {
            return Err(format!(
                "fault state has {} entries, plan has {}",
                state.next.len(),
                self.entries.len()
            ));
        }
        let log = state
            .fired
            .iter()
            .map(|(at, name)| {
                self.intern_name(name)
                    .map(|interned| FiredFault {
                        at: *at,
                        name: interned,
                    })
                    .ok_or_else(|| format!("fired log names unknown fault {name:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.rng = SmallRng::from_state(state.rng);
        for (e, next) in self.entries.iter_mut().zip(&state.next) {
            e.next = *next;
        }
        self.log = log;
        Ok(())
    }
}

/// Geometric inter-arrival draw: the number of interactions (≥ 1) until
/// the next success of a Bernoulli(`rate`) trial per interaction.
fn geometric(rng: &mut SmallRng, rate: f64) -> u64 {
    if rate >= 1.0 {
        return 1;
    }
    // Uniform in (0, 1]: flip the usual [0, 1) mantissa draw away from 0
    // so ln() is finite.
    let u = 1.0 - (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let k = (u.ln() / (1.0 - rate).ln()).floor();
    1 + k.min(u64::MAX as f64 / 2.0) as u64
}

impl<P: Protocol> FaultHook<P> for FaultPlan<P::State> {
    fn next_fire(&mut self, _now: u64) -> Option<u64> {
        self.peek_next()
    }

    fn fire(&mut self, _protocol: &P, t: u64, states: &mut [P::State]) {
        let rng = &mut self.rng;
        let log = &mut self.log;
        for e in &mut self.entries {
            if e.next.is_some_and(|due| due <= t) {
                e.fault.apply(states, rng);
                log.push(FiredFault {
                    at: t,
                    name: e.fault.name(),
                });
                e.next = match e.timing {
                    Timing::Once => None,
                    Timing::Periodic { every } => Some(t + every),
                    Timing::Poisson { rate } => Some(t + geometric(rng, rate)),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::Simulator;

    /// Counts interactions on each side (same as the engine's test
    /// protocol); faults zero the counters.
    struct Count(usize);
    impl Protocol for Count {
        type State = (u64, u64);
        fn n(&self) -> usize {
            self.0
        }
        fn transition(&self, u: &mut Self::State, v: &mut Self::State) -> bool {
            u.0 += 1;
            v.1 += 1;
            true
        }
    }

    fn zeroing() -> StateRewrite<impl FnMut(&mut SmallRng) -> (u64, u64)> {
        StateRewrite::randomize(|_: &mut SmallRng| (0, 0))
    }

    #[test]
    fn once_fires_exactly_once_at_the_scheduled_count() {
        let mut sim = Simulator::new(Count(8), vec![(0, 0); 8], 1);
        let mut plan = FaultPlan::new(3).once(500, zeroing());
        sim.run_faulted(2000, &mut plan);
        assert_eq!(
            plan.fired(),
            &[FiredFault {
                at: 500,
                name: "randomize"
            }]
        );
        let total: u64 = sim.states().iter().map(|s| s.0).sum();
        assert_eq!(total, 1500, "only post-fault interactions survive");
    }

    #[test]
    fn periodic_fires_on_the_grid() {
        let mut sim = Simulator::new(Count(8), vec![(0, 0); 8], 1);
        let mut plan = FaultPlan::new(3).periodic(100, 300, zeroing());
        sim.run_faulted(1000, &mut plan);
        let times: Vec<u64> = plan.fired().iter().map(|f| f.at).collect();
        assert_eq!(times, vec![100, 400, 700, 1000]);
    }

    #[test]
    fn poisson_interarrivals_match_the_rate_roughly() {
        let mut sim = Simulator::new(Count(8), vec![(0, 0); 8], 1);
        let mut plan = FaultPlan::new(9).poisson(0.001, zeroing());
        sim.run_faulted(1_000_000, &mut plan);
        let count = plan.fired().len();
        // Expected 1000 firings; a very loose 5-sigma-ish band.
        assert!(
            (800..1200).contains(&count),
            "poisson fired {count} times, expected ~1000"
        );
        let times: Vec<u64> = plan.fired().iter().map(|f| f.at).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn poisson_is_deterministic_in_the_plan_seed() {
        let run = |seed| {
            let mut sim = Simulator::new(Count(8), vec![(0, 0); 8], 1);
            let mut plan = FaultPlan::new(seed).poisson(0.01, zeroing());
            sim.run_faulted(10_000, &mut plan);
            plan.fired().to_vec()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn composed_plans_fire_all_entries() {
        let mut sim = Simulator::new(Count(8), vec![(0, 0); 8], 1);
        let mut plan = FaultPlan::new(3)
            .once(200, StateRewrite::corrupt(2, |_: &mut SmallRng| (9, 9)))
            .once(200, zeroing());
        sim.run_faulted(300, &mut plan);
        let names: Vec<&str> = plan.fired().iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["corrupt", "randomize"]);
    }

    #[test]
    fn state_rewrite_hits_exactly_k_distinct_agents() {
        let mut states = vec![(1u64, 1u64); 50];
        let mut rng = SmallRng::seed_from_u64(7);
        let mut f = StateRewrite::corrupt(20, |_: &mut SmallRng| (0, 0));
        f.apply(&mut states, &mut rng);
        let zeroed = states.iter().filter(|&&s| s == (0, 0)).count();
        assert_eq!(zeroed, 20);
    }

    struct R(Option<u64>);
    impl RankOutput for R {
        fn rank(&self) -> Option<u64> {
            self.0
        }
    }
    impl Clone for R {
        fn clone(&self) -> Self {
            R(self.0)
        }
    }

    #[test]
    fn duplicate_rank_creates_a_duplicate() {
        let mut states: Vec<R> = (1..=10).map(|r| R(Some(r))).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut f = DuplicateRank::new(1);
        Fault::<R>::apply(&mut f, &mut states, &mut rng);
        let mut ranks: Vec<u64> = states.iter().filter_map(|s| s.0).collect();
        ranks.sort_unstable();
        let distinct = {
            let mut d = ranks.clone();
            d.dedup();
            d.len()
        };
        assert_eq!(ranks.len(), 10);
        assert_eq!(distinct, 9, "exactly one duplicated rank");
    }

    #[test]
    fn duplicate_rank_is_a_noop_without_ranked_agents() {
        let mut states = vec![R(None), R(None)];
        let mut rng = SmallRng::seed_from_u64(1);
        Fault::<R>::apply(&mut DuplicateRank::new(3), &mut states, &mut rng);
        assert!(states.iter().all(|s| s.0.is_none()));
    }

    #[test]
    fn erase_rank_unranks_k_agents() {
        let mut states: Vec<R> = (1..=10).map(|r| R(Some(r))).collect();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut f = EraseRank::new(4, |_: &mut SmallRng| R(None));
        f.apply(&mut states, &mut rng);
        assert_eq!(states.iter().filter(|s| s.0.is_none()).count(), 4);
    }

    #[test]
    fn plan_state_round_trip_resumes_the_fault_schedule() {
        use population::HookState;
        // Run half the budget, export, rebuild the plan from the same
        // parameters, import, run the rest: the combined fired log must
        // be bit-for-bit the uninterrupted run's.
        let build = || {
            FaultPlan::new(11).poisson(0.01, zeroing()).periodic(
                300,
                700,
                StateRewrite::corrupt(2, |_: &mut SmallRng| (9, 9)),
            )
        };
        let mut reference = Simulator::new(Count(8), vec![(0, 0); 8], 4);
        let mut ref_plan = build();
        reference.run_faulted(10_000, &mut ref_plan);

        let mut first = Simulator::new(Count(8), vec![(0, 0); 8], 4);
        let mut plan = build();
        first.run_faulted(5_000, &mut plan);
        let exported = plan.export_state().expect("plans are stateful");

        let mut resumed_plan = build();
        resumed_plan.import_state(&exported).expect("import");
        assert_eq!(resumed_plan.fired(), plan.fired());
        assert_eq!(resumed_plan.peek_next(), plan.peek_next());
        // Continue on a simulator resumed at the same position.
        use population::CursorSource;
        let mut second = population::Simulator::resume(
            Count(8),
            first.states().to_vec(),
            population::Schedule::from_cursor(first.source().cursor()),
            first.interactions(),
        );
        second.run_faulted(5_000, &mut resumed_plan);
        assert_eq!(resumed_plan.fired(), ref_plan.fired());
        assert_eq!(second.states(), reference.states());
    }

    #[test]
    fn plan_import_rejects_structural_mismatch() {
        use population::HookState;
        let plan = FaultPlan::<(u64, u64)>::new(1).once(10, zeroing());
        let exported = plan.export_state().unwrap();

        // Wrong entry count.
        let mut two_entries = FaultPlan::<(u64, u64)>::new(1)
            .once(10, zeroing())
            .once(20, zeroing());
        assert!(two_entries.import_state(&exported).is_err());

        // Unknown name in the fired log.
        let mut mismatched = exported.clone();
        mismatched.fired.push((5, "no_such_fault".into()));
        let mut same_shape = FaultPlan::<(u64, u64)>::new(1).once(10, zeroing());
        assert!(same_shape.import_state(&mismatched).is_err());

        // A well-formed import on the matching shape succeeds.
        let mut ok = FaultPlan::<(u64, u64)>::new(99).once(10, zeroing());
        assert!(ok.import_state(&exported).is_ok());
    }

    #[test]
    fn intern_name_resolves_only_plan_entries() {
        let plan = FaultPlan::<(u64, u64)>::new(1).once(10, zeroing());
        assert_eq!(plan.intern_name("randomize"), Some("randomize"));
        assert_eq!(plan.intern_name("corrupt"), None);
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut sim = Simulator::new(Count(8), vec![(0, 0); 8], 1);
        let mut plan: FaultPlan<(u64, u64)> = FaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.peek_next(), None);
        sim.run_faulted(5000, &mut plan);
        assert!(plan.fired().is_empty());
        assert_eq!(sim.interactions(), 5000);
    }
}
