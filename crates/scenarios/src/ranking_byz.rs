//! Ready-made Byzantine strategies for the paper's `StableRanking`.
//!
//! Each constructor binds one of the generic strategies in
//! [`crate::byzantine`] to `StableRanking`'s state space — in both
//! representations: the structured [`StableState`] enum (the readable
//! reference path) and the packed [`PackedState`] word (the
//! throughput path, for `Byzantine<Packed<StableRanking>, _>` runs).
//! The two meet nowhere mid-run: a packed Byzantine run manipulates
//! words directly ([`PackedState::ranked`], [`PackedState::set_coin`]),
//! no codec round-trip on the hot path.
//!
//! The strategies attack different pillars of Theorem 2, ordered from
//! harshest to mildest:
//!
//! * [`recorrupt`] — randomize the own state on every touch: sustained
//!   localized corruption, probing the *recovery* half of
//!   self-stabilization (the persistent version of
//!   [`ranking_faults::corrupt`](crate::ranking_faults::corrupt)); a
//!   fifth of the state space is reset states, so the adversary also
//!   keeps seeding `PROPAGATERESET` waves;
//! * [`rank_squatter`] — permanently claim a fixed rank: every honest
//!   agent that earns the same rank creates a duplicate only the
//!   `Θ(n² log n)` duplicate-meeting argument can surface — forever —
//!   and, subtler, a permanently-*ranked* adversary keeps pulling
//!   honest electors out of the lottery into premature phase-1 states
//!   (Protocol 3 lines 4–6);
//! * [`mimic`] — copy the partner's state: a walking duplicate of
//!   whomever it last met, re-arming rank duplication indefinitely;
//! * [`coin_jammer`] — always answer the lottery with the same coin:
//!   Protocol 5's initiator reads the *responder's* synthetic coin, so
//!   a pinned coin attacks the heads/tails balance Lemma 28 rests on;
//! * [`lurker`] — never leave the election lobby: a freerider frozen
//!   in the initial `FASTLEADERELECTION` state (with a frozen coin),
//!   shrinking the honest main population by one without ever
//!   presenting a main state;
//! * [`crash`] — the classic crash-stop fault: permanently dormant,
//!   inert to every partner.
//!
//! For exhaustive model checking, [`recorrupt_exhaustive`] attaches the
//! full state-space universe ([`ranking::audit::enumerate_states`]) so
//! the checker branches over *every* rewrite the adversary could
//! choose; the other three strategies are deterministic and model-check
//! as they are.

use population::Packed;
use rand::rngs::SmallRng;
use ranking::audit::enumerate_states;
use ranking::stable::state::{UnRole, UnState};
use ranking::stable::{PackedState, StableRanking, StableState};

use crate::byzantine::{CoinJammer, Mimic, Pin, Recorrupt, Strategy};

/// Every strategy kind this module provides, in canonical table order —
/// shared by the `byzantine` benchmark and the tests so "every
/// strategy" means the same list everywhere. Ordered from the harshest
/// (sustained random rewrites) to the mildest (a crashed agent).
pub const STRATEGIES: [&str; 6] = [
    "recorrupt",
    "rank_squatter",
    "mimic",
    "coin_jammer",
    "lurker",
    "crash",
];

/// Construct the strategy named `kind` for structured-state runs
/// (`Byzantine<StableRanking, _>`), with its conventional parameters
/// (the squatter claims rank 1 — the most contested rank, the one the
/// unaware leader itself must hold; the jammer and the lurker pin
/// their coins to tails).
///
/// # Panics
///
/// Panics on a name outside [`STRATEGIES`].
pub fn standard(kind: &str, protocol: &StableRanking) -> Box<dyn Strategy<StableRanking>> {
    match kind {
        "recorrupt" => Box::new(recorrupt(protocol)),
        "rank_squatter" => Box::new(rank_squatter(1)),
        "mimic" => Box::new(mimic()),
        "coin_jammer" => Box::new(coin_jammer(false)),
        "lurker" => Box::new(lurker(protocol, false)),
        "crash" => Box::new(crash(protocol)),
        other => panic!("unknown strategy kind {other} (see ranking_byz::STRATEGIES)"),
    }
}

/// [`standard`], for packed-word runs
/// (`Byzantine<Packed<StableRanking>, _>`).
///
/// # Panics
///
/// Panics on a name outside [`STRATEGIES`].
pub fn standard_packed(
    kind: &str,
    protocol: &StableRanking,
) -> Box<dyn Strategy<Packed<StableRanking>>> {
    match kind {
        "recorrupt" => Box::new(recorrupt_packed(protocol)),
        "rank_squatter" => Box::new(rank_squatter_packed(1)),
        "mimic" => Box::new(mimic()),
        "coin_jammer" => Box::new(coin_jammer_packed(false)),
        "lurker" => Box::new(lurker_packed(protocol, false)),
        "crash" => Box::new(crash_packed(protocol)),
        other => panic!("unknown strategy kind {other} (see ranking_byz::STRATEGIES)"),
    }
}

/// Randomize the own state (uniformly over the valid state space) on
/// every touch.
pub fn recorrupt(
    protocol: &StableRanking,
) -> Recorrupt<impl Fn(&mut SmallRng) -> StableState + Send + Sync, StableState> {
    let p = protocol.clone();
    Recorrupt::new(move |rng: &mut SmallRng| p.random_state(rng))
}

/// [`recorrupt`] with the full state-space branching universe attached
/// — required for exhaustive model checking
/// ([`crate::byzantine::Byzantine::successors`] branches over every
/// state the adversary could adopt). Materializes `n + O(log² n)`
/// states; intended for the tiny-`n` classification runs.
pub fn recorrupt_exhaustive(
    protocol: &StableRanking,
) -> Recorrupt<impl Fn(&mut SmallRng) -> StableState + Send + Sync, StableState> {
    recorrupt(protocol).with_universe(enumerate_states(protocol.params()))
}

/// [`recorrupt`] over packed words (the generator packs at the
/// boundary; the run itself stays on words).
pub fn recorrupt_packed(
    protocol: &StableRanking,
) -> Recorrupt<impl Fn(&mut SmallRng) -> PackedState + Send + Sync, PackedState> {
    let p = protocol.clone();
    Recorrupt::new(move |rng: &mut SmallRng| PackedState::pack(&p.random_state(rng)))
}

/// Permanently claim `rank`: the adversary presents `Ranked(rank)`
/// forever, reverting after every touch.
pub fn rank_squatter(rank: u64) -> Pin<StableState> {
    Pin::new("rank_squatter", StableState::Ranked(rank))
}

/// [`rank_squatter`] over packed words (a ranked word is `rank << 5`,
/// so squatting is a single word store).
pub fn rank_squatter_packed(rank: u64) -> Pin<PackedState> {
    Pin::new("rank_squatter", PackedState::ranked(rank))
}

/// The dormant state a crashed agent is pinned to.
fn dormant(protocol: &StableRanking) -> StableState {
    StableState::Un(UnState {
        coin: false,
        role: UnRole::Reset {
            reset_count: 0,
            delay_count: protocol.params().d_max(),
        },
    })
}

/// Crash-stop: the adversary permanently presents a *dormant* reset
/// state — the mildest persistent fault. `PROPAGATERESET`'s
/// dormant-×-anything rule only ever ticks the dormant side, so the
/// crashed agent is inert to every partner: the honest population must
/// simply rank itself one agent short.
pub fn crash(protocol: &StableRanking) -> Pin<StableState> {
    Pin::new("crash", dormant(protocol))
}

/// [`crash`] over packed words.
pub fn crash_packed(protocol: &StableRanking) -> Pin<PackedState> {
    Pin::new("crash", PackedState::pack(&dormant(protocol)))
}

/// The frozen leader-election state a lurker is pinned to.
fn lobby(protocol: &StableRanking, coin: bool) -> StableState {
    StableState::Un(UnState {
        coin,
        role: UnRole::Elect(protocol.fast_le().initial_state()),
    })
}

/// Lurker: the adversary permanently presents the initial
/// `FASTLEADERELECTION` state with a frozen coin — a freerider that
/// never leaves the lobby. Honest electors keep observing the same
/// coin from it (a localized [`coin_jammer`]), and it never joins the
/// main protocol, so it neither takes a rank nor pulls electors out of
/// the election the way a ranked-presenting adversary does.
pub fn lurker(protocol: &StableRanking, coin: bool) -> Pin<StableState> {
    Pin::new("lurker", lobby(protocol, coin))
}

/// [`lurker`] over packed words.
pub fn lurker_packed(protocol: &StableRanking, coin: bool) -> Pin<PackedState> {
    Pin::new("lurker", PackedState::pack(&lobby(protocol, coin)))
}

/// Copy the partner's state on every touch (works unchanged on both
/// representations — re-exported here for the canonical list).
pub fn mimic() -> Mimic {
    Mimic::new()
}

/// Follow the protocol but answer every lottery with the same coin:
/// the synthetic coin is pinned to `value` after every touch (ranked
/// disguises carry no coin and are left alone).
pub fn coin_jammer(value: bool) -> CoinJammer<impl Fn(&mut StableState) + Send + Sync> {
    CoinJammer::new(move |s: &mut StableState| {
        if let StableState::Un(un) = s {
            un.coin = value;
        }
    })
}

/// [`coin_jammer`] over packed words ([`PackedState::set_coin`] — a
/// two-instruction mask update, the packed-path access this strategy
/// needs).
pub fn coin_jammer_packed(value: bool) -> CoinJammer<impl Fn(&mut PackedState) + Send + Sync> {
    CoinJammer::new(move |w: &mut PackedState| w.set_coin(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::{ByzRng, Role};
    use population::Protocol;

    use ranking::Params;

    fn protocol(n: usize) -> StableRanking {
        StableRanking::new(Params::new(n))
    }

    /// Drive one react through a throwaway RNG word.
    fn react_once<P: Protocol, St: Strategy<P>>(
        strategy: &St,
        p: &P,
        own: &mut P::State,
        partner: &P::State,
    ) {
        let mut word = 7u64;
        let mut rng = ByzRng::new(&mut word);
        strategy.react(p, Role::Responder, own, partner, &mut rng);
    }

    #[test]
    fn standard_builds_every_kind_in_both_representations() {
        let p = protocol(16);
        for kind in STRATEGIES {
            assert_eq!(standard(kind, &p).name(), kind);
            assert_eq!(standard_packed(kind, &p).name(), kind);
        }
    }

    #[test]
    #[should_panic(expected = "unknown strategy kind")]
    fn standard_rejects_unknown_kinds() {
        let _ = standard("bitflip", &protocol(8));
    }

    #[test]
    fn squatter_reverts_to_its_rank() {
        let p = protocol(8);
        let s = rank_squatter(3);
        let mut own = StableState::Ranked(7); // the protocol's prescription
        react_once(&s, &p, &mut own, &StableState::Ranked(1));
        assert_eq!(own, StableState::Ranked(3));
        let sp = rank_squatter_packed(3);
        let mut word = PackedState::ranked(7);
        react_once(
            &sp,
            &Packed(protocol(8)),
            &mut word,
            &PackedState::ranked(1),
        );
        assert_eq!(word, PackedState::ranked(3));
    }

    #[test]
    fn jammer_pins_the_coin_in_both_representations() {
        let p = protocol(8);
        let s = coin_jammer(true);
        let mut own = p.initial()[1]; // electing, coin = false
        assert_eq!(own.coin(), Some(false));
        react_once(&s, &p, &mut own, &StableState::Ranked(1));
        assert_eq!(own.coin(), Some(true));
        // Ranked disguises carry no coin and are untouched.
        let mut ranked = StableState::Ranked(2);
        react_once(&s, &p, &mut ranked, &StableState::Ranked(1));
        assert_eq!(ranked, StableState::Ranked(2));

        let sp = coin_jammer_packed(true);
        let mut word = PackedState::pack(&p.initial()[1]);
        react_once(
            &sp,
            &Packed(protocol(8)),
            &mut word,
            &PackedState::ranked(1),
        );
        assert!(word.coin());
    }

    #[test]
    fn recorrupt_draws_valid_states_and_exhaustive_universe_is_the_state_space() {
        let p = protocol(8);
        let s = recorrupt(&p);
        let mut word = 11u64;
        for _ in 0..50 {
            let mut own = StableState::Ranked(1);
            let mut handle = ByzRng::new(&mut word);
            s.react(
                &p,
                Role::Initiator,
                &mut own,
                &StableState::Ranked(2),
                &mut handle,
            );
            assert!(own.is_valid_for(p.params()));
        }
        let ex = recorrupt_exhaustive(&p);
        let branches = ex.branches(
            &p,
            Role::Initiator,
            &StableState::Ranked(1),
            &StableState::Ranked(2),
        );
        assert_eq!(branches.len(), enumerate_states(p.params()).len());
    }

    #[test]
    fn packed_strategies_commute_with_the_codec() {
        // For every deterministic strategy: reacting on the word equals
        // packing the enum-side reaction.
        let p = protocol(8);
        let enum_states = [
            StableState::Ranked(4),
            p.initial()[0],
            p.initial()[1],
            p.legal()[2],
        ];
        for kind in ["rank_squatter", "mimic", "coin_jammer", "lurker", "crash"] {
            let se = standard(kind, &p);
            let sp = standard_packed(kind, &p);
            for own in enum_states {
                for partner in enum_states {
                    let mut e = own;
                    react_once(&se, &p, &mut e, &partner);
                    let mut w = PackedState::pack(&own);
                    react_once(
                        &sp,
                        &Packed(protocol(8)),
                        &mut w,
                        &PackedState::pack(&partner),
                    );
                    assert_eq!(
                        w,
                        PackedState::pack(&e),
                        "{kind}: {own:?} meets {partner:?}"
                    );
                }
            }
        }
    }
}
