//! Flight-recorded recovery runs: the [`recovery`](crate::recovery)
//! driver with a [`telemetry::Recorder`] riding the engine's
//! [`Probe`] seam.
//!
//! [`run_recovery_traced`] drives a **packed** simulation (so the block
//! kernel — the production hot path — is what gets traced) under a
//! fault plan, producing three artifacts at once:
//!
//! * the usual [`Recovery`] event log (fault → re-stabilization
//!   intervals, exactly as [`run_recovery`](crate::run_recovery)
//!   computes them);
//! * the recorder's structured event trace (resets, elections, rank
//!   claims/releases, fault firings, checkpoints) with injector names
//!   joined onto the fault events from the plan's firing log;
//! * the recorder's metric registry (reset-interval and rank-dwell
//!   histograms, event counters).
//!
//! The probe seam is read-only and the probed engine paths delegate to
//! the unprobed ones under a
//! [`NullProbe`](population::NullProbe), so a traced run follows the
//! **bit-for-bit identical trajectory** of the equivalent untraced run
//! — property-tested in `tests/telemetry_inert.rs` at the workspace
//! root.

use population::{BatchedProtocol, Observer, Packed, PairSource, Probe, Simulator, UnpackedHook};
use telemetry::{Recorder, TraceState};

use crate::fault::FaultPlan;
use crate::recovery::Recovery;

/// Drive a packed simulation for up to `max_interactions` under `plan`,
/// recording fault → re-stabilization intervals into `recovery` **and**
/// a structured event trace into `recorder`.
///
/// The loop mirrors [`run_recovery`](crate::run_recovery) exactly —
/// faults fire at their exact scheduled interaction counts, legality is
/// polled every `check_every` interactions and once up front, and the
/// run exits early once every fault has recovered and none remain due —
/// with three additions: bursts go through
/// [`Simulator::run_faulted_probed`] so the recorder sees every block,
/// each legality poll is mirrored to the recorder as a
/// [`Checkpoint`](telemetry::EventKind::Checkpoint) event (its
/// `stopping` flag marks the final poll), and fired injector names are
/// joined onto the recorder's fault events after every burst.
///
/// # Panics
///
/// Panics if `check_every == 0`.
pub fn run_recovery_traced<P, S, F>(
    sim: &mut Simulator<Packed<P>, S>,
    plan: &mut UnpackedHook<FaultPlan<P::State>>,
    recovery: &mut Recovery<F>,
    recorder: &mut Recorder,
    max_interactions: u64,
    check_every: u64,
) where
    P: BatchedProtocol,
    P::Packed: TraceState,
    S: PairSource,
    F: FnMut(&Packed<P>, &[P::Packed]) -> bool,
{
    assert!(check_every > 0, "check_every must be positive");
    let deadline = sim.interactions() + max_interactions;
    recovery.observe(sim.protocol(), sim.interactions(), sim.states());
    loop {
        let t = sim.interactions();
        if t >= deadline {
            recorder.checkpoint(sim.protocol(), t, true);
            return;
        }
        let burst = check_every.min(deadline - t);
        let seen = plan.inner().fired().len();
        sim.run_faulted_probed(burst, plan, recorder);
        let fired: Vec<(u64, &'static str)> = plan.inner().fired()[seen..]
            .iter()
            .map(|f| (f.at, f.name))
            .collect();
        for &(at, name) in &fired {
            recovery.note_fault(at, name);
        }
        recorder.name_faults(fired);
        recovery.observe(sim.protocol(), sim.interactions(), sim.states());
        let more_faults_due = plan.inner().peek_next().is_some_and(|t| t <= deadline);
        let done = recovery.all_recovered() && !more_faults_due;
        recorder.checkpoint(sim.protocol(), sim.interactions(), done);
        if done {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking_faults;
    use population::is_valid_ranking;
    use ranking::stable::{PackedState, StableRanking};
    use ranking::Params;
    use telemetry::EventKind;

    type PackedLegal = fn(&Packed<StableRanking>, &[PackedState]) -> bool;

    fn traced_run(n: usize, seed: u64) -> (Recovery<PackedLegal>, Recorder, u64) {
        let protocol = StableRanking::new(Params::new(n));
        let plan_protocol = protocol.clone();
        let packed = Packed(protocol);
        let init = packed.pack_all(&plan_protocol.legal());
        let mut sim = Simulator::new(packed, init, seed);
        let mut plan = UnpackedHook::new(
            FaultPlan::new(seed ^ 0xFA01).once(100, ranking_faults::corrupt(&plan_protocol, 4)),
        );
        let legal: PackedLegal = |_, s| is_valid_ranking(s);
        let mut recovery = Recovery::new(legal);
        let mut recorder = Recorder::new();
        run_recovery_traced(
            &mut sim,
            &mut plan,
            &mut recovery,
            &mut recorder,
            50_000_000,
            n as u64,
        );
        let t = sim.interactions();
        (recovery, recorder, t)
    }

    #[test]
    fn traced_recovery_records_the_fault_and_the_recovery() {
        let (recovery, recorder, _) = traced_run(16, 7);
        assert_eq!(recovery.events().len(), 1);
        assert!(
            recovery.events()[0].recovery_interactions().is_some(),
            "Theorem 2: must recover"
        );
        let events = recorder.events();
        let fault: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Fault { hit, name } => Some((e.t, hit, name)),
                _ => None,
            })
            .collect();
        assert_eq!(fault.len(), 1);
        assert_eq!(fault[0].0, 100, "fault event stamped at the fire time");
        assert_eq!(fault[0].2, Some("corrupt"), "name joined from the plan");
        // The corruption forces detection → reset: the trace must hold
        // reset events after the fault, and the final checkpoint stops.
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Reset && e.t > 100));
        let last_checkpoint = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Checkpoint { stopping } => Some(stopping),
                _ => None,
            })
            .next_back();
        assert_eq!(last_checkpoint, Some(true));
    }

    #[test]
    fn traced_trajectory_matches_untraced_run_recovery() {
        let n = 16;
        let seed = 11;
        // Untraced reference over the same packed engine and plan.
        let protocol = StableRanking::new(Params::new(n));
        let plan_protocol = protocol.clone();
        let packed = Packed(protocol);
        let init = packed.pack_all(&plan_protocol.legal());
        let mut reference = Simulator::new(packed, init, seed);
        let mut ref_plan = UnpackedHook::new(
            FaultPlan::new(seed ^ 0xFA01).once(100, ranking_faults::corrupt(&plan_protocol, 4)),
        );
        let mut ref_recovery =
            Recovery::new(|_: &Packed<StableRanking>, s: &[PackedState]| is_valid_ranking(s));
        // The untraced drive loop, verbatim: run_faulted bursts between
        // legality polls, early exit once recovered with no fault due.
        let check_every = n as u64;
        let deadline = reference.interactions() + 50_000_000;
        ref_recovery.observe(
            reference.protocol(),
            reference.interactions(),
            reference.states(),
        );
        while reference.interactions() < deadline {
            let burst = check_every.min(deadline - reference.interactions());
            let seen = ref_plan.inner().fired().len();
            reference.run_faulted(burst, &mut ref_plan);
            for f in ref_plan.inner().fired()[seen..].iter().copied() {
                ref_recovery.note_fault(f.at, f.name);
            }
            ref_recovery.observe(
                reference.protocol(),
                reference.interactions(),
                reference.states(),
            );
            let more = ref_plan.inner().peek_next().is_some_and(|t| t <= deadline);
            if ref_recovery.all_recovered() && !more {
                break;
            }
        }

        let (recovery, _, t) = traced_run(n, seed);
        assert_eq!(recovery.events(), ref_recovery.events());
        assert_eq!(t, reference.interactions());
    }

    #[test]
    fn recorder_metrics_are_populated_by_a_recovery_run() {
        let (_, recorder, _) = traced_run(24, 3);
        let snap = recorder.metrics().snapshot();
        assert!(recorder.recorded() > 0);
        assert_eq!(snap.counter("recorder_events"), Some(recorder.recorded()));
        // A corrupt fault forces at least one reset wave.
        assert!(snap.counter("recorder_resets").unwrap() > 0);
        // Ranks were released (on reset) and re-claimed (on recovery).
        assert!(snap.histogram("rank_dwell").unwrap().count > 0);
    }
}
