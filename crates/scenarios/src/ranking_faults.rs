//! Ready-made fault injectors for the paper's `StableRanking`.
//!
//! Each constructor binds one of the generic injectors in
//! [`crate::fault`] to `StableRanking`'s state space, covering the
//! adversarial scenarios of the recovery benchmark:
//!
//! * [`corrupt`] — `k` agents overwritten with uniform garbage from the
//!   protocol's full (valid) state space;
//! * [`churn`] — `k` agents replaced by factory-new agents in the
//!   initial leader-election state (agent replacement / churn);
//! * [`duplicate_rank`] — a ranked agent's state copied onto victims,
//!   the exact inconsistency Figure 2's worst case is built around;
//! * [`erase_rank`] — ranked agents demoted to fresh joiners (rank
//!   loss);
//! * [`coin_bias`] — every synthetic coin forced to one side, attacking
//!   the one-third/two-thirds balance Lemma 28's argument rests on;
//! * [`randomize`] — the whole population re-drawn uniformly, i.e. a
//!   fresh adversarial initialization mid-run.

use rand::rngs::SmallRng;
use rand::RngExt;
use ranking::stable::state::{UnRole, UnState};
use ranking::stable::{StableRanking, StableState};

use crate::fault::{DuplicateRank, EraseRank, Fault, MapStates, StateRewrite};

/// A factory-new agent: initial `FASTLEADERELECTION` state, random coin.
fn fresh_joiner(protocol: &StableRanking) -> impl FnMut(&mut SmallRng) -> StableState {
    let fast = *protocol.fast_le();
    move |rng| {
        StableState::Un(UnState {
            coin: rng.random_bool(0.5),
            role: UnRole::Elect(fast.initial_state()),
        })
    }
}

/// Transient corruption: `k` uniformly chosen agents overwritten with
/// uniform garbage from the protocol's state space.
pub fn corrupt(protocol: &StableRanking, k: usize) -> impl Fault<StableState> {
    let p = protocol.clone();
    StateRewrite::corrupt(k, move |rng: &mut SmallRng| p.random_state(rng))
}

/// Churn: `k` uniformly chosen agents replaced with factory-new agents
/// (initial leader-election state, random coin) — state replacement is
/// how the population model expresses an agent leaving and a new one
/// joining.
pub fn churn(protocol: &StableRanking, k: usize) -> impl Fault<StableState> {
    StateRewrite::churn(k, fresh_joiner(protocol))
}

/// Rank duplication: one ranked agent's state copied onto `copies`
/// victims.
pub fn duplicate_rank(copies: usize) -> DuplicateRank {
    DuplicateRank::new(copies)
}

/// Rank erasure: up to `k` ranked agents demoted to factory-new agents.
pub fn erase_rank(protocol: &StableRanking, k: usize) -> impl Fault<StableState> {
    EraseRank::new(k, fresh_joiner(protocol))
}

/// Coin bias: every unranked agent's synthetic coin forced to `value`
/// (ranked agents store no coin, so they are untouched).
pub fn coin_bias(value: bool) -> impl Fault<StableState> {
    MapStates::new("coin_bias", move |s: &mut StableState, _: &mut SmallRng| {
        if let StableState::Un(un) = s {
            un.coin = value;
        }
    })
}

/// Full-population randomization: a fresh adversarial initialization
/// injected mid-run.
pub fn randomize(protocol: &StableRanking) -> impl Fault<StableState> {
    let p = protocol.clone();
    StateRewrite::randomize(move |rng: &mut SmallRng| p.random_state(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{has_duplicate_rank, ranked_count, RankOutput};
    use rand::SeedableRng;
    use ranking::Params;

    fn legal_states(n: usize) -> (StableRanking, Vec<StableState>) {
        let p = StableRanking::new(Params::new(n));
        let states = p.legal();
        (p, states)
    }

    #[test]
    fn corrupt_leaves_other_agents_untouched() {
        let (p, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(1);
        corrupt(&p, 5).apply(&mut states, &mut rng);
        assert!(ranked_count(&states) >= 32 - 5);
    }

    #[test]
    fn churn_injects_electing_agents() {
        let (p, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(2);
        churn(&p, 7).apply(&mut states, &mut rng);
        let electing = states.iter().filter(|s| s.is_electing()).count();
        assert_eq!(electing, 7);
        assert_eq!(ranked_count(&states), 25);
    }

    #[test]
    fn duplicate_rank_breaks_the_permutation() {
        let (_, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(3);
        Fault::<StableState>::apply(&mut duplicate_rank(2), &mut states, &mut rng);
        assert!(has_duplicate_rank(&states));
        assert_eq!(ranked_count(&states), 32, "victims stay ranked");
    }

    #[test]
    fn erase_rank_unranks_exactly_k() {
        let (p, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(4);
        erase_rank(&p, 6).apply(&mut states, &mut rng);
        assert_eq!(ranked_count(&states), 26);
    }

    #[test]
    fn coin_bias_flattens_every_coin() {
        let p = StableRanking::new(Params::new(32));
        let mut states = p.initial();
        let mut rng = SmallRng::seed_from_u64(5);
        coin_bias(true).apply(&mut states, &mut rng);
        assert!(states.iter().all(|s| s.coin() == Some(true)));
    }

    #[test]
    fn randomize_rewrites_every_agent_validly() {
        let (p, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(6);
        randomize(&p).apply(&mut states, &mut rng);
        assert!(
            states.iter().all(|s| s.is_valid_for(p.params())),
            "randomized states must stay inside the state space"
        );
        // A uniform draw over the state space is (w.o.p.) not a
        // permutation of ranks.
        assert!(states.iter().any(|s| s.rank().is_none()));
    }
}
