//! Ready-made fault injectors for the paper's `StableRanking`.
//!
//! Each constructor binds one of the generic injectors in
//! [`crate::fault`] to `StableRanking`'s state space, covering the
//! adversarial scenarios of the recovery benchmark:
//!
//! * [`corrupt`] — `k` agents overwritten with uniform garbage from the
//!   protocol's full (valid) state space;
//! * [`churn`] — `k` agents replaced by factory-new agents in the
//!   initial leader-election state (agent replacement / churn);
//! * [`duplicate_rank`] — a ranked agent's state copied onto victims,
//!   the exact inconsistency Figure 2's worst case is built around;
//! * [`erase_rank`] — ranked agents demoted to fresh joiners (rank
//!   loss);
//! * [`coin_bias`] — every synthetic coin forced to one side, attacking
//!   the one-third/two-thirds balance Lemma 28's argument rests on;
//! * [`randomize`] — the whole population re-drawn uniformly, i.e. a
//!   fresh adversarial initialization mid-run.

//! # Packed runs
//!
//! All injectors here corrupt structured [`StableState`]s, while the
//! throughput-critical simulations run `StableRanking` over its packed
//! single-word representation (`population::Packed`). The two meet at
//! the fault boundary: wrap any plan in
//! [`population::UnpackedHook`] and the engine unpacks the
//! configuration only at firing points, corrupts it with the exact same
//! injector logic and RNG stream, and re-packs — so a packed faulted
//! run is trajectory-equivalent to the structured one (property-tested
//! in `tests/packed_equivalence.rs`).

use rand::rngs::SmallRng;
use rand::RngExt;
use ranking::stable::state::{UnRole, UnState};
use ranking::stable::{StableRanking, StableState};

use crate::fault::{DuplicateRank, EraseRank, Fault, MapStates, StateRewrite};

/// Every injector kind this module provides, in canonical table order —
/// shared by the recovery benchmark and the packed-equivalence tests so
/// "every injector" means the same list everywhere.
pub const KINDS: [&str; 6] = [
    "corrupt",
    "churn",
    "duplicate_rank",
    "erase_rank",
    "coin_bias",
    "randomize",
];

/// Construct the injector named `kind` with its conventional severity
/// for population size `n` (a quarter corrupted / churned, an eighth
/// erased, two duplicates, all coins forced to heads, or the whole
/// population randomized).
///
/// # Panics
///
/// Panics on a name outside [`KINDS`].
pub fn standard(kind: &str, protocol: &StableRanking, n: usize) -> Box<dyn Fault<StableState>> {
    match kind {
        "corrupt" => Box::new(corrupt(protocol, (n / 4).max(1))),
        "churn" => Box::new(churn(protocol, (n / 4).max(1))),
        "duplicate_rank" => Box::new(duplicate_rank(2)),
        "erase_rank" => Box::new(erase_rank(protocol, (n / 8).max(1))),
        "coin_bias" => Box::new(coin_bias(true)),
        "randomize" => Box::new(randomize(protocol)),
        other => panic!("unknown injector kind {other} (see ranking_faults::KINDS)"),
    }
}

/// A factory-new agent: initial `FASTLEADERELECTION` state, random coin.
fn fresh_joiner(protocol: &StableRanking) -> impl FnMut(&mut SmallRng) -> StableState {
    let fast = *protocol.fast_le();
    move |rng| {
        StableState::Un(UnState {
            coin: rng.random_bool(0.5),
            role: UnRole::Elect(fast.initial_state()),
        })
    }
}

/// Transient corruption: `k` uniformly chosen agents overwritten with
/// uniform garbage from the protocol's state space.
pub fn corrupt(protocol: &StableRanking, k: usize) -> impl Fault<StableState> {
    let p = protocol.clone();
    StateRewrite::corrupt(k, move |rng: &mut SmallRng| p.random_state(rng))
}

/// Churn: `k` uniformly chosen agents replaced with factory-new agents
/// (initial leader-election state, random coin) — state replacement is
/// how the population model expresses an agent leaving and a new one
/// joining.
pub fn churn(protocol: &StableRanking, k: usize) -> impl Fault<StableState> {
    StateRewrite::churn(k, fresh_joiner(protocol))
}

/// Rank duplication: one ranked agent's state copied onto `copies`
/// victims.
pub fn duplicate_rank(copies: usize) -> DuplicateRank {
    DuplicateRank::new(copies)
}

/// Rank erasure: up to `k` ranked agents demoted to factory-new agents.
pub fn erase_rank(protocol: &StableRanking, k: usize) -> impl Fault<StableState> {
    EraseRank::new(k, fresh_joiner(protocol))
}

/// Coin bias: every unranked agent's synthetic coin forced to `value`
/// (ranked agents store no coin, so they are untouched).
pub fn coin_bias(value: bool) -> impl Fault<StableState> {
    MapStates::new("coin_bias", move |s: &mut StableState, _: &mut SmallRng| {
        if let StableState::Un(un) = s {
            un.coin = value;
        }
    })
}

/// Full-population randomization: a fresh adversarial initialization
/// injected mid-run.
pub fn randomize(protocol: &StableRanking) -> impl Fault<StableState> {
    let p = protocol.clone();
    StateRewrite::randomize(move |rng: &mut SmallRng| p.random_state(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::{has_duplicate_rank, ranked_count, RankOutput};
    use rand::SeedableRng;
    use ranking::Params;

    fn legal_states(n: usize) -> (StableRanking, Vec<StableState>) {
        let p = StableRanking::new(Params::new(n));
        let states = p.legal();
        (p, states)
    }

    #[test]
    fn corrupt_leaves_other_agents_untouched() {
        let (p, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(1);
        corrupt(&p, 5).apply(&mut states, &mut rng);
        assert!(ranked_count(&states) >= 32 - 5);
    }

    #[test]
    fn churn_injects_electing_agents() {
        let (p, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(2);
        churn(&p, 7).apply(&mut states, &mut rng);
        let electing = states.iter().filter(|s| s.is_electing()).count();
        assert_eq!(electing, 7);
        assert_eq!(ranked_count(&states), 25);
    }

    #[test]
    fn duplicate_rank_breaks_the_permutation() {
        let (_, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(3);
        Fault::<StableState>::apply(&mut duplicate_rank(2), &mut states, &mut rng);
        assert!(has_duplicate_rank(&states));
        assert_eq!(ranked_count(&states), 32, "victims stay ranked");
    }

    #[test]
    fn erase_rank_unranks_exactly_k() {
        let (p, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(4);
        erase_rank(&p, 6).apply(&mut states, &mut rng);
        assert_eq!(ranked_count(&states), 26);
    }

    #[test]
    fn coin_bias_flattens_every_coin() {
        let p = StableRanking::new(Params::new(32));
        let mut states = p.initial();
        let mut rng = SmallRng::seed_from_u64(5);
        coin_bias(true).apply(&mut states, &mut rng);
        assert!(states.iter().all(|s| s.coin() == Some(true)));
    }

    #[test]
    fn standard_builds_every_kind() {
        let p = StableRanking::new(Params::new(32));
        let mut rng = SmallRng::seed_from_u64(9);
        for kind in KINDS {
            let mut fault = standard(kind, &p, 32);
            assert_eq!(fault.name(), kind);
            let mut states = p.legal();
            fault.apply(&mut states, &mut rng);
            assert!(
                states.iter().all(|s| s.is_valid_for(p.params())),
                "{kind} left the state space"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown injector kind")]
    fn standard_rejects_unknown_kinds() {
        let p = StableRanking::new(Params::new(8));
        let _ = standard("bitflip", &p, 8);
    }

    #[test]
    fn injectors_drive_packed_runs_through_the_unpack_boundary() {
        // The packed hot path never sees structured states; the
        // injector fires through `UnpackedHook` at the fault boundary
        // and the run continues on words.
        use crate::FaultPlan;
        use population::{ranked_count, Packed, Simulator, UnpackedHook};

        let n = 32;
        let p = Packed(StableRanking::new(Params::new(n)));
        let init = p.pack_all(&p.inner().legal());
        let mut sim = Simulator::new(p, init, 4);
        let mut hook = UnpackedHook::new(
            FaultPlan::new(7).once(1000, standard("erase_rank", sim.protocol().inner(), n)),
        );
        sim.run_faulted(1001, &mut hook);
        assert_eq!(hook.inner().fired().len(), 1);
        // `PackedState` implements `RankOutput`, so the word-level
        // configuration is directly observable: exactly n/8 ranks lost.
        assert_eq!(ranked_count(sim.states()), n - n / 8);
    }

    #[test]
    fn randomize_rewrites_every_agent_validly() {
        let (p, mut states) = legal_states(32);
        let mut rng = SmallRng::seed_from_u64(6);
        randomize(&p).apply(&mut states, &mut rng);
        assert!(
            states.iter().all(|s| s.is_valid_for(p.params())),
            "randomized states must stay inside the state space"
        );
        // A uniform draw over the state space is (w.o.p.) not a
        // permutation of ranks.
        assert!(states.iter().any(|s| s.rank().is_none()));
    }
}
