//! Persistent (Byzantine) adversaries as a [`Protocol`] wrapper.
//!
//! Everything else in this crate models *transient* adversity: a fault
//! fires, the configuration is damaged once, and Theorem 2 promises the
//! protocol climbs back. A Byzantine agent never stops — it participates
//! in every interaction it is scheduled into, but instead of executing
//! the protocol it rewrites its own state by a fixed [`Strategy`].
//! [`Byzantine`] wraps any [`Protocol`] with `k` such agents, which is
//! the sharpest robustness probe the population model offers: with
//! persistent adversaries a stabilization claim can only be made about
//! the *honest* agents ([`population::is_valid_honest_ranking`], the
//! [`HonestRanking`](population::HonestRanking) observer).
//!
//! # Execution model
//!
//! Wrapped states are [`ByzState`]s: `Honest(s)` executes the protocol
//! unchanged; `Byz { disguise, .. }` presents `disguise` to every
//! partner. An interaction involving an adversary runs the inner
//! transition on the *presented* states — the honest side cannot tell
//! it met an adversary and takes the prescribed update verbatim — and
//! then the adversary [`react`](Strategy::react)s, starting from its
//! own prescribed update and overriding it at will (the initiator-side
//! adversary reacts first, seeing the responder's prescribed
//! post-state; a responder-side adversary reacts second, seeing the
//! initiator's final state).
//!
//! # Infiltration, not replacement
//!
//! The `k` adversaries *join* a population of `n = inner.n()` honest
//! agents: the wrapped protocol has `n + k` agents
//! ([`Byzantine::n`]), and the inner protocol keeps its own
//! parameterization — the honest population is exactly the size its
//! phase geometry was built for, and knows nothing of the
//! gate-crashers. This choice is forced by a structural property of
//! `StableRanking` (measured in the `byzantine` benchmark's probe
//! runs): the `FSeq` phase geometry hard-codes `n` rank takers, so if
//! an adversary *replaces* an honest agent and then never accepts a
//! rank (a crashed agent suffices — the mildest possible fault!), the
//! unaware leader ends every round waiting for a phase agent that
//! cannot exist, its liveness drains, and the population resets
//! forever: silent honest ranking becomes structurally unreachable,
//! for every non-participating strategy alike. Infiltration keeps the
//! honest arithmetic intact and lets the benchmark measure what each
//! strategy actually costs. The replacement variant remains available
//! as [`Byzantine::replacing`] — precisely so the model checker can
//! *prove* the structural livelock at tiny `n` (the `byzantine`
//! benchmark's classification does, and `tests/byzantine.rs` pins it).
//!
//! # Determinism
//!
//! The wrapper adds no hidden entropy: the trajectory is a pure
//! function of `(seed, k, strategy)` on top of the scheduler seed.
//! Adversary placement is a seeded draw ([`Byzantine::init`]), and
//! strategies draw randomness only through the per-agent [`ByzRng`]
//! carried *inside* the adversary's state — so `run_batched`,
//! `run_faulted`, and sharded runs replay bit-for-bit, and with
//! `k = 0` the wrapper is **bit-for-bit trajectory-equivalent** to the
//! unwrapped protocol on both the structured and the packed path
//! (property-tested in `tests/byzantine.rs`).
//!
//! # Model checking
//!
//! [`Byzantine::successors`] exposes the wrapper to
//! [`population::modelcheck::explore_with`]: deterministic strategies
//! contribute their single reaction, randomized ones their full
//! [`branches`](Strategy::branches) universe, so tiny-`n` reachability
//! verdicts quantify over *every* adversary behavior. [`classify`]
//! condenses the exploration into the three-way verdict the `byzantine`
//! benchmark reports: [`Tolerance::Tolerated`] /
//! [`Tolerance::Livelocked`] / [`Tolerance::SafetyViolating`].
//!
//! # Example
//!
//! ```
//! use population::{HonestRanking, Simulator};
//! use ranking::stable::StableRanking;
//! use ranking::Params;
//! use scenarios::byzantine::Byzantine;
//! use scenarios::ranking_byz;
//!
//! let n = 16;
//! let protocol = StableRanking::new(Params::new(n));
//! let init = protocol.initial();
//! // One adversary that always answers the lottery with the same coin.
//! let byz = Byzantine::new(protocol, ranking_byz::coin_jammer(false), 1, 7);
//! let init = byz.init(init);
//! let mut sim = Simulator::new(byz, init, 42);
//! let mut honest = HonestRanking::new();
//! sim.run_observed(5_000_000, n as u64, &mut honest);
//! assert!(
//!     honest.converged_at().is_some(),
//!     "the 15 honest agents still reach distinct valid ranks"
//! );
//! ```

use population::modelcheck::explore_with;
use population::{is_valid_honest_ranking, HonestOutput, Protocol, RankOutput};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Which side of the interaction an adversary was scheduled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The adversary was the initiator `u`.
    Initiator,
    /// The adversary was the responder `v`.
    Responder,
}

/// SplitMix64 step: the per-agent seed stream of Byzantine randomness.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lazy handle on one adversary's private randomness.
///
/// The RNG word lives *inside* the adversary's [`ByzState`], so
/// strategy randomness is part of the deterministic trajectory (same
/// seed ⇒ same adversary behavior) and never perturbs the scheduler's
/// pair stream. The handle is lazy on purpose: a deterministic strategy
/// that never calls [`draw`](ByzRng::draw) leaves the word untouched,
/// which keeps its state space finite for exhaustive model checking.
#[derive(Debug)]
pub struct ByzRng<'a> {
    word: &'a mut u64,
    drawn: bool,
}

impl<'a> ByzRng<'a> {
    /// A handle over an adversary's RNG word (exposed so strategies can
    /// be exercised in isolation; the engine constructs these itself).
    pub fn new(word: &'a mut u64) -> Self {
        Self { word, drawn: false }
    }

    /// A fresh RNG seeded from the adversary's current word; the word
    /// advances (SplitMix64) so the next touch draws independently.
    pub fn draw(&mut self) -> SmallRng {
        let rng = SmallRng::seed_from_u64(*self.word);
        *self.word = splitmix64(*self.word);
        self.drawn = true;
        rng
    }

    /// Has [`draw`](ByzRng::draw) been called through this handle?
    pub fn drew(&self) -> bool {
        self.drawn
    }
}

/// A persistent adversary's behavior.
///
/// Strategies are immutable values (`&self` everywhere): all mutable
/// adversary state lives in the [`ByzState`] — the disguise it
/// presents plus its private RNG word — which is what keeps wrapped
/// protocols `Sync` for sharded runs and trajectories replayable.
pub trait Strategy<P: Protocol>: Send + Sync {
    /// Short stable identifier, used in benchmark artifacts
    /// (e.g. `"rank_squatter"`).
    fn name(&self) -> &'static str;

    /// The disguise a designated adversary starts with, given the
    /// honest initial state it replaces. Defaults to that honest state
    /// (the adversary starts camouflaged).
    fn init_state(&self, protocol: &P, honest: P::State) -> P::State {
        let _ = protocol;
        honest
    }

    /// React after participating in an interaction as `role`. `own`
    /// arrives holding the state the protocol *prescribed* for the
    /// adversary; the strategy may keep it, tweak it, or replace it
    /// outright. `partner` is the other agent's state (the responder's
    /// prescribed post-state when reacting as initiator; the
    /// initiator's final state when reacting as responder).
    fn react(
        &self,
        protocol: &P,
        role: Role,
        own: &mut P::State,
        partner: &P::State,
        rng: &mut ByzRng<'_>,
    );

    /// Every state the adversary may adopt in this situation — the
    /// model checker's branching universe. The default returns the
    /// single [`react`](Strategy::react) outcome, which is exact for
    /// deterministic strategies.
    ///
    /// # Panics
    ///
    /// The default panics if `react` draws randomness: a randomized
    /// strategy must override `branches` with its full outcome set, or
    /// the exploration would silently under-approximate the adversary.
    fn branches(
        &self,
        protocol: &P,
        role: Role,
        own: &P::State,
        partner: &P::State,
    ) -> Vec<P::State> {
        let mut out = own.clone();
        let mut word = 0u64;
        let mut rng = ByzRng::new(&mut word);
        self.react(protocol, role, &mut out, partner, &mut rng);
        assert!(
            !rng.drew(),
            "strategy `{}` draws randomness: override `branches` with the \
             full outcome set for sound model checking",
            self.name()
        );
        vec![out]
    }
}

impl<P: Protocol> Strategy<P> for Box<dyn Strategy<P>> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }

    fn init_state(&self, protocol: &P, honest: P::State) -> P::State {
        self.as_ref().init_state(protocol, honest)
    }

    fn react(
        &self,
        protocol: &P,
        role: Role,
        own: &mut P::State,
        partner: &P::State,
        rng: &mut ByzRng<'_>,
    ) {
        self.as_ref().react(protocol, role, own, partner, rng)
    }

    fn branches(
        &self,
        protocol: &P,
        role: Role,
        own: &P::State,
        partner: &P::State,
    ) -> Vec<P::State> {
        self.as_ref().branches(protocol, role, own, partner)
    }
}

// ----------------------------------------------------------------------
// Generic strategies
// ----------------------------------------------------------------------

/// Randomize the own state on every touch: the adversary re-draws
/// itself from a caller-supplied generator whenever it participates —
/// sustained, localized `corrupt` pressure.
///
/// For model checking, attach the full outcome universe with
/// [`with_universe`](Recorrupt::with_universe) (for `StableRanking`,
/// `ranking::audit::enumerate_states`); the exploration then branches
/// over every state the adversary could adopt.
#[derive(Debug, Clone)]
pub struct Recorrupt<F, S> {
    make: F,
    universe: Vec<S>,
}

impl<F, S> Recorrupt<F, S> {
    /// Re-draw the own state with `make` on every touch.
    pub fn new(make: F) -> Self {
        Self {
            make,
            universe: Vec::new(),
        }
    }

    /// Attach the branching universe (every state `make` may produce)
    /// for exhaustive model checking.
    pub fn with_universe(mut self, universe: Vec<S>) -> Self {
        self.universe = universe;
        self
    }
}

impl<P, F> Strategy<P> for Recorrupt<F, P::State>
where
    P: Protocol,
    P::State: Send + Sync,
    F: Fn(&mut SmallRng) -> P::State + Send + Sync,
{
    fn name(&self) -> &'static str {
        "recorrupt"
    }

    fn react(
        &self,
        _protocol: &P,
        _role: Role,
        own: &mut P::State,
        _partner: &P::State,
        rng: &mut ByzRng<'_>,
    ) {
        *own = (self.make)(&mut rng.draw());
    }

    fn branches(
        &self,
        _protocol: &P,
        _role: Role,
        _own: &P::State,
        _partner: &P::State,
    ) -> Vec<P::State> {
        assert!(
            !self.universe.is_empty(),
            "Recorrupt has no branching universe: build it with \
             `with_universe` before model checking"
        );
        self.universe.clone()
    }
}

/// Permanently present one fixed state: the adversary starts in the
/// pinned state and reverts to it after every touch, whatever the
/// protocol prescribed.
///
/// One mechanism, several adversary flavors distinguished by the pinned
/// state and the name (see `ranking_byz` for the `StableRanking`
/// instances): *rank squatting* (pin a ranked state — force duplicates
/// and occupy a rank slot forever), *crash* (pin an inert dormant
/// state — the classic crash-stop fault), *lurking* (pin a
/// leader-election state — a freerider that never leaves the lobby and
/// answers every lottery with the same frozen coin).
#[derive(Debug, Clone)]
pub struct Pin<S> {
    name: &'static str,
    pinned: S,
}

impl<S> Pin<S> {
    /// Present `pinned` forever, under the given strategy name.
    pub fn new(name: &'static str, pinned: S) -> Self {
        Self { name, pinned }
    }

    /// The pinned state.
    pub fn pinned(&self) -> &S {
        &self.pinned
    }
}

impl<P> Strategy<P> for Pin<P::State>
where
    P: Protocol,
    P::State: Send + Sync,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn init_state(&self, _protocol: &P, _honest: P::State) -> P::State {
        self.pinned.clone()
    }

    fn react(
        &self,
        _protocol: &P,
        _role: Role,
        own: &mut P::State,
        _partner: &P::State,
        _rng: &mut ByzRng<'_>,
    ) {
        *own = self.pinned.clone();
    }
}

/// Copy the partner's state on every touch: the adversary is a walking
/// duplicate of whomever it last met — rank duplication that re-arms
/// itself forever, unlike the one-shot
/// [`DuplicateRank`](crate::fault::DuplicateRank) fault.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mimic;

impl Mimic {
    /// A state-copying adversary.
    pub fn new() -> Self {
        Self
    }
}

impl<P> Strategy<P> for Mimic
where
    P: Protocol,
    P::State: Send + Sync,
{
    fn name(&self) -> &'static str {
        "mimic"
    }

    fn react(
        &self,
        _protocol: &P,
        _role: Role,
        own: &mut P::State,
        partner: &P::State,
        _rng: &mut ByzRng<'_>,
    ) {
        *own = partner.clone();
    }
}

/// Follow the protocol, but pin one aspect of the own state after every
/// touch (the caller-supplied `fix`). The canonical use is jamming the
/// synthetic coin: the paper's lottery (Protocol 5) reads the
/// *responder's* coin, and an adversary that always answers with the
/// same coin attacks exactly the balance Lemma 28's argument needs —
/// see [`crate::ranking_byz::coin_jammer`].
#[derive(Debug, Clone)]
pub struct CoinJammer<F> {
    fix: F,
}

impl<F> CoinJammer<F> {
    /// Apply `fix` to the own (prescribed) state after every touch.
    pub fn new(fix: F) -> Self {
        Self { fix }
    }
}

impl<P, F> Strategy<P> for CoinJammer<F>
where
    P: Protocol,
    F: Fn(&mut P::State) + Send + Sync,
{
    fn name(&self) -> &'static str {
        "coin_jammer"
    }

    fn init_state(&self, _protocol: &P, honest: P::State) -> P::State {
        let mut s = honest;
        (self.fix)(&mut s);
        s
    }

    fn react(
        &self,
        _protocol: &P,
        _role: Role,
        own: &mut P::State,
        _partner: &P::State,
        _rng: &mut ByzRng<'_>,
    ) {
        (self.fix)(own);
    }
}

// ----------------------------------------------------------------------
// The wrapper
// ----------------------------------------------------------------------

/// A wrapped agent state: honest agents run the protocol, designated
/// adversaries present a `disguise` and carry a private RNG word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ByzState<S> {
    /// An honest agent, executing the protocol unchanged.
    Honest(S),
    /// A persistent adversary.
    Byz {
        /// The state the adversary currently presents to partners.
        disguise: S,
        /// The adversary's private randomness (advanced only when the
        /// strategy draws; see [`ByzRng`]).
        rng: u64,
    },
}

impl<S> ByzState<S> {
    /// The state this agent presents to interaction partners.
    pub fn state(&self) -> &S {
        match self {
            ByzState::Honest(s) | ByzState::Byz { disguise: s, .. } => s,
        }
    }

    /// Is this agent a designated adversary?
    pub fn is_byzantine(&self) -> bool {
        matches!(self, ByzState::Byz { .. })
    }

    /// Unwrap into the presented state.
    pub fn into_state(self) -> S {
        match self {
            ByzState::Honest(s) | ByzState::Byz { disguise: s, .. } => s,
        }
    }
}

impl<S: RankOutput> RankOutput for ByzState<S> {
    fn rank(&self) -> Option<u64> {
        self.state().rank()
    }
}

impl<S: RankOutput> HonestOutput for ByzState<S> {
    fn is_honest(&self) -> bool {
        !self.is_byzantine()
    }
}

/// How the `k` adversaries enter the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placement {
    /// Adversaries join `n` honest agents: `n + k` agents total, the
    /// honest population exactly the size the protocol expects.
    Infiltrate,
    /// Adversaries replace `k` of the `n` agents: `n` agents total,
    /// only `n − k` honest. The protocol's arithmetic still assumes
    /// `n` participants — see the module docs for why this makes
    /// silent honest ranking structurally unreachable for every
    /// non-participating strategy (confirmed exhaustively by
    /// [`classify`] at tiny `n`).
    Replace,
}

/// A [`Protocol`] with `k` persistent adversaries following one
/// [`Strategy`] — by default infiltrating (`inner.n() + k` agents
/// total); [`Byzantine::replacing`] builds the replacement variant.
/// See the module docs for the execution model, the
/// infiltration-vs-replacement discussion, and the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct Byzantine<P, St> {
    inner: P,
    strategy: St,
    k: usize,
    seed: u64,
    placement: Placement,
}

impl<P: Protocol, St: Strategy<P>> Byzantine<P, St> {
    /// Wrap `inner` with `k` infiltrating adversaries following
    /// `strategy`: the wrapped population has `inner.n() + k` agents.
    /// `seed` determines adversary placement and seeds their private
    /// randomness; the whole trajectory is a pure function of
    /// `(seed, k, strategy)` plus the scheduler seed.
    pub fn new(inner: P, strategy: St, k: usize, seed: u64) -> Self {
        Self {
            inner,
            strategy,
            k,
            seed,
            placement: Placement::Infiltrate,
        }
    }

    /// The replacement variant: `k` of the `inner.n()` agents *are*
    /// the adversaries (population size stays `inner.n()`, honest
    /// count drops to `inner.n() − k`). Useful for probing the
    /// structural sensitivity of a protocol whose parameterization
    /// hard-codes the participant count — for `StableRanking` even a
    /// crashed agent makes silent honest ranking unreachable in this
    /// model (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `k > inner.n()`.
    pub fn replacing(inner: P, strategy: St, k: usize, seed: u64) -> Self {
        assert!(k <= inner.n(), "cannot replace {k} of {} agents", inner.n());
        Self {
            inner,
            strategy,
            k,
            seed,
            placement: Placement::Replace,
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The adversary strategy.
    pub fn strategy(&self) -> &St {
        &self.strategy
    }

    /// Number of infiltrating adversaries.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of honest agents: `inner.n()` when infiltrating,
    /// `inner.n() − k` when replacing.
    pub fn honest_count(&self) -> usize {
        match self.placement {
            Placement::Infiltrate => self.inner.n(),
            Placement::Replace => self.inner.n() - self.k,
        }
    }

    /// Wrap an honest initial configuration of `inner.n()` states.
    /// Infiltrating, the `k` adversaries are *inserted* at uniformly
    /// chosen positions (deterministically in the wrapper seed), each
    /// camouflaged as a uniformly drawn honest initial state filtered
    /// through [`Strategy::init_state`]; replacing, `k` uniformly
    /// chosen agents are *overwritten* instead. Every adversary gets a
    /// distinct private RNG word derived from the seed.
    ///
    /// # Panics
    ///
    /// Panics if `honest.len() != inner.n()`.
    pub fn init(&self, honest: Vec<P::State>) -> Vec<ByzState<P::State>> {
        let n = self.inner.n();
        assert_eq!(
            n,
            honest.len(),
            "initial configuration size must be inner.n()"
        );
        let mut placement = SmallRng::seed_from_u64(splitmix64(self.seed ^ 0xB1A5_ED00));
        let byz_word = |slot: usize| splitmix64(splitmix64(self.seed) ^ (slot as u64 + 1));
        let mut out: Vec<ByzState<P::State>> = honest.into_iter().map(ByzState::Honest).collect();
        match self.placement {
            Placement::Infiltrate => {
                for slot in 0..self.k {
                    let camouflage = match &out[placement.random_range(0..n)] {
                        ByzState::Honest(h) => h.clone(),
                        ByzState::Byz { disguise, .. } => disguise.clone(),
                    };
                    let at = placement.random_range(0..=out.len());
                    out.insert(
                        at,
                        ByzState::Byz {
                            disguise: self.strategy.init_state(&self.inner, camouflage),
                            rng: byz_word(slot),
                        },
                    );
                }
            }
            Placement::Replace => {
                // Partial Fisher–Yates: the first k slots of `idx` end
                // up holding k distinct uniform indices.
                let mut idx: Vec<usize> = (0..n).collect();
                for i in 0..self.k {
                    let j = placement.random_range(i..n);
                    idx.swap(i, j);
                }
                for (slot, &i) in idx[..self.k].iter().enumerate() {
                    let ByzState::Honest(h) = out[i].clone() else {
                        unreachable!("replacement indices are distinct");
                    };
                    out[i] = ByzState::Byz {
                        disguise: self.strategy.init_state(&self.inner, h),
                        rng: byz_word(slot),
                    };
                }
            }
        }
        out
    }

    /// Every ordered state pair `(u, v)` may step to — the
    /// model-checking seam. Honest pairs contribute their single
    /// deterministic transition; pairs involving an adversary branch
    /// over [`Strategy::branches`]. Adversary RNG words are left
    /// untouched (the branching already quantifies over every draw), so
    /// deterministic *and* randomized strategies explore a finite
    /// space. Feed this to
    /// [`population::modelcheck::explore_with`]:
    ///
    /// ```ignore
    /// let r = explore_with(&byz, init, cap, |p, u, v| p.successors(u, v));
    /// ```
    pub fn successors(
        &self,
        u: &ByzState<P::State>,
        v: &ByzState<P::State>,
    ) -> Vec<ByzPair<P::State>> {
        let mut a = u.state().clone();
        let mut b = v.state().clone();
        self.inner.transition(&mut a, &mut b);
        let u_options: Vec<P::State> = match u {
            ByzState::Honest(_) => vec![a.clone()],
            ByzState::Byz { .. } => self.strategy.branches(&self.inner, Role::Initiator, &a, &b),
        };
        let mut out = Vec::new();
        for ua in u_options {
            let v_options: Vec<P::State> = match v {
                ByzState::Honest(_) => vec![b.clone()],
                ByzState::Byz { .. } => {
                    self.strategy
                        .branches(&self.inner, Role::Responder, &b, &ua)
                }
            };
            for vb in v_options {
                out.push((rewrap(u, ua.clone()), rewrap(v, vb)));
            }
        }
        out
    }
}

/// An ordered pair of wrapped states — the element type of
/// [`Byzantine::successors`]'s branching output.
pub type ByzPair<S> = (ByzState<S>, ByzState<S>);

/// Rebuild a [`ByzState`] with a new presented state, keeping the
/// honest/adversary designation and the RNG word.
fn rewrap<S: Clone>(prev: &ByzState<S>, state: S) -> ByzState<S> {
    match prev {
        ByzState::Honest(_) => ByzState::Honest(state),
        ByzState::Byz { rng, .. } => ByzState::Byz {
            disguise: state,
            rng: *rng,
        },
    }
}

impl<P: Protocol, St: Strategy<P>> Protocol for Byzantine<P, St> {
    type State = ByzState<P::State>;

    fn n(&self) -> usize {
        match self.placement {
            Placement::Infiltrate => self.inner.n() + self.k,
            Placement::Replace => self.inner.n(),
        }
    }

    fn transition(&self, u: &mut Self::State, v: &mut Self::State) -> bool {
        // The honest fast path delegates outright — this is what makes
        // k = 0 bit-for-bit equivalent to the unwrapped protocol
        // (including the changed flag the batched engine's write-back
        // skip relies on).
        if let (ByzState::Honest(a), ByzState::Honest(b)) = (&mut *u, &mut *v) {
            return self.inner.transition(a, b);
        }
        let before = (u.clone(), v.clone());
        let mut a = u.state().clone();
        let mut b = v.state().clone();
        self.inner.transition(&mut a, &mut b);
        match u {
            ByzState::Honest(s) => *s = a,
            ByzState::Byz { disguise, rng } => {
                *disguise = a;
                let mut handle = ByzRng::new(rng);
                self.strategy
                    .react(&self.inner, Role::Initiator, disguise, &b, &mut handle);
            }
        }
        let initiator_final = u.state().clone();
        match v {
            ByzState::Honest(s) => *s = b,
            ByzState::Byz { disguise, rng } => {
                *disguise = b;
                let mut handle = ByzRng::new(rng);
                self.strategy.react(
                    &self.inner,
                    Role::Responder,
                    disguise,
                    &initiator_final,
                    &mut handle,
                );
            }
        }
        *u != before.0 || *v != before.1
    }
}

// ----------------------------------------------------------------------
// Honest-stabilization drivers
// ----------------------------------------------------------------------

/// Drive a sequential Byzantine run until the honest agents hold valid
/// distinct ranks (polled every `check_every` interactions) or the
/// budget runs out; returns the hitting checkpoint — the
/// *honest-stabilization time* the `byzantine` benchmark aggregates.
/// Sugar over
/// [`run_observed`](population::Simulator::run_observed) with a
/// [`HonestRanking`](population::HonestRanking) observer.
pub fn run_honest<P, St, Src>(
    sim: &mut population::Simulator<Byzantine<P, St>, Src>,
    max_interactions: u64,
    check_every: u64,
) -> Option<u64>
where
    P: Protocol,
    P::State: RankOutput,
    St: Strategy<P>,
    Src: population::PairSource,
{
    let mut honest = population::HonestRanking::new();
    sim.run_observed(max_interactions, check_every, &mut honest);
    honest.converged_at()
}

/// [`run_honest`] over the sharded engine — the counterpart of
/// [`run_recovery_sharded`](crate::recovery::run_recovery_sharded) for
/// persistent adversaries. Observation goes through the copy-free
/// [`run_merged`](shard::ShardedSimulator::run_merged) path
/// ([`HonestRanking`](population::HonestRanking) is a
/// [`ShardObserver`](population::ShardObserver): each lane contributes
/// its honest-rank bitmap). With `shards = 1` this is bit-for-bit
/// [`run_honest`] over a uniform schedule.
pub fn run_honest_sharded<P, St>(
    sim: &mut shard::ShardedSimulator<Byzantine<P, St>>,
    max_interactions: u64,
    check_every: u64,
) -> Option<u64>
where
    P: Protocol + Sync,
    P::State: RankOutput + Send + Sync,
    St: Strategy<P>,
{
    let mut honest = population::HonestRanking::new();
    sim.run_merged(max_interactions, check_every, &mut honest);
    honest.converged_at()
}

// ----------------------------------------------------------------------
// Exhaustive classification
// ----------------------------------------------------------------------

/// Three-way verdict of the exhaustive tiny-`n` classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tolerance {
    /// From every reachable configuration — under every adversary
    /// behavior — the honest agents can still reach valid distinct
    /// ranks, and every absorbing configuration already has them: the
    /// strategy is absorbed.
    Tolerated,
    /// No absorbing configuration violates honest validity, but some
    /// reachable configuration has *no path back* to it: the adversary
    /// can deny honest stabilization forever.
    Livelocked,
    /// Some reachable **silent** configuration violates honest
    /// validity: the system can stop, wrong — the strategy breaks the
    /// safety half of "silent + correct".
    SafetyViolating,
}

impl Tolerance {
    /// Stable lowercase label for artifacts.
    pub fn label(self) -> &'static str {
        match self {
            Tolerance::Tolerated => "tolerated",
            Tolerance::Livelocked => "livelocked",
            Tolerance::SafetyViolating => "safety-violating",
        }
    }
}

/// Result of [`classify`]: the verdict plus the exploration counts
/// behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// The three-way verdict.
    pub verdict: Tolerance,
    /// Reachable configurations (as multisets).
    pub reachable: usize,
    /// Reachable silent (absorbing) configurations.
    pub silent: usize,
    /// Silent configurations violating honest validity.
    pub silent_invalid: usize,
    /// Configurations with no path to honest validity.
    pub unrecoverable: usize,
}

/// Exhaustively classify a Byzantine strategy at tiny `n`: explore
/// every configuration reachable from `init` under every adversary
/// behavior ([`Byzantine::successors`]) and condense the verdict —
/// see [`Tolerance`] for the three-way reading. Returns `None` if the
/// exploration exceeds `cap` configurations (inconclusive).
pub fn classify<P, St>(
    byz: &Byzantine<P, St>,
    init: Vec<ByzState<P::State>>,
    cap: usize,
) -> Option<Classification>
where
    P: Protocol,
    P::State: Ord + Eq + std::hash::Hash + Clone + RankOutput,
    St: Strategy<P>,
{
    // The exploration asks for the successors of the same ordered state
    // pair once per configuration containing it — memoizing the answer
    // turns the dominant cost (strategy branching + inner transitions)
    // into a hash lookup.
    type PairCache<S> = std::collections::HashMap<ByzPair<S>, Vec<ByzPair<S>>>;
    let cache: std::cell::RefCell<PairCache<P::State>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
    let r = explore_with(byz, init, cap, |p, u, v| {
        if let Some(hit) = cache.borrow().get(&(u.clone(), v.clone())) {
            return hit.clone();
        }
        let succ = p.successors(u, v);
        cache
            .borrow_mut()
            .insert((u.clone(), v.clone()), succ.clone());
        succ
    });
    if r.truncated() {
        return None;
    }
    let goal = |c: &[ByzState<P::State>]| is_valid_honest_ranking(c);
    let silent = r.silent_configs();
    let silent_count = silent.len();
    let silent_invalid = silent.iter().filter(|c| !goal(c)).count();
    let unrecoverable = r.count_cannot_reach(goal);
    let verdict = if silent_invalid > 0 {
        Tolerance::SafetyViolating
    } else if unrecoverable > 0 {
        Tolerance::Livelocked
    } else {
        Tolerance::Tolerated
    };
    Some(Classification {
        verdict,
        reachable: r.len(),
        silent: silent_count,
        silent_invalid,
        unrecoverable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::Simulator;

    /// Counts interactions on each side (the engine's test protocol).
    #[derive(Debug, Clone)]
    struct Count(usize);
    impl Protocol for Count {
        type State = (u64, u64);
        fn n(&self) -> usize {
            self.0
        }
        fn transition(&self, u: &mut Self::State, v: &mut Self::State) -> bool {
            u.0 += 1;
            v.1 += 1;
            true
        }
    }

    /// A strategy that zeroes itself on every touch.
    #[derive(Debug, Clone)]
    struct Zero;
    impl Strategy<Count> for Zero {
        fn name(&self) -> &'static str {
            "zero"
        }
        fn react(
            &self,
            _p: &Count,
            _role: Role,
            own: &mut (u64, u64),
            _partner: &(u64, u64),
            _rng: &mut ByzRng<'_>,
        ) {
            *own = (0, 0);
        }
    }

    #[test]
    fn k_zero_is_bit_for_bit_the_unwrapped_protocol() {
        let mut plain = Simulator::new(Count(16), vec![(0, 0); 16], 42);
        let byz = Byzantine::new(Count(16), Zero, 0, 7);
        let init = byz.init(vec![(0, 0); 16]);
        let mut wrapped = Simulator::new(byz, init, 42);
        plain.run_batched(12_345);
        wrapped.run_batched(12_345);
        let unwrapped: Vec<(u64, u64)> = wrapped
            .states()
            .iter()
            .map(|s| *ByzState::state(s))
            .collect();
        assert_eq!(unwrapped, plain.states());
        assert!(wrapped.states().iter().all(|s| !s.is_byzantine()));
    }

    #[test]
    fn adversaries_override_their_own_update_only() {
        let byz = Byzantine::new(Count(8), Zero, 2, 3);
        assert_eq!(byz.n(), 10, "two infiltrators join the eight");
        assert_eq!(byz.honest_count(), 8);
        let init = byz.init(vec![(0, 0); 8]);
        assert_eq!(init.len(), 10);
        assert_eq!(init.iter().filter(|s| s.is_byzantine()).count(), 2);
        let mut sim = Simulator::new(byz, init, 5);
        sim.run(10_000);
        // Honest counters advance; adversary counters are pinned at 0.
        for s in sim.states() {
            match s {
                ByzState::Honest(c) => assert!(c.0 + c.1 > 0),
                ByzState::Byz { disguise, .. } => assert_eq!(*disguise, (0, 0)),
            }
        }
        assert_eq!(sim.interactions(), 10_000);
    }

    #[test]
    fn placement_and_trajectory_are_deterministic_in_the_seed() {
        let run = |wrapper_seed, sched_seed| {
            let byz = Byzantine::new(Count(12), Zero, 3, wrapper_seed);
            let init = byz.init(vec![(0, 0); 12]);
            let mut sim = Simulator::new(byz, init, sched_seed);
            sim.run(5_000);
            sim.into_states()
        };
        assert_eq!(run(1, 9), run(1, 9));
        assert_ne!(run(1, 9), run(2, 9), "placement must follow the seed");
        assert_ne!(run(1, 9), run(1, 10));
    }

    #[test]
    fn changed_flag_has_no_false_negatives_for_rng_advances() {
        // A strategy that redraws its (identical) state still advanced
        // its RNG word — the transition must report a change, or the
        // batched write-back skip would desynchronize the word.
        #[derive(Debug)]
        struct Redraw;
        impl Strategy<Count> for Redraw {
            fn name(&self) -> &'static str {
                "redraw"
            }
            fn react(
                &self,
                _p: &Count,
                _role: Role,
                own: &mut (u64, u64),
                _partner: &(u64, u64),
                rng: &mut ByzRng<'_>,
            ) {
                let _ = rng.draw();
                *own = (0, 0);
            }
        }
        let byz = Byzantine::new(Count(2), Redraw, 1, 1);
        let states = byz.init(vec![(0, 0), (0, 0)]);
        assert_eq!(states.len(), 3);
        let mut a = *states
            .iter()
            .find(|s| s.is_byzantine())
            .expect("one adversary");
        let mut b = *states
            .iter()
            .find(|s| !s.is_byzantine())
            .expect("honest agents");
        let ByzState::Byz {
            rng: word_before, ..
        } = a
        else {
            unreachable!()
        };
        assert!(byz.transition(&mut a, &mut b), "rng advance is a change");
        let ByzState::Byz {
            rng: word_after, ..
        } = a
        else {
            unreachable!()
        };
        assert_ne!(word_before, word_after);
    }

    #[test]
    fn default_branches_reject_randomized_strategies() {
        #[derive(Debug)]
        struct Draws;
        impl Strategy<Count> for Draws {
            fn name(&self) -> &'static str {
                "draws"
            }
            fn react(
                &self,
                _p: &Count,
                _role: Role,
                own: &mut (u64, u64),
                _partner: &(u64, u64),
                rng: &mut ByzRng<'_>,
            ) {
                use rand::RngCore;
                own.0 = rng.draw().next_u64();
            }
        }
        let caught = std::panic::catch_unwind(|| {
            Draws.branches(&Count(2), Role::Initiator, &(0, 0), &(0, 0))
        });
        assert!(caught.is_err(), "must demand an explicit outcome set");
    }

    #[test]
    fn successors_branch_over_the_strategy_universe() {
        // Recorrupt over a 2-value state space: successors of a pair
        // involving the adversary enumerate both values.
        let byz = Byzantine::new(
            Count(2),
            Recorrupt::new(|_: &mut SmallRng| (0u64, 0u64)).with_universe(vec![(0, 0), (9, 9)]),
            1,
            1,
        );
        let init = byz.init(vec![(0, 0), (0, 0)]);
        let adv = init.iter().find(|s| s.is_byzantine()).expect("adversary");
        let honest = init.iter().find(|s| !s.is_byzantine()).expect("honest");
        let succ = byz.successors(adv, honest);
        assert_eq!(succ.len(), 2, "one per universe state");
        // Honest pair: single deterministic successor.
        let h = ByzState::Honest((0u64, 0u64));
        assert_eq!(byz.successors(&h, &h.clone()).len(), 1);
    }
}
