//! Adversarial pair schedulers.
//!
//! The paper's analysis assumes the *uniform* scheduler
//! ([`population::Schedule`]). Each type here implements
//! [`population::PairSource`] with a deliberately non-uniform pair
//! distribution, so any protocol can be run off that assumption through
//! [`Simulator::with_source`](population::Simulator::with_source):
//!
//! * [`BiasedSchedule`] — a *hot set* of agents initiates far more often
//!   than the rest (models skewed activity / a byzantine-ish scheduler
//!   favoring some agents);
//! * [`ClusteredSchedule`] — the population is split into clusters and
//!   cross-cluster interactions happen only with probability `p_cross`
//!   (models partial network partitions; `p_cross = 0` is a hard
//!   partition under which global ranking is impossible);
//! * [`RoundRobinSchedule`] — a deterministic sweep enumerating every
//!   ordered pair once per `n(n-1)` interactions (a fair but completely
//!   derandomized adversary).
//!
//! All three route their draws through
//! [`population::schedule::BlockBuffer`], inheriting the engine's
//! scalar/batched interleaving equivalence by construction.

use population::schedule::{BlockBuffer, Pair, PairSource};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::util::distinct_from;

fn check_n(n: usize) {
    assert!(n >= 2, "population needs at least two agents");
    assert!(u32::try_from(n).is_ok(), "population size exceeds u32");
}

/// A scheduler where a *hot set* `0..hot` of agents is chosen as
/// initiator with probability `bias` (uniform inside the set), and the
/// whole population uniformly otherwise. Responders stay uniform among
/// the other `n − 1` agents.
#[derive(Debug, Clone)]
pub struct BiasedSchedule {
    rng: SmallRng,
    n: usize,
    hot: usize,
    bias: f64,
    buf: BlockBuffer,
}

impl BiasedSchedule {
    /// A biased scheduler over `n` agents: with probability `bias` the
    /// initiator comes from the hot set `0..hot`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `hot` is not in `1..=n`, or `bias` is outside
    /// `[0, 1]`.
    pub fn new(n: usize, hot: usize, bias: f64, seed: u64) -> Self {
        check_n(n);
        assert!((1..=n).contains(&hot), "hot set must be within 1..=n");
        assert!((0.0..=1.0).contains(&bias), "bias must be in [0, 1]");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            n,
            hot,
            bias,
            buf: BlockBuffer::new(),
        }
    }

    fn draw(rng: &mut SmallRng, n: usize, hot: usize, bias: f64) -> Pair {
        let i = if rng.random_bool(bias) {
            rng.random_range(0..hot as u32)
        } else {
            rng.random_range(0..n as u32)
        };
        (i, distinct_from(rng, n, i as usize) as u32)
    }
}

impl PairSource for BiasedSchedule {
    fn n(&self) -> usize {
        self.n
    }

    fn next_pair(&mut self) -> (usize, usize) {
        let (rng, n, hot, bias) = (&mut self.rng, self.n, self.hot, self.bias);
        self.buf.next_pair(|| Self::draw(rng, n, hot, bias))
    }

    fn sample_block(&mut self, max: usize) -> &[Pair] {
        let (rng, n, hot, bias) = (&mut self.rng, self.n, self.hot, self.bias);
        self.buf.sample_block(max, || Self::draw(rng, n, hot, bias))
    }
}

/// A scheduler over a clustered population: agents are split into
/// `clusters` contiguous, near-equal groups; with probability `p_cross`
/// an interaction is drawn uniformly over the whole population,
/// otherwise it stays inside the initiator's cluster.
///
/// Singleton clusters fall back to a global responder (a cluster of one
/// has no internal pair).
#[derive(Debug, Clone)]
pub struct ClusteredSchedule {
    rng: SmallRng,
    n: usize,
    clusters: usize,
    p_cross: f64,
    buf: BlockBuffer,
}

impl ClusteredSchedule {
    /// A clustered scheduler over `n` agents in `clusters` groups with
    /// cross-cluster probability `p_cross`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `clusters` is not in `1..=n`, or `p_cross` is
    /// outside `[0, 1]`.
    pub fn new(n: usize, clusters: usize, p_cross: f64, seed: u64) -> Self {
        check_n(n);
        assert!(
            (1..=n).contains(&clusters),
            "cluster count must be within 1..=n"
        );
        assert!((0.0..=1.0).contains(&p_cross), "p_cross must be in [0, 1]");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            n,
            clusters,
            p_cross,
            buf: BlockBuffer::new(),
        }
    }

    /// The cluster agent `i` belongs to (balanced contiguous split).
    pub fn cluster_of(&self, i: usize) -> usize {
        i * self.clusters / self.n
    }

    /// The agent-index range `[start, end)` of cluster `c`.
    pub fn cluster_range(&self, c: usize) -> (usize, usize) {
        cluster_bounds(self.n, self.clusters, c)
    }

    fn draw(rng: &mut SmallRng, n: usize, clusters: usize, p_cross: f64) -> Pair {
        let i = rng.random_range(0..n as u32) as usize;
        if p_cross > 0.0 && rng.random_bool(p_cross) {
            return (i as u32, distinct_from(rng, n, i) as u32);
        }
        let (start, end) = cluster_bounds(n, clusters, i * clusters / n);
        let size = end - start;
        if size < 2 {
            // Singleton cluster: no internal pair exists.
            return (i as u32, distinct_from(rng, n, i) as u32);
        }
        let r = start + rng.random_range(0..size as u32 - 1) as usize;
        let j = if r >= i { r + 1 } else { r };
        (i as u32, j as u32)
    }
}

/// `[start, end)` agent-index bounds of cluster `c` in the balanced
/// contiguous split of `n` agents into `clusters` groups.
fn cluster_bounds(n: usize, clusters: usize, c: usize) -> (usize, usize) {
    let start = (c * n).div_ceil(clusters);
    let end = ((c + 1) * n).div_ceil(clusters);
    (start, end)
}

impl PairSource for ClusteredSchedule {
    fn n(&self) -> usize {
        self.n
    }

    fn next_pair(&mut self) -> (usize, usize) {
        let (rng, n, clusters, p_cross) = (&mut self.rng, self.n, self.clusters, self.p_cross);
        self.buf.next_pair(|| Self::draw(rng, n, clusters, p_cross))
    }

    fn sample_block(&mut self, max: usize) -> &[Pair] {
        let (rng, n, clusters, p_cross) = (&mut self.rng, self.n, self.clusters, self.p_cross);
        self.buf
            .sample_block(max, || Self::draw(rng, n, clusters, p_cross))
    }
}

/// A deterministic round-robin sweep: interaction `t` pairs initiator
/// `t mod n` with the responder `offset` positions ahead (mod `n`),
/// where `offset = 1 + (t / n) mod (n − 1)` — every ordered pair appears
/// exactly once per `n(n−1)` interactions, with no randomness at all.
#[derive(Debug, Clone)]
pub struct RoundRobinSchedule {
    n: usize,
    t: u64,
    buf: BlockBuffer,
}

impl RoundRobinSchedule {
    /// A round-robin sweep over `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > u32::MAX`.
    pub fn new(n: usize) -> Self {
        check_n(n);
        Self {
            n,
            t: 0,
            buf: BlockBuffer::new(),
        }
    }

    fn draw(t: &mut u64, n: usize) -> Pair {
        let i = (*t % n as u64) as usize;
        let offset = 1 + ((*t / n as u64) % (n as u64 - 1)) as usize;
        *t += 1;
        (i as u32, ((i + offset) % n) as u32)
    }
}

impl PairSource for RoundRobinSchedule {
    fn n(&self) -> usize {
        self.n
    }

    fn next_pair(&mut self) -> (usize, usize) {
        let (t, n) = (&mut self.t, self.n);
        self.buf.next_pair(|| Self::draw(t, n))
    }

    fn sample_block(&mut self, max: usize) -> &[Pair] {
        let (t, n) = (&mut self.t, self.n);
        self.buf.sample_block(max, || Self::draw(t, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn pairs_are_valid(source: &mut dyn PairSource, n: usize, count: usize) {
        for _ in 0..count {
            let (i, j) = source.next_pair();
            assert!(i < n && j < n, "({i}, {j}) out of range");
            assert_ne!(i, j, "self-interaction produced");
        }
    }

    #[test]
    fn biased_pairs_are_valid_and_skewed() {
        let n = 40;
        let mut s = BiasedSchedule::new(n, 4, 0.9, 1);
        pairs_are_valid(&mut s, n, 5_000);
        let mut hot_initiations = 0;
        for _ in 0..10_000 {
            if s.next_pair().0 < 4 {
                hot_initiations += 1;
            }
        }
        // 0.9 + 0.1 * (4/40) = 0.91 expected hot-initiator fraction vs
        // 0.10 under the uniform scheduler.
        assert!(
            hot_initiations > 8_000,
            "hot set initiated only {hot_initiations}/10000"
        );
    }

    #[test]
    fn biased_with_zero_bias_is_roughly_uniform() {
        let n = 8;
        let mut s = BiasedSchedule::new(n, 1, 0.0, 3);
        let mut counts = vec![0u32; n];
        for _ in 0..80_000 {
            counts[s.next_pair().0] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "initiator count {c}");
        }
    }

    #[test]
    fn clustered_with_hard_partition_never_crosses() {
        let n = 30;
        let mut s = ClusteredSchedule::new(n, 3, 0.0, 7);
        for _ in 0..20_000 {
            let (i, j) = s.next_pair();
            assert_eq!(
                s.cluster_of(i),
                s.cluster_of(j),
                "({i}, {j}) crossed a hard partition"
            );
        }
    }

    #[test]
    fn clustered_with_full_crossing_reaches_everywhere() {
        let n = 12;
        let mut s = ClusteredSchedule::new(n, 3, 1.0, 7);
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for _ in 0..50_000 {
            seen.insert(s.next_pair());
        }
        assert_eq!(seen.len(), n * (n - 1), "all ordered pairs reachable");
    }

    #[test]
    fn clustered_singleton_clusters_fall_back_to_global() {
        // n == clusters: every cluster is a singleton; pairs must still
        // be valid (drawn globally).
        let n = 6;
        let mut s = ClusteredSchedule::new(n, n, 0.0, 1);
        pairs_are_valid(&mut s, n, 2_000);
    }

    #[test]
    fn clustered_block_and_scalar_share_the_stream() {
        let mut scalar = ClusteredSchedule::new(20, 4, 0.3, 9);
        let mut blocked = ClusteredSchedule::new(20, 4, 0.3, 9);
        let expected: Vec<(usize, usize)> = (0..3000).map(|_| scalar.next_pair()).collect();
        let mut got = Vec::new();
        while got.len() < 3000 {
            let block = blocked.sample_block(3000 - got.len()).to_vec();
            got.extend(block.iter().map(|&(i, j)| (i as usize, j as usize)));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn round_robin_enumerates_every_ordered_pair_once_per_cycle() {
        let n = 7;
        let mut s = RoundRobinSchedule::new(n);
        let mut seen = HashSet::new();
        for _ in 0..n * (n - 1) {
            assert!(seen.insert(s.next_pair()), "pair repeated within a cycle");
        }
        assert_eq!(seen.len(), n * (n - 1));
        // The next cycle repeats the same set.
        for _ in 0..n * (n - 1) {
            assert!(!seen.insert(s.next_pair()));
        }
    }

    #[test]
    fn round_robin_blocks_match_scalar() {
        let mut scalar = RoundRobinSchedule::new(9);
        let mut blocked = RoundRobinSchedule::new(9);
        let expected: Vec<(usize, usize)> = (0..500).map(|_| scalar.next_pair()).collect();
        let mut got = Vec::new();
        while got.len() < 500 {
            let block = blocked.sample_block(500 - got.len()).to_vec();
            got.extend(block.iter().map(|&(i, j)| (i as usize, j as usize)));
        }
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "hot set must be within")]
    fn biased_rejects_empty_hot_set() {
        let _ = BiasedSchedule::new(8, 0, 0.5, 0);
    }
}
