//! The synthetic coin (Section V of the paper, after Alistarh et al.).
//!
//! Population protocols have no internal randomness; the paper derives
//! random bits from the scheduler: every agent keeps a bit `coin(v)` that
//! is *toggled on each activation as responder*. After a warm-up of
//! `O(n log log n)` interactions the bits are nearly balanced across the
//! population — Lemma 28: for `t ≥ n·log(4 log n)/2`, the number of zero
//! coins lies in `(1 ± 1/(4 log n))·n/2` with probability `≥ 1 − n^{-γ}`.
//!
//! [`CoinPopulation`] isolates this mechanism so the balance claim can be
//! validated independently of the ranking machinery (experiment E9).

use crate::protocol::Protocol;

/// An agent holding only a synthetic coin bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoinState {
    /// The coin bit; `true` is "heads" (the paper's `coin = 1`).
    pub heads: bool,
}

/// Protocol in which the responder's coin flips on every interaction,
/// exactly as in Protocol 3 lines 9–10 of the paper.
#[derive(Debug, Clone)]
pub struct CoinPopulation {
    n: usize,
}

impl CoinPopulation {
    /// Create a coin population of size `n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    /// Adversarial initial configuration: all coins showing tails (the
    /// worst case for balance).
    pub fn all_tails(&self) -> Vec<CoinState> {
        vec![CoinState { heads: false }; self.n]
    }

    /// Number of agents currently showing heads.
    pub fn heads_count(states: &[CoinState]) -> usize {
        states.iter().filter(|s| s.heads).count()
    }

    /// Absolute imbalance `| #heads − #tails |`.
    pub fn imbalance(states: &[CoinState]) -> usize {
        let h = Self::heads_count(states);
        let t = states.len() - h;
        h.abs_diff(t)
    }
}

impl Protocol for CoinPopulation {
    type State = CoinState;

    fn n(&self) -> usize {
        self.n
    }

    fn transition(&self, _u: &mut CoinState, v: &mut CoinState) -> bool {
        v.heads = !v.heads;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    #[test]
    fn coin_balances_after_warmup() {
        // Lemma 28 empirically: n = 512, all tails initially. After
        // n·log(4·log n)/2 ≈ 1400 interactions the imbalance should be
        // within n/(2·log n)·... — we assert the (loose) paper bound
        // n/(4·log2 n)·2 = n/(2·log2 n) on the deviation from n/2.
        let n = 512usize;
        let protocol = CoinPopulation::new(n);
        let mut ok = 0;
        let trials = 20;
        for seed in 0..trials {
            let mut sim = Simulator::new(protocol.clone(), protocol.all_tails(), seed);
            sim.run(4 * n as u64);
            let heads = CoinPopulation::heads_count(sim.states());
            let log2n = (n as f64).log2();
            let slack = (n as f64) / (4.0 * log2n) * (n as f64 / 2.0) / (n as f64 / 2.0);
            let lo = n as f64 / 2.0 - slack * 2.0;
            let hi = n as f64 / 2.0 + slack * 2.0;
            if (heads as f64) >= lo && (heads as f64) <= hi {
                ok += 1;
            }
        }
        assert!(
            ok >= trials - 2,
            "coin failed to balance in {} of {trials} trials",
            trials - ok
        );
    }

    #[test]
    fn imbalance_parity_is_preserved_per_step() {
        // Each step flips exactly one coin, so the heads count changes by
        // exactly 1 each interaction.
        let protocol = CoinPopulation::new(16);
        let mut sim = Simulator::new(protocol, CoinPopulation::new(16).all_tails(), 1);
        let mut last = CoinPopulation::heads_count(sim.states());
        for _ in 0..100 {
            sim.step();
            let now = CoinPopulation::heads_count(sim.states());
            assert_eq!(now.abs_diff(last), 1);
            last = now;
        }
    }

    #[test]
    fn imbalance_helper_counts_correctly() {
        let states = [
            CoinState { heads: true },
            CoinState { heads: true },
            CoinState { heads: false },
            CoinState { heads: true },
        ];
        assert_eq!(CoinPopulation::heads_count(&states), 3);
        assert_eq!(CoinPopulation::imbalance(&states), 2);
    }
}
