//! One-way epidemic among a subset of agents.
//!
//! The paper's broadcasts (phase advancement, reset propagation, "start
//! ranking") are one-way epidemics restricted to a subpopulation: only `m`
//! of the `n` agents participate, the rest are inert bystanders who still
//! consume interactions. Lemma 14 bounds the completion time `OWE(n, m)`:
//!
//! > `Pr[X > 3n²/m · (log m + 2γ log n)] ≤ 2n^{-γ}`.
//!
//! [`Epidemic`] models exactly this: `Member` agents adopt infection from
//! infected members (initiator → responder *or* responder → initiator does
//! not matter for a one-way epidemic; we use the paper's convention that
//! information flows from either side of the pair to the other only one
//! way, here initiator → responder).

use crate::protocol::Protocol;

/// Agent state for the subset epidemic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EpidemicState {
    /// Not part of the broadcasting subpopulation.
    Bystander,
    /// Participating, not yet informed.
    Susceptible,
    /// Participating and informed.
    Infected,
}

/// One-way epidemic protocol over a population of `n` agents.
#[derive(Debug, Clone)]
pub struct Epidemic {
    n: usize,
}

impl Epidemic {
    /// Create an epidemic protocol for population size `n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }

    /// Initial configuration: agents `0..m` participate, agent `0` is the
    /// initially infected one, everyone else is a bystander.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m <= n`.
    pub fn initial(&self, m: usize) -> Vec<EpidemicState> {
        assert!(m >= 1 && m <= self.n, "need 1 <= m <= n");
        (0..self.n)
            .map(|i| {
                if i == 0 {
                    EpidemicState::Infected
                } else if i < m {
                    EpidemicState::Susceptible
                } else {
                    EpidemicState::Bystander
                }
            })
            .collect()
    }

    /// True when all members are informed.
    pub fn complete(states: &[EpidemicState]) -> bool {
        !states.contains(&EpidemicState::Susceptible)
    }

    /// Number of infected members.
    pub fn infected_count(states: &[EpidemicState]) -> usize {
        states
            .iter()
            .filter(|s| **s == EpidemicState::Infected)
            .count()
    }
}

impl Protocol for Epidemic {
    type State = EpidemicState;

    fn n(&self) -> usize {
        self.n
    }

    fn transition(&self, u: &mut EpidemicState, v: &mut EpidemicState) -> bool {
        if *u == EpidemicState::Infected && *v == EpidemicState::Susceptible {
            *v = EpidemicState::Infected;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silence::is_silent;
    use crate::{Simulator, StopReason};

    #[test]
    fn epidemic_reaches_all_members() {
        let protocol = Epidemic::new(64);
        let init = protocol.initial(32);
        let mut sim = Simulator::new(protocol, init, 11);
        let stop = sim.run_until(Epidemic::complete, 5_000_000, 64);
        assert!(matches!(stop, StopReason::Converged(_)));
        assert_eq!(Epidemic::infected_count(sim.states()), 32);
    }

    #[test]
    fn bystanders_never_infected() {
        let protocol = Epidemic::new(50);
        let init = protocol.initial(10);
        let mut sim = Simulator::new(protocol, init, 3);
        sim.run(200_000);
        let bystanders = sim
            .states()
            .iter()
            .filter(|s| **s == EpidemicState::Bystander)
            .count();
        assert_eq!(bystanders, 40);
    }

    #[test]
    fn complete_epidemic_is_silent() {
        let protocol = Epidemic::new(20);
        let init = protocol.initial(20);
        let mut sim = Simulator::new(protocol, init, 5);
        sim.run_until(Epidemic::complete, 1_000_000, 20);
        assert!(is_silent(sim.protocol(), sim.states()));
    }

    #[test]
    fn infection_is_monotone() {
        let protocol = Epidemic::new(30);
        let init = protocol.initial(30);
        let mut sim = Simulator::new(protocol, init, 9);
        let mut last = 1;
        for _ in 0..200 {
            sim.run(25);
            let now = Epidemic::infected_count(sim.states());
            assert!(now >= last, "infection count decreased: {last} -> {now}");
            last = now;
        }
    }

    #[test]
    #[should_panic(expected = "1 <= m <= n")]
    fn rejects_zero_members() {
        let _ = Epidemic::new(5).initial(0);
    }

    #[test]
    fn single_member_is_complete_at_start() {
        let protocol = Epidemic::new(5);
        let init = protocol.initial(1);
        assert!(Epidemic::complete(&init));
    }
}
