//! Reference primitives used throughout the paper's analysis.
//!
//! These are small, self-contained population protocols that the ranking
//! protocols rely on implicitly (one-way epidemics for broadcasts, the
//! synthetic coin for randomized decisions). Implementing them standalone
//! lets the test suite and the benchmark harness validate the substrate
//! against the paper's Lemma 14 (epidemic tail bound) and Lemma 28 (coin
//! balance) in isolation.

pub mod coin;
pub mod epidemic;

pub use coin::{CoinPopulation, CoinState};
pub use epidemic::{Epidemic, EpidemicState};
