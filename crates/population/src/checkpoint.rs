//! The checkpoint/restore seam: word-level state serialization
//! ([`WordState`]), portable run position capture ([`Frame`]), fault-hook
//! state export ([`HookState`]), and the [`Checkpointer`] driver hook.
//!
//! Like the [`Probe`](crate::Probe) seam, checkpointing is **zero-cost
//! when off**: the `run_checkpointed` / `run_faulted_checkpointed` paths
//! gate on [`Checkpointer::ACTIVE`] and delegate to the plain run loops
//! for [`NullCheckpointer`], so the un-checkpointed hot path is the
//! identical machine code, not a loop of no-op saves.
//!
//! The seam deliberately knows nothing about files, formats, or
//! checksums — a [`Checkpointer`] receives a [`Frame`] (interaction
//! count, packed state words, scheduler cursors) plus an optional
//! [`FaultState`] and does whatever durability means to it. The
//! `snapshot` crate's sink is the canonical implementation: versioned
//! CRC-checked files in a rotation directory. Keeping the seam here (the
//! bottom of the crate graph) is what lets `Simulator`,
//! `ShardedSimulator`, and the `scenarios` drivers all thread through it
//! without a dependency cycle.
//!
//! The keystone property the seam exists to uphold: **a run restored
//! from a frame at interaction count `t` continues bit-for-bit
//! identically to the run that produced the frame.** Every piece of
//! trajectory-determining state is either in the frame (configuration
//! words, scheduler RNG + pending pairs) or in the fault state (plan
//! RNG, per-entry next-fire times); nothing is hidden.

use crate::protocol::Protocol;
use crate::schedule::ScheduleCursor;

/// Protocols whose per-agent state round-trips through a `u64` word —
/// the state-serialization half of the checkpoint seam.
///
/// Encoding is infallible (every in-memory state has a word form);
/// decoding is **fallible and validating**, because snapshot words come
/// from disk: [`state_from_word`](WordState::state_from_word) must
/// reject any word that is not the exact encoding of a state in the
/// protocol's state space for its parameters, rather than panic or
/// silently accept garbage. This is the paper's *silence* dividend made
/// concrete — the state space is a closed, locally checkable predicate,
/// so restored state can be validated, not just trusted.
///
/// All three StableRanking execution shapes (enum, packed-scalar,
/// kernel) implement this against the same packed codec, which is what
/// makes their snapshots interchangeable: a snapshot written by a kernel
/// run restores into an enum run and vice versa.
pub trait WordState: Protocol {
    /// Encode one agent state as a word.
    fn state_to_word(&self, state: &Self::State) -> u64;

    /// Decode and validate one word. Returns a description of the
    /// defect (for error reporting) if the word is not the exact
    /// encoding of a valid state for this protocol's parameters.
    fn state_from_word(&self, word: u64) -> Result<Self::State, String>;
}

/// Packed runs serialize through the inner protocol's codec: encoding
/// unpacks the word to the structured state and re-encodes it (a no-op
/// composition for a lossless codec, paid only at checkpoint
/// boundaries), and decoding validates through the inner protocol
/// before re-packing — so the packed path gets the same
/// reject-garbage-words guarantee as the structured one.
impl<P> WordState for crate::Packed<P>
where
    P: crate::BatchedProtocol + WordState,
{
    fn state_to_word(&self, state: &P::Packed) -> u64 {
        self.inner().state_to_word(&self.inner().unpack(*state))
    }

    fn state_from_word(&self, word: u64) -> Result<P::Packed, String> {
        self.inner()
            .state_from_word(word)
            .map(|s| self.inner().pack(&s))
    }
}

/// The scalar-reference twin serializes exactly like the protocol it
/// wraps — snapshots are execution-shape-agnostic.
impl<P: WordState> WordState for crate::ScalarBlock<P> {
    fn state_to_word(&self, state: &P::State) -> u64 {
        self.0.state_to_word(state)
    }

    fn state_from_word(&self, word: u64) -> Result<P::State, String> {
        self.0.state_from_word(word)
    }
}

/// A portable capture of a run's position: everything the engine itself
/// contributes to the trajectory.
///
/// `cursors` has one entry per shard (exactly one for the sequential
/// [`Simulator`](crate::Simulator)). Fault-plan state travels separately
/// (see [`FaultState`]) because the hook is owned by the caller, not the
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Interactions executed when the frame was captured.
    pub interactions: u64,
    /// Number of shards (1 for the sequential engine). Recorded because
    /// the sharded trajectory is a function of (seed, shards).
    pub shards: u32,
    /// Pairs per block of the capturing engine. Recorded for
    /// provenance: the *sharded* trajectory also depends on block
    /// structure, so a resumed sharded run must keep it.
    pub block_pairs: u64,
    /// The configuration, one encoded word per agent.
    pub words: Vec<u64>,
    /// Scheduler position, one cursor per shard.
    pub cursors: Vec<ScheduleCursor>,
}

/// Serialized fault-hook state: the plan RNG, per-entry next-fire
/// times, and the fired log — everything a `FaultPlan` needs to resume
/// mid-plan without replaying its draw history.
///
/// Fired-fault names are owned `String`s here (the plan's log holds
/// `&'static str`); import re-interns them against the reconstructed
/// plan's entry names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultState {
    /// Raw xoshiro256++ state words of the plan's RNG.
    pub rng: [u64; 4],
    /// Per-entry next-fire time, in entry order; `None` for exhausted
    /// entries.
    pub next: Vec<Option<u64>>,
    /// The fired log: `(interaction count, fault name)` per firing.
    pub fired: Vec<(u64, String)>,
}

/// Fault hooks whose trajectory-determining state can be exported into
/// a [`FaultState`] and restored — the fault half of the checkpoint
/// seam. [`NoFaults`](crate::NoFaults) exports nothing;
/// `scenarios::FaultPlan` is the canonical stateful implementation, and
/// [`UnpackedHook`](crate::UnpackedHook) delegates to its inner hook.
pub trait HookState {
    /// Capture the hook's state, or `None` if the hook is stateless.
    fn export_state(&self) -> Option<FaultState>;

    /// Restore a previously exported state into this hook. The hook
    /// must already be *structurally* identical to the one that
    /// exported (same entries in the same order — reconstructed from
    /// the same experiment parameters); this call restores only the
    /// dynamic position. Returns a description of the mismatch on
    /// structural disagreement.
    fn import_state(&mut self, state: &FaultState) -> Result<(), String>;
}

impl HookState for crate::NoFaults {
    fn export_state(&self) -> Option<FaultState> {
        None
    }

    fn import_state(&mut self, state: &FaultState) -> Result<(), String> {
        if state.next.is_empty() && state.fired.is_empty() {
            Ok(())
        } else {
            Err("cannot import fault state into NoFaults".into())
        }
    }
}

impl<H: HookState> HookState for crate::UnpackedHook<H> {
    fn export_state(&self) -> Option<FaultState> {
        self.inner().export_state()
    }

    fn import_state(&mut self, state: &FaultState) -> Result<(), String> {
        self.inner_mut().import_state(state)
    }
}

/// The driver hook of the checkpoint seam: decides *when* to save
/// (interaction-count cadence, like [`FaultHook`](crate::FaultHook)'s
/// `next_fire`) and *what saving means* (the `snapshot` crate writes
/// rotation files; tests capture frames in memory).
///
/// Like `FaultHook::fire`, [`save`](Checkpointer::save) **must
/// advance**: after a save at `t`, `next_due(t)` must return a time
/// strictly greater than `t` (or `None`), or the engine would loop
/// forever. Saves never mutate the run — checkpointed execution is
/// trajectory-inert on the *sequential* paths (the pair stream is FIFO,
/// so splitting bursts at save points changes nothing). The *sharded*
/// trajectory depends on burst structure, so there a checkpointed run
/// is its own deterministic trajectory: reproducible given the same
/// cadence, compared against a checkpointed-but-uninterrupted twin.
pub trait Checkpointer {
    /// `false` for [`NullCheckpointer`]: the checkpointed run paths
    /// delegate to the plain loops before entering their own, so the
    /// disabled seam costs nothing.
    const ACTIVE: bool;

    /// The earliest interaction count at (or after) `now` where the
    /// checkpointer wants a save, or `None` if it never will again.
    fn next_due(&mut self, now: u64) -> Option<u64>;

    /// Persist a frame (and the fault-hook state, if the run has one).
    fn save(&mut self, frame: &Frame, fault: Option<&FaultState>);
}

/// The inactive checkpointer: `run_checkpointed` with this type *is*
/// `run_batched` — the delegation happens before the checkpointed loop,
/// so the hot path is untouched machine code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCheckpointer;

impl Checkpointer for NullCheckpointer {
    const ACTIVE: bool = false;

    fn next_due(&mut self, _now: u64) -> Option<u64> {
        None
    }

    fn save(&mut self, _frame: &Frame, _fault: Option<&FaultState>) {}
}

/// An interaction-count save cadence: due at every positive multiple of
/// `every`. The standard [`Checkpointer`] scheduling policy — the
/// `snapshot` crate's sink embeds one; tests use it directly.
///
/// After a resume at interaction count `t`, [`Cadence::resumed`] aligns
/// the next due time to the first multiple of `every` strictly after
/// `t`, so a resumed run saves at the same grid points the uninterrupted
/// run would have.
#[derive(Debug, Clone, Copy)]
pub struct Cadence {
    every: u64,
    next: u64,
}

impl Cadence {
    /// A cadence due at `every`, `2·every`, `3·every`, ….
    ///
    /// # Panics
    ///
    /// Panics if `every == 0` (the save loop could never advance).
    pub fn every(every: u64) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        Self { every, next: every }
    }

    /// A cadence resuming at interaction count `now`: next due at the
    /// first multiple of `every` strictly after `now`.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn resumed(every: u64, now: u64) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        Self {
            every,
            next: (now / every + 1) * every,
        }
    }

    /// The next due time at (or after) `now`.
    pub fn next_due(&self, now: u64) -> u64 {
        self.next.max(now)
    }

    /// Record a completed save at `at`, advancing past it.
    pub fn advance(&mut self, at: u64) {
        self.next = (at / self.every + 1) * self.every;
    }
}

/// An in-memory [`Checkpointer`] that captures every frame it is handed
/// — the reference implementation used by the resume property tests
/// (and a worked example of the seam's contract).
#[derive(Debug)]
pub struct MemoryCheckpointer {
    cadence: Cadence,
    /// Every captured frame with its fault state, in save order.
    pub saved: Vec<(Frame, Option<FaultState>)>,
}

impl MemoryCheckpointer {
    /// Capture a frame every `every` interactions.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn every(every: u64) -> Self {
        Self {
            cadence: Cadence::every(every),
            saved: Vec::new(),
        }
    }
}

impl Checkpointer for MemoryCheckpointer {
    const ACTIVE: bool = true;

    fn next_due(&mut self, now: u64) -> Option<u64> {
        Some(self.cadence.next_due(now))
    }

    fn save(&mut self, frame: &Frame, fault: Option<&FaultState>) {
        self.cadence.advance(frame.interactions);
        self.saved.push((frame.clone(), fault.cloned()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_fires_on_the_grid() {
        let mut c = Cadence::every(100);
        assert_eq!(c.next_due(0), 100);
        assert_eq!(c.next_due(100), 100);
        c.advance(100);
        assert_eq!(c.next_due(100), 200);
        // A save past several grid points advances beyond all of them.
        c.advance(450);
        assert_eq!(c.next_due(450), 500);
    }

    #[test]
    fn resumed_cadence_realigns_to_the_grid() {
        // Resume at t = 250 with every = 100: next save at 300, exactly
        // where the uninterrupted run would have saved.
        let c = Cadence::resumed(100, 250);
        assert_eq!(c.next_due(250), 300);
        // Resume exactly on a grid point: next is the *following* one.
        let c = Cadence::resumed(100, 300);
        assert_eq!(c.next_due(300), 400);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cadence_rejected() {
        let _ = Cadence::every(0);
    }

    #[test]
    fn null_checkpointer_is_inactive_and_never_due() {
        const { assert!(!NullCheckpointer::ACTIVE) };
        assert_eq!(NullCheckpointer.next_due(0), None);
    }

    #[test]
    fn no_faults_exports_nothing_and_rejects_foreign_state() {
        let mut hook = crate::NoFaults;
        assert_eq!(hook.export_state(), None);
        assert!(hook.import_state(&FaultState::default()).is_ok());
        let foreign = FaultState {
            rng: [1, 2, 3, 4],
            next: vec![Some(10)],
            fired: Vec::new(),
        };
        assert!(hook.import_state(&foreign).is_err());
    }
}
