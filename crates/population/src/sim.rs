use crate::checkpoint::{Checkpointer, Frame, HookState, WordState};
use crate::observe::{Convergence, Observer, Sampler};
use crate::pairs::pair_mut;
use crate::probe::Probe;
use crate::protocol::{BatchedProtocol, Packed, Protocol};
use crate::schedule::{CursorSource, PairSource, Schedule, BLOCK_PAIRS};

/// Why a bounded run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// An observer requested a stop; the payload is the number of
    /// interactions executed at the checkpoint where it did. Because
    /// observers are polled every `check_every` interactions, the
    /// reported time overshoots the true hitting time by less than
    /// `check_every`.
    Converged(u64),
    /// The interaction budget was exhausted without an observer stop.
    BudgetExhausted,
}

impl StopReason {
    /// The convergence time, if the run converged.
    pub fn converged_at(self) -> Option<u64> {
        match self {
            StopReason::Converged(t) => Some(t),
            StopReason::BudgetExhausted => None,
        }
    }
}

/// A hook for injecting faults into a run at exact interaction counts.
///
/// The engine itself knows nothing about fault semantics; it only agrees
/// to (a) ask the hook where it next wants control and (b) hand it
/// mutable access to the configuration when the run reaches that point.
/// The `scenarios` crate's `FaultPlan` is the canonical implementation;
/// an empty plan leaves [`Simulator::run_faulted`] bit-for-bit
/// trajectory-equivalent to [`Simulator::run_batched`] (faults only ever
/// mutate states, never the pair stream).
pub trait FaultHook<P: Protocol> {
    /// The earliest interaction count at (or after) `now` where the hook
    /// wants to fire, or `None` if it never will again. The engine stops
    /// the batched loop exactly there.
    fn next_fire(&mut self, now: u64) -> Option<u64>;

    /// Fire at interaction count `t` (i.e. after `t` interactions have
    /// executed), mutating the configuration in place.
    ///
    /// Implementations **must advance** past `t`: a subsequent
    /// [`next_fire`](FaultHook::next_fire)`(t)` must return a time
    /// strictly greater than `t` (or `None`), otherwise the engine would
    /// loop forever at one interaction count.
    fn fire(&mut self, protocol: &P, t: u64, states: &mut [P::State]);
}

/// The trivial hook: never fires. `run_faulted` with this hook is
/// exactly `run_batched`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl<P: Protocol> FaultHook<P> for NoFaults {
    fn next_fire(&mut self, _now: u64) -> Option<u64> {
        None
    }

    fn fire(&mut self, _protocol: &P, _t: u64, _states: &mut [P::State]) {}
}

/// Adapts a [`FaultHook`] written against a protocol's structured
/// states to a run over the [`Packed`] words: the configuration is
/// unpacked at the fault boundary, handed to the inner hook, and
/// re-packed.
///
/// This is the fault-injection end of the packed-representation
/// contract — the hot loop stays on flat words, and the (rare) fault
/// firings pay the codec cost. Because the inner hook sees exactly the
/// states it would see in an unpacked run (and its own RNG is
/// untouched), a packed faulted run is trajectory-equivalent to the
/// unpacked one under the same seeds.
#[derive(Debug)]
pub struct UnpackedHook<H> {
    inner: H,
}

impl<H> UnpackedHook<H> {
    /// Wrap a structured-state hook for a packed run.
    pub fn new(inner: H) -> Self {
        Self { inner }
    }

    /// The wrapped hook (e.g. to read a `FaultPlan`'s firing log).
    pub fn inner(&self) -> &H {
        &self.inner
    }

    /// Mutable access to the wrapped hook (e.g. to restore a
    /// `FaultPlan`'s checkpointed state).
    pub fn inner_mut(&mut self) -> &mut H {
        &mut self.inner
    }

    /// Consume the adapter, returning the wrapped hook.
    pub fn into_inner(self) -> H {
        self.inner
    }
}

impl<P: BatchedProtocol, H: FaultHook<P>> FaultHook<Packed<P>> for UnpackedHook<H> {
    fn next_fire(&mut self, now: u64) -> Option<u64> {
        self.inner.next_fire(now)
    }

    fn fire(&mut self, protocol: &Packed<P>, t: u64, words: &mut [P::Packed]) {
        let mut states: Vec<P::State> = words.iter().map(|&w| protocol.inner().unpack(w)).collect();
        self.inner.fire(protocol.inner(), t, &mut states);
        for (w, s) in words.iter_mut().zip(&states) {
            *w = protocol.inner().pack(s);
        }
    }
}

/// The same adaptation for the scalar-reference twin
/// ([`ScalarBlock`](crate::ScalarBlock)`<`[`Packed`]`<P>>`), so the
/// kernel differential tests can run identical fault plans against both
/// block paths.
impl<P: BatchedProtocol, H: FaultHook<P>> FaultHook<crate::ScalarBlock<Packed<P>>>
    for UnpackedHook<H>
{
    fn next_fire(&mut self, now: u64) -> Option<u64> {
        self.inner.next_fire(now)
    }

    fn fire(&mut self, protocol: &crate::ScalarBlock<Packed<P>>, t: u64, words: &mut [P::Packed]) {
        FaultHook::<Packed<P>>::fire(self, &protocol.0, t, words);
    }
}

/// A seeded, deterministic executor for a [`Protocol`].
///
/// Pair selection lives in a [`PairSource`] — by default a [`Schedule`]
/// (the paper's *uniform scheduler*), but any implementation can be
/// plugged in via [`with_source`](Simulator::with_source) (the
/// `scenarios` crate provides biased, clustered, and round-robin
/// adversarial sources). The simulator applies the protocol's transition
/// function to each scheduled pair. Two execution paths share the same
/// pair stream:
///
/// * [`step`](Simulator::step) — one interaction at a time;
/// * [`run_batched`](Simulator::run_batched) — the hot path: pairs are
///   pre-sampled in blocks and applied in a tight loop. **Bit-for-bit
///   trajectory-equivalent** to scalar stepping under the same seed.
///
/// Observation happens through the [`Observer`] pipeline via
/// [`run_observed`](Simulator::run_observed), with
/// [`run_until`](Simulator::run_until) and
/// [`run_sampled`](Simulator::run_sampled) as sugar for the two most
/// common observers.
///
/// ```
/// use population::{Protocol, Simulator};
///
/// struct Max;
/// impl Protocol for Max {
///     type State = u32;
///     fn n(&self) -> usize {
///         8
///     }
///     fn transition(&self, u: &mut u32, v: &mut u32) -> bool {
///         let m = (*u).max(*v);
///         let changed = *u != m || *v != m;
///         *u = m;
///         *v = m;
///         changed
///     }
/// }
///
/// let mut sim = Simulator::new(Max, (0..8).collect(), 1);
/// sim.run(10_000);
/// assert!(sim.states().iter().all(|&s| s == 7));
/// ```
#[derive(Debug)]
pub struct Simulator<P: Protocol, S: PairSource = Schedule> {
    protocol: P,
    states: Vec<P::State>,
    schedule: S,
    interactions: u64,
}

impl<P: Protocol> Simulator<P> {
    /// Create a simulator over `initial` states whose schedule is the
    /// uniform scheduler, deterministically seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != protocol.n()` or the population has
    /// fewer than two agents (no pair can interact).
    pub fn new(protocol: P, initial: Vec<P::State>, seed: u64) -> Self {
        let schedule = Schedule::new(initial.len().max(2), seed);
        Self::with_source(protocol, initial, schedule)
    }
}

impl<P: Protocol, S: PairSource> Simulator<P, S> {
    /// Create a simulator over `initial` states driven by an arbitrary
    /// [`PairSource`] — the entry point for running a protocol off the
    /// uniform-scheduler assumption (see the `scenarios` crate).
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != protocol.n()`, if the population has
    /// fewer than two agents, or if `source.n()` disagrees with the
    /// population size.
    pub fn with_source(protocol: P, initial: Vec<P::State>, source: S) -> Self {
        assert_eq!(
            initial.len(),
            protocol.n(),
            "initial configuration size must match protocol.n()"
        );
        assert!(initial.len() >= 2, "population needs at least two agents");
        assert_eq!(
            source.n(),
            initial.len(),
            "pair source population size must match the configuration"
        );
        Self {
            protocol,
            states: initial,
            schedule: source,
            interactions: 0,
        }
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Current configuration.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Number of interactions executed so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Execute one interaction; returns `true` iff a state changed.
    pub fn step(&mut self) -> bool {
        let (i, j) = self.schedule.next_pair();
        self.interactions += 1;
        let (u, v) = pair_mut(&mut self.states, i, j);
        self.protocol.transition(u, v)
    }

    /// Execute exactly `count` interactions through the batched hot
    /// path. Trajectory-equivalent to calling [`step`](Simulator::step)
    /// `count` times (same seed ⇒ same pairs ⇒ same configuration), but
    /// substantially faster: pairs are pre-sampled in blocks of
    /// [`BLOCK_PAIRS`], amortizing scheduler overhead, and each block is
    /// handed whole to
    /// [`Protocol::transition_block`](Protocol::transition_block). For
    /// plain protocols that is the copy-free scalar loop (split-borrow
    /// via [`pair_mut`], no per-pair clones); packed protocols with a
    /// [`BatchedProtocol`](crate::BatchedProtocol) kernel (e.g.
    /// `StableRanking`) execute the block through their
    /// gather/classify/lane kernel instead — same trajectory bit for
    /// bit. Null interactions dirty no cache lines on either path
    /// (kernels skip the write-back of unchanged words); this is why
    /// the `changed` flag's "no false negatives" contract exists.
    pub fn run_batched(&mut self, count: u64) {
        let mut remaining = count;
        while remaining > 0 {
            let want = remaining.min(BLOCK_PAIRS as u64) as usize;
            let block = self.schedule.sample_block(want);
            self.protocol.transition_block(&mut self.states, block);
            let executed = block.len() as u64;
            self.interactions += executed;
            remaining -= executed;
        }
    }

    /// Execute exactly `count` interactions (batched).
    pub fn run(&mut self, count: u64) {
        self.run_batched(count);
    }

    /// [`run_batched`](Simulator::run_batched) with an instrumentation
    /// [`Probe`] invoked after every executed block.
    ///
    /// Trajectory-inert: probes only ever see `&`-references, so the
    /// final configuration and interaction count are bit-for-bit those
    /// of `run_batched` under the same seed, whatever the probe records.
    /// For an inactive probe ([`Probe::ACTIVE`]` == false`, e.g.
    /// [`NullProbe`](crate::NullProbe)) this method *delegates* to
    /// `run_batched` before entering the loop — the untraced path is the
    /// identical machine code, not an instrumented loop of no-ops.
    pub fn run_probed<B: Probe<P>>(&mut self, count: u64, probe: &mut B) {
        if !B::ACTIVE {
            return self.run_batched(count);
        }
        let mut remaining = count;
        while remaining > 0 {
            let want = remaining.min(BLOCK_PAIRS as u64) as usize;
            let block = self.schedule.sample_block(want);
            let changed = self.protocol.transition_block(&mut self.states, block);
            let executed = block.len() as u64;
            self.interactions += executed;
            remaining -= executed;
            probe.block(
                &self.protocol,
                self.interactions,
                changed,
                0,
                0,
                &self.states,
            );
        }
    }

    /// Drive the simulation under an [`Observer`]: the observer is
    /// polled once before the first step and then every `check_every`
    /// interactions, until it stops the run or `max_interactions` have
    /// been executed.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_observed<O: Observer<P>>(
        &mut self,
        max_interactions: u64,
        check_every: u64,
        observer: &mut O,
    ) -> StopReason {
        assert!(check_every > 0, "check_every must be positive");
        if observer
            .observe(&self.protocol, self.interactions, &self.states)
            .is_stop()
        {
            return StopReason::Converged(self.interactions);
        }
        let deadline = self.interactions + max_interactions;
        while self.interactions < deadline {
            let burst = check_every.min(deadline - self.interactions);
            self.run_batched(burst);
            if observer
                .observe(&self.protocol, self.interactions, &self.states)
                .is_stop()
            {
                return StopReason::Converged(self.interactions);
            }
        }
        StopReason::BudgetExhausted
    }

    /// [`run_observed`](Simulator::run_observed) with an
    /// instrumentation [`Probe`]: bursts run through
    /// [`run_probed`](Simulator::run_probed), and the probe's
    /// [`checkpoint`](Probe::checkpoint) hook fires at every observer
    /// poll (with `stopping` reporting the observer's verdict).
    /// Delegates to `run_observed` for inactive probes; trajectory-inert
    /// otherwise, exactly like `run_probed`.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_observed_probed<O: Observer<P>, B: Probe<P>>(
        &mut self,
        max_interactions: u64,
        check_every: u64,
        observer: &mut O,
        probe: &mut B,
    ) -> StopReason {
        if !B::ACTIVE {
            return self.run_observed(max_interactions, check_every, observer);
        }
        assert!(check_every > 0, "check_every must be positive");
        let stop = observer
            .observe(&self.protocol, self.interactions, &self.states)
            .is_stop();
        probe.checkpoint(&self.protocol, self.interactions, stop);
        if stop {
            return StopReason::Converged(self.interactions);
        }
        let deadline = self.interactions + max_interactions;
        while self.interactions < deadline {
            let burst = check_every.min(deadline - self.interactions);
            self.run_probed(burst, probe);
            let stop = observer
                .observe(&self.protocol, self.interactions, &self.states)
                .is_stop();
            probe.checkpoint(&self.protocol, self.interactions, stop);
            if stop {
                return StopReason::Converged(self.interactions);
            }
        }
        StopReason::BudgetExhausted
    }

    /// Run until `converged` returns true (polled every `check_every`
    /// interactions, and once before the first step) or until
    /// `max_interactions` have been executed. Sugar for
    /// [`run_observed`](Simulator::run_observed) with a
    /// [`Convergence`] observer.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_until(
        &mut self,
        converged: impl FnMut(&[P::State]) -> bool,
        max_interactions: u64,
        check_every: u64,
    ) -> StopReason {
        let mut observer = Convergence::new(converged);
        self.run_observed(max_interactions, check_every, &mut observer)
    }

    /// Run `max_interactions` interactions, invoking `observe` on the
    /// configuration every `sample_every` interactions (and once at the
    /// start). Sugar for [`run_observed`](Simulator::run_observed) with
    /// a [`Sampler`] observer.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn run_sampled(
        &mut self,
        max_interactions: u64,
        sample_every: u64,
        observe: impl FnMut(u64, &[P::State]),
    ) {
        let mut observer = Sampler::new(observe);
        let stop = self.run_observed(max_interactions, sample_every, &mut observer);
        debug_assert_eq!(stop, StopReason::BudgetExhausted, "samplers never stop");
    }

    /// Execute exactly `count` interactions (batched), handing control
    /// to `hook` at every interaction count where it asks to fire.
    ///
    /// The batched loop is split *exactly* at fire points, so faults are
    /// injected at precise interaction counts — a fault scheduled at `t`
    /// sees the configuration after exactly `t` interactions. Because
    /// the pair stream is FIFO regardless of batch decomposition, and
    /// hooks only mutate states, `run_faulted` with a hook that never
    /// fires is **bit-for-bit trajectory-equivalent** to
    /// [`run_batched`](Simulator::run_batched) (property-tested in
    /// `tests/fault_recovery.rs`).
    ///
    /// Hooks due at the moment this method is entered fire before any
    /// interaction executes; hooks due exactly at the end of the run
    /// fire before it returns.
    pub fn run_faulted<H: FaultHook<P>>(&mut self, count: u64, hook: &mut H) {
        let deadline = self.interactions + count;
        loop {
            // Fire everything due at the current interaction count. The
            // hook contract (fire advances past `t`) makes this loop
            // finite.
            while hook
                .next_fire(self.interactions)
                .is_some_and(|t| t <= self.interactions)
            {
                hook.fire(&self.protocol, self.interactions, &mut self.states);
            }
            if self.interactions >= deadline {
                return;
            }
            let stop = match hook.next_fire(self.interactions) {
                Some(t) if t < deadline => t,
                _ => deadline,
            };
            self.run_batched(stop - self.interactions);
        }
    }

    /// [`run_faulted`](Simulator::run_faulted) with an instrumentation
    /// [`Probe`]: bursts run through
    /// [`run_probed`](Simulator::run_probed), and the probe's
    /// [`fault`](Probe::fault) hook fires after every hook firing with
    /// the post-mutation configuration. Delegates to `run_faulted` for
    /// inactive probes; trajectory-inert otherwise (the same fire
    /// points, the same pair stream).
    pub fn run_faulted_probed<H: FaultHook<P>, B: Probe<P>>(
        &mut self,
        count: u64,
        hook: &mut H,
        probe: &mut B,
    ) {
        if !B::ACTIVE {
            return self.run_faulted(count, hook);
        }
        let deadline = self.interactions + count;
        loop {
            while hook
                .next_fire(self.interactions)
                .is_some_and(|t| t <= self.interactions)
            {
                hook.fire(&self.protocol, self.interactions, &mut self.states);
                probe.fault(&self.protocol, self.interactions, &self.states);
            }
            if self.interactions >= deadline {
                return;
            }
            let stop = match hook.next_fire(self.interactions) {
                Some(t) if t < deadline => t,
                _ => deadline,
            };
            self.run_probed(stop - self.interactions, probe);
        }
    }

    /// Consume the simulator, returning the final configuration.
    pub fn into_states(self) -> Vec<P::State> {
        self.states
    }

    /// The pair source driving this simulator (e.g. to capture its
    /// cursor for a checkpoint).
    pub fn source(&self) -> &S {
        &self.schedule
    }
}

impl<P: Protocol, S: CursorSource> Simulator<P, S> {
    /// Resume a simulator at a captured position: `states` and `source`
    /// come from a restored [`Frame`], `interactions` is the count at
    /// capture time. The resumed run continues the captured one
    /// **bit for bit** (the FIFO pair stream makes the trajectory
    /// independent of where the run was split).
    ///
    /// # Panics
    ///
    /// Same validity requirements as
    /// [`with_source`](Simulator::with_source).
    pub fn resume(protocol: P, states: Vec<P::State>, source: S, interactions: u64) -> Self {
        let mut sim = Self::with_source(protocol, states, source);
        sim.interactions = interactions;
        sim
    }
}

impl<P: WordState, S: CursorSource> Simulator<P, S> {
    /// Capture the run's position as a [`Frame`]: interaction count,
    /// encoded configuration words, and the scheduler cursor.
    pub fn frame(&self) -> Frame {
        Frame {
            interactions: self.interactions,
            shards: 1,
            block_pairs: BLOCK_PAIRS as u64,
            words: self
                .states
                .iter()
                .map(|s| self.protocol.state_to_word(s))
                .collect(),
            cursors: vec![self.schedule.cursor()],
        }
    }

    /// [`run_batched`](Simulator::run_batched) with periodic state
    /// saves through a [`Checkpointer`]. Sugar for
    /// [`run_faulted_checkpointed`](Simulator::run_faulted_checkpointed)
    /// with [`NoFaults`]; delegates to `run_batched` for an inactive
    /// checkpointer (identical hot path, like the [`Probe`] seam).
    pub fn run_checkpointed<C: Checkpointer>(&mut self, count: u64, ckpt: &mut C) {
        if !C::ACTIVE {
            return self.run_batched(count);
        }
        self.run_faulted_checkpointed(count, &mut NoFaults, ckpt);
    }

    /// [`run_faulted`](Simulator::run_faulted) with periodic state
    /// saves: the batched loop splits at both fault fire points *and*
    /// checkpoint due points, so saves land at exact interaction
    /// counts. At a count where both are due, faults fire **first** —
    /// the saved frame then reflects the post-fault configuration and a
    /// hook already advanced past `t`, so a resume from it replays
    /// nothing. Delegates to `run_faulted` for an inactive
    /// checkpointer.
    ///
    /// Checkpointing is trajectory-inert here: the pair stream is FIFO,
    /// so splitting bursts at save points leaves the sequential
    /// trajectory bit-for-bit unchanged (property-tested in
    /// `tests/snapshot_resume.rs`).
    pub fn run_faulted_checkpointed<H, C>(&mut self, count: u64, hook: &mut H, ckpt: &mut C)
    where
        H: FaultHook<P> + HookState,
        C: Checkpointer,
    {
        if !C::ACTIVE {
            return self.run_faulted(count, hook);
        }
        let deadline = self.interactions + count;
        loop {
            while hook
                .next_fire(self.interactions)
                .is_some_and(|t| t <= self.interactions)
            {
                hook.fire(&self.protocol, self.interactions, &mut self.states);
            }
            while ckpt
                .next_due(self.interactions)
                .is_some_and(|t| t <= self.interactions)
            {
                let frame = self.frame();
                ckpt.save(&frame, hook.export_state().as_ref());
            }
            if self.interactions >= deadline {
                return;
            }
            let next_event = [
                hook.next_fire(self.interactions),
                ckpt.next_due(self.interactions),
            ]
            .into_iter()
            .flatten()
            .min();
            let stop = match next_event {
                Some(t) if t < deadline => t,
                _ => deadline,
            };
            self.run_batched(stop - self.interactions);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts interactions on each side; never changes "converged" flag.
    struct Count;
    impl Protocol for Count {
        type State = (u64, u64);
        fn n(&self) -> usize {
            16
        }
        fn transition(&self, u: &mut Self::State, v: &mut Self::State) -> bool {
            u.0 += 1;
            v.1 += 1;
            true
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mut a = Simulator::new(Count, vec![(0, 0); 16], 42);
        let mut b = Simulator::new(Count, vec![(0, 0); 16], 42);
        a.run(5000);
        b.run(5000);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Simulator::new(Count, vec![(0, 0); 16], 1);
        let mut b = Simulator::new(Count, vec![(0, 0); 16], 2);
        a.run(5000);
        b.run(5000);
        assert_ne!(a.states(), b.states());
    }

    #[test]
    fn batched_equals_scalar_stepping() {
        let mut scalar = Simulator::new(Count, vec![(0, 0); 16], 42);
        let mut batched = Simulator::new(Count, vec![(0, 0); 16], 42);
        for _ in 0..9999 {
            scalar.step();
        }
        batched.run_batched(9999);
        assert_eq!(scalar.states(), batched.states());
        assert_eq!(scalar.interactions(), batched.interactions());
        // And the streams stay aligned afterwards.
        scalar.step();
        batched.step();
        assert_eq!(scalar.states(), batched.states());
    }

    #[test]
    fn mixed_scalar_and_batched_execution_is_equivalent() {
        let mut pure = Simulator::new(Count, vec![(0, 0); 16], 7);
        let mut mixed = Simulator::new(Count, vec![(0, 0); 16], 7);
        pure.run_batched(10_000);
        for _ in 0..123 {
            mixed.step();
        }
        mixed.run_batched(7000);
        for _ in 0..77 {
            mixed.step();
        }
        mixed.run_batched(2800);
        assert_eq!(mixed.interactions(), 10_000);
        assert_eq!(pure.states(), mixed.states());
    }

    #[test]
    fn interaction_counter_advances() {
        let mut sim = Simulator::new(Count, vec![(0, 0); 16], 3);
        sim.run(123);
        assert_eq!(sim.interactions(), 123);
        sim.step();
        assert_eq!(sim.interactions(), 124);
    }

    #[test]
    fn pair_selection_is_roughly_uniform() {
        // Every agent should be initiator and responder about equally often:
        // 60k interactions over 16 agents = 3750 expected per role per agent.
        let mut sim = Simulator::new(Count, vec![(0, 0); 16], 7);
        sim.run(60_000);
        for &(ini, res) in sim.states() {
            assert!(
                (2800..4700).contains(&ini),
                "initiator count {ini} far from expectation 3750"
            );
            assert!(
                (2800..4700).contains(&res),
                "responder count {res} far from expectation 3750"
            );
        }
    }

    #[test]
    fn initiator_totals_match_interactions() {
        let mut sim = Simulator::new(Count, vec![(0, 0); 16], 9);
        sim.run(1000);
        let total: u64 = sim.states().iter().map(|s| s.0).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn run_until_converges_immediately_if_predicate_holds() {
        let mut sim = Simulator::new(Count, vec![(0, 0); 16], 5);
        let stop = sim.run_until(|_| true, 1000, 10);
        assert_eq!(stop, StopReason::Converged(0));
        assert_eq!(sim.interactions(), 0);
    }

    #[test]
    fn run_until_respects_budget() {
        let mut sim = Simulator::new(Count, vec![(0, 0); 16], 5);
        let stop = sim.run_until(|_| false, 250, 100);
        assert_eq!(stop, StopReason::BudgetExhausted);
        assert_eq!(sim.interactions(), 250);
    }

    #[test]
    fn run_until_overshoot_bounded_by_check_every() {
        // Converges when total initiator count reaches 77; polling every 50
        // must report within 50 interactions of the true hitting time.
        let mut sim = Simulator::new(Count, vec![(0, 0); 16], 5);
        let stop = sim.run_until(|s| s.iter().map(|x| x.0).sum::<u64>() >= 77, 10_000, 50);
        let t = stop.converged_at().expect("must converge");
        assert!((77..77 + 50).contains(&t), "t = {t}");
    }

    #[test]
    fn run_sampled_observes_start_and_end() {
        let mut sim = Simulator::new(Count, vec![(0, 0); 16], 5);
        let mut samples = Vec::new();
        sim.run_sampled(200, 60, |t, _| samples.push(t));
        assert_eq!(samples, vec![0, 60, 120, 180, 200]);
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn rejects_tiny_population() {
        struct One;
        impl Protocol for One {
            type State = ();
            fn n(&self) -> usize {
                1
            }
            fn transition(&self, _: &mut (), _: &mut ()) -> bool {
                false
            }
        }
        let _ = Simulator::new(One, vec![()], 0);
    }

    #[test]
    #[should_panic(expected = "must match protocol.n()")]
    fn rejects_mismatched_initial_configuration() {
        let _ = Simulator::new(Count, vec![(0, 0); 5], 0);
    }

    #[test]
    #[should_panic(expected = "pair source population size")]
    fn rejects_mismatched_pair_source() {
        let _ = Simulator::with_source(Count, vec![(0, 0); 16], Schedule::new(8, 0));
    }

    #[test]
    fn with_source_uniform_schedule_equals_new() {
        let mut a = Simulator::new(Count, vec![(0, 0); 16], 11);
        let mut b = Simulator::with_source(Count, vec![(0, 0); 16], Schedule::new(16, 11));
        a.run(4000);
        b.run(4000);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn run_faulted_with_no_faults_equals_run_batched() {
        let mut plain = Simulator::new(Count, vec![(0, 0); 16], 9);
        let mut faulted = Simulator::new(Count, vec![(0, 0); 16], 9);
        plain.run_batched(12_345);
        faulted.run_faulted(12_345, &mut NoFaults);
        assert_eq!(plain.states(), faulted.states());
        assert_eq!(plain.interactions(), faulted.interactions());
    }

    /// A hook that zeroes every counter at a fixed list of times.
    struct ZeroAt {
        times: Vec<u64>,
        fired: Vec<u64>,
    }

    impl FaultHook<Count> for ZeroAt {
        fn next_fire(&mut self, now: u64) -> Option<u64> {
            self.times.iter().copied().find(|&t| t >= now)
        }

        fn fire(&mut self, _p: &Count, t: u64, states: &mut [(u64, u64)]) {
            states.iter_mut().for_each(|s| *s = (0, 0));
            self.fired.push(t);
            self.times.retain(|&x| x > t);
        }
    }

    #[test]
    fn faults_fire_at_exact_interaction_counts() {
        let mut sim = Simulator::new(Count, vec![(0, 0); 16], 4);
        let mut hook = ZeroAt {
            times: vec![0, 100, 250, 1000],
            fired: Vec::new(),
        };
        sim.run_faulted(1000, &mut hook);
        assert_eq!(hook.fired, vec![0, 100, 250, 1000]);
        assert_eq!(sim.interactions(), 1000);
        // The t = 1000 fault fires after the last interaction, so the
        // final configuration is all-zero.
        assert!(sim.states().iter().all(|&s| s == (0, 0)));
    }

    #[test]
    fn fault_state_mutation_does_not_perturb_the_pair_stream() {
        // Interaction counting restarts after the mid-run zeroing fault;
        // totals over the remaining 600 interactions must still add up,
        // and the pairs chosen must match the unfaulted run's stream.
        let mut sim = Simulator::new(Count, vec![(0, 0); 16], 4);
        let mut hook = ZeroAt {
            times: vec![400],
            fired: Vec::new(),
        };
        sim.run_faulted(1000, &mut hook);
        let total: u64 = sim.states().iter().map(|s| s.0).sum();
        assert_eq!(total, 600);
    }
}
