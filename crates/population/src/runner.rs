//! Parallel multi-seed experiment runner.
//!
//! Most experiments in this repository repeat a simulation across many
//! seeds (the paper's Figure 3 uses 100 simulations per point).
//! [`run_seeds`] fans the seeds out over scoped threads and returns results
//! in seed order, so experiments stay deterministic regardless of thread
//! interleaving.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `job(seed)` for every seed in `seeds`, in parallel, returning the
/// results in the same order as the input.
///
/// The job is a `Fn` (not `FnMut`) shared across worker threads; all
/// per-run state should live inside the job body, keyed on the seed.
///
/// ```
/// let squares = population::runner::run_seeds(&[1, 2, 3], |s| s * s);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn run_seeds<R, F>(seeds: &[u64], job: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let workers = available_workers().get().min(seeds.len().max(1));
    if workers <= 1 || seeds.len() <= 1 {
        return seeds.iter().map(|&s| job(s)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..seeds.len()).map(|_| None).collect();
    let slots_ptr = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let job = &job;
            let slots_ptr = &slots_ptr;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= seeds.len() {
                        break;
                    }
                    local.push((idx, job(seeds[idx])));
                }
                // Write back under the lock once per worker.
                let mut guard = slots_ptr.lock().expect("runner mutex poisoned");
                for (idx, r) in local {
                    guard[idx] = Some(r);
                }
            }));
        }
        for h in handles {
            h.join().expect("runner worker panicked");
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every seed slot filled"))
        .collect()
}

/// Convenience: run seeds `0..count`.
pub fn run_seed_range<R, F>(count: u64, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seeds: Vec<u64> = (0..count).collect();
    run_seeds(&seeds, job)
}

/// Number of worker threads the runner fans out over.
///
/// Defaults to [`std::thread::available_parallelism`], overridable with
/// the `SSR_WORKERS` environment variable (any positive integer) so CI
/// and benchmarks can pin the thread fan-out deterministically — e.g.
/// `SSR_WORKERS=1 cargo test` serializes every seed fan-out. Invalid or
/// zero values are ignored.
pub fn available_workers() -> NonZeroUsize {
    if let Ok(v) = std::env::var("SSR_WORKERS") {
        if let Some(k) = v.trim().parse::<usize>().ok().and_then(NonZeroUsize::new) {
            return k;
        }
    }
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::new(1).expect("1 is nonzero"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let seeds: Vec<u64> = (0..64).collect();
        let out = run_seeds(&seeds, |s| {
            // Stagger finishing order to exercise the reordering logic.
            if s % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            s * 10
        });
        let expected: Vec<u64> = seeds.iter().map(|s| s * 10).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<u64> = run_seeds(&[], |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn single_seed_runs_inline() {
        let out = run_seeds(&[99], |s| s + 1);
        assert_eq!(out, vec![100]);
    }

    #[test]
    fn seed_range_enumerates_from_zero() {
        let out = run_seed_range(5, |s| s);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ssr_workers_env_overrides_parallelism() {
        // This is the only test that touches SSR_WORKERS, so there is no
        // race with parallel test threads.
        std::env::set_var("SSR_WORKERS", "3");
        assert_eq!(available_workers().get(), 3);
        std::env::set_var("SSR_WORKERS", "0"); // invalid: ignored
        assert_ne!(available_workers().get(), 0);
        std::env::set_var("SSR_WORKERS", "not-a-number"); // invalid: ignored
        let fallback = available_workers();
        assert!(fallback.get() >= 1);
        std::env::remove_var("SSR_WORKERS");
        // Results must still arrive in seed order under a pinned pool.
        std::env::set_var("SSR_WORKERS", "2");
        let out = run_seeds(&[4, 5, 6], |s| s * 2);
        assert_eq!(out, vec![8, 10, 12]);
        std::env::remove_var("SSR_WORKERS");
    }
}
