//! Exhaustive model checking for small populations.
//!
//! Stochastic tests sample trajectories; for tiny populations we can do
//! better and enumerate *every* reachable configuration. Because
//! population protocols are anonymous, configurations are multisets of
//! states: we canonicalize by sorting, which typically shrinks the space
//! by a factor of `n!` and makes exhaustive exploration of 4–6 agent
//! populations practical.
//!
//! Two checks matter for this paper's claims:
//!
//! * **Closure / silence** ([`Reachability::silent_configs`]): which
//!   reachable configurations are absorbing? A silent protocol's silent
//!   configurations must all satisfy the output predicate (e.g. "is a
//!   valid ranking") — a single bad absorbing configuration falsifies
//!   correctness in a way no sampling test reliably can.
//! * **Probabilistic stabilization** ([`Reachability::all_can_reach`]):
//!   under the uniform random scheduler, the protocol stabilizes with
//!   probability 1 iff *every* reachable configuration has a path to a
//!   goal configuration (the scheduler is fair w.p. 1, and goal sets here
//!   are closed). This is exactly the paper's definition in Section III,
//!   checked exhaustively.

use std::collections::HashMap;

use crate::protocol::Protocol;

/// Result of an exhaustive reachability exploration.
#[derive(Debug)]
pub struct Reachability<S> {
    configs: Vec<Vec<S>>,
    /// Forward edges as indices into `configs` (deduplicated).
    successors: Vec<Vec<usize>>,
    truncated: bool,
}

/// Explore every configuration reachable from `initial` (canonicalized as
/// a sorted multiset), visiting at most `cap` configurations.
///
/// Returns a [`Reachability`] whose `truncated` flag reports whether the
/// cap was hit; checks on a truncated exploration are unsound and the
/// accessors panic in that case.
///
/// The state type must be `Ord` for canonicalization.
pub fn explore<P>(protocol: &P, initial: Vec<P::State>, cap: usize) -> Reachability<P::State>
where
    P: Protocol,
    P::State: Ord + Eq + std::hash::Hash + Clone,
{
    let mut canon = initial;
    canon.sort();

    let mut index: HashMap<Vec<P::State>, usize> = HashMap::new();
    let mut configs = vec![canon.clone()];
    index.insert(canon, 0);
    let mut successors: Vec<Vec<usize>> = vec![Vec::new()];
    let mut frontier = vec![0usize];
    let mut truncated = false;

    while let Some(ci) = frontier.pop() {
        let n = configs[ci].len();
        let mut succ = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let mut next = configs[ci].clone();
                let (mut u, mut v) = (next[i].clone(), next[j].clone());
                protocol.transition(&mut u, &mut v);
                next[i] = u;
                next[j] = v;
                next.sort();
                if next == configs[ci] {
                    continue;
                }
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        if configs.len() >= cap {
                            truncated = true;
                            continue;
                        }
                        let id = configs.len();
                        configs.push(next.clone());
                        successors.push(Vec::new());
                        index.insert(next, id);
                        frontier.push(id);
                        id
                    }
                };
                if !succ.contains(&id) {
                    succ.push(id);
                }
            }
        }
        successors[ci] = succ;
    }

    Reachability {
        configs,
        successors,
        truncated,
    }
}

impl<S: Clone> Reachability<S> {
    /// Did the exploration hit the configuration cap? If so, the other
    /// accessors are unsound and will panic.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Number of distinct reachable configurations (as multisets).
    pub fn len(&self) -> usize {
        assert!(!self.truncated, "exploration truncated; raise the cap");
        self.configs.len()
    }

    /// True iff no configuration was reachable beyond the initial one...
    /// i.e. the initial configuration is already absorbing.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1 && self.successors[0].is_empty()
    }

    /// All reachable configurations that are *silent*: no interaction
    /// leads to a different configuration.
    pub fn silent_configs(&self) -> Vec<&Vec<S>> {
        assert!(!self.truncated, "exploration truncated; raise the cap");
        self.configs
            .iter()
            .zip(&self.successors)
            .filter(|(_, succ)| succ.is_empty())
            .map(|(c, _)| c)
            .collect()
    }

    /// Does *every* reachable configuration have a path to one satisfying
    /// `goal`? Under the uniform scheduler this is equivalent to
    /// "the protocol reaches the goal with probability 1 from the
    /// explored initial configuration" whenever the goal set is closed.
    pub fn all_can_reach(&self, goal: impl Fn(&[S]) -> bool) -> bool {
        self.count_cannot_reach(goal) == 0
    }

    /// Number of reachable configurations with *no* path into the goal
    /// set (0 means stabilization with probability 1).
    pub fn count_cannot_reach(&self, goal: impl Fn(&[S]) -> bool) -> usize {
        self.configs_cannot_reach(goal).len()
    }

    /// The reachable configurations with no path into the goal set —
    /// useful for inspecting *how* a protocol can get stuck.
    pub fn configs_cannot_reach(&self, goal: impl Fn(&[S]) -> bool) -> Vec<&Vec<S>> {
        assert!(!self.truncated, "exploration truncated; raise the cap");
        let mut can = vec![false; self.configs.len()];
        for (i, c) in self.configs.iter().enumerate() {
            can[i] = goal(c);
        }
        // Fixpoint of backward propagation along forward edges.
        loop {
            let mut changed = false;
            for i in 0..self.configs.len() {
                if !can[i] && self.successors[i].iter().any(|&s| can[s]) {
                    can[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.configs
            .iter()
            .zip(&can)
            .filter(|(_, ok)| !**ok)
            .map(|(c, _)| c)
            .collect()
    }

    /// The reachable configurations themselves (canonicalized).
    pub fn configs(&self) -> &[Vec<S>] {
        assert!(!self.truncated, "exploration truncated; raise the cap");
        &self.configs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::epidemic::{Epidemic, EpidemicState};

    /// The epidemic on 4 members: reachable configs are exactly the
    /// infection counts 1..=4, the unique silent config is all-infected.
    #[test]
    fn epidemic_reachability_is_a_chain() {
        let protocol = Epidemic::new(4);
        let init = protocol.initial(4);
        let r = explore(&protocol, init, 10_000);
        assert!(!r.truncated());
        assert_eq!(r.len(), 4, "one config per infection count");
        let silent = r.silent_configs();
        assert_eq!(silent.len(), 1);
        assert!(silent[0].iter().all(|s| *s == EpidemicState::Infected));
        assert!(r.all_can_reach(Epidemic::complete));
    }

    #[test]
    fn epidemic_with_bystanders_keeps_them_clean() {
        let protocol = Epidemic::new(5);
        let init = protocol.initial(3);
        let r = explore(&protocol, init, 10_000);
        for c in r.configs() {
            let bystanders = c.iter().filter(|s| **s == EpidemicState::Bystander).count();
            assert_eq!(bystanders, 2, "bystander count is invariant");
        }
    }

    /// A protocol with a reachable deadlock (absorbing non-goal config)
    /// must be caught by the checker: two tokens annihilate, one token
    /// converts blanks — from two tokens, annihilation leads to all-blank
    /// which can never reach all-converted.
    #[test]
    fn checker_detects_bad_absorbing_configurations() {
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        enum S {
            Token,
            Blank,
            Converted,
        }
        struct Annihilate;
        impl Protocol for Annihilate {
            type State = S;
            fn n(&self) -> usize {
                3
            }
            fn transition(&self, u: &mut S, v: &mut S) -> bool {
                match (*u, *v) {
                    (S::Token, S::Token) => {
                        *u = S::Blank;
                        *v = S::Blank;
                        true
                    }
                    (S::Token, S::Blank) => {
                        *v = S::Converted;
                        true
                    }
                    _ => false,
                }
            }
        }
        let r = explore(&Annihilate, vec![S::Token, S::Token, S::Blank], 1000);
        assert!(!r.all_can_reach(|c| c.iter().all(|s| *s != S::Blank)));
        assert!(r.count_cannot_reach(|c| c.iter().all(|s| *s != S::Blank)) >= 1);
    }

    #[test]
    fn cap_truncation_is_reported_and_guards_accessors() {
        let protocol = Epidemic::new(6);
        let init = protocol.initial(6);
        let r = explore(&protocol, init, 2);
        assert!(r.truncated());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.len()));
        assert!(caught.is_err(), "accessor must panic on truncated result");
    }

    #[test]
    fn sorted_canonicalization_merges_permuted_configs() {
        // With 2 members of 2, the configs "agent0 infected" and
        // "agent1 infected" are the same multiset.
        let protocol = Epidemic::new(2);
        let init = protocol.initial(2);
        let r = explore(&protocol, init, 100);
        assert_eq!(r.len(), 2); // {S,I} and {I,I}
    }
}
