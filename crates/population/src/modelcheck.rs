//! Exhaustive model checking for small populations.
//!
//! Stochastic tests sample trajectories; for tiny populations we can do
//! better and enumerate *every* reachable configuration. Because
//! population protocols are anonymous, configurations are multisets of
//! states: we canonicalize by sorting, which typically shrinks the space
//! by a factor of `n!` and makes exhaustive exploration of 4–6 agent
//! populations practical.
//!
//! Two checks matter for this paper's claims:
//!
//! * **Closure / silence** ([`Reachability::silent_configs`]): which
//!   reachable configurations are absorbing? A silent protocol's silent
//!   configurations must all satisfy the output predicate (e.g. "is a
//!   valid ranking") — a single bad absorbing configuration falsifies
//!   correctness in a way no sampling test reliably can.
//! * **Probabilistic stabilization** ([`Reachability::all_can_reach`]):
//!   under the uniform random scheduler, the protocol stabilizes with
//!   probability 1 iff *every* reachable configuration has a path to a
//!   goal configuration (the scheduler is fair w.p. 1, and goal sets here
//!   are closed). This is exactly the paper's definition in Section III,
//!   checked exhaustively.
//!
//! Two further entry points extend the checker beyond deterministic
//! transitions under the uniform scheduler:
//!
//! * [`explore_with`] explores under a caller-supplied *successor
//!   function* mapping an ordered state pair to **all** pairs it may
//!   step to. This is the seam for nondeterministic adversaries: a
//!   Byzantine agent that may rewrite its own state arbitrarily (the
//!   `scenarios` crate's `Recorrupt` strategy) is modeled by branching
//!   over every state it could adopt, so reachability verdicts
//!   quantify over *all* adversary behaviors, not one sampled run.
//! * [`trace_cycle`] answers a different question for **deterministic
//!   schedulers** (e.g. round-robin): with both the protocol and the
//!   pair sequence fixed, the trajectory is a single infinite path
//!   through a finite state space, hence eventually periodic. The
//!   tracer follows it until the goal holds or a configuration repeats
//!   at a scheduler-period boundary — a repeat *proves* the trajectory
//!   cycles forever without ever reaching the goal, upgrading "did not
//!   stabilize within the budget" to "can never stabilize".

use std::collections::HashMap;

use crate::protocol::Protocol;

/// Result of an exhaustive reachability exploration.
#[derive(Debug)]
pub struct Reachability<S> {
    configs: Vec<Vec<S>>,
    /// Forward edges as indices into `configs` (deduplicated).
    successors: Vec<Vec<usize>>,
    truncated: bool,
}

/// Explore every configuration reachable from `initial` (canonicalized as
/// a sorted multiset), visiting at most `cap` configurations.
///
/// Returns a [`Reachability`] whose `truncated` flag reports whether the
/// cap was hit; checks on a truncated exploration are unsound and the
/// accessors panic in that case.
///
/// The state type must be `Ord` for canonicalization.
pub fn explore<P>(protocol: &P, initial: Vec<P::State>, cap: usize) -> Reachability<P::State>
where
    P: Protocol,
    P::State: Ord + Eq + std::hash::Hash + Clone,
{
    explore_with(protocol, initial, cap, |p, u, v| {
        let (mut u, mut v) = (u.clone(), v.clone());
        p.transition(&mut u, &mut v);
        vec![(u, v)]
    })
}

/// Explore every configuration reachable from `initial` under a
/// caller-supplied *successor function*: `successors(p, u, v)` returns
/// every ordered state pair the ordered pair `(u, v)` may step to.
///
/// This generalizes [`explore`] (whose successor function is the single
/// deterministic [`Protocol::transition`] outcome) to protocols with
/// nondeterministic branches — the model-checking seam for persistent
/// adversaries, whose strategies may choose among many rewrites of
/// their own state. The exploration covers every resolution of the
/// nondeterminism, and the verdicts read *possibilistically*: a silent
/// configuration is one no pair — under no branch — can leave, and
/// [`Reachability::all_can_reach`] means "from every reachable
/// configuration, *some* scheduler/branch continuation reaches the
/// goal". That upgrades to "reached with probability 1" only when the
/// branch choice is itself a fair random draw with full support over
/// the branch set (in particular for deterministic strategies, whose
/// singleton branching makes the graph the exact Markov chain) — it
/// says nothing about an *adaptive* adversary that picks branches to
/// avoid the goal, and goals like honest ranking validity are not
/// closed under further adversary interactions (a strategy can be
/// "tolerated" here yet starve the goal in expectation; the
/// `scenarios` crate's Byzantine benchmark measures exactly that gap).
///
/// Caveats mirror [`explore`]: at most `cap` configurations are
/// visited, a truncated result's accessors panic, and the state type
/// must be `Ord` for multiset canonicalization.
pub fn explore_with<P, F>(
    protocol: &P,
    initial: Vec<P::State>,
    cap: usize,
    successors: F,
) -> Reachability<P::State>
where
    P: Protocol,
    P::State: Ord + Eq + std::hash::Hash + Clone,
    F: Fn(&P, &P::State, &P::State) -> Vec<(P::State, P::State)>,
{
    let mut canon = initial;
    canon.sort();

    let mut index: HashMap<Vec<P::State>, usize> = HashMap::new();
    let mut configs = vec![canon.clone()];
    index.insert(canon, 0);
    let mut succ_ids: Vec<Vec<usize>> = vec![Vec::new()];
    let mut frontier = vec![0usize];
    let mut truncated = false;

    while let Some(ci) = frontier.pop() {
        let n = configs[ci].len();
        let mut succ = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                for (u, v) in successors(protocol, &configs[ci][i], &configs[ci][j]) {
                    let mut next = configs[ci].clone();
                    next[i] = u;
                    next[j] = v;
                    next.sort();
                    if next == configs[ci] {
                        continue;
                    }
                    let id = match index.get(&next) {
                        Some(&id) => id,
                        None => {
                            if configs.len() >= cap {
                                truncated = true;
                                continue;
                            }
                            let id = configs.len();
                            configs.push(next.clone());
                            succ_ids.push(Vec::new());
                            index.insert(next, id);
                            frontier.push(id);
                            id
                        }
                    };
                    if !succ.contains(&id) {
                        succ.push(id);
                    }
                }
            }
        }
        succ_ids[ci] = succ;
    }

    Reachability {
        configs,
        successors: succ_ids,
        truncated,
    }
}

impl<S: Clone> Reachability<S> {
    /// Did the exploration hit the configuration cap? If so, the other
    /// accessors are unsound and will panic.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Number of distinct reachable configurations (as multisets).
    pub fn len(&self) -> usize {
        assert!(!self.truncated, "exploration truncated; raise the cap");
        self.configs.len()
    }

    /// True iff no configuration was reachable beyond the initial one...
    /// i.e. the initial configuration is already absorbing.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1 && self.successors[0].is_empty()
    }

    /// All reachable configurations that are *silent*: no interaction
    /// leads to a different configuration.
    pub fn silent_configs(&self) -> Vec<&Vec<S>> {
        assert!(!self.truncated, "exploration truncated; raise the cap");
        self.configs
            .iter()
            .zip(&self.successors)
            .filter(|(_, succ)| succ.is_empty())
            .map(|(c, _)| c)
            .collect()
    }

    /// Does *every* reachable configuration have a path to one satisfying
    /// `goal`? Under the uniform scheduler this is equivalent to
    /// "the protocol reaches the goal with probability 1 from the
    /// explored initial configuration" whenever the goal set is closed.
    pub fn all_can_reach(&self, goal: impl Fn(&[S]) -> bool) -> bool {
        self.count_cannot_reach(goal) == 0
    }

    /// Number of reachable configurations with *no* path into the goal
    /// set (0 means stabilization with probability 1).
    pub fn count_cannot_reach(&self, goal: impl Fn(&[S]) -> bool) -> usize {
        self.configs_cannot_reach(goal).len()
    }

    /// The reachable configurations with no path into the goal set —
    /// useful for inspecting *how* a protocol can get stuck.
    pub fn configs_cannot_reach(&self, goal: impl Fn(&[S]) -> bool) -> Vec<&Vec<S>> {
        assert!(!self.truncated, "exploration truncated; raise the cap");
        let mut can = vec![false; self.configs.len()];
        for (i, c) in self.configs.iter().enumerate() {
            can[i] = goal(c);
        }
        // Fixpoint of backward propagation along forward edges.
        loop {
            let mut changed = false;
            for i in 0..self.configs.len() {
                if !can[i] && self.successors[i].iter().any(|&s| can[s]) {
                    can[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.configs
            .iter()
            .zip(&can)
            .filter(|(_, ok)| !**ok)
            .map(|(c, _)| c)
            .collect()
    }

    /// The reachable configurations themselves (canonicalized).
    pub fn configs(&self) -> &[Vec<S>] {
        assert!(!self.truncated, "exploration truncated; raise the cap");
        &self.configs
    }
}

/// Outcome of following one deterministic trajectory ([`trace_cycle`]).
///
/// Exactly one of three things is true of the result: the goal was hit
/// (`goal_at`), a periodic orbit that never hits the goal was proven
/// (`cycle_entered_at` + `period`), or the step budget ran out first
/// (`truncated` — inconclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleTrace {
    /// Interaction count at which the goal first held, if it ever did.
    pub goal_at: Option<u64>,
    /// Interaction count (a multiple of the stride) at which the
    /// configuration first entered the proven periodic orbit.
    pub cycle_entered_at: Option<u64>,
    /// Length of the proven orbit in interactions (a multiple of the
    /// stride).
    pub period: Option<u64>,
    /// The step budget ran out before either verdict — inconclusive.
    pub truncated: bool,
}

impl CycleTrace {
    /// Did the trace *prove* the goal unreachable on this trajectory
    /// (a periodic orbit closed without the goal ever holding)?
    pub fn is_livelock(&self) -> bool {
        self.goal_at.is_none() && self.period.is_some()
    }
}

/// Follow the single trajectory of `protocol` under a **deterministic**
/// pair sequence until `goal` holds, a cycle is proven, or `max_steps`
/// interactions have executed.
///
/// `next_pair` must be deterministic and periodic with period `stride`
/// interactions (for a round-robin sweep over `n` agents,
/// `stride = n(n−1)`). The configuration is recorded at every stride
/// boundary; since the scheduler is in the same phase at each boundary,
/// a repeated configuration there proves the *entire system state*
/// repeats — the trajectory is periodic from that point on, and if the
/// goal never held along the explored prefix it never will
/// ([`CycleTrace::is_livelock`]). This turns "did not stabilize within
/// the budget" (all a stochastic run can say) into a definitive
/// verdict, and is how the round-robin non-stabilization observed by
/// the `sched_compare` benchmark is classified.
///
/// The goal is checked after every interaction (and once up front), so
/// `goal_at` is exact, not checkpoint-quantized.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn trace_cycle<P, Q, G>(
    protocol: &P,
    initial: Vec<P::State>,
    mut next_pair: Q,
    stride: u64,
    goal: G,
    max_steps: u64,
) -> CycleTrace
where
    P: Protocol,
    P::State: Eq + std::hash::Hash + Clone,
    Q: FnMut() -> (usize, usize),
    G: Fn(&[P::State]) -> bool,
{
    assert!(stride > 0, "stride must be positive");
    let mut states = initial;
    let mut seen: HashMap<Vec<P::State>, u64> = HashMap::new();
    let mut t = 0u64;
    loop {
        if goal(&states) {
            return CycleTrace {
                goal_at: Some(t),
                cycle_entered_at: None,
                period: None,
                truncated: false,
            };
        }
        if t.is_multiple_of(stride) {
            if let Some(&t0) = seen.get(&states) {
                return CycleTrace {
                    goal_at: None,
                    cycle_entered_at: Some(t0),
                    period: Some(t - t0),
                    truncated: false,
                };
            }
            seen.insert(states.clone(), t);
        }
        if t >= max_steps {
            return CycleTrace {
                goal_at: None,
                cycle_entered_at: None,
                period: None,
                truncated: true,
            };
        }
        let (i, j) = next_pair();
        debug_assert!(i != j && i < states.len() && j < states.len());
        let (u, v) = crate::pairs::pair_mut(&mut states, i, j);
        protocol.transition(u, v);
        t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::epidemic::{Epidemic, EpidemicState};

    /// The epidemic on 4 members: reachable configs are exactly the
    /// infection counts 1..=4, the unique silent config is all-infected.
    #[test]
    fn epidemic_reachability_is_a_chain() {
        let protocol = Epidemic::new(4);
        let init = protocol.initial(4);
        let r = explore(&protocol, init, 10_000);
        assert!(!r.truncated());
        assert_eq!(r.len(), 4, "one config per infection count");
        let silent = r.silent_configs();
        assert_eq!(silent.len(), 1);
        assert!(silent[0].iter().all(|s| *s == EpidemicState::Infected));
        assert!(r.all_can_reach(Epidemic::complete));
    }

    #[test]
    fn epidemic_with_bystanders_keeps_them_clean() {
        let protocol = Epidemic::new(5);
        let init = protocol.initial(3);
        let r = explore(&protocol, init, 10_000);
        for c in r.configs() {
            let bystanders = c.iter().filter(|s| **s == EpidemicState::Bystander).count();
            assert_eq!(bystanders, 2, "bystander count is invariant");
        }
    }

    /// A protocol with a reachable deadlock (absorbing non-goal config)
    /// must be caught by the checker: two tokens annihilate, one token
    /// converts blanks — from two tokens, annihilation leads to all-blank
    /// which can never reach all-converted.
    #[test]
    fn checker_detects_bad_absorbing_configurations() {
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        enum S {
            Token,
            Blank,
            Converted,
        }
        struct Annihilate;
        impl Protocol for Annihilate {
            type State = S;
            fn n(&self) -> usize {
                3
            }
            fn transition(&self, u: &mut S, v: &mut S) -> bool {
                match (*u, *v) {
                    (S::Token, S::Token) => {
                        *u = S::Blank;
                        *v = S::Blank;
                        true
                    }
                    (S::Token, S::Blank) => {
                        *v = S::Converted;
                        true
                    }
                    _ => false,
                }
            }
        }
        let r = explore(&Annihilate, vec![S::Token, S::Token, S::Blank], 1000);
        assert!(!r.all_can_reach(|c| c.iter().all(|s| *s != S::Blank)));
        assert!(r.count_cannot_reach(|c| c.iter().all(|s| *s != S::Blank)) >= 1);
    }

    #[test]
    fn cap_truncation_is_reported_and_guards_accessors() {
        let protocol = Epidemic::new(6);
        let init = protocol.initial(6);
        let r = explore(&protocol, init, 2);
        assert!(r.truncated());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.len()));
        assert!(caught.is_err(), "accessor must panic on truncated result");
    }

    #[test]
    fn sorted_canonicalization_merges_permuted_configs() {
        // With 2 members of 2, the configs "agent0 infected" and
        // "agent1 infected" are the same multiset.
        let protocol = Epidemic::new(2);
        let init = protocol.initial(2);
        let r = explore(&protocol, init, 100);
        assert_eq!(r.len(), 2); // {S,I} and {I,I}
    }

    #[test]
    fn explore_with_singleton_successors_equals_explore() {
        let protocol = Epidemic::new(4);
        let init = protocol.initial(2);
        let det = explore(&protocol, init.clone(), 10_000);
        let nondet = explore_with(&protocol, init, 10_000, |p, u, v| {
            let (mut u, mut v) = (*u, *v);
            p.transition(&mut u, &mut v);
            vec![(u, v)]
        });
        assert_eq!(det.len(), nondet.len());
        assert_eq!(det.silent_configs(), nondet.silent_configs());
    }

    #[test]
    fn explore_with_branches_reach_configs_no_single_resolution_does() {
        // A counter protocol where the initiator may step to *either*
        // neighbor value: deterministic resolution reaches a chain, the
        // branching exploration reaches every value.
        struct UpOrDown;
        impl Protocol for UpOrDown {
            type State = u8;
            fn n(&self) -> usize {
                2
            }
            fn transition(&self, u: &mut u8, _v: &mut u8) -> bool {
                // Deterministic reading: always up (saturating at 3).
                if *u < 3 {
                    *u += 1;
                    return true;
                }
                false
            }
        }
        let branching = |_: &UpOrDown, u: &u8, v: &u8| {
            let mut out = Vec::new();
            if *u < 3 {
                out.push((*u + 1, *v));
            }
            if *u > 0 {
                out.push((*u - 1, *v));
            }
            out
        };
        let det = explore(&UpOrDown, vec![2, 2], 1000);
        let nondet = explore_with(&UpOrDown, vec![2, 2], 1000, branching);
        assert!(nondet.len() > det.len(), "branching must widen the set");
        // Every (a, b) multiset over 0..=3 is reachable with branching.
        assert_eq!(nondet.len(), 10);
        // Under the adversary, the all-3 goal stays reachable from
        // everywhere (the adversary cannot *prevent* it — the check
        // quantifies over paths, not strategies).
        assert!(nondet.all_can_reach(|c| c.iter().all(|&x| x == 3)));
    }

    /// Mod-4 counter stepped by the initiator: under any schedule the
    /// trajectory cycles with period 4·stride and never reaches 17.
    struct Mod4;
    impl Protocol for Mod4 {
        type State = u8;
        fn n(&self) -> usize {
            2
        }
        fn transition(&self, u: &mut u8, _v: &mut u8) -> bool {
            *u = (*u + 1) % 4;
            true
        }
    }

    #[test]
    fn trace_cycle_proves_livelock_on_a_periodic_orbit() {
        // Alternating round-robin over 2 agents: period 2 interactions.
        let mut t = 0usize;
        let trace = trace_cycle(
            &Mod4,
            vec![0, 0],
            || {
                let pair = if t.is_multiple_of(2) { (0, 1) } else { (1, 0) };
                t += 1;
                pair
            },
            2,
            |c| c.contains(&17),
            1_000_000,
        );
        assert!(trace.is_livelock(), "{trace:?}");
        assert_eq!(trace.cycle_entered_at, Some(0));
        assert_eq!(trace.period, Some(8), "both counters wrap mod 4");
        assert!(!trace.truncated);
    }

    #[test]
    fn trace_cycle_reports_exact_goal_hits() {
        let mut t = 0usize;
        let trace = trace_cycle(
            &Mod4,
            vec![0, 0],
            || {
                let pair = if t.is_multiple_of(2) { (0, 1) } else { (1, 0) };
                t += 1;
                pair
            },
            2,
            |c| c[0] == 3, // agent 0 steps at t = 0, 2, 4: hits 3 after 5
            1_000_000,
        );
        assert_eq!(trace.goal_at, Some(5));
        assert!(!trace.is_livelock());
    }

    #[test]
    fn trace_cycle_budget_exhaustion_is_inconclusive() {
        let mut t = 0usize;
        let trace = trace_cycle(
            &Mod4,
            vec![0, 0],
            || {
                let pair = if t.is_multiple_of(2) { (0, 1) } else { (1, 0) };
                t += 1;
                pair
            },
            // Stride deliberately larger than the budget: no boundary
            // revisit can be observed, so the result must be truncated.
            1_000,
            |c| c.contains(&17),
            100,
        );
        assert!(trace.truncated);
        assert_eq!(trace.goal_at, None);
        assert_eq!(trace.period, None);
    }
}
