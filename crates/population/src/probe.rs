//! The instrumentation seam: a read-only [`Probe`] the probed run paths
//! ([`Simulator::run_probed`](crate::Simulator::run_probed) and friends,
//! plus the `shard` crate's probed engine) invoke at block, exchange,
//! checkpoint, and fault boundaries.
//!
//! # Zero cost when disabled
//!
//! Probes are a compile-time seam, not a runtime one: the probed run
//! paths are generic over the probe type and check the associated
//! constant [`Probe::ACTIVE`] first. For [`NullProbe`] (`ACTIVE =
//! false`) they immediately delegate to the *unprobed* twin
//! (`run_batched`, `run_faulted`, …), so a `NullProbe` run executes
//! exactly today's hot-loop code — the same machine code, not merely
//! equivalent code. The CI throughput smoke guards this contract with a
//! paired A/B measurement (`probe_floor`, default `0.95×`).
//!
//! # Read-only by contract
//!
//! Probes receive `&`-references to the protocol and configuration and
//! can therefore never perturb a trajectory: a probed run is bit-for-bit
//! identical to its unprobed twin under the same seed, whatever the
//! probe records (property-tested in `tests/telemetry_inert.rs` at the
//! workspace root). The canonical recording implementation is the
//! `telemetry` crate's `Recorder`; this module deliberately contains no
//! recording machinery so the engine keeps zero telemetry dependencies.

use crate::protocol::Protocol;

/// A lifecycle change of one agent in a *dynamic* population — the
/// payload of [`Probe::membership`]. The fixed-n engines never emit
/// these; the `crates/dynamic` engine emits one per join, leave,
/// hibernation, and revival, and the `telemetry` crate's `Recorder`
/// maps them onto its structured event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Membership {
    /// A fresh agent entered the active lane.
    Join,
    /// An agent left the population for good (its rank, if any, was
    /// released by the engine).
    Leave,
    /// An agent left the active lane but may return (rank reserved).
    Hibernate,
    /// A dormant agent re-entered the active lane.
    Revive,
}

/// Observation hooks invoked by the probed run paths at the engine's
/// natural boundaries. All hooks are read-only: a probe can never change
/// what the engine computes, only record it.
///
/// Every method has a default empty body, so an implementation only
/// overrides the boundaries it cares about. Implementations that record
/// nothing at all should set [`ACTIVE`](Probe::ACTIVE) to `false` (as
/// [`NullProbe`] does) so the engine can statically skip probed
/// bookkeeping and run the unprobed hot path.
pub trait Probe<P: Protocol> {
    /// Whether this probe observes anything. When `false`, probed run
    /// paths delegate to their unprobed twins and none of the methods
    /// below are ever called. This is an associated *constant* so the
    /// check monomorphizes away.
    const ACTIVE: bool = true;

    /// A schedule block finished executing. `t` is the engine's
    /// interaction count *after* the block, `changed` the number of
    /// state-changing interactions the block reported (0 where the
    /// execution path does not track it), `shard` the shard index (0 on
    /// the sequential engine), `start` the global index of `lane[0]`,
    /// and `lane` the shard's slice of the configuration after the
    /// block. Event granularity is therefore the block: probes see
    /// configurations at block boundaries, mirroring the observer
    /// pipeline's `check_every` overshoot convention.
    fn block(
        &mut self,
        protocol: &P,
        t: u64,
        changed: u64,
        shard: usize,
        start: usize,
        lane: &[P::State],
    ) {
        let _ = (protocol, t, changed, shard, start, lane);
    }

    /// The sharded engine finished the exchange rounds of a block:
    /// `pairs` cross-shard boundary pairs were executed at interaction
    /// count `t`. Never called by the sequential engine.
    fn exchange(&mut self, protocol: &P, t: u64, pairs: u64) {
        let _ = (protocol, t, pairs);
    }

    /// An observer checkpoint was polled at interaction count `t`;
    /// `stopping` reports whether the run is about to stop there.
    fn checkpoint(&mut self, protocol: &P, t: u64, stopping: bool) {
        let _ = (protocol, t, stopping);
    }

    /// A [`FaultHook`](crate::FaultHook) fired at interaction count `t`;
    /// `states` is the full configuration *after* the mutation. Probes
    /// that diff configurations should re-baseline here so fault damage
    /// is attributed to the fault, not misread as protocol activity.
    fn fault(&mut self, protocol: &P, t: u64, states: &[P::State]) {
        let _ = (protocol, t, states);
    }

    /// A dynamic-population engine changed agent `agent`'s membership at
    /// interaction count `t` (see [`Membership`]). `agent` is the
    /// engine's stable agent id, not a lane index — ids outlive lane
    /// compaction, so a probe can track one agent across hibernation
    /// and revival. Never called by the fixed-n engines.
    fn membership(&mut self, protocol: &P, t: u64, agent: u32, change: Membership) {
        let _ = (protocol, t, agent, change);
    }
}

/// The disabled probe: observes nothing, costs nothing.
///
/// `ACTIVE = false` makes every probed run path delegate to its
/// unprobed twin before entering the loop, so `run_probed(count, &mut
/// NullProbe)` *is* `run_batched(count)` — the identical code path, not
/// an instrumented loop with no-op calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl<P: Protocol> Probe<P> for NullProbe {
    const ACTIVE: bool = false;
}

/// Forwarding impl so engines can be handed `&mut probe` through
/// arbitrarily many call layers.
impl<P: Protocol, B: Probe<P>> Probe<P> for &mut B {
    const ACTIVE: bool = B::ACTIVE;

    fn block(
        &mut self,
        protocol: &P,
        t: u64,
        changed: u64,
        shard: usize,
        start: usize,
        lane: &[P::State],
    ) {
        (**self).block(protocol, t, changed, shard, start, lane);
    }

    fn exchange(&mut self, protocol: &P, t: u64, pairs: u64) {
        (**self).exchange(protocol, t, pairs);
    }

    fn checkpoint(&mut self, protocol: &P, t: u64, stopping: bool) {
        (**self).checkpoint(protocol, t, stopping);
    }

    fn fault(&mut self, protocol: &P, t: u64, states: &[P::State]) {
        (**self).fault(protocol, t, states);
    }

    fn membership(&mut self, protocol: &P, t: u64, agent: u32, change: Membership) {
        (**self).membership(protocol, t, agent, change);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl Protocol for Noop {
        type State = u8;
        fn n(&self) -> usize {
            4
        }
        fn transition(&self, _: &mut u8, _: &mut u8) -> bool {
            false
        }
    }

    /// A probe that logs which hooks ran, for testing the forwarding impl.
    #[derive(Default)]
    struct Log(Vec<&'static str>);
    impl Probe<Noop> for Log {
        fn block(&mut self, _: &Noop, _: u64, _: u64, _: usize, _: usize, _: &[u8]) {
            self.0.push("block");
        }
        fn fault(&mut self, _: &Noop, _: u64, _: &[u8]) {
            self.0.push("fault");
        }
        fn membership(&mut self, _: &Noop, _: u64, _: u32, _: Membership) {
            self.0.push("membership");
        }
    }

    #[test]
    fn null_probe_is_inactive() {
        const { assert!(!<NullProbe as Probe<Noop>>::ACTIVE) };
        // Calling the hooks anyway must be harmless.
        let mut p = NullProbe;
        Probe::<Noop>::block(&mut p, &Noop, 0, 0, 0, 0, &[]);
        Probe::<Noop>::checkpoint(&mut p, &Noop, 0, true);
    }

    #[test]
    fn mut_ref_forwards_activity_and_calls() {
        const { assert!(<&mut Log as Probe<Noop>>::ACTIVE) };
        let mut log = Log::default();
        let mut fwd = &mut log;
        Probe::<Noop>::block(&mut fwd, &Noop, 1, 0, 0, 0, &[]);
        Probe::<Noop>::exchange(&mut fwd, &Noop, 1, 0); // default body
        Probe::<Noop>::fault(&mut fwd, &Noop, 2, &[]);
        Probe::<Noop>::membership(&mut fwd, &Noop, 3, 7, Membership::Join);
        assert_eq!(log.0, ["block", "fault", "membership"]);
    }
}
