//! The uniform random scheduler, factored out of the simulator.
//!
//! A [`Schedule`] owns the scheduling RNG and produces the ordered pairs
//! `(initiator, responder)` that drive a simulation. It supports two
//! consumption styles over the *same* random stream:
//!
//! * [`Schedule::next_pair`] — draw one pair, for scalar stepping;
//! * [`Schedule::sample_block`] — pre-sample a block of pairs in one
//!   tight loop, for the batched hot path
//!   ([`Simulator::run_batched`](crate::Simulator::run_batched)).
//!
//! Both styles consume pairs from the same underlying sequence in FIFO
//! order, so a simulation is **bit-for-bit trajectory-equivalent**
//! whether it is stepped one interaction at a time, run in batches, or
//! any interleaving of the two. Pre-sampling exists purely to make the
//! hot path faster: the RNG state stays in registers across a whole
//! block instead of being reloaded per interaction, and the transition
//! loop that follows runs without the sampler's branches in it.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// An ordered agent pair, stored compactly for block buffers.
pub type Pair = (u32, u32);

/// Default number of pairs sampled per block by the batched hot path:
/// 2¹² pairs = 32 KiB of buffer, sized to stay in L1.
pub const BLOCK_PAIRS: usize = 4096;

/// Seeded generator of uniform ordered pairs of distinct agents.
#[derive(Debug, Clone)]
pub struct Schedule {
    rng: SmallRng,
    n: usize,
    block: Vec<Pair>,
    pos: usize,
}

/// Draw one uniform ordered pair of distinct agents from a single
/// 64-bit RNG output.
///
/// The initiator is uniform over `0..n` (low 32 bits); the responder is
/// uniform over the remaining `n − 1` agents (high 32 bits, drawn from
/// `0..n−1` and skipping the initiator). This is the paper's uniform
/// scheduler. Index reduction uses the widening-multiply map
/// `(x · n) >> 32`, whose bias is below `n · 2⁻³²` (< 10⁻⁴ for every
/// population size this repository simulates) — orders of magnitude
/// under the sampling noise of any experiment here, in exchange for one
/// RNG output and zero rejection branches per pair.
///
/// This is the one canonical consumption of the RNG per pair — the
/// scalar and the batched path both go through this exact function,
/// which is what makes them trajectory-equivalent.
#[inline]
fn draw_pair(rng: &mut SmallRng, n: usize) -> Pair {
    let bits = rng.next_u64();
    let i = (((bits & 0xFFFF_FFFF) * n as u64) >> 32) as u32;
    let r = (((bits >> 32) * (n as u64 - 1)) >> 32) as u32;
    let j = if r >= i { r + 1 } else { r };
    (i, j)
}

impl Schedule {
    /// Create a schedule for a population of `n` agents, seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no pair of distinct agents exists) or
    /// `n > u32::MAX` (pairs are stored as `u32` indices).
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "population needs at least two agents");
        assert!(u32::try_from(n).is_ok(), "population size exceeds u32");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            n,
            block: Vec::new(),
            pos: 0,
        }
    }

    /// Population size this schedule draws pairs for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Draw the next ordered pair (scalar path). Consumes buffered pairs
    /// first so that scalar and batched consumption can be interleaved
    /// freely without perturbing the stream.
    #[inline]
    pub fn next_pair(&mut self) -> (usize, usize) {
        if self.pos < self.block.len() {
            let (i, j) = self.block[self.pos];
            self.pos += 1;
            (i as usize, j as usize)
        } else {
            let (i, j) = draw_pair(&mut self.rng, self.n);
            (i as usize, j as usize)
        }
    }

    /// Return the next at-most-`max` pairs of the stream as a block,
    /// pre-sampling a fresh buffer if the previous one is exhausted
    /// (batched path).
    ///
    /// The returned slice is nonempty for `max > 0`; callers loop until
    /// they have consumed as many pairs as they need.
    #[inline]
    pub fn sample_block(&mut self, max: usize) -> &[Pair] {
        if self.pos >= self.block.len() {
            let count = max.min(BLOCK_PAIRS);
            self.block.clear();
            self.block.reserve(count);
            let n = self.n;
            for _ in 0..count {
                self.block.push(draw_pair(&mut self.rng, n));
            }
            self.pos = 0;
        }
        let start = self.pos;
        let end = self.block.len().min(start + max);
        self.pos = end;
        &self.block[start..end]
    }

    /// Number of pairs currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.block.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_scalar(s: &mut Schedule, count: usize) -> Vec<(usize, usize)> {
        (0..count).map(|_| s.next_pair()).collect()
    }

    #[test]
    fn pairs_are_distinct_and_in_range() {
        let mut s = Schedule::new(17, 1);
        for _ in 0..10_000 {
            let (i, j) = s.next_pair();
            assert!(i < 17 && j < 17);
            assert_ne!(i, j);
        }
    }

    #[test]
    fn block_and_scalar_produce_the_same_stream() {
        let mut scalar = Schedule::new(100, 42);
        let mut blocked = Schedule::new(100, 42);
        let expected = drain_scalar(&mut scalar, 10_000);
        let mut got = Vec::new();
        while got.len() < 10_000 {
            let block = blocked.sample_block(10_000 - got.len());
            got.extend(block.iter().map(|&(i, j)| (i as usize, j as usize)));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn interleaving_scalar_and_block_consumption_is_seamless() {
        let mut reference = Schedule::new(50, 7);
        let expected = drain_scalar(&mut reference, 5000);

        let mut mixed = Schedule::new(50, 7);
        let mut got = Vec::new();
        // Alternate: a few scalar draws, then a block, repeatedly — the
        // stream must be identical to pure scalar consumption.
        while got.len() < 5000 {
            for _ in 0..3 {
                if got.len() < 5000 {
                    got.push(mixed.next_pair());
                }
            }
            let want = (5000 - got.len()).min(37);
            if want > 0 {
                let block: Vec<Pair> = mixed.sample_block(want).to_vec();
                got.extend(block.iter().map(|&(i, j)| (i as usize, j as usize)));
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn block_sizes_do_not_change_the_stream() {
        let take = |block_req: usize| {
            let mut s = Schedule::new(20, 9);
            let mut got = Vec::new();
            while got.len() < 3000 {
                let want = (3000 - got.len()).min(block_req);
                got.extend(s.sample_block(want).to_vec());
            }
            got
        };
        let a = take(1);
        let b = take(64);
        let c = take(4096);
        let d = take(1000);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(c, d);
    }

    #[test]
    fn initiator_distribution_is_uniform() {
        let n = 8;
        let mut s = Schedule::new(n, 3);
        let mut counts = vec![0u32; n];
        for _ in 0..80_000 {
            counts[s.next_pair().0] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "initiator count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn rejects_singleton_population() {
        let _ = Schedule::new(1, 0);
    }
}
