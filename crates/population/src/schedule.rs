//! Pair scheduling: the [`PairSource`] abstraction and the paper's
//! uniform random scheduler, [`Schedule`].
//!
//! A pair source owns whatever state it needs (an RNG, a sweep counter)
//! and produces the ordered pairs `(initiator, responder)` that drive a
//! simulation. Every source supports two consumption styles over the
//! *same* pair stream:
//!
//! * [`PairSource::next_pair`] — draw one pair, for scalar stepping;
//! * [`PairSource::sample_block`] — pre-sample a block of pairs in one
//!   tight loop, for the batched hot path
//!   ([`Simulator::run_batched`](crate::Simulator::run_batched)).
//!
//! Both styles consume pairs from the same underlying sequence in FIFO
//! order, so a simulation is **bit-for-bit trajectory-equivalent**
//! whether it is stepped one interaction at a time, run in batches, or
//! any interleaving of the two. Pre-sampling exists purely to make the
//! hot path faster: the source's state stays in registers across a whole
//! block instead of being reloaded per interaction, and the transition
//! loop that follows runs without the sampler's branches in it.
//!
//! [`Schedule`] is the canonical implementation — the paper's uniform
//! scheduler. Adversarial sources (biased, clustered/partitioned,
//! round-robin) live in the `scenarios` crate and plug into the same
//! [`Simulator`](crate::Simulator) via
//! [`Simulator::with_source`](crate::Simulator::with_source), which is
//! how protocols are run *off* the uniform-scheduler assumption. The
//! [`BlockBuffer`] helper implements the FIFO buffering contract once so
//! every source gets interleaving-safety for free.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// An ordered agent pair, stored compactly for block buffers.
pub type Pair = (u32, u32);

/// Default number of pairs sampled per block by the batched hot path:
/// 2¹² pairs = 32 KiB of buffer, sized to stay in L1.
pub const BLOCK_PAIRS: usize = 4096;

/// A producer of ordered interaction pairs `(initiator, responder)`.
///
/// This is the scheduler seam of the engine: [`Schedule`] implements the
/// paper's uniform scheduler, and the `scenarios` crate implements
/// adversarial ones. Implementations must uphold two contracts:
///
/// 1. **Validity** — every produced pair `(i, j)` satisfies
///    `i < n`, `j < n`, `i != j`.
/// 2. **Single stream** — [`next_pair`](PairSource::next_pair) and
///    [`sample_block`](PairSource::sample_block) consume the *same*
///    underlying pair sequence in FIFO order, so scalar and batched
///    execution (and any interleaving) follow the identical trajectory.
///    Embedding a [`BlockBuffer`] and drawing pairs through one
///    canonical function gives this property by construction.
pub trait PairSource {
    /// Population size the source draws pairs for.
    fn n(&self) -> usize;

    /// Draw the next ordered pair of the stream (scalar path).
    fn next_pair(&mut self) -> (usize, usize);

    /// Return the next at-most-`max` pairs of the stream as a block,
    /// pre-sampling a fresh buffer if the previous one is exhausted
    /// (batched path). The returned slice is nonempty for `max > 0`;
    /// callers loop until they have consumed as many pairs as they need.
    fn sample_block(&mut self, max: usize) -> &[Pair];
}

/// The FIFO block buffer shared by every [`PairSource`] implementation.
///
/// Holds pre-sampled pairs and serves them in order; when the buffer is
/// exhausted, the owner refills it from its canonical pair-drawing
/// function. Routing *both* the scalar and the batched path through the
/// same buffer is what makes interleaved consumption seamless.
#[derive(Debug, Clone, Default)]
pub struct BlockBuffer {
    block: Vec<Pair>,
    pos: usize,
}

impl BlockBuffer {
    /// New, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serve one pair: from the buffer if nonempty, else freshly drawn.
    #[inline]
    pub fn next_pair(&mut self, draw: impl FnOnce() -> Pair) -> (usize, usize) {
        if self.pos < self.block.len() {
            let (i, j) = self.block[self.pos];
            self.pos += 1;
            (i as usize, j as usize)
        } else {
            let (i, j) = draw();
            (i as usize, j as usize)
        }
    }

    /// Serve the next at-most-`max` buffered pairs, refilling an
    /// exhausted buffer with `max.min(BLOCK_PAIRS)` draws first.
    #[inline]
    pub fn sample_block(&mut self, max: usize, mut draw: impl FnMut() -> Pair) -> &[Pair] {
        if self.pos >= self.block.len() {
            let count = max.min(BLOCK_PAIRS);
            self.block.clear();
            self.block.reserve(count);
            for _ in 0..count {
                self.block.push(draw());
            }
            self.pos = 0;
        }
        let start = self.pos;
        let end = self.block.len().min(start + max);
        self.pos = end;
        &self.block[start..end]
    }

    /// Number of pairs currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.block.len() - self.pos
    }

    /// The buffered-but-unconsumed tail of the stream, in FIFO order —
    /// the part of a source's position that lives outside its RNG.
    /// Captured by [`ScheduleCursor`] so a restored source replays these
    /// pairs *before* drawing fresh ones, keeping resumption mid-block
    /// bit-exact.
    pub fn pending(&self) -> &[Pair] {
        &self.block[self.pos..]
    }

    /// A buffer whose unconsumed tail is exactly `pending` (used when
    /// restoring a source from a [`ScheduleCursor`]).
    pub fn with_pending(pending: Vec<Pair>) -> Self {
        Self {
            block: pending,
            pos: 0,
        }
    }
}

/// The serializable position of a pair source: the RNG state plus the
/// pre-sampled pairs that were buffered but not yet consumed when the
/// cursor was captured.
///
/// Both [`Schedule`] (where `start = 0`, `len = n`) and [`SubSchedule`]
/// export to this one shape, so a snapshot stores a `Vec<ScheduleCursor>`
/// with one entry per shard regardless of the execution path. The
/// restored source continues the pair stream **bit for bit**: it first
/// replays `pending`, then draws from the restored RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleCursor {
    /// Raw xoshiro256++ state words of the source's RNG.
    pub rng: [u64; 4],
    /// Population size the source draws pairs for.
    pub n: u64,
    /// First initiator index of the source's range (0 for [`Schedule`]).
    pub start: u64,
    /// Length of the initiator range (`n` for [`Schedule`]).
    pub len: u64,
    /// Buffered-but-unconsumed pairs, FIFO order (usually empty: the
    /// engine checkpoints at block boundaries, but the format does not
    /// rely on that).
    pub pending: Vec<Pair>,
    /// Topology specification words, **empty for the uniform sources**
    /// ([`Schedule`], [`SubSchedule`]). A graph-restricted source (the
    /// `topology` crate's `GraphSchedule`) stores its generator
    /// specification here so the graph — a deterministic function of
    /// the spec — can be regenerated at restore time instead of being
    /// serialized edge by edge. Uniform sources reject cursors whose
    /// `topo` is non-empty: restoring a graph cursor on the clique
    /// would silently change the pair distribution.
    pub topo: Vec<u64>,
}

/// Pair sources whose position can be exported to a [`ScheduleCursor`]
/// and later restored bit-exactly — the scheduler half of the
/// checkpoint/restore seam. Implemented by [`Schedule`] and
/// [`SubSchedule`]; adversarial sources in `scenarios` are not
/// checkpointable (they are measurement tools, not long-run engines).
pub trait CursorSource: PairSource + Sized {
    /// Capture the source's current position.
    fn cursor(&self) -> ScheduleCursor;

    /// Rebuild a source at the captured position. The restored source
    /// continues the pair stream of the captured one bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is malformed (zero RNG state, out-of-range
    /// bounds, or a range shape the implementing type cannot represent).
    /// Callers that load cursors from untrusted bytes validate first
    /// (the snapshot loader checks CRCs and bounds before this runs).
    fn from_cursor(cursor: ScheduleCursor) -> Self;
}

/// Seeded generator of uniform ordered pairs of distinct agents.
#[derive(Debug, Clone)]
pub struct Schedule {
    rng: SmallRng,
    n: usize,
    buf: BlockBuffer,
}

/// Draw one uniform ordered pair of distinct agents from a single
/// 64-bit RNG output.
///
/// The initiator is uniform over `0..n` (low 32 bits); the responder is
/// uniform over the remaining `n − 1` agents (high 32 bits, drawn from
/// `0..n−1` and skipping the initiator). This is the paper's uniform
/// scheduler. Index reduction uses the widening-multiply map
/// `(x · n) >> 32`, whose bias is below `n · 2⁻³²` (< 10⁻⁴ for every
/// population size this repository simulates) — orders of magnitude
/// under the sampling noise of any experiment here, in exchange for one
/// RNG output and zero rejection branches per pair.
///
/// This is the one canonical consumption of the RNG per pair — the
/// scalar and the batched path both go through this exact function,
/// which is what makes them trajectory-equivalent.
#[inline]
fn draw_pair(rng: &mut SmallRng, n: usize) -> Pair {
    // The full-range special case of the sub-schedule draw — delegating
    // (rather than duplicating the index maps) is what keeps the
    // `shards = 1 ≡ run_batched` anchor bit-identical *by construction*;
    // `start = 0` and `len = n` constant-fold away.
    draw_sub_pair(rng, n, 0, n)
}

impl Schedule {
    /// Create a schedule for a population of `n` agents, seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no pair of distinct agents exists) or
    /// `n > u32::MAX` (pairs are stored as `u32` indices).
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "population needs at least two agents");
        assert!(u32::try_from(n).is_ok(), "population size exceeds u32");
        Self {
            rng: SmallRng::seed_from_u64(seed),
            n,
            buf: BlockBuffer::new(),
        }
    }

    /// Population size this schedule draws pairs for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Draw the next ordered pair (scalar path). Consumes buffered pairs
    /// first so that scalar and batched consumption can be interleaved
    /// freely without perturbing the stream.
    #[inline]
    pub fn next_pair(&mut self) -> (usize, usize) {
        let (rng, n) = (&mut self.rng, self.n);
        self.buf.next_pair(|| draw_pair(rng, n))
    }

    /// Return the next at-most-`max` pairs of the stream as a block,
    /// pre-sampling a fresh buffer if the previous one is exhausted
    /// (batched path).
    ///
    /// The returned slice is nonempty for `max > 0`; callers loop until
    /// they have consumed as many pairs as they need.
    #[inline]
    pub fn sample_block(&mut self, max: usize) -> &[Pair] {
        let (rng, n) = (&mut self.rng, self.n);
        self.buf.sample_block(max, || draw_pair(rng, n))
    }

    /// Number of pairs currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.buffered()
    }
}

impl CursorSource for Schedule {
    fn cursor(&self) -> ScheduleCursor {
        ScheduleCursor {
            rng: self.rng.state(),
            n: self.n as u64,
            start: 0,
            len: self.n as u64,
            pending: self.buf.pending().to_vec(),
            topo: Vec::new(),
        }
    }

    fn from_cursor(cursor: ScheduleCursor) -> Self {
        assert!(
            cursor.start == 0 && cursor.len == cursor.n,
            "Schedule cursor must cover the full initiator range"
        );
        assert!(
            cursor.topo.is_empty(),
            "cursor carries a topology spec; restore it with GraphSchedule"
        );
        let n = usize::try_from(cursor.n).expect("population size exceeds usize");
        assert!(n >= 2, "population needs at least two agents");
        assert!(u32::try_from(n).is_ok(), "population size exceeds u32");
        Self {
            rng: SmallRng::from_state(cursor.rng),
            n,
            buf: BlockBuffer::with_pending(cursor.pending),
        }
    }
}

impl PairSource for Schedule {
    fn n(&self) -> usize {
        Schedule::n(self)
    }

    #[inline]
    fn next_pair(&mut self) -> (usize, usize) {
        Schedule::next_pair(self)
    }

    #[inline]
    fn sample_block(&mut self, max: usize) -> &[Pair] {
        Schedule::sample_block(self, max)
    }
}

/// Seed stride between sibling [`SubSchedule`]s of one split: shard `s`
/// is seeded with `seed + s · STRIDE` (wrapping). `SmallRng`'s seeding
/// expands a seed into four *consecutive* SplitMix64 outputs, so the
/// stride is **four** SplitMix64 increments: sibling shards then draw
/// disjoint, consecutive four-output windows of the same SplitMix64
/// orbit — the reference "seed a family of generators from one
/// SplitMix64 stream" construction. (A stride of one increment would
/// make adjacent shards' state windows overlap in three of four
/// words.) Shard 0's seed is exactly the base seed, which is what makes
/// a 1-shard split reproduce [`Schedule`] bit for bit.
pub const SHARD_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(4);

/// A range-restricted uniform sub-schedule: the initiator is uniform
/// over a contiguous slice `start..start+len` of the population, the
/// responder uniform over the remaining `n − 1` agents — the per-shard
/// pair stream of the sharded simulator (`crates/shard`).
///
/// The draw consumes exactly one RNG output per pair with the same
/// widening-multiply index maps as [`Schedule`], so a `SubSchedule`
/// covering the **full** range (`start = 0`, `len = n`) seeded with `s`
/// produces *bit for bit* the stream of `Schedule::new(n, s)` — the
/// anchor of the sharded engine's `shards = 1 ≡ run_batched`
/// equivalence. A balanced family of sub-schedules (one per shard,
/// each drawing the same number of pairs per block) approximates the
/// uniform scheduler: initiators are uniform within each shard and
/// shards are served equally, so the initiator marginal deviates from
/// uniform only through the ≤ 1 agent size imbalance between shards.
#[derive(Debug, Clone)]
pub struct SubSchedule {
    rng: SmallRng,
    n: usize,
    start: usize,
    len: usize,
    buf: BlockBuffer,
}

/// Draw one pair whose initiator is uniform over `start..start+len` and
/// whose responder is uniform over the other `n − 1` agents, from a
/// single 64-bit RNG output. This is the canonical pair draw:
/// [`draw_pair`] is its full-range special case (the uniform
/// scheduler), delegated rather than duplicated so the two can never
/// drift apart.
#[inline]
fn draw_sub_pair(rng: &mut SmallRng, n: usize, start: usize, len: usize) -> Pair {
    let bits = rng.next_u64();
    let i = start as u32 + (((bits & 0xFFFF_FFFF) * len as u64) >> 32) as u32;
    let r = (((bits >> 32) * (n as u64 - 1)) >> 32) as u32;
    let j = if r >= i { r + 1 } else { r };
    (i, j)
}

impl SubSchedule {
    /// A sub-schedule over the initiator range `start..start+len` of a
    /// population of `n` agents, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `n > u32::MAX`, the range is empty, or the
    /// range exceeds the population.
    pub fn new(n: usize, start: usize, len: usize, seed: u64) -> Self {
        assert!(n >= 2, "population needs at least two agents");
        assert!(u32::try_from(n).is_ok(), "population size exceeds u32");
        assert!(len >= 1, "initiator range must be nonempty");
        assert!(
            start.checked_add(len).is_some_and(|end| end <= n),
            "initiator range {start}..{} exceeds population {n}",
            start + len
        );
        Self {
            rng: SmallRng::seed_from_u64(seed),
            n,
            start,
            len,
            buf: BlockBuffer::new(),
        }
    }

    /// Split the uniform scheduler into `shards` balanced sub-schedules:
    /// shard `s` owns the contiguous initiator range
    /// `⌈s·n/shards⌉ .. ⌈(s+1)·n/shards⌉` (sizes differ by at most one)
    /// and is seeded `seed + s ·`[`SHARD_SEED_STRIDE`]. With
    /// `shards = 1` the single sub-schedule reproduces
    /// `Schedule::new(n, seed)` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `shards` is not in `1..=n`.
    pub fn split(n: usize, seed: u64, shards: usize) -> Vec<SubSchedule> {
        assert!(n >= 2, "population needs at least two agents");
        assert!(
            (1..=n).contains(&shards),
            "shard count must be within 1..=n"
        );
        (0..shards)
            .map(|s| {
                let start = (s * n).div_ceil(shards);
                let end = ((s + 1) * n).div_ceil(shards);
                let shard_seed = seed.wrapping_add((s as u64).wrapping_mul(SHARD_SEED_STRIDE));
                SubSchedule::new(n, start, end - start, shard_seed)
            })
            .collect()
    }

    /// The initiator range `[start, start + len)` this sub-schedule
    /// draws from.
    pub fn range(&self) -> (usize, usize) {
        (self.start, self.start + self.len)
    }
}

impl CursorSource for SubSchedule {
    fn cursor(&self) -> ScheduleCursor {
        ScheduleCursor {
            rng: self.rng.state(),
            n: self.n as u64,
            start: self.start as u64,
            len: self.len as u64,
            pending: self.buf.pending().to_vec(),
            topo: Vec::new(),
        }
    }

    fn from_cursor(cursor: ScheduleCursor) -> Self {
        assert!(
            cursor.topo.is_empty(),
            "cursor carries a topology spec; restore it with GraphSchedule"
        );
        let n = usize::try_from(cursor.n).expect("population size exceeds usize");
        let start = usize::try_from(cursor.start).expect("range start exceeds usize");
        let len = usize::try_from(cursor.len).expect("range length exceeds usize");
        assert!(n >= 2, "population needs at least two agents");
        assert!(u32::try_from(n).is_ok(), "population size exceeds u32");
        assert!(len >= 1, "initiator range must be nonempty");
        assert!(
            start.checked_add(len).is_some_and(|end| end <= n),
            "initiator range {start}..{} exceeds population {n}",
            start + len
        );
        Self {
            rng: SmallRng::from_state(cursor.rng),
            n,
            start,
            len,
            buf: BlockBuffer::with_pending(cursor.pending),
        }
    }
}

impl PairSource for SubSchedule {
    fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn next_pair(&mut self) -> (usize, usize) {
        let (rng, n, start, len) = (&mut self.rng, self.n, self.start, self.len);
        self.buf.next_pair(|| draw_sub_pair(rng, n, start, len))
    }

    #[inline]
    fn sample_block(&mut self, max: usize) -> &[Pair] {
        let (rng, n, start, len) = (&mut self.rng, self.n, self.start, self.len);
        self.buf
            .sample_block(max, || draw_sub_pair(rng, n, start, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_scalar(s: &mut Schedule, count: usize) -> Vec<(usize, usize)> {
        (0..count).map(|_| s.next_pair()).collect()
    }

    #[test]
    fn pairs_are_distinct_and_in_range() {
        let mut s = Schedule::new(17, 1);
        for _ in 0..10_000 {
            let (i, j) = s.next_pair();
            assert!(i < 17 && j < 17);
            assert_ne!(i, j);
        }
    }

    #[test]
    fn block_and_scalar_produce_the_same_stream() {
        let mut scalar = Schedule::new(100, 42);
        let mut blocked = Schedule::new(100, 42);
        let expected = drain_scalar(&mut scalar, 10_000);
        let mut got = Vec::new();
        while got.len() < 10_000 {
            let block = blocked.sample_block(10_000 - got.len());
            got.extend(block.iter().map(|&(i, j)| (i as usize, j as usize)));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn interleaving_scalar_and_block_consumption_is_seamless() {
        let mut reference = Schedule::new(50, 7);
        let expected = drain_scalar(&mut reference, 5000);

        let mut mixed = Schedule::new(50, 7);
        let mut got = Vec::new();
        // Alternate: a few scalar draws, then a block, repeatedly — the
        // stream must be identical to pure scalar consumption.
        while got.len() < 5000 {
            for _ in 0..3 {
                if got.len() < 5000 {
                    got.push(mixed.next_pair());
                }
            }
            let want = (5000 - got.len()).min(37);
            if want > 0 {
                let block: Vec<Pair> = mixed.sample_block(want).to_vec();
                got.extend(block.iter().map(|&(i, j)| (i as usize, j as usize)));
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn block_sizes_do_not_change_the_stream() {
        let take = |block_req: usize| {
            let mut s = Schedule::new(20, 9);
            let mut got = Vec::new();
            while got.len() < 3000 {
                let want = (3000 - got.len()).min(block_req);
                got.extend(s.sample_block(want).to_vec());
            }
            got
        };
        let a = take(1);
        let b = take(64);
        let c = take(4096);
        let d = take(1000);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(c, d);
    }

    #[test]
    fn initiator_distribution_is_uniform() {
        let n = 8;
        let mut s = Schedule::new(n, 3);
        let mut counts = vec![0u32; n];
        for _ in 0..80_000 {
            counts[s.next_pair().0] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "initiator count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn rejects_singleton_population() {
        let _ = Schedule::new(1, 0);
    }

    #[test]
    fn trait_consumption_matches_inherent_consumption() {
        let mut inherent = Schedule::new(30, 5);
        let mut via_trait = Schedule::new(30, 5);
        let dynamic: &mut dyn PairSource = &mut via_trait;
        assert_eq!(dynamic.n(), 30);
        for _ in 0..500 {
            assert_eq!(inherent.next_pair(), dynamic.next_pair());
        }
        let a: Vec<Pair> = inherent.sample_block(64).to_vec();
        let b: Vec<Pair> = dynamic.sample_block(64).to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn full_range_sub_schedule_matches_schedule_bit_for_bit() {
        // The anchor of the sharded engine's shards = 1 equivalence: a
        // sub-schedule over the whole population is the uniform
        // scheduler, same seed, same stream.
        let mut reference = Schedule::new(33, 1234);
        let mut sub = SubSchedule::new(33, 0, 33, 1234);
        for _ in 0..10_000 {
            assert_eq!(reference.next_pair(), sub.next_pair());
        }
    }

    #[test]
    fn split_with_one_shard_is_the_uniform_scheduler() {
        let mut shards = SubSchedule::split(20, 77, 1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].range(), (0, 20));
        let mut reference = Schedule::new(20, 77);
        for _ in 0..3000 {
            assert_eq!(reference.next_pair(), shards[0].next_pair());
        }
    }

    #[test]
    fn split_ranges_are_balanced_and_cover_the_population() {
        for (n, shards) in [(10, 3), (16, 4), (7, 7), (100, 8), (5, 2)] {
            let subs = SubSchedule::split(n, 0, shards);
            let mut next = 0;
            for sub in &subs {
                let (start, end) = sub.range();
                assert_eq!(start, next, "ranges must be contiguous");
                let len = end - start;
                assert!(
                    (n / shards..=n.div_ceil(shards)).contains(&len),
                    "n={n} shards={shards}: shard size {len} unbalanced"
                );
                next = end;
            }
            assert_eq!(next, n, "ranges must cover the population");
        }
    }

    #[test]
    fn sub_schedule_pairs_are_valid_and_initiators_stay_in_range() {
        let mut sub = SubSchedule::new(29, 10, 9, 5);
        for _ in 0..20_000 {
            let (i, j) = sub.next_pair();
            assert!((10..19).contains(&i), "initiator {i} out of range");
            assert!(j < 29, "responder {j} out of range");
            assert_ne!(i, j);
        }
    }

    #[test]
    fn sub_schedule_responders_reach_the_whole_population() {
        let n = 12;
        let mut sub = SubSchedule::new(n, 4, 2, 3);
        let mut seen = vec![false; n];
        for _ in 0..10_000 {
            seen[sub.next_pair().1] = true;
        }
        let reachable = seen.iter().filter(|&&b| b).count();
        assert!(reachable >= n - 1, "responders must span the population");
    }

    #[test]
    fn sub_schedule_block_and_scalar_share_the_stream() {
        let mut scalar = SubSchedule::new(40, 8, 12, 9);
        let mut blocked = SubSchedule::new(40, 8, 12, 9);
        let expected: Vec<(usize, usize)> = (0..3000).map(|_| scalar.next_pair()).collect();
        let mut got = Vec::new();
        while got.len() < 3000 {
            let block = blocked.sample_block(3000 - got.len()).to_vec();
            got.extend(block.iter().map(|&(i, j)| (i as usize, j as usize)));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn sibling_shard_seed_windows_do_not_overlap() {
        // SmallRng::seed_from_u64 expands a seed into the four SplitMix64
        // outputs at orbit positions seed+G .. seed+4G (G = the SplitMix64
        // increment). The shard stride must keep sibling windows disjoint:
        // a stride of exactly G would overlap three of four state words.
        fn splitmix_window(seed: u64) -> Vec<u64> {
            let mut state = seed;
            (0..4)
                .map(|_| {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^ (z >> 31)
                })
                .collect()
        }
        let seed = 0xDEAD_BEEF_u64;
        let windows: Vec<Vec<u64>> = (0..8)
            .map(|s| splitmix_window(seed.wrapping_add((s as u64).wrapping_mul(SHARD_SEED_STRIDE))))
            .collect();
        for (a, wa) in windows.iter().enumerate() {
            for (b, wb) in windows.iter().enumerate() {
                if a != b {
                    assert!(
                        wa.iter().all(|x| !wb.contains(x)),
                        "shards {a} and {b} share SplitMix64 outputs"
                    );
                }
            }
        }
    }

    #[test]
    fn sibling_shard_streams_differ() {
        let mut subs = SubSchedule::split(16, 11, 2);
        let (a, b) = subs.split_at_mut(1);
        let first: Vec<_> = (0..100).map(|_| a[0].next_pair().1).collect();
        let second: Vec<_> = (0..100).map(|_| b[0].next_pair().1).collect();
        assert_ne!(first, second, "sibling shards must not share a stream");
    }

    #[test]
    #[should_panic(expected = "exceeds population")]
    fn sub_schedule_rejects_out_of_bounds_range() {
        let _ = SubSchedule::new(10, 8, 4, 0);
    }

    #[test]
    #[should_panic(expected = "shard count must be within")]
    fn split_rejects_more_shards_than_agents() {
        let _ = SubSchedule::split(4, 0, 5);
    }

    #[test]
    fn schedule_cursor_round_trip_continues_the_stream() {
        let mut original = Schedule::new(64, 99);
        for _ in 0..1000 {
            original.next_pair();
        }
        let mut restored = Schedule::from_cursor(original.cursor());
        for _ in 0..5000 {
            assert_eq!(original.next_pair(), restored.next_pair());
        }
    }

    #[test]
    fn cursor_pending_pairs_replay_before_fresh_draws() {
        // A cursor whose `pending` is non-empty (the engine's own
        // buffers drain within each block, so this arises only from a
        // snapshot written by a differently-buffered implementation —
        // the format supports it regardless): the restored source must
        // replay the pending tail first, then continue from the RNG.
        let mut reference = Schedule::new(32, 5);
        let expected = drain_scalar(&mut reference, 100);

        // Reconstruct that exact position "5 pairs into the stream,
        // with those 5 pairs still buffered": RNG advanced past them,
        // pairs carried in `pending`.
        let mut advanced = Schedule::new(32, 5);
        let replay: Vec<Pair> = (0..5)
            .map(|_| {
                let (i, j) = advanced.next_pair();
                (i as u32, j as u32)
            })
            .collect();
        let mut cursor = advanced.cursor();
        cursor.pending = replay;

        let mut restored = Schedule::from_cursor(cursor);
        let got = drain_scalar(&mut restored, 100);
        assert_eq!(got, expected);
    }

    #[test]
    fn restored_schedule_mixed_consumption_matches() {
        // The restored source must honor the FIFO single-stream contract
        // across consumption styles, exactly like a fresh one.
        let mut a = Schedule::new(48, 21);
        for _ in 0..777 {
            a.next_pair();
        }
        let mut b = Schedule::from_cursor(a.cursor());
        let got_a = drain_scalar(&mut a, 4000);
        let mut got_b = Vec::new();
        while got_b.len() < 4000 {
            got_b.push(b.next_pair());
            let want = (4000 - got_b.len()).min(13);
            got_b.extend(
                b.sample_block(want)
                    .iter()
                    .map(|&(i, j)| (i as usize, j as usize)),
            );
        }
        assert_eq!(got_b, got_a);
    }

    #[test]
    fn sub_schedule_cursor_round_trip_continues_the_stream() {
        let mut original = SubSchedule::new(40, 10, 11, 123);
        for _ in 0..500 {
            original.next_pair();
        }
        let _ = original.sample_block(7); // leave a partial buffer behind
        let cursor = original.cursor();
        assert_eq!(cursor.start, 10);
        assert_eq!(cursor.len, 11);
        let mut restored = SubSchedule::from_cursor(cursor);
        assert_eq!(restored.range(), (10, 21));
        for _ in 0..5000 {
            assert_eq!(original.next_pair(), restored.next_pair());
        }
    }

    #[test]
    #[should_panic(expected = "full initiator range")]
    fn schedule_rejects_partial_range_cursor() {
        let sub = SubSchedule::new(20, 5, 5, 1);
        let _ = Schedule::from_cursor(sub.cursor());
    }

    #[test]
    #[should_panic(expected = "exceeds population")]
    fn sub_schedule_rejects_out_of_bounds_cursor() {
        let mut cursor = SubSchedule::new(20, 5, 5, 1).cursor();
        cursor.start = 18;
        let _ = SubSchedule::from_cursor(cursor);
    }

    #[test]
    fn block_buffer_interleaves_fifo() {
        // A counting draw function: the buffer must hand values back in
        // exactly the order they were drawn, across both styles.
        let mut next = 0u32;
        // Captures `next` by mutable reference: the counter advances
        // across every consumption style below.
        let mut draw = || {
            next += 1;
            (next, next + 1)
        };
        let mut buf = BlockBuffer::new();
        let first = buf.sample_block(3, &mut draw).to_vec();
        assert_eq!(first, vec![(1, 2), (2, 3), (3, 4)]);
        assert_eq!(buf.buffered(), 0);
        assert_eq!(buf.next_pair(&mut draw), (4, 5));
        let rest = buf.sample_block(2, &mut draw).to_vec();
        assert_eq!(rest, vec![(5, 6), (6, 7)]);
    }
}
