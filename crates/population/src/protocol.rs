use std::fmt::Debug;

/// A population protocol: a state space and a common transition function
/// over ordered pairs of agents.
///
/// The model follows Section III of the paper: in each time step two agents
/// are chosen uniformly at random; the first argument of
/// [`transition`](Protocol::transition) is the *initiator* `u`, the second
/// the *responder* `v`. Protocols whose pseudocode is symmetric simply
/// ignore the distinction.
///
/// Implementations must be deterministic: all randomness comes from the
/// scheduler (and from *synthetic coins* stored inside agent states, as in
/// Section V of the paper). This is what makes every simulation exactly
/// reproducible from a seed.
pub trait Protocol {
    /// Per-agent state. Kept `Clone + PartialEq + Debug` so the engine can
    /// detect state changes and report configurations in test failures.
    type State: Clone + PartialEq + Debug;

    /// The population size `n` this protocol instance is configured for.
    ///
    /// Population protocols in this paper assume exact knowledge of `n`
    /// (required for ranking; see Theorem 1 of Cai et al. cited in
    /// Section IV), so the protocol value carries it.
    fn n(&self) -> usize;

    /// Apply one interaction to `(initiator, responder)`, mutating the
    /// states in place. Returns `true` iff either state changed.
    ///
    /// **Contract:** the flag must have no false negatives — returning
    /// `false` asserts that *neither* state was mutated, and the batched
    /// engine uses it to skip the write-back of null interactions (a
    /// silent configuration then dirties no cache lines). Returning a
    /// spurious `true` for an unchanged pair is always safe, merely
    /// unoptimized.
    fn transition(&self, initiator: &mut Self::State, responder: &mut Self::State) -> bool;
}

/// A [`Protocol`] that additionally offers a *packed* machine-word
/// state representation with its own transition path.
///
/// Structured state types (nested enums with per-role counters) are the
/// readable reference representation, but they cost the hot loop dearly:
/// a three-level enum occupies several words, and its transition walks a
/// tree of matches. Protocols whose state space fits in one machine word
/// (the whole point of the paper's `n + O(log² n)` construction) can
/// expose a lossless codec plus a transition that operates on the packed
/// words directly.
///
/// The contract, property-tested for every implementation:
///
/// * `unpack(pack(s)) == s` for every valid state `s`, and
///   `pack(unpack(w)) == w` for every word `w` produced by `pack`;
/// * [`transition_packed`](PackedProtocol::transition_packed) commutes
///   with the codec: packing, stepping packed, and unpacking yields
///   exactly what [`Protocol::transition`] yields — bit-for-bit, so the
///   packed path is a pure optimization exactly like the batched loop.
///
/// Run a protocol packed by wrapping it in [`Packed`], which implements
/// [`Protocol`] over the packed words: the simulator then stores the
/// population as a flat `Vec` of words (structure-of-arrays layout) and
/// never unpacks on the hot path. Observation and fault injection
/// unpack only at their boundaries — see
/// [`observe::Unpacked`](crate::observe::Unpacked) and
/// [`UnpackedHook`](crate::UnpackedHook).
pub trait PackedProtocol: Protocol {
    /// The packed word type (typically a `#[repr(transparent)]` wrapper
    /// over `u64`).
    type Packed: Copy + PartialEq + Debug;

    /// Encode a state into its packed word (lossless).
    fn pack(&self, state: &Self::State) -> Self::Packed;

    /// Decode a packed word back into the structured state.
    fn unpack(&self, word: Self::Packed) -> Self::State;

    /// Apply one interaction directly on packed words; must be
    /// trajectory-equivalent to [`Protocol::transition`] through the
    /// codec. Returns `true` iff either word changed.
    fn transition_packed(&self, u: &mut Self::Packed, v: &mut Self::Packed) -> bool;
}

/// Adapter running a [`PackedProtocol`] over its packed words: the
/// simulator's state vector becomes a flat `Vec<P::Packed>` and every
/// interaction dispatches to
/// [`transition_packed`](PackedProtocol::transition_packed).
///
/// ```ignore
/// let protocol = Packed(StableRanking::new(Params::new(n)));
/// let init = protocol.pack_all(&protocol.inner().initial());
/// let mut sim = Simulator::new(protocol, init, seed);
/// sim.run_batched(1_000_000); // hot loop over u64 words
/// ```
#[derive(Debug, Clone)]
pub struct Packed<P>(pub P);

impl<P: PackedProtocol> Packed<P> {
    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.0
    }

    /// Pack a whole configuration.
    pub fn pack_all(&self, states: &[P::State]) -> Vec<P::Packed> {
        states.iter().map(|s| self.0.pack(s)).collect()
    }

    /// Unpack a whole configuration (the observation-boundary inverse
    /// of [`pack_all`](Packed::pack_all)).
    pub fn unpack_all(&self, words: &[P::Packed]) -> Vec<P::State> {
        words.iter().map(|&w| self.0.unpack(w)).collect()
    }
}

impl<P: PackedProtocol> Protocol for Packed<P> {
    type State = P::Packed;

    fn n(&self) -> usize {
        self.0.n()
    }

    fn transition(&self, u: &mut Self::State, v: &mut Self::State) -> bool {
        self.0.transition_packed(u, v)
    }
}

/// Output map for ranking protocols: the rank an agent currently outputs,
/// or `None` while unranked.
///
/// This decouples the engine's convergence predicates
/// ([`crate::is_valid_ranking`]) from any particular protocol's state
/// representation.
pub trait RankOutput {
    /// The rank in `1..=n` output by this state, if any.
    fn rank(&self) -> Option<u64>;
}

/// Output map for protocols with a designated adversary subset: each
/// state knows whether its agent is *honest* (executes the protocol) or
/// a persistent (Byzantine) adversary.
///
/// With `k` persistent adversaries, a self-stabilization claim can only
/// be made about the `n − k` honest agents — the adversaries never
/// converge by definition. This trait is the seam between the engine's
/// honest-subset predicates ([`crate::is_valid_honest_ranking`], the
/// [`HonestRanking`](crate::observe::HonestRanking) observer) and the
/// `scenarios` crate's `Byzantine` protocol wrapper, whose wrapped
/// states implement it.
pub trait HonestOutput: RankOutput {
    /// Is this agent honest (i.e. not a designated adversary)?
    fn is_honest(&self) -> bool;
}
