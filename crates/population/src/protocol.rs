use std::fmt::Debug;

/// A population protocol: a state space and a common transition function
/// over ordered pairs of agents.
///
/// The model follows Section III of the paper: in each time step two agents
/// are chosen uniformly at random; the first argument of
/// [`transition`](Protocol::transition) is the *initiator* `u`, the second
/// the *responder* `v`. Protocols whose pseudocode is symmetric simply
/// ignore the distinction.
///
/// Implementations must be deterministic: all randomness comes from the
/// scheduler (and from *synthetic coins* stored inside agent states, as in
/// Section V of the paper). This is what makes every simulation exactly
/// reproducible from a seed.
pub trait Protocol {
    /// Per-agent state. Kept `Clone + PartialEq + Debug` so the engine can
    /// detect state changes and report configurations in test failures.
    type State: Clone + PartialEq + Debug;

    /// The population size `n` this protocol instance is configured for.
    ///
    /// Population protocols in this paper assume exact knowledge of `n`
    /// (required for ranking; see Theorem 1 of Cai et al. cited in
    /// Section IV), so the protocol value carries it.
    fn n(&self) -> usize;

    /// Apply one interaction to `(initiator, responder)`, mutating the
    /// states in place. Returns `true` iff either state changed.
    ///
    /// The return value is advisory (used by observers and tests); the
    /// engine does not rely on it for correctness.
    fn transition(&self, initiator: &mut Self::State, responder: &mut Self::State) -> bool;
}

/// Output map for ranking protocols: the rank an agent currently outputs,
/// or `None` while unranked.
///
/// This decouples the engine's convergence predicates
/// ([`crate::is_valid_ranking`]) from any particular protocol's state
/// representation.
pub trait RankOutput {
    /// The rank in `1..=n` output by this state, if any.
    fn rank(&self) -> Option<u64>;
}
