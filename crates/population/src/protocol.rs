use std::fmt::Debug;

use crate::pairs::pair_mut;
use crate::schedule::Pair;

/// A population protocol: a state space and a common transition function
/// over ordered pairs of agents.
///
/// The model follows Section III of the paper: in each time step two agents
/// are chosen uniformly at random; the first argument of
/// [`transition`](Protocol::transition) is the *initiator* `u`, the second
/// the *responder* `v`. Protocols whose pseudocode is symmetric simply
/// ignore the distinction.
///
/// Implementations must be deterministic: all randomness comes from the
/// scheduler (and from *synthetic coins* stored inside agent states, as in
/// Section V of the paper). This is what makes every simulation exactly
/// reproducible from a seed.
pub trait Protocol {
    /// Per-agent state. Kept `Clone + PartialEq + Debug` so the engine can
    /// detect state changes and report configurations in test failures.
    type State: Clone + PartialEq + Debug;

    /// The population size `n` this protocol instance is configured for.
    ///
    /// Population protocols in this paper assume exact knowledge of `n`
    /// (required for ranking; see Theorem 1 of Cai et al. cited in
    /// Section IV), so the protocol value carries it.
    fn n(&self) -> usize;

    /// Apply one interaction to `(initiator, responder)`, mutating the
    /// states in place. Returns `true` iff either state changed.
    ///
    /// **Contract:** the flag must have no false negatives — returning
    /// `false` asserts that *neither* state was mutated, and the batched
    /// engine uses it to skip the write-back of null interactions (a
    /// silent configuration then dirties no cache lines). Returning a
    /// spurious `true` for an unchanged pair is always safe, merely
    /// unoptimized.
    fn transition(&self, initiator: &mut Self::State, responder: &mut Self::State) -> bool;

    /// Apply a whole block of scheduled `pairs` to `states`, in draw
    /// order, returning the number of interactions that changed a state
    /// (same no-false-negatives contract as the per-pair `changed`
    /// flag). This is the batched engine's per-block entry point:
    /// [`Simulator::run_batched`](crate::Simulator::run_batched) and the
    /// sharded intra-phase lanes call it once per block instead of
    /// dispatching per pair.
    ///
    /// The default is the scalar reference loop: split-borrow both
    /// states ([`pair_mut`]) and run [`transition`](Protocol::transition)
    /// on each pair in order — copy-free (no per-pair clones), and
    /// bit-for-bit what `count` calls of
    /// [`step`](crate::Simulator::step) would do. Implementations may
    /// override it with a block kernel (see
    /// [`BatchedProtocol`] and `StableRanking`'s transition kernel), but
    /// must preserve exact trajectory equivalence with the scalar loop —
    /// including when `pairs` repeats an agent index, where the later
    /// pair must observe the earlier pair's writes.
    ///
    /// # Panics
    ///
    /// May panic if a pair has `i == j` or an index out of bounds;
    /// [`PairSource`](crate::PairSource) implementations never produce
    /// such pairs.
    fn transition_block(&self, states: &mut [Self::State], pairs: &[Pair]) -> u64 {
        let mut changed = 0;
        for &(i, j) in pairs {
            let (u, v) = pair_mut(states, i as usize, j as usize);
            changed += u64::from(self.transition(u, v));
        }
        changed
    }
}

/// A [`Protocol`] that additionally offers a *packed* machine-word
/// state representation with its own transition path.
///
/// Structured state types (nested enums with per-role counters) are the
/// readable reference representation, but they cost the hot loop dearly:
/// a three-level enum occupies several words, and its transition walks a
/// tree of matches. Protocols whose state space fits in one machine word
/// (the whole point of the paper's `n + O(log² n)` construction) can
/// expose a lossless codec plus a transition that operates on the packed
/// words directly.
///
/// The contract, property-tested for every implementation:
///
/// * `unpack(pack(s)) == s` for every valid state `s`, and
///   `pack(unpack(w)) == w` for every word `w` produced by `pack`;
/// * [`transition_packed`](PackedProtocol::transition_packed) commutes
///   with the codec: packing, stepping packed, and unpacking yields
///   exactly what [`Protocol::transition`] yields — bit-for-bit, so the
///   packed path is a pure optimization exactly like the batched loop.
///
/// Run a protocol packed by wrapping it in [`Packed`], which implements
/// [`Protocol`] over the packed words: the simulator then stores the
/// population as a flat `Vec` of words (structure-of-arrays layout) and
/// never unpacks on the hot path. Observation and fault injection
/// unpack only at their boundaries — see
/// [`observe::Unpacked`](crate::observe::Unpacked) and
/// [`UnpackedHook`](crate::UnpackedHook).
pub trait PackedProtocol: Protocol {
    /// The packed word type (typically a `#[repr(transparent)]` wrapper
    /// over `u64`).
    type Packed: Copy + PartialEq + Debug;

    /// Encode a state into its packed word (lossless).
    fn pack(&self, state: &Self::State) -> Self::Packed;

    /// Decode a packed word back into the structured state.
    fn unpack(&self, word: Self::Packed) -> Self::State;

    /// Apply one interaction directly on packed words; must be
    /// trajectory-equivalent to [`Protocol::transition`] through the
    /// codec. Returns `true` iff either word changed.
    fn transition_packed(&self, u: &mut Self::Packed, v: &mut Self::Packed) -> bool;
}

/// The block-kernel seam: a [`PackedProtocol`] that can execute a whole
/// schedule block of interactions over the flat word array in one call.
///
/// Running pair-at-a-time, every interaction pays the full dispatch
/// cost — role classification branches, hazard-free but serialized
/// loads — and the branch predictor sees an unpredictable interleaving
/// of transition classes. A block kernel instead *gathers* the words
/// for a block of pairs, classifies every pair with branchless mask
/// tests, partitions the block into per-class lanes, and runs each lane
/// as a tight uniform loop (see `StableRanking`'s
/// `ranking::stable::kernel`). [`Packed`] routes
/// [`Protocol::transition_block`] here, so a packed simulation picks up
/// the kernel automatically wherever blocks are executed
/// ([`Simulator::run_batched`](crate::Simulator::run_batched),
/// `run_faulted`, the sharded intra-phase lanes).
///
/// The contract is exact trajectory equivalence: the override must be
/// bit-for-bit equal to running
/// [`transition_packed`](PackedProtocol::transition_packed) over the
/// pairs in draw order — including *intra-block hazards*, where a pair
/// touches an agent an earlier pair in the same block also touched and
/// must observe its writes (kernels split the block at such conflicts).
/// The provided default is exactly that scalar loop, so
/// `impl BatchedProtocol for X {}` is always a correct starting point.
///
/// To run a packed protocol *without* its kernel (A/B benchmarking,
/// differential tests), wrap it in [`ScalarBlock`].
pub trait BatchedProtocol: PackedProtocol {
    /// Apply a whole block of scheduled `pairs` to the packed `words`,
    /// in draw order; returns the number of word-changing interactions.
    /// Must be bit-for-bit trajectory-equivalent to the scalar
    /// [`transition_packed`](PackedProtocol::transition_packed) loop
    /// (the provided default).
    fn transition_block(&self, words: &mut [Self::Packed], pairs: &[Pair]) -> u64 {
        let mut changed = 0;
        for &(i, j) in pairs {
            let (u, v) = pair_mut(words, i as usize, j as usize);
            changed += u64::from(self.transition_packed(u, v));
        }
        changed
    }
}

/// Adapter running a [`PackedProtocol`] over its packed words: the
/// simulator's state vector becomes a flat `Vec<P::Packed>` and every
/// interaction dispatches to
/// [`transition_packed`](PackedProtocol::transition_packed).
///
/// ```ignore
/// let protocol = Packed(StableRanking::new(Params::new(n)));
/// let init = protocol.pack_all(&protocol.inner().initial());
/// let mut sim = Simulator::new(protocol, init, seed);
/// sim.run_batched(1_000_000); // hot loop over u64 words
/// ```
#[derive(Debug, Clone)]
pub struct Packed<P>(pub P);

impl<P: PackedProtocol> Packed<P> {
    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.0
    }

    /// Pack a whole configuration.
    pub fn pack_all(&self, states: &[P::State]) -> Vec<P::Packed> {
        states.iter().map(|s| self.0.pack(s)).collect()
    }

    /// Unpack a whole configuration (the observation-boundary inverse
    /// of [`pack_all`](Packed::pack_all)).
    pub fn unpack_all(&self, words: &[P::Packed]) -> Vec<P::State> {
        words.iter().map(|&w| self.0.unpack(w)).collect()
    }
}

impl<P: BatchedProtocol> Protocol for Packed<P> {
    type State = P::Packed;

    fn n(&self) -> usize {
        self.0.n()
    }

    fn transition(&self, u: &mut Self::State, v: &mut Self::State) -> bool {
        self.0.transition_packed(u, v)
    }

    fn transition_block(&self, states: &mut [Self::State], pairs: &[Pair]) -> u64 {
        // UFCS: both `Protocol` and `BatchedProtocol` name a
        // `transition_block`, and here they operate on the same word
        // type — this is the dispatch point that hands blocks to the
        // protocol's kernel (or the scalar default).
        BatchedProtocol::transition_block(&self.0, states, pairs)
    }
}

/// Adapter forcing the default *scalar* block path for a protocol,
/// bypassing any [`BatchedProtocol`] kernel it may have.
///
/// `ScalarBlock(Packed(p))` runs the packed representation with the
/// pair-at-a-time reference loop — the A/B twin of `Packed(p)` (which
/// dispatches blocks to the kernel). Used by the `engine_throughput`
/// bench to report kernel and scalar-packed rows side by side, and by
/// the differential tests in `tests/packed_equivalence.rs`.
#[derive(Debug, Clone)]
pub struct ScalarBlock<P>(pub P);

impl<P: Protocol> Protocol for ScalarBlock<P> {
    type State = P::State;

    fn n(&self) -> usize {
        self.0.n()
    }

    fn transition(&self, u: &mut Self::State, v: &mut Self::State) -> bool {
        self.0.transition(u, v)
    }
    // No `transition_block` override: blocks run through the provided
    // scalar split-borrow loop regardless of the inner protocol.
}

/// Output map for ranking protocols: the rank an agent currently outputs,
/// or `None` while unranked.
///
/// This decouples the engine's convergence predicates
/// ([`crate::is_valid_ranking`]) from any particular protocol's state
/// representation.
pub trait RankOutput {
    /// The rank in `1..=n` output by this state, if any.
    fn rank(&self) -> Option<u64>;
}

/// Output map for protocols with a designated adversary subset: each
/// state knows whether its agent is *honest* (executes the protocol) or
/// a persistent (Byzantine) adversary.
///
/// With `k` persistent adversaries, a self-stabilization claim can only
/// be made about the `n − k` honest agents — the adversaries never
/// converge by definition. This trait is the seam between the engine's
/// honest-subset predicates ([`crate::is_valid_honest_ranking`], the
/// [`HonestRanking`](crate::observe::HonestRanking) observer) and the
/// `scenarios` crate's `Byzantine` protocol wrapper, whose wrapped
/// states implement it.
pub trait HonestOutput: RankOutput {
    /// Is this agent honest (i.e. not a designated adversary)?
    fn is_honest(&self) -> bool;
}
