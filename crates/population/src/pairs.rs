/// Borrow two distinct elements of a slice mutably at the same time.
///
/// Implemented over [`slice::get_disjoint_mut`], which compiles to two
/// bounds checks plus one overlap compare — cheap enough for the batched
/// engine's inner loop (the `split_at_mut` formulation this replaces
/// cost an extra ordering branch and re-slicing per pair).
///
/// # Panics
///
/// Panics if `i == j` or either index is out of bounds — both indicate a
/// scheduler bug, so failing loudly is preferred over an `Option` return.
///
/// ```
/// let mut v = vec![10, 20, 30];
/// let (a, b) = population::pair_mut(&mut v, 2, 0);
/// std::mem::swap(a, b);
/// assert_eq!(v, [30, 20, 10]);
/// ```
#[inline]
pub fn pair_mut<T>(slice: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    match slice.get_disjoint_mut([i, j]) {
        Ok([a, b]) => (a, b),
        Err(e) => panic!("pair_mut requires distinct in-bounds indices, got ({i}, {j}): {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_requested_elements_in_order() {
        let mut v = vec![1, 2, 3, 4];
        {
            let (a, b) = pair_mut(&mut v, 1, 3);
            assert_eq!((*a, *b), (2, 4));
            *a = 20;
            *b = 40;
        }
        assert_eq!(v, [1, 20, 3, 40]);
    }

    #[test]
    fn works_with_reversed_order() {
        let mut v = vec![1, 2, 3, 4];
        let (a, b) = pair_mut(&mut v, 3, 0);
        assert_eq!((*a, *b), (4, 1));
    }

    #[test]
    #[should_panic(expected = "distinct in-bounds indices")]
    fn panics_on_equal_indices() {
        let mut v = vec![1, 2];
        let _ = pair_mut(&mut v, 1, 1);
    }

    #[test]
    #[should_panic]
    fn panics_out_of_bounds() {
        let mut v = vec![1, 2];
        let _ = pair_mut(&mut v, 0, 5);
    }
}
