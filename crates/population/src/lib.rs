//! Population-protocol simulation engine.
//!
//! This crate is the substrate on which the ranking protocols of the paper
//! *Silent Self-Stabilizing Ranking: Time Optimal and Space Efficient*
//! (ICDCS 2025) are executed. It implements the standard population-protocol
//! model: a population of `n` anonymous agents, each holding a state from a
//! protocol-defined state space; in every discrete time step an ordered pair
//! of distinct agents `(initiator, responder)` is drawn uniformly at random
//! and both update their states through a common transition function.
//!
//! # Architecture
//!
//! The engine is split into three orthogonal layers:
//!
//! * **Scheduling** — the [`schedule::PairSource`] trait produces the
//!   ordered pairs; [`schedule::Schedule`] is the canonical
//!   implementation (the paper's uniform scheduler), and adversarial
//!   sources (biased, clustered, round-robin — see the `scenarios`
//!   crate) plug into the same engine via
//!   [`Simulator::with_source`]. Every source serves the same pair
//!   stream two ways: one pair at a time (scalar stepping) or
//!   pre-sampled in cache-sized blocks (the batched hot path). Because
//!   both styles consume the stream in FIFO order, *every execution
//!   mode yields the identical trajectory for a given seed*. For
//!   parallel single-run execution, [`schedule::SubSchedule::split`]
//!   partitions the uniform scheduler into balanced per-shard
//!   sub-streams (the `shard` crate's engine is built on it).
//! * **Execution** — [`Simulator`] applies the protocol's transition
//!   function to scheduled pairs. [`Simulator::step`] executes one
//!   interaction; [`Simulator::run_batched`] is the hot path, executing
//!   interactions in blocks with no per-interaction bookkeeping. The two
//!   are bit-for-bit trajectory-equivalent under the same seed.
//!   [`Simulator::run_faulted`] splits the batched loop at exact
//!   interaction counts where a [`FaultHook`] wants to corrupt the
//!   configuration — the seam the fault-injection subsystem drives.
//! * **Observation** — the [`observe::Observer`] pipeline. The engine
//!   polls observers at checkpoints (every `check_every` interactions);
//!   observers decide when to stop and what to record. Convergence
//!   predicates ([`observe::Convergence`]), silence detection
//!   ([`observe::Silence`]), time-series sampling ([`observe::Series`],
//!   [`observe::Sampler`]), threshold crossings
//!   ([`observe::Thresholds`]), and counters ([`observe::Meter`]) are
//!   all observers, and tuples of observers compose. The entry point is
//!   [`Simulator::run_observed`]; [`Simulator::run_until`] and
//!   [`Simulator::run_sampled`] are sugar for the two most common cases.
//!   Orthogonal to observers, the [`Probe`] seam lets a flight recorder
//!   watch runs at block, exchange, checkpoint, and fault boundaries
//!   through the `*_probed` run paths — read-only by construction, and
//!   compiled out entirely for [`NullProbe`] (the `telemetry` crate's
//!   `Recorder` is the canonical recording probe).
//!
//! * **State representation** — protocols whose state space fits in a
//!   machine word implement [`PackedProtocol`] (a lossless codec plus a
//!   transition over packed words); wrapping such a protocol in
//!   [`Packed`] runs the whole simulation over a flat `Vec` of words
//!   (structure-of-arrays layout), unpacking only at observation
//!   ([`observe::Unpacked`]) and fault ([`UnpackedHook`]) boundaries.
//!   The packed path is bit-for-bit trajectory-equivalent to the
//!   structured one — a pure optimization, exactly like batching.
//!   Packed protocols may additionally override the per-block seam
//!   ([`BatchedProtocol`]) with a gather/classify/lane *block kernel*;
//!   [`Packed`] dispatches every block there, and [`ScalarBlock`]
//!   forces the scalar reference loop for A/B comparison.
//!
//! # Components
//!
//! * [`Protocol`] — the transition function and population size.
//! * [`Simulator`] — the seeded, deterministic executor described above.
//! * [`schedule`] — the uniform scheduler with block pre-sampling.
//! * [`checkpoint`] — the checkpoint/restore seam: [`WordState`] state
//!   serialization, [`schedule::ScheduleCursor`] position capture, and
//!   the [`Checkpointer`] hook driven by
//!   [`Simulator::run_checkpointed`] (zero-cost when off, like the
//!   [`Probe`] seam; the `snapshot` crate provides the durable
//!   implementation).
//! * [`observe`] — the composable observer pipeline.
//! * [`silence`] — an exhaustive checker for the *silent* property: a
//!   configuration is silent iff no ordered pair of agents would change
//!   state when interacting.
//! * [`runner`] — a scoped-thread fan-out for running many seeded
//!   simulations in parallel.
//! * [`modelcheck`] — exhaustive reachability exploration for tiny
//!   populations.
//! * [`primitives`] — self-contained reference protocols (one-way epidemic,
//!   synthetic coin) used to validate the substrate against the paper's
//!   Lemmas 14 and 28.
//!
//! # Example
//!
//! ```
//! use population::{Protocol, Simulator, StopReason};
//!
//! /// A one-way epidemic: state `true` means "infected".
//! struct Epidemic {
//!     n: usize,
//! }
//!
//! impl Protocol for Epidemic {
//!     type State = bool;
//!     fn n(&self) -> usize {
//!         self.n
//!     }
//!     fn transition(&self, u: &mut bool, v: &mut bool) -> bool {
//!         if *u && !*v {
//!             *v = true;
//!             return true;
//!         }
//!         false
//!     }
//! }
//!
//! let protocol = Epidemic { n: 50 };
//! let mut states = vec![false; 50];
//! states[0] = true;
//! let mut sim = Simulator::new(protocol, states, 7);
//! let stop = sim.run_until(|s| s.iter().all(|&i| i), 1_000_000, 50);
//! assert!(matches!(stop, StopReason::Converged(_)));
//! ```
//!
//! Observers compose where a closure-based API would force a bespoke
//! polling loop — e.g. sampling a time series *while* waiting for
//! convergence:
//!
//! ```
//! use population::observe::{Convergence, Series};
//! use population::primitives::epidemic::Epidemic;
//! use population::Simulator;
//!
//! let protocol = Epidemic::new(50);
//! let init = protocol.initial(50);
//! let mut sim = Simulator::new(protocol, init, 7);
//! let mut done = Convergence::new(Epidemic::complete);
//! let mut curve = Series::new(|s: &[_]| Epidemic::infected_count(s) as u64);
//! sim.run_observed(1_000_000, 50, &mut (&mut done, &mut curve));
//! assert!(done.converged_at().is_some());
//! assert!(curve.rows().len() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pairs;
mod probe;
mod protocol;
mod sim;

pub mod checkpoint;
pub mod modelcheck;
pub mod observe;
pub mod primitives;
pub mod runner;
pub mod schedule;
pub mod silence;

pub use checkpoint::{
    Cadence, Checkpointer, FaultState, Frame, HookState, MemoryCheckpointer, NullCheckpointer,
    WordState,
};
pub use observe::{
    Control, HonestRanking, Observer, ShardObserver, ShardedRanking, ShardedSilence,
};
pub use pairs::pair_mut;
pub use probe::{Membership, NullProbe, Probe};
pub use protocol::{
    BatchedProtocol, HonestOutput, Packed, PackedProtocol, Protocol, RankOutput, ScalarBlock,
};
pub use schedule::{CursorSource, PairSource, Schedule, ScheduleCursor, SubSchedule};
pub use sim::{FaultHook, NoFaults, Simulator, StopReason, UnpackedHook};

/// Returns `true` iff the ranks output by `states` form a permutation of
/// `1..=n`, i.e. the configuration is a *valid ranking* (the paper's legal
/// set `C_L`).
///
/// Agents whose output is `None` (unranked) immediately disqualify the
/// configuration, as do duplicate or out-of-range ranks.
///
/// ```
/// use population::is_valid_ranking;
/// # struct R(u64);
/// # impl population::RankOutput for R {
/// #     fn rank(&self) -> Option<u64> { Some(self.0) }
/// # }
/// assert!(is_valid_ranking(&[R(2), R(1), R(3)]));
/// assert!(!is_valid_ranking(&[R(2), R(2), R(3)]));
/// ```
pub fn is_valid_ranking<S: RankOutput>(states: &[S]) -> bool {
    let n = states.len();
    let mut seen = vec![false; n];
    for s in states {
        match s.rank() {
            Some(r) if r >= 1 && (r as usize) <= n && !seen[r as usize - 1] => {
                seen[r as usize - 1] = true;
            }
            _ => return false,
        }
    }
    true
}

/// Number of agents currently holding a rank.
pub fn ranked_count<S: RankOutput>(states: &[S]) -> usize {
    states.iter().filter(|s| s.rank().is_some()).count()
}

/// Returns `true` iff every *honest* agent outputs a rank in `1..=n`
/// and no two honest agents share one — the stabilization target of a
/// population containing `k` persistent (Byzantine) adversaries.
///
/// `n` is the *total* population size (`states.len()`, adversaries
/// included): the honest agents must fit their ranks into the full rank
/// space, but nothing is demanded of the ranks adversaries *claim* —
/// an adversary squatting on a rank an honest agent also holds does not
/// disqualify the configuration here (the honest agents cannot tell,
/// and the protocol's duplicate detection will keep fighting it; that
/// ongoing fight is measured, not defined away). With `k = 0` this
/// predicate is exactly [`is_valid_ranking`] minus the permutation
/// completeness — and since `n` distinct in-range ranks over `n` agents
/// force a permutation, it *equals* [`is_valid_ranking`] then.
pub fn is_valid_honest_ranking<S: HonestOutput>(states: &[S]) -> bool {
    let n = states.len();
    let mut seen = vec![false; n];
    for s in states.iter().filter(|s| s.is_honest()) {
        match s.rank() {
            Some(r) if r >= 1 && (r as usize) <= n && !seen[r as usize - 1] => {
                seen[r as usize - 1] = true;
            }
            _ => return false,
        }
    }
    true
}

/// Returns `true` iff at least two agents output the same rank.
///
/// Ranks outside `1..=n` are compared by value, not lumped together: two
/// agents holding the *distinct* out-of-range ranks `n+1` and `n+2` are
/// not duplicates, while two agents both holding `n+5` are.
pub fn has_duplicate_rank<S: RankOutput>(states: &[S]) -> bool {
    let n = states.len();
    let mut seen = vec![false; n + 1];
    let mut out_of_range = Vec::new();
    for s in states {
        if let Some(r) = s.rank() {
            if r >= 1 && (r as usize) <= n {
                if seen[r as usize] {
                    return true;
                }
                seen[r as usize] = true;
            } else {
                out_of_range.push(r);
            }
        }
    }
    out_of_range.sort_unstable();
    out_of_range.windows(2).any(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    struct R(Option<u64>);
    impl RankOutput for R {
        fn rank(&self) -> Option<u64> {
            self.0
        }
    }

    #[test]
    fn valid_ranking_accepts_permutation() {
        let states: Vec<R> = [3, 1, 2, 4].iter().map(|&r| R(Some(r))).collect();
        assert!(is_valid_ranking(&states));
    }

    #[test]
    fn valid_ranking_rejects_duplicate() {
        let states: Vec<R> = [1, 1, 2, 4].iter().map(|&r| R(Some(r))).collect();
        assert!(!is_valid_ranking(&states));
    }

    #[test]
    fn valid_ranking_rejects_out_of_range() {
        let states: Vec<R> = [1, 2, 5].iter().map(|&r| R(Some(r))).collect();
        assert!(!is_valid_ranking(&states));
        let zero: Vec<R> = [0, 1, 2].iter().map(|&r| R(Some(r))).collect();
        assert!(!is_valid_ranking(&zero));
    }

    #[test]
    fn valid_ranking_rejects_unranked() {
        let states = vec![R(Some(1)), R(None), R(Some(2))];
        assert!(!is_valid_ranking(&states));
        assert_eq!(ranked_count(&states), 2);
    }

    #[test]
    fn duplicate_rank_detection() {
        let dup = vec![R(Some(2)), R(None), R(Some(2))];
        assert!(has_duplicate_rank(&dup));
        let ok = vec![R(Some(2)), R(None), R(Some(1))];
        assert!(!has_duplicate_rank(&ok));
    }

    #[test]
    fn distinct_out_of_range_ranks_are_not_duplicates() {
        // Regression: the old implementation clamped every out-of-range
        // rank into the same bucket, reporting n+1 and n+2 as a
        // duplicate pair.
        let n_plus = vec![R(Some(4)), R(Some(5)), R(Some(1))];
        assert!(!has_duplicate_rank(&n_plus));
        let zero_and_high = vec![R(Some(0)), R(Some(9)), R(Some(1))];
        assert!(!has_duplicate_rank(&zero_and_high));
    }

    #[test]
    fn equal_out_of_range_ranks_are_duplicates() {
        let states = vec![R(Some(8)), R(Some(8)), R(Some(1))];
        assert!(has_duplicate_rank(&states));
        let zeros = vec![R(Some(0)), R(Some(0)), R(Some(1))];
        assert!(has_duplicate_rank(&zeros));
    }

    #[test]
    fn boundary_rank_n_is_in_range() {
        let states = vec![R(Some(3)), R(Some(3)), R(Some(1))];
        assert!(has_duplicate_rank(&states));
        let ok = vec![R(Some(3)), R(Some(2)), R(Some(1))];
        assert!(!has_duplicate_rank(&ok));
    }

    #[test]
    fn empty_population_is_trivially_valid() {
        let states: Vec<R> = Vec::new();
        assert!(is_valid_ranking(&states));
        assert!(!has_duplicate_rank(&states));
    }
}
