//! Population-protocol simulation engine.
//!
//! This crate is the substrate on which the ranking protocols of the paper
//! *Silent Self-Stabilizing Ranking: Time Optimal and Space Efficient*
//! (ICDCS 2025) are executed. It implements the standard population-protocol
//! model: a population of `n` anonymous agents, each holding a state from a
//! protocol-defined state space; in every discrete time step an ordered pair
//! of distinct agents `(initiator, responder)` is drawn uniformly at random
//! and both update their states through a common transition function.
//!
//! # Components
//!
//! * [`Protocol`] — the transition function and population size.
//! * [`Simulator`] — a seeded, deterministic executor with convergence
//!   detection ([`Simulator::run_until`]) and sampling observation
//!   ([`Simulator::run_sampled`]).
//! * [`silence`] — an exhaustive checker for the *silent* property: a
//!   configuration is silent iff no ordered pair of agents would change
//!   state when interacting.
//! * [`runner`] — a scoped-thread fan-out for running many seeded
//!   simulations in parallel.
//! * [`primitives`] — self-contained reference protocols (one-way epidemic,
//!   synthetic coin) used to validate the substrate against the paper's
//!   Lemmas 14 and 28.
//!
//! # Example
//!
//! ```
//! use population::{Protocol, Simulator, StopReason};
//!
//! /// A one-way epidemic: state `true` means "infected".
//! struct Epidemic {
//!     n: usize,
//! }
//!
//! impl Protocol for Epidemic {
//!     type State = bool;
//!     fn n(&self) -> usize {
//!         self.n
//!     }
//!     fn transition(&self, u: &mut bool, v: &mut bool) -> bool {
//!         if *u && !*v {
//!             *v = true;
//!             return true;
//!         }
//!         false
//!     }
//! }
//!
//! let protocol = Epidemic { n: 50 };
//! let mut states = vec![false; 50];
//! states[0] = true;
//! let mut sim = Simulator::new(protocol, states, 7);
//! let stop = sim.run_until(|s| s.iter().all(|&i| i), 1_000_000, 50);
//! assert!(matches!(stop, StopReason::Converged(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pairs;
mod protocol;
mod sim;

pub mod modelcheck;
pub mod primitives;
pub mod runner;
pub mod silence;

pub use pairs::pair_mut;
pub use protocol::{Protocol, RankOutput};
pub use sim::{Simulator, StopReason};

/// Returns `true` iff the ranks output by `states` form a permutation of
/// `1..=n`, i.e. the configuration is a *valid ranking* (the paper's legal
/// set `C_L`).
///
/// Agents whose output is `None` (unranked) immediately disqualify the
/// configuration, as do duplicate or out-of-range ranks.
///
/// ```
/// use population::is_valid_ranking;
/// # struct R(u64);
/// # impl population::RankOutput for R {
/// #     fn rank(&self) -> Option<u64> { Some(self.0) }
/// # }
/// assert!(is_valid_ranking(&[R(2), R(1), R(3)]));
/// assert!(!is_valid_ranking(&[R(2), R(2), R(3)]));
/// ```
pub fn is_valid_ranking<S: RankOutput>(states: &[S]) -> bool {
    let n = states.len();
    let mut seen = vec![false; n];
    for s in states {
        match s.rank() {
            Some(r) if r >= 1 && (r as usize) <= n && !seen[r as usize - 1] => {
                seen[r as usize - 1] = true;
            }
            _ => return false,
        }
    }
    true
}

/// Number of agents currently holding a rank.
pub fn ranked_count<S: RankOutput>(states: &[S]) -> usize {
    states.iter().filter(|s| s.rank().is_some()).count()
}

/// Returns `true` iff at least two agents output the same rank.
pub fn has_duplicate_rank<S: RankOutput>(states: &[S]) -> bool {
    let n = states.len();
    let mut seen = vec![false; n + 1];
    for s in states {
        if let Some(r) = s.rank() {
            let idx = (r as usize).min(n);
            if seen[idx] {
                return true;
            }
            seen[idx] = true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    struct R(Option<u64>);
    impl RankOutput for R {
        fn rank(&self) -> Option<u64> {
            self.0
        }
    }

    #[test]
    fn valid_ranking_accepts_permutation() {
        let states: Vec<R> = [3, 1, 2, 4].iter().map(|&r| R(Some(r))).collect();
        assert!(is_valid_ranking(&states));
    }

    #[test]
    fn valid_ranking_rejects_duplicate() {
        let states: Vec<R> = [1, 1, 2, 4].iter().map(|&r| R(Some(r))).collect();
        assert!(!is_valid_ranking(&states));
    }

    #[test]
    fn valid_ranking_rejects_out_of_range() {
        let states: Vec<R> = [1, 2, 5].iter().map(|&r| R(Some(r))).collect();
        assert!(!is_valid_ranking(&states));
        let zero: Vec<R> = [0, 1, 2].iter().map(|&r| R(Some(r))).collect();
        assert!(!is_valid_ranking(&zero));
    }

    #[test]
    fn valid_ranking_rejects_unranked() {
        let states = vec![R(Some(1)), R(None), R(Some(2))];
        assert!(!is_valid_ranking(&states));
        assert_eq!(ranked_count(&states), 2);
    }

    #[test]
    fn duplicate_rank_detection() {
        let dup = vec![R(Some(2)), R(None), R(Some(2))];
        assert!(has_duplicate_rank(&dup));
        let ok = vec![R(Some(2)), R(None), R(Some(1))];
        assert!(!has_duplicate_rank(&ok));
    }

    #[test]
    fn empty_population_is_trivially_valid() {
        let states: Vec<R> = Vec::new();
        assert!(is_valid_ranking(&states));
        assert!(!has_duplicate_rank(&states));
    }
}
