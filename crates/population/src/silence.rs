//! Exhaustive silence checking.
//!
//! A configuration is *silent* (Section III of the paper) when no sequence
//! of interactions changes any agent's state — equivalently, when no single
//! ordered pair changes state. [`is_silent`] verifies the latter by trying
//! all `n(n-1)` ordered pairs against the transition function on cloned
//! states, so it is `O(n²)` and intended for tests and end-of-run
//! verification rather than inner loops.

use crate::protocol::Protocol;

/// Returns `true` iff no ordered pair of agents would change state.
///
/// ```
/// use population::{silence::is_silent, Protocol};
///
/// struct Infect;
/// impl Protocol for Infect {
///     type State = bool;
///     fn n(&self) -> usize {
///         3
///     }
///     fn transition(&self, u: &mut bool, v: &mut bool) -> bool {
///         if *u && !*v {
///             *v = true;
///             return true;
///         }
///         false
///     }
/// }
///
/// assert!(is_silent(&Infect, &[true, true, true]));
/// assert!(is_silent(&Infect, &[false, false, false]));
/// assert!(!is_silent(&Infect, &[true, false, true]));
/// ```
pub fn is_silent<P: Protocol>(protocol: &P, states: &[P::State]) -> bool {
    first_active_pair(protocol, states).is_none()
}

/// Finds the first ordered pair `(i, j)` whose interaction would change a
/// state, if any. Useful in test diagnostics: a failing silence assertion
/// can report *which* interaction is still enabled.
pub fn first_active_pair<P: Protocol>(protocol: &P, states: &[P::State]) -> Option<(usize, usize)> {
    let n = states.len();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut u = states[i].clone();
            let mut v = states[j].clone();
            protocol.transition(&mut u, &mut v);
            if u != states[i] || v != states[j] {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sort;
    impl Protocol for Sort {
        type State = u32;
        fn n(&self) -> usize {
            4
        }
        // Initiator keeps min, responder keeps max: silent iff... never —
        // wait, this rule is order-dependent; silent iff all equal.
        fn transition(&self, u: &mut u32, v: &mut u32) -> bool {
            let (lo, hi) = ((*u).min(*v), (*u).max(*v));
            let changed = (*u, *v) != (lo, hi);
            *u = lo;
            *v = hi;
            changed
        }
    }

    #[test]
    fn all_equal_is_silent() {
        assert!(is_silent(&Sort, &[5, 5, 5, 5]));
    }

    #[test]
    fn unequal_pair_is_reported() {
        let states = [5, 5, 3, 5];
        assert!(!is_silent(&Sort, &states));
        // First active ordered pair scanning row-major: (0,2) has u=5,v=3 ->
        // becomes (3,5), a change.
        assert_eq!(first_active_pair(&Sort, &states), Some((0, 2)));
    }

    #[test]
    fn silence_check_does_not_mutate() {
        let states = [1, 2, 3, 4];
        let copy = states;
        let _ = is_silent(&Sort, &states);
        assert_eq!(states, copy);
    }
}
