//! Composable run observers.
//!
//! Every consumer of the engine used to hand-roll its own polling loop:
//! convergence checks here, threshold crossings there, time-series
//! sampling somewhere else. The [`Observer`] trait replaces those loops
//! with small, composable values that the engine polls at checkpoints
//! (every `check_every` interactions, plus once before the first step):
//!
//! * [`Convergence`] — stop when a predicate over the configuration
//!   first holds, recording the hitting time;
//! * [`Silence`] — stop when the configuration is *silent* (no ordered
//!   pair would change state; the paper's absorbing criterion);
//! * [`Sampler`] — invoke a closure at every checkpoint (time series);
//! * [`Series`] — record `(t, metric)` rows at every checkpoint;
//! * [`Thresholds`] — record the first time a monotone metric reaches
//!   each of a list of targets (Figure 3's fraction crossings);
//! * [`Meter`] — count checkpoints and remember the last observed time.
//!
//! Observers compose as tuples: `(&mut a, &mut b)` polls both and stops
//! as soon as *any* member requests a stop. The engine entry point is
//! [`Simulator::run_observed`](crate::Simulator::run_observed);
//! [`run_until`](crate::Simulator::run_until) and
//! [`run_sampled`](crate::Simulator::run_sampled) are thin sugar over
//! this pipeline.

use crate::protocol::{Packed, PackedProtocol, Protocol};
use crate::silence::is_silent;

/// Verdict returned by an observer at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep running.
    Continue,
    /// Stop the run; the engine reports convergence at this checkpoint.
    Stop,
}

impl Control {
    /// True iff this is [`Control::Stop`].
    pub fn is_stop(self) -> bool {
        matches!(self, Control::Stop)
    }
}

/// A checkpoint callback polled by the engine.
pub trait Observer<P: Protocol> {
    /// Inspect the configuration at interaction count `t`. Returning
    /// [`Control::Stop`] ends the run.
    fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control;
}

impl<P: Protocol, O: Observer<P> + ?Sized> Observer<P> for &mut O {
    fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control {
        (**self).observe(protocol, t, states)
    }
}

macro_rules! impl_observer_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<P: Protocol, $($name: Observer<P>),+> Observer<P> for ($($name,)+) {
            fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control {
                let mut stop = false;
                $(stop |= self.$idx.observe(protocol, t, states).is_stop();)+
                if stop { Control::Stop } else { Control::Continue }
            }
        }
    };
}
impl_observer_tuple!(A.0);
impl_observer_tuple!(A.0, B.1);
impl_observer_tuple!(A.0, B.1, C.2);
impl_observer_tuple!(A.0, B.1, C.2, D.3);

/// Stops when a predicate over the configuration first holds; records
/// the checkpoint time at which it did.
#[derive(Debug)]
pub struct Convergence<F> {
    pred: F,
    hit: Option<u64>,
}

impl<F> Convergence<F> {
    /// Observe with predicate `pred`.
    pub fn new(pred: F) -> Self {
        Self { pred, hit: None }
    }

    /// Checkpoint time at which the predicate first held, if it did.
    /// Overshoots the true hitting time by less than the polling period.
    pub fn converged_at(&self) -> Option<u64> {
        self.hit
    }
}

impl<P: Protocol, F: FnMut(&[P::State]) -> bool> Observer<P> for Convergence<F> {
    fn observe(&mut self, _protocol: &P, t: u64, states: &[P::State]) -> Control {
        if self.hit.is_none() && (self.pred)(states) {
            self.hit = Some(t);
        }
        if self.hit.is_some() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Stops when the configuration is silent (no ordered pair would change
/// state). The check is `O(n²)` transitions per checkpoint — poll it
/// sparsely on large populations.
#[derive(Debug, Default)]
pub struct Silence {
    hit: Option<u64>,
}

impl Silence {
    /// New silence detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoint time at which silence was first observed, if any.
    pub fn silent_at(&self) -> Option<u64> {
        self.hit
    }
}

impl<P: Protocol> Observer<P> for Silence {
    fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control {
        if self.hit.is_none() && is_silent(protocol, states) {
            self.hit = Some(t);
        }
        if self.hit.is_some() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Invokes a closure at every checkpoint; never stops the run.
#[derive(Debug)]
pub struct Sampler<F> {
    f: F,
}

impl<F> Sampler<F> {
    /// Observe with callback `f(t, states)`.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<P: Protocol, F: FnMut(u64, &[P::State])> Observer<P> for Sampler<F> {
    fn observe(&mut self, _protocol: &P, t: u64, states: &[P::State]) -> Control {
        (self.f)(t, states);
        Control::Continue
    }
}

/// Records `(t, metric(states))` at every checkpoint; never stops.
#[derive(Debug)]
pub struct Series<F, T> {
    metric: F,
    rows: Vec<(u64, T)>,
}

impl<F, T> Series<F, T> {
    /// Record the given metric at every checkpoint.
    pub fn new(metric: F) -> Self {
        Self {
            metric,
            rows: Vec::new(),
        }
    }

    /// The recorded `(t, value)` rows.
    pub fn rows(&self) -> &[(u64, T)] {
        &self.rows
    }

    /// Consume the observer, returning the recorded rows.
    pub fn into_rows(self) -> Vec<(u64, T)> {
        self.rows
    }
}

impl<P: Protocol, F: FnMut(&[P::State]) -> T, T> Observer<P> for Series<F, T> {
    fn observe(&mut self, _protocol: &P, t: u64, states: &[P::State]) -> Control {
        let v = (self.metric)(states);
        self.rows.push((t, v));
        Control::Continue
    }
}

/// Records the first checkpoint time at which a monotone metric reaches
/// each of a list of non-decreasing targets, stopping once all targets
/// are crossed. (Figure 3's "time to rank `c·n` agents".)
#[derive(Debug)]
pub struct Thresholds<F> {
    metric: F,
    targets: Vec<u64>,
    crossings: Vec<Option<u64>>,
}

impl<F> Thresholds<F> {
    /// Track when `metric(states)` first reaches each value in
    /// `targets`.
    pub fn new(metric: F, targets: Vec<u64>) -> Self {
        let crossings = vec![None; targets.len()];
        Self {
            metric,
            targets,
            crossings,
        }
    }

    /// Crossing time per target (`None` where the budget ran out first).
    pub fn crossings(&self) -> &[Option<u64>] {
        &self.crossings
    }

    /// Consume the observer, returning the crossing times.
    pub fn into_crossings(self) -> Vec<Option<u64>> {
        self.crossings
    }

    /// Have all targets been crossed?
    pub fn complete(&self) -> bool {
        self.crossings.iter().all(|c| c.is_some())
    }
}

impl<P: Protocol, F: FnMut(&[P::State]) -> u64> Observer<P> for Thresholds<F> {
    fn observe(&mut self, _protocol: &P, t: u64, states: &[P::State]) -> Control {
        let value = (self.metric)(states);
        for (i, &target) in self.targets.iter().enumerate() {
            if self.crossings[i].is_none() && value >= target {
                self.crossings[i] = Some(t);
            }
        }
        if self.complete() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Adapts an observer written against a protocol's structured states to
/// a run over the [`Packed`] words: at every checkpoint the
/// configuration is unpacked into a reused scratch buffer and handed to
/// the inner observer.
///
/// This is the observation end of the packed-representation contract —
/// the hot loop never unpacks; only the (sparse) checkpoints pay the
/// codec cost, `O(n)` per poll. Predicates that can read packed words
/// directly (e.g. `is_valid_ranking` over a word type implementing
/// `RankOutput`) don't need this adapter at all.
#[derive(Debug)]
pub struct Unpacked<P: PackedProtocol, O> {
    inner: O,
    scratch: Vec<P::State>,
}

impl<P: PackedProtocol, O> Unpacked<P, O> {
    /// Wrap a structured-state observer for a packed run.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            scratch: Vec::new(),
        }
    }

    /// The wrapped observer (e.g. to read its recorded results).
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Consume the adapter, returning the wrapped observer.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<P: PackedProtocol, O: Observer<P>> Observer<Packed<P>> for Unpacked<P, O> {
    fn observe(&mut self, protocol: &Packed<P>, t: u64, words: &[P::Packed]) -> Control {
        self.scratch.clear();
        self.scratch
            .extend(words.iter().map(|&w| protocol.inner().unpack(w)));
        self.inner.observe(protocol.inner(), t, &self.scratch)
    }
}

/// Counts checkpoints and remembers the first and last observed
/// interaction counts; never stops.
#[derive(Debug, Default)]
pub struct Meter {
    checkpoints: u64,
    first: Option<u64>,
    last: u64,
}

impl Meter {
    /// New, empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of checkpoints observed.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Interactions elapsed between the first and last checkpoint.
    pub fn interactions_seen(&self) -> u64 {
        self.last - self.first.unwrap_or(self.last)
    }
}

impl<P: Protocol> Observer<P> for Meter {
    fn observe(&mut self, _protocol: &P, t: u64, _states: &[P::State]) -> Control {
        self.checkpoints += 1;
        self.first.get_or_insert(t);
        self.last = t;
        Control::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::epidemic::Epidemic;
    use crate::{Simulator, StopReason};

    fn epidemic_sim(n: usize, m: usize, seed: u64) -> Simulator<Epidemic> {
        let protocol = Epidemic::new(n);
        let init = protocol.initial(m);
        Simulator::new(protocol, init, seed)
    }

    #[test]
    fn convergence_observer_records_hit_time() {
        let mut sim = epidemic_sim(32, 32, 5);
        let mut conv = Convergence::new(Epidemic::complete);
        let stop = sim.run_observed(1_000_000, 32, &mut conv);
        let t = conv.converged_at().expect("epidemic completes");
        assert_eq!(stop, StopReason::Converged(t));
        assert_eq!(t, sim.interactions());
    }

    #[test]
    fn silence_observer_stops_absorbed_runs() {
        let mut sim = epidemic_sim(16, 16, 2);
        let mut silence = Silence::new();
        let stop = sim.run_observed(1_000_000, 16, &mut silence);
        assert!(stop.converged_at().is_some());
        assert_eq!(silence.silent_at(), stop.converged_at());
    }

    #[test]
    fn series_collects_monotone_epidemic_counts() {
        let mut sim = epidemic_sim(64, 64, 3);
        let mut series = Series::new(|s: &[_]| Epidemic::infected_count(s) as u64);
        sim.run_observed(2000, 100, &mut series);
        let rows = series.rows();
        assert_eq!(rows.first().map(|r| r.0), Some(0));
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1), "monotone");
        assert!(rows.len() >= 21, "start + 20 checkpoints");
    }

    #[test]
    fn thresholds_record_ordered_crossings() {
        let mut sim = epidemic_sim(64, 64, 7);
        let mut th = Thresholds::new(
            |s: &[_]| Epidemic::infected_count(s) as u64,
            vec![16, 32, 48, 64],
        );
        let stop = sim.run_observed(10_000_000, 16, &mut th);
        assert!(stop.converged_at().is_some(), "all thresholds crossed");
        let times: Vec<u64> = th.crossings().iter().map(|c| c.expect("crossed")).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn tuple_composition_stops_on_first_member() {
        let mut sim = epidemic_sim(32, 32, 11);
        let mut conv = Convergence::new(Epidemic::complete);
        let mut meter = Meter::new();
        let stop = sim.run_observed(1_000_000, 32, &mut (&mut conv, &mut meter));
        assert!(stop.converged_at().is_some());
        // The meter saw the initial checkpoint plus one per burst.
        assert!(meter.checkpoints() >= 2);
        assert_eq!(meter.interactions_seen(), sim.interactions());
    }

    #[test]
    fn meter_counts_budgeted_checkpoints() {
        let mut sim = epidemic_sim(16, 1, 1);
        let mut meter = Meter::new();
        let stop = sim.run_observed(500, 100, &mut meter);
        assert_eq!(stop, StopReason::BudgetExhausted);
        assert_eq!(meter.checkpoints(), 6); // t = 0, 100, ..., 500
        assert_eq!(meter.interactions_seen(), 500);
    }
}
