//! Composable run observers.
//!
//! Every consumer of the engine used to hand-roll its own polling loop:
//! convergence checks here, threshold crossings there, time-series
//! sampling somewhere else. The [`Observer`] trait replaces those loops
//! with small, composable values that the engine polls at checkpoints
//! (every `check_every` interactions, plus once before the first step):
//!
//! * [`Convergence`] — stop when a predicate over the configuration
//!   first holds, recording the hitting time;
//! * [`Silence`] — stop when the configuration is *silent* (no ordered
//!   pair would change state; the paper's absorbing criterion);
//! * [`Sampler`] — invoke a closure at every checkpoint (time series);
//! * [`Series`] — record `(t, metric)` rows at every checkpoint;
//! * [`Thresholds`] — record the first time a monotone metric reaches
//!   each of a list of targets (Figure 3's fraction crossings);
//! * [`Meter`] — count checkpoints and remember the last observed time.
//!
//! Observers compose as tuples: `(&mut a, &mut b)` polls both and stops
//! as soon as *any* member requests a stop. The engine entry point is
//! [`Simulator::run_observed`](crate::Simulator::run_observed);
//! [`run_until`](crate::Simulator::run_until) and
//! [`run_sampled`](crate::Simulator::run_sampled) are thin sugar over
//! this pipeline.

use crate::protocol::{BatchedProtocol, Packed, PackedProtocol, Protocol};
use crate::silence::is_silent;

/// Verdict returned by an observer at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep running.
    Continue,
    /// Stop the run; the engine reports convergence at this checkpoint.
    Stop,
}

impl Control {
    /// True iff this is [`Control::Stop`].
    pub fn is_stop(self) -> bool {
        matches!(self, Control::Stop)
    }
}

/// A checkpoint callback polled by the engine.
pub trait Observer<P: Protocol> {
    /// Inspect the configuration at interaction count `t`. Returning
    /// [`Control::Stop`] ends the run.
    fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control;
}

impl<P: Protocol, O: Observer<P> + ?Sized> Observer<P> for &mut O {
    fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control {
        (**self).observe(protocol, t, states)
    }
}

macro_rules! impl_observer_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<P: Protocol, $($name: Observer<P>),+> Observer<P> for ($($name,)+) {
            fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control {
                let mut stop = false;
                $(stop |= self.$idx.observe(protocol, t, states).is_stop();)+
                if stop { Control::Stop } else { Control::Continue }
            }
        }
    };
}
impl_observer_tuple!(A.0);
impl_observer_tuple!(A.0, B.1);
impl_observer_tuple!(A.0, B.1, C.2);
impl_observer_tuple!(A.0, B.1, C.2, D.3);

/// Stops when a predicate over the configuration first holds; records
/// the checkpoint time at which it did.
#[derive(Debug)]
pub struct Convergence<F> {
    pred: F,
    hit: Option<u64>,
}

impl<F> Convergence<F> {
    /// Observe with predicate `pred`.
    pub fn new(pred: F) -> Self {
        Self { pred, hit: None }
    }

    /// Checkpoint time at which the predicate first held, if it did.
    /// Overshoots the true hitting time by less than the polling period.
    pub fn converged_at(&self) -> Option<u64> {
        self.hit
    }
}

impl<P: Protocol, F: FnMut(&[P::State]) -> bool> Observer<P> for Convergence<F> {
    fn observe(&mut self, _protocol: &P, t: u64, states: &[P::State]) -> Control {
        if self.hit.is_none() && (self.pred)(states) {
            self.hit = Some(t);
        }
        if self.hit.is_some() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Stops when the configuration is silent (no ordered pair would change
/// state). The check is `O(n²)` transitions per checkpoint — poll it
/// sparsely on large populations.
#[derive(Debug, Default)]
pub struct Silence {
    hit: Option<u64>,
}

impl Silence {
    /// New silence detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoint time at which silence was first observed, if any.
    pub fn silent_at(&self) -> Option<u64> {
        self.hit
    }
}

impl<P: Protocol> Observer<P> for Silence {
    fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control {
        if self.hit.is_none() && is_silent(protocol, states) {
            self.hit = Some(t);
        }
        if self.hit.is_some() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Invokes a closure at every checkpoint; never stops the run.
#[derive(Debug)]
pub struct Sampler<F> {
    f: F,
}

impl<F> Sampler<F> {
    /// Observe with callback `f(t, states)`.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<P: Protocol, F: FnMut(u64, &[P::State])> Observer<P> for Sampler<F> {
    fn observe(&mut self, _protocol: &P, t: u64, states: &[P::State]) -> Control {
        (self.f)(t, states);
        Control::Continue
    }
}

/// Records `(t, metric(states))` at every checkpoint; never stops.
#[derive(Debug)]
pub struct Series<F, T> {
    metric: F,
    rows: Vec<(u64, T)>,
}

impl<F, T> Series<F, T> {
    /// Record the given metric at every checkpoint.
    pub fn new(metric: F) -> Self {
        Self {
            metric,
            rows: Vec::new(),
        }
    }

    /// Resume recording with previously captured rows — the restore
    /// side of checkpointing a long *measured* run (the `snapshot`
    /// crate's observer-partials codec round-trips `rows` through the
    /// OBSERVER snapshot section).
    pub fn with_rows(metric: F, rows: Vec<(u64, T)>) -> Self {
        Self { metric, rows }
    }

    /// The recorded `(t, value)` rows.
    pub fn rows(&self) -> &[(u64, T)] {
        &self.rows
    }

    /// Consume the observer, returning the recorded rows.
    pub fn into_rows(self) -> Vec<(u64, T)> {
        self.rows
    }
}

impl<P: Protocol, F: FnMut(&[P::State]) -> T, T> Observer<P> for Series<F, T> {
    fn observe(&mut self, _protocol: &P, t: u64, states: &[P::State]) -> Control {
        let v = (self.metric)(states);
        self.rows.push((t, v));
        Control::Continue
    }
}

/// Records the first checkpoint time at which a monotone metric reaches
/// each of a list of non-decreasing targets, stopping once all targets
/// are crossed. (Figure 3's "time to rank `c·n` agents".)
#[derive(Debug)]
pub struct Thresholds<F> {
    metric: F,
    targets: Vec<u64>,
    crossings: Vec<Option<u64>>,
}

impl<F> Thresholds<F> {
    /// Track when `metric(states)` first reaches each value in
    /// `targets`.
    pub fn new(metric: F, targets: Vec<u64>) -> Self {
        let crossings = vec![None; targets.len()];
        Self {
            metric,
            targets,
            crossings,
        }
    }

    /// Resume tracking with previously captured crossings — the
    /// restore side of checkpointing a long measured run (see
    /// [`Series::with_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if `crossings.len() != targets.len()`: a crossing list
    /// from a different target set cannot be adopted.
    pub fn with_crossings(metric: F, targets: Vec<u64>, crossings: Vec<Option<u64>>) -> Self {
        assert_eq!(
            targets.len(),
            crossings.len(),
            "crossings must match targets one-to-one"
        );
        Self {
            metric,
            targets,
            crossings,
        }
    }

    /// The tracked targets.
    pub fn targets(&self) -> &[u64] {
        &self.targets
    }

    /// Crossing time per target (`None` where the budget ran out first).
    pub fn crossings(&self) -> &[Option<u64>] {
        &self.crossings
    }

    /// Consume the observer, returning the crossing times.
    pub fn into_crossings(self) -> Vec<Option<u64>> {
        self.crossings
    }

    /// Have all targets been crossed?
    pub fn complete(&self) -> bool {
        self.crossings.iter().all(|c| c.is_some())
    }
}

impl<P: Protocol, F: FnMut(&[P::State]) -> u64> Observer<P> for Thresholds<F> {
    fn observe(&mut self, _protocol: &P, t: u64, states: &[P::State]) -> Control {
        let value = (self.metric)(states);
        for (i, &target) in self.targets.iter().enumerate() {
            if self.crossings[i].is_none() && value >= target {
                self.crossings[i] = Some(t);
            }
        }
        if self.complete() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Adapts an observer written against a protocol's structured states to
/// a run over the [`Packed`] words: at every checkpoint the
/// configuration is unpacked into a reused scratch buffer and handed to
/// the inner observer.
///
/// This is the observation end of the packed-representation contract —
/// the hot loop never unpacks; only the (sparse) checkpoints pay the
/// codec cost, `O(n)` per poll. Predicates that can read packed words
/// directly (e.g. `is_valid_ranking` over a word type implementing
/// `RankOutput`) don't need this adapter at all.
#[derive(Debug)]
pub struct Unpacked<P: PackedProtocol, O> {
    inner: O,
    scratch: Vec<P::State>,
}

impl<P: PackedProtocol, O> Unpacked<P, O> {
    /// Wrap a structured-state observer for a packed run.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            scratch: Vec::new(),
        }
    }

    /// The wrapped observer (e.g. to read its recorded results).
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Consume the adapter, returning the wrapped observer.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<P: BatchedProtocol, O: Observer<P>> Observer<Packed<P>> for Unpacked<P, O> {
    fn observe(&mut self, protocol: &Packed<P>, t: u64, words: &[P::Packed]) -> Control {
        self.scratch.clear();
        self.scratch
            .extend(words.iter().map(|&w| protocol.inner().unpack(w)));
        self.inner.observe(protocol.inner(), t, &self.scratch)
    }
}

/// A checkpoint observer evaluated through per-shard summaries — the
/// observation seam of the sharded simulator (`crates/shard`).
///
/// A plain [`Observer`] needs the whole configuration as one slice,
/// which a sharded run can only provide by concatenating its per-shard
/// state vectors (an `O(n)` copy per checkpoint). A `ShardObserver`
/// instead splits observation into two stages:
///
/// 1. [`summarize`](ShardObserver::summarize) — a pure function of one
///    shard's slice, producing a small [`Summary`](ShardObserver::Summary)
///    (a rank bitmap, a distinct-state multiset, a partial count…).
///    Summaries are `Send`, so shards can summarize concurrently.
/// 2. [`merge`](ShardObserver::merge) — combines the per-shard
///    summaries into the global verdict at interaction count `t`.
///
/// The contract, property-tested for the implementations here: merging
/// the per-shard summaries of any partition of a configuration yields
/// **exactly** the verdict of the corresponding whole-configuration
/// observer ([`ShardedRanking`] ≡ [`Convergence`] over
/// `is_valid_ranking`, [`ShardedSilence`] ≡ [`Silence`]).
pub trait ShardObserver<P: Protocol> {
    /// The per-shard partial observation.
    type Summary: Send;

    /// Summarize one shard's slice. `start` is the global index of the
    /// slice's first agent (shards partition the population
    /// contiguously and are presented in index order).
    fn summarize(&self, protocol: &P, start: usize, states: &[P::State]) -> Self::Summary;

    /// Merge the per-shard summaries (in shard order) into the global
    /// verdict at interaction count `t`. Returning [`Control::Stop`]
    /// ends the run.
    fn merge(&mut self, protocol: &P, t: u64, summaries: Vec<Self::Summary>) -> Control;

    /// Evaluate the observer on a whole configuration in one step —
    /// summarize the full slice as a single shard and merge it. This is
    /// what makes a `ShardObserver` usable (and testable) against
    /// unsharded runs.
    fn observe_whole(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control {
        let summary = self.summarize(protocol, 0, states);
        self.merge(protocol, t, vec![summary])
    }
}

/// Per-shard summary of [`ShardedRanking`]: which in-range ranks the
/// shard's agents output, and whether the shard already disproves
/// validity on its own.
#[derive(Debug, Clone)]
pub struct RankSummary {
    /// Bitmap over ranks `1..=n` (bit `r − 1` set iff some agent in the
    /// shard outputs rank `r`).
    mask: Vec<u64>,
    /// An agent was unranked, out of range, or a duplicate *within* the
    /// shard — the configuration cannot be a valid ranking.
    invalid: bool,
}

/// Stops when the ranks across all shards form a permutation of
/// `1..=n` — the shard-local/merged equivalent of
/// [`Convergence`] over [`crate::is_valid_ranking`].
///
/// Each shard contributes a rank bitmap; the merge checks that no shard
/// saw an invalid or duplicate rank and that the bitmaps are pairwise
/// disjoint. Since every agent must then hold a distinct in-range rank
/// and there are exactly `n` agents, disjointness alone implies the
/// permutation — no final popcount needed.
#[derive(Debug, Default)]
pub struct ShardedRanking {
    hit: Option<u64>,
}

impl ShardedRanking {
    /// New detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoint time at which the merged verdict first was "valid
    /// ranking", if any.
    pub fn converged_at(&self) -> Option<u64> {
        self.hit
    }
}

impl<P: Protocol> ShardObserver<P> for ShardedRanking
where
    P::State: crate::RankOutput,
{
    type Summary = RankSummary;

    fn summarize(&self, protocol: &P, _start: usize, states: &[P::State]) -> RankSummary {
        use crate::RankOutput;
        let n = protocol.n();
        let mut mask = vec![0u64; n.div_ceil(64)];
        let mut invalid = false;
        for s in states {
            match s.rank() {
                Some(r) if r >= 1 && (r as usize) <= n => {
                    let (word, bit) = ((r as usize - 1) / 64, (r as usize - 1) % 64);
                    if mask[word] & (1 << bit) != 0 {
                        invalid = true; // duplicate within the shard
                    }
                    mask[word] |= 1 << bit;
                }
                _ => invalid = true,
            }
        }
        RankSummary { mask, invalid }
    }

    fn merge(&mut self, _protocol: &P, t: u64, summaries: Vec<RankSummary>) -> Control {
        if self.hit.is_none() && merge_disjoint(summaries) {
            self.hit = Some(t);
        }
        if self.hit.is_some() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Stops when every *honest* agent holds a distinct in-range rank —
/// the stabilization target of a population containing persistent
/// (Byzantine) adversaries ([`crate::is_valid_honest_ranking`]).
///
/// The observer works on any state type implementing
/// [`HonestOutput`](crate::HonestOutput) (the `scenarios` crate's
/// `ByzState` wrapper is the canonical one) and comes in both engine
/// flavors: as a whole-configuration [`Observer`] for sequential runs,
/// and as a [`ShardObserver`] for the sharded engine's copy-free
/// `run_merged` path. Each shard contributes a bitmap of the ranks its
/// honest agents output (plus an invalid flag for unranked /
/// out-of-range / shard-local duplicates); the merge requires the
/// bitmaps to be pairwise disjoint. Unlike [`ShardedRanking`], no
/// completeness is required — adversaries may leave ranks unclaimed.
/// Both evaluation paths are property-tested against the brute-force
/// honest-subset check in `tests/byzantine.rs`.
#[derive(Debug, Default)]
pub struct HonestRanking {
    hit: Option<u64>,
}

impl HonestRanking {
    /// New detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoint time at which the honest agents first held valid
    /// distinct ranks, if they did.
    pub fn converged_at(&self) -> Option<u64> {
        self.hit
    }

    fn settle(&mut self, valid: bool, t: u64) -> Control {
        if self.hit.is_none() && valid {
            self.hit = Some(t);
        }
        if self.hit.is_some() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

impl<P: Protocol> Observer<P> for HonestRanking
where
    P::State: crate::HonestOutput,
{
    fn observe(&mut self, _protocol: &P, t: u64, states: &[P::State]) -> Control {
        let valid = crate::is_valid_honest_ranking(states);
        self.settle(valid, t)
    }
}

impl<P: Protocol> ShardObserver<P> for HonestRanking
where
    P::State: crate::HonestOutput,
{
    type Summary = RankSummary;

    fn summarize(&self, protocol: &P, _start: usize, states: &[P::State]) -> RankSummary {
        use crate::{HonestOutput, RankOutput};
        let n = protocol.n();
        let mut mask = vec![0u64; n.div_ceil(64)];
        let mut invalid = false;
        for s in states.iter().filter(|s| s.is_honest()) {
            match s.rank() {
                Some(r) if r >= 1 && (r as usize) <= n => {
                    let (word, bit) = ((r as usize - 1) / 64, (r as usize - 1) % 64);
                    if mask[word] & (1 << bit) != 0 {
                        invalid = true; // honest duplicate within the shard
                    }
                    mask[word] |= 1 << bit;
                }
                _ => invalid = true,
            }
        }
        RankSummary { mask, invalid }
    }

    fn merge(&mut self, _protocol: &P, t: u64, summaries: Vec<RankSummary>) -> Control {
        let valid = merge_disjoint(summaries);
        self.settle(valid, t)
    }
}

/// Merge rank-bitmap summaries: valid iff no summary carries the
/// invalid flag and the bitmaps are pairwise disjoint (shared by
/// [`ShardedRanking`] and [`HonestRanking`], whose merges differ only
/// in what counts as invalid within a shard).
fn merge_disjoint(summaries: Vec<RankSummary>) -> bool {
    let mut seen: Option<Vec<u64>> = None;
    for s in summaries {
        if s.invalid {
            return false;
        }
        match &mut seen {
            None => seen = Some(s.mask),
            Some(acc) => {
                for (a, m) in acc.iter_mut().zip(&s.mask) {
                    if *a & m != 0 {
                        return false; // duplicate across shards
                    }
                    *a |= m;
                }
            }
        }
    }
    true
}

/// Stops when the merged configuration is silent — the shard-local
/// equivalent of [`Silence`].
///
/// Silence depends only on the *multiset of states present*: an ordered
/// pair of states `(x, y)` is executable iff `x ≠ y` and both occur, or
/// `x = y` occurs at least twice. Each shard therefore summarizes its
/// slice as a sorted list of distinct states with occurrence counts
/// (saturated at 2 — higher multiplicities change nothing); the merge
/// combines the multisets and probes every executable state pair
/// against the transition function. Cost is `O(d²)` transitions for `d`
/// distinct states — same worst case as [`crate::silence::is_silent`],
/// so poll it as sparsely.
#[derive(Debug, Default)]
pub struct ShardedSilence {
    hit: Option<u64>,
}

impl ShardedSilence {
    /// New silence detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoint time at which silence was first observed, if any.
    pub fn silent_at(&self) -> Option<u64> {
        self.hit
    }
}

impl<P: Protocol> ShardObserver<P> for ShardedSilence
where
    P::State: Ord + Send,
{
    type Summary = Vec<(P::State, u32)>;

    fn summarize(&self, _protocol: &P, _start: usize, states: &[P::State]) -> Self::Summary {
        let mut sorted: Vec<P::State> = states.to_vec();
        sorted.sort_unstable();
        let mut out: Vec<(P::State, u32)> = Vec::new();
        for s in sorted {
            match out.last_mut() {
                Some((last, count)) if *last == s => *count = (*count + 1).min(2),
                _ => out.push((s, 1)),
            }
        }
        out
    }

    fn merge(&mut self, protocol: &P, t: u64, summaries: Vec<Self::Summary>) -> Control {
        if self.hit.is_none() {
            let mut all: Vec<(P::State, u32)> = Vec::new();
            for summary in summaries {
                for (s, c) in summary {
                    all.push((s, c));
                }
            }
            all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            all.dedup_by(|next, acc| {
                if next.0 == acc.0 {
                    acc.1 = (acc.1 + next.1).min(2);
                    true
                } else {
                    false
                }
            });
            let silent = 'probe: {
                for (xi, (x, cx)) in all.iter().enumerate() {
                    for (yi, (y, _)) in all.iter().enumerate() {
                        if xi == yi && *cx < 2 {
                            continue; // a lone agent cannot meet itself
                        }
                        let mut u = x.clone();
                        let mut v = y.clone();
                        protocol.transition(&mut u, &mut v);
                        if u != *x || v != *y {
                            break 'probe false;
                        }
                    }
                }
                true
            };
            if silent {
                self.hit = Some(t);
            }
        }
        if self.hit.is_some() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

/// Counts checkpoints and remembers the first and last observed
/// interaction counts; never stops.
#[derive(Debug, Default)]
pub struct Meter {
    checkpoints: u64,
    first: Option<u64>,
    last: u64,
}

impl Meter {
    /// New, empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of checkpoints observed.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Interactions elapsed between the first and last checkpoint.
    pub fn interactions_seen(&self) -> u64 {
        self.last - self.first.unwrap_or(self.last)
    }
}

impl<P: Protocol> Observer<P> for Meter {
    fn observe(&mut self, _protocol: &P, t: u64, _states: &[P::State]) -> Control {
        self.checkpoints += 1;
        self.first.get_or_insert(t);
        self.last = t;
        Control::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::epidemic::Epidemic;
    use crate::{Simulator, StopReason};

    fn epidemic_sim(n: usize, m: usize, seed: u64) -> Simulator<Epidemic> {
        let protocol = Epidemic::new(n);
        let init = protocol.initial(m);
        Simulator::new(protocol, init, seed)
    }

    #[test]
    fn convergence_observer_records_hit_time() {
        let mut sim = epidemic_sim(32, 32, 5);
        let mut conv = Convergence::new(Epidemic::complete);
        let stop = sim.run_observed(1_000_000, 32, &mut conv);
        let t = conv.converged_at().expect("epidemic completes");
        assert_eq!(stop, StopReason::Converged(t));
        assert_eq!(t, sim.interactions());
    }

    #[test]
    fn silence_observer_stops_absorbed_runs() {
        let mut sim = epidemic_sim(16, 16, 2);
        let mut silence = Silence::new();
        let stop = sim.run_observed(1_000_000, 16, &mut silence);
        assert!(stop.converged_at().is_some());
        assert_eq!(silence.silent_at(), stop.converged_at());
    }

    #[test]
    fn series_collects_monotone_epidemic_counts() {
        let mut sim = epidemic_sim(64, 64, 3);
        let mut series = Series::new(|s: &[_]| Epidemic::infected_count(s) as u64);
        sim.run_observed(2000, 100, &mut series);
        let rows = series.rows();
        assert_eq!(rows.first().map(|r| r.0), Some(0));
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1), "monotone");
        assert!(rows.len() >= 21, "start + 20 checkpoints");
    }

    #[test]
    fn thresholds_record_ordered_crossings() {
        let mut sim = epidemic_sim(64, 64, 7);
        let mut th = Thresholds::new(
            |s: &[_]| Epidemic::infected_count(s) as u64,
            vec![16, 32, 48, 64],
        );
        let stop = sim.run_observed(10_000_000, 16, &mut th);
        assert!(stop.converged_at().is_some(), "all thresholds crossed");
        let times: Vec<u64> = th.crossings().iter().map(|c| c.expect("crossed")).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn tuple_composition_stops_on_first_member() {
        let mut sim = epidemic_sim(32, 32, 11);
        let mut conv = Convergence::new(Epidemic::complete);
        let mut meter = Meter::new();
        let stop = sim.run_observed(1_000_000, 32, &mut (&mut conv, &mut meter));
        assert!(stop.converged_at().is_some());
        // The meter saw the initial checkpoint plus one per burst.
        assert!(meter.checkpoints() >= 2);
        assert_eq!(meter.interactions_seen(), sim.interactions());
    }

    /// Partition `states` into `shards` contiguous balanced slices,
    /// summarize each, and merge — the exact evaluation a sharded run
    /// performs at a checkpoint.
    fn merged_verdict<P: Protocol, O: ShardObserver<P>>(
        obs: &mut O,
        protocol: &P,
        t: u64,
        states: &[P::State],
        shards: usize,
    ) -> Control {
        let n = states.len();
        let summaries: Vec<O::Summary> = (0..shards)
            .map(|s| {
                let (start, end) = ((s * n).div_ceil(shards), ((s + 1) * n).div_ceil(shards));
                obs.summarize(protocol, start, &states[start..end])
            })
            .collect();
        obs.merge(protocol, t, summaries)
    }

    /// A protocol whose states output their value as a rank.
    struct Ranks(usize);
    impl Protocol for Ranks {
        type State = u64;
        fn n(&self) -> usize {
            self.0
        }
        fn transition(&self, _: &mut u64, _: &mut u64) -> bool {
            false
        }
    }
    impl crate::RankOutput for u64 {
        fn rank(&self) -> Option<u64> {
            if *self == 0 {
                None
            } else {
                Some(*self)
            }
        }
    }

    #[test]
    fn sharded_ranking_agrees_with_is_valid_ranking() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for case in 0..200 {
            let n = rng.random_range(1..=24usize);
            let protocol = Ranks(n);
            // Mix of permutations (shuffled) and noisy configurations so
            // both verdicts occur frequently.
            let states: Vec<u64> = if case % 3 == 0 {
                let mut perm: Vec<u64> = (1..=n as u64).collect();
                for i in (1..perm.len()).rev() {
                    let j = rng.random_range(0..=i);
                    perm.swap(i, j);
                }
                perm
            } else {
                (0..n)
                    .map(|_| rng.random_range(0..=(n as u64 + 2)))
                    .collect()
            };
            let expected = crate::is_valid_ranking(&states);
            for shards in [1, 2, 3, n] {
                if shards > n {
                    continue;
                }
                let mut obs = ShardedRanking::new();
                let verdict = merged_verdict(&mut obs, &protocol, 7, &states, shards);
                assert_eq!(
                    verdict.is_stop(),
                    expected,
                    "case {case}: n={n} shards={shards} states={states:?}"
                );
                assert_eq!(obs.converged_at().is_some(), expected);
            }
        }
    }

    #[test]
    fn sharded_silence_agrees_with_is_silent() {
        use crate::silence::is_silent;
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(9);
        for case in 0..120 {
            let n = rng.random_range(2..=16usize);
            let protocol = Epidemic::new(n);
            let infected = rng.random_range(1..=n);
            // Shuffled epidemic configuration: silent iff all or none
            // infected (modulo the one-way rule: all-false is silent,
            // any mix is not).
            let mut states = protocol.initial(infected);
            for i in (1..states.len()).rev() {
                let j = rng.random_range(0..=i);
                states.swap(i, j);
            }
            let expected = is_silent(&protocol, &states);
            for shards in [1, 2, n] {
                let mut obs = ShardedSilence::new();
                let verdict = merged_verdict(&mut obs, &protocol, 3, &states, shards);
                assert_eq!(
                    verdict.is_stop(),
                    expected,
                    "case {case}: n={n} shards={shards} states={states:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_silence_counts_same_state_pairs() {
        // Two agents in the *same* active state must be probed against
        // each other: (true, true) is silent for the epidemic, but a
        // protocol where equal states interact is not. Use a counter
        // protocol where (x, x) changes state.
        struct Tick;
        impl Protocol for Tick {
            type State = u8;
            fn n(&self) -> usize {
                4
            }
            fn transition(&self, u: &mut u8, v: &mut u8) -> bool {
                if *u == *v && *u == 1 {
                    *v = 2;
                    return true;
                }
                false
            }
        }
        let mut obs = ShardedSilence::new();
        // A single 1 cannot meet itself: silent.
        let lone = vec![0u8, 1, 0, 2];
        assert!(obs.observe_whole(&Tick, 0, &lone).is_stop());
        // Two 1s interact: not silent — and the duplicates land in
        // different shards, so only the merged multiset can see it.
        let mut obs = ShardedSilence::new();
        let dup = vec![1u8, 0, 1, 0];
        assert!(!merged_verdict(&mut obs, &Tick, 0, &dup, 2).is_stop());
    }

    #[test]
    fn meter_counts_budgeted_checkpoints() {
        let mut sim = epidemic_sim(16, 1, 1);
        let mut meter = Meter::new();
        let stop = sim.run_observed(500, 100, &mut meter);
        assert_eq!(stop, StopReason::BudgetExhausted);
        assert_eq!(meter.checkpoints(), 6); // t = 0, 100, ..., 500
        assert_eq!(meter.interactions_seen(), 500);
    }
}
