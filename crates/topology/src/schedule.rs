//! [`GraphSchedule`]: the edge-restricted pair source.
//!
//! Draws ordered interaction pairs **uniformly from the directed edges**
//! of a [`Topology`]: each of the `2m` orientations of the `m`
//! undirected edges is equally likely, every draw, independently. This
//! is the standard scheduler model for population protocols on graphs
//! (and on the complete graph it *is* the paper's uniform scheduler:
//! `2m = n(n−1)` directed edges, one per ordered pair).
//!
//! The draw factors through the chain rule: pick the initiator with
//! probability `deg(i)/2m` (an O(1) [`AliasTable`] lookup over the
//! degree vector), then a neighbor uniformly from the initiator's CSR
//! row. Two 64-bit RNG outputs per pair, no rejection, any degree
//! distribution.
//!
//! `GraphSchedule` honors the two [`PairSource`] contracts the engine is
//! built on — validity (adjacent, distinct, in-range pairs) and the
//! single-FIFO-stream rule (scalar and batched consumption interleave
//! bit-exactly, via the shared [`BlockBuffer`]) — and implements
//! [`CursorSource`], so checkpoint/restore works through the same
//! snapshot machinery as the uniform scheduler. The cursor's `topo`
//! words carry the [`TopologySpec`] (four `u64`s), not the edge list:
//! a spec builds the identical graph every time, so restore is
//! `decode → build → resume RNG`.

use crate::alias::AliasTable;
use crate::graph::{Topology, TopologySpec};
use population::schedule::{BlockBuffer, Pair};
use population::{CursorSource, PairSource, ScheduleCursor};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Seeded generator of ordered pairs uniform over the directed edges of
/// a fixed interaction topology.
#[derive(Debug, Clone)]
pub struct GraphSchedule {
    topo: Topology,
    alias: AliasTable,
    rng: SmallRng,
    buf: BlockBuffer,
}

/// Draw one directed edge: degree-proportional initiator via the alias
/// table, then a uniform neighbor from the initiator's CSR row
/// (widening-multiply index map, bias < deg · 2⁻³² like every index map
/// in this workspace). One canonical function consumed by both the
/// scalar and the batched path — the single-stream contract by
/// construction.
#[inline]
fn draw_edge(rng: &mut SmallRng, topo: &Topology, alias: &AliasTable) -> Pair {
    let i = alias.sample(rng.next_u64());
    let row = topo.neighbors(i);
    let pick = ((rng.next_u64() & 0xFFFF_FFFF) * row.len() as u64) >> 32;
    (i as u32, row[pick as usize])
}

impl GraphSchedule {
    /// A schedule drawing uniformly from the directed edges of the graph
    /// built by `spec`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`TopologySpec::validate`]) or
    /// the built graph is disconnected or has an isolated vertex — a
    /// vertex that can never interact cannot participate in a ranking,
    /// and a disconnected topology can never stabilize globally. (The
    /// bundled generators only produce connected graphs; this guards
    /// future ones.)
    pub fn new(spec: TopologySpec, seed: u64) -> Self {
        Self::from_topology(spec.build(), SmallRng::seed_from_u64(seed))
    }

    fn from_topology(topo: Topology, rng: SmallRng) -> Self {
        assert!(
            topo.min_degree() >= 1,
            "topology has an isolated vertex; it can never interact"
        );
        assert!(
            topo.is_connected(),
            "topology is disconnected; ranking cannot stabilize globally"
        );
        let degrees: Vec<u64> = (0..topo.n()).map(|i| topo.degree(i) as u64).collect();
        let alias = AliasTable::new(&degrees);
        Self {
            topo,
            alias,
            rng,
            buf: BlockBuffer::new(),
        }
    }

    /// The topology this schedule draws edges from.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of pairs currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.buffered()
    }
}

impl PairSource for GraphSchedule {
    fn n(&self) -> usize {
        self.topo.n()
    }

    #[inline]
    fn next_pair(&mut self) -> (usize, usize) {
        let (rng, topo, alias) = (&mut self.rng, &self.topo, &self.alias);
        self.buf.next_pair(|| draw_edge(rng, topo, alias))
    }

    #[inline]
    fn sample_block(&mut self, max: usize) -> &[Pair] {
        let (rng, topo, alias) = (&mut self.rng, &self.topo, &self.alias);
        self.buf.sample_block(max, || draw_edge(rng, topo, alias))
    }
}

impl CursorSource for GraphSchedule {
    fn cursor(&self) -> ScheduleCursor {
        ScheduleCursor {
            rng: self.rng.state(),
            n: self.topo.n() as u64,
            start: 0,
            len: self.topo.n() as u64,
            pending: self.buf.pending().to_vec(),
            topo: self.topo.spec().encode(),
        }
    }

    fn from_cursor(cursor: ScheduleCursor) -> Self {
        let spec = match TopologySpec::decode(&cursor.topo) {
            Ok(spec) => spec,
            Err(why) => panic!("cursor does not restore to a GraphSchedule: {why}"),
        };
        assert_eq!(
            spec.n() as u64,
            cursor.n,
            "cursor population size disagrees with its topology spec"
        );
        assert!(
            cursor.start == 0 && cursor.len == cursor.n,
            "GraphSchedule cursor must cover the full initiator range"
        );
        let mut restored = Self::from_topology(spec.build(), SmallRng::from_state(cursor.rng));
        restored.buf = BlockBuffer::with_pending(cursor.pending);
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_sched(n: u32, seed: u64) -> GraphSchedule {
        GraphSchedule::new(TopologySpec::Ring { n }, seed)
    }

    #[test]
    fn pairs_are_adjacent_distinct_and_in_range() {
        let mut s = GraphSchedule::new(
            TopologySpec::Regular {
                n: 24,
                d: 4,
                seed: 3,
            },
            7,
        );
        let topo = s.topology().clone();
        for _ in 0..20_000 {
            let (i, j) = s.next_pair();
            assert!(i < 24 && j < 24);
            assert_ne!(i, j);
            assert!(
                topo.neighbors(i).contains(&(j as u32)),
                "pair ({i}, {j}) is not an edge"
            );
        }
    }

    #[test]
    fn directed_edges_are_sampled_uniformly() {
        // Ring on 8 vertices: 16 directed edges, each expected 1/16.
        let mut s = ring_sched(8, 42);
        let mut counts = std::collections::HashMap::new();
        let draws = 160_000;
        for _ in 0..draws {
            *counts.entry(s.next_pair()).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 16, "every directed edge must appear");
        for (&edge, &c) in &counts {
            let expect = draws as f64 / 16.0;
            assert!(
                (c as f64 - expect).abs() < 5.0 * expect.sqrt(),
                "edge {edge:?}: count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn block_and_scalar_share_the_stream() {
        let mut scalar = ring_sched(16, 9);
        let mut blocked = ring_sched(16, 9);
        let expected: Vec<(usize, usize)> = (0..5000).map(|_| scalar.next_pair()).collect();
        let mut got = Vec::new();
        while got.len() < 5000 {
            let block = blocked.sample_block(5000 - got.len()).to_vec();
            got.extend(block.iter().map(|&(i, j)| (i as usize, j as usize)));
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn interleaved_consumption_is_seamless() {
        let mut reference = ring_sched(12, 4);
        let expected: Vec<(usize, usize)> = (0..3000).map(|_| reference.next_pair()).collect();
        let mut mixed = ring_sched(12, 4);
        let mut got = Vec::new();
        while got.len() < 3000 {
            got.push(mixed.next_pair());
            let want = (3000 - got.len()).min(29);
            got.extend(
                mixed
                    .sample_block(want)
                    .iter()
                    .map(|&(i, j)| (i as usize, j as usize)),
            );
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn cursor_round_trip_continues_the_stream() {
        let mut original = GraphSchedule::new(
            TopologySpec::Preferential {
                n: 30,
                m: 2,
                seed: 6,
            },
            11,
        );
        for _ in 0..1234 {
            original.next_pair();
        }
        let cursor = original.cursor();
        assert_eq!(cursor.topo.len(), 4);
        let mut restored = GraphSchedule::from_cursor(cursor);
        for _ in 0..5000 {
            assert_eq!(original.next_pair(), restored.next_pair());
        }
    }

    #[test]
    fn cursor_pending_pairs_replay_before_fresh_draws() {
        // A cursor with a buffered-but-unconsumed tail: the restored
        // source replays `pending` first, then draws from the RNG —
        // same contract as the uniform Schedule.
        let mut reference = ring_sched(20, 8);
        let expected: Vec<(usize, usize)> = (0..200).map(|_| reference.next_pair()).collect();

        let mut advanced = ring_sched(20, 8);
        let replay: Vec<Pair> = (0..5)
            .map(|_| {
                let (i, j) = advanced.next_pair();
                (i as u32, j as u32)
            })
            .collect();
        let mut cursor = advanced.cursor();
        cursor.pending = replay;

        let mut restored = GraphSchedule::from_cursor(cursor);
        let got: Vec<(usize, usize)> = (0..200).map(|_| restored.next_pair()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "does not restore to a GraphSchedule")]
    fn rejects_uniform_cursor() {
        use population::Schedule;
        let uniform = Schedule::new(16, 1);
        let _ = GraphSchedule::from_cursor(uniform.cursor());
    }

    #[test]
    #[should_panic(expected = "disagrees with its topology spec")]
    fn rejects_population_size_mismatch() {
        let mut cursor = ring_sched(10, 1).cursor();
        cursor.n = 11;
        cursor.len = 11;
        let _ = GraphSchedule::from_cursor(cursor);
    }

    #[test]
    fn uniform_sources_reject_graph_cursors() {
        use population::Schedule;
        let graph_cursor = ring_sched(10, 1).cursor();
        let outcome = std::panic::catch_unwind(|| Schedule::from_cursor(graph_cursor));
        assert!(outcome.is_err(), "Schedule must refuse a topology cursor");
    }
}
