//! Interaction topologies: ranking beyond the clique.
//!
//! The paper — and every engine path in this workspace before this
//! crate — assumes the *uniform clique scheduler*: any ordered pair of
//! distinct agents may interact, uniformly at random. The silent
//! self-stabilization literature the paper sits in (BFS trees, MST,
//! spanning forests) instead lives on *graphs*, where only adjacent
//! agents ever communicate. This crate makes that restriction a
//! first-class scheduling choice:
//!
//! * [`Topology`] — an undirected simple graph in CSR (compressed
//!   sparse row) adjacency form, with degree/connectivity queries and a
//!   normalized-spectral-gap estimate (the quantity the stabilization
//!   time is expected to track);
//! * [`TopologySpec`] — the seeded, deterministic generator menu
//!   (ring, 2-D torus, random geometric, random regular ≈ expander,
//!   preferential attachment, complete-as-baseline). A spec is a pure
//!   value: `spec.build()` always returns the identical graph, which is
//!   what lets a scheduler cursor carry the *spec* instead of the edge
//!   list (see [`GraphSchedule`]'s checkpoint story);
//! * [`GraphSchedule`] — a [`population::PairSource`] drawing ordered
//!   interaction pairs **uniformly from the directed edges** of a
//!   topology, in O(1) per draw via an alias table ([`AliasTable`])
//!   over the degree distribution. On the complete graph this is
//!   statistically the uniform scheduler (property-tested by
//!   chi-square in `tests/topology_equivalence.rs`), so the clique
//!   baseline threads through the same code path as every restricted
//!   topology.
//!
//! Everything composes through the existing engine seams: plug a
//! [`GraphSchedule`] into
//! [`Simulator::with_source`](population::Simulator::with_source) and
//! every run mode — scalar, batched, observed, faulted, probed — works
//! unchanged; the [`population::CursorSource`] implementation threads
//! it through checkpoint/restore (`snapshot::resume_simulator_with`).
//! Sharded execution is the one seam **not** yet covered: the sharded
//! engine partitions *initiators* into contiguous lanes, while a graph
//! workload needs an *edge* partition to keep cross-shard traffic
//! bounded — graph runs are single-shard for now (see
//! `docs/TOPOLOGY.md` for the follow-up design note).
//!
//! See `docs/TOPOLOGY.md` for the abstraction guide and
//! `BENCH_topo.json` (the `topology` bench binary) for the measured
//! stabilization-vs-spectral-gap curve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod graph;
pub mod schedule;

pub use alias::AliasTable;
pub use graph::{Topology, TopologySpec};
pub use schedule::GraphSchedule;
