//! Walker/Vose alias sampling in O(1) per draw.
//!
//! [`GraphSchedule`](crate::GraphSchedule) must pick an initiator with
//! probability proportional to its degree (that is what "uniform over
//! directed edges" means marginally), millions of times per second,
//! over degree distributions as skewed as preferential attachment's.
//! The alias method preprocesses the weight vector once into `k`
//! columns, each holding a primary index and an alias index with a
//! split threshold; a draw is then one uniform column pick plus one
//! threshold compare — two array reads, no search, whatever the
//! weights.
//!
//! The construction here is **integer-only** (thresholds are 32-bit
//! fixed-point fractions of a column), so tables are bit-identical
//! across platforms — a requirement, because the pair stream must be a
//! pure function of the seed for every topology. For *equal* weights
//! (regular graphs, and the complete graph in particular) the scaled
//! column loads divide exactly and every threshold is full: sampling
//! degenerates to the same widening-multiply uniform index map the
//! clique [`Schedule`](population::Schedule) uses, with zero rejection
//! and zero aliasing — the clique baseline pays nothing for the
//! generality.

/// Unit column load: thresholds live in `[0, 2^32]`.
const UNIT: u64 = 1 << 32;

/// A preprocessed discrete distribution supporting O(1) weighted index
/// sampling from a single 64-bit uniform draw.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Accept-primary threshold per column, in `[0, 2^32]` (a full
    /// column never aliases).
    threshold: Vec<u64>,
    /// Alias index per column (self-referential for full columns).
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build the table for `weights` (Vose's stable two-worklist
    /// construction, integer arithmetic throughout).
    ///
    /// Column loads are `weightᵢ · k / total` in 32-bit fixed point;
    /// integer rounding leaves a total deficit below `k · 2⁻³²`, which
    /// the construction absorbs by topping up the last columns — a
    /// per-index bias below `2⁻³²`, orders of magnitude under the
    /// sampling noise of any experiment here (the same argument as the
    /// uniform scheduler's widening-multiply index map). Equal weights
    /// divide exactly and sample exactly uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, longer than `u32::MAX`, contains a
    /// zero, or sums past `2^63` (degree tables are nowhere near any of
    /// these; a zero weight would make the column unreachable, which
    /// for a degree table means an agent that can never interact).
    pub fn new(weights: &[u64]) -> Self {
        let k = weights.len();
        assert!(k > 0, "alias table needs at least one weight");
        assert!(u32::try_from(k).is_ok(), "alias table exceeds u32 columns");
        assert!(
            weights.iter().all(|&w| w > 0),
            "alias table weights must be positive"
        );
        let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
        assert!(total < 1 << 63, "alias table total weight overflows");

        // Scaled load of column i: weight_i * k, in units of total/2^32
        // per column. A column with load UNIT is exactly average.
        let mut load: Vec<u64> = weights
            .iter()
            .map(|&w| ((u128::from(w) * k as u128 * u128::from(UNIT)) / total) as u64)
            .collect();
        let mut threshold = vec![UNIT; k];
        let mut alias: Vec<u32> = (0..k as u32).collect();

        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &l) in load.iter().enumerate() {
            if l < UNIT {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // The small column keeps its own load and aliases the rest
            // of its capacity to the large one.
            threshold[s as usize] = load[s as usize];
            alias[s as usize] = l;
            load[l as usize] -= UNIT - load[s as usize];
            if load[l as usize] < UNIT {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains (rounding residue) is topped up to a full
        // column; `threshold` already holds UNIT for untouched entries.
        for &s in &small {
            threshold[s as usize] = UNIT;
        }
        Self { threshold, alias }
    }

    /// Number of columns (indices) in the distribution.
    pub fn len(&self) -> usize {
        self.alias.len()
    }

    /// Whether the table has no columns (never true: construction
    /// rejects empty weights).
    pub fn is_empty(&self) -> bool {
        self.alias.is_empty()
    }

    /// Sample one index from 64 uniform bits: the low 32 pick the
    /// column (widening multiply), the high 32 are the threshold coin.
    #[inline]
    pub fn sample(&self, bits: u64) -> usize {
        let k = self.alias.len() as u64;
        let col = (((bits & 0xFFFF_FFFF) * k) >> 32) as usize;
        let coin = bits >> 32;
        if coin < self.threshold[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    fn empirical_counts(table: &AliasTable, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts = vec![0u64; table.len()];
        for _ in 0..draws {
            counts[table.sample(rng.next_u64())] += 1;
        }
        counts
    }

    #[test]
    fn equal_weights_have_full_thresholds() {
        // The degenerate case must be *exact*: every column full, no
        // aliasing, so uniform inputs give uniform outputs bit for bit.
        for k in [1usize, 2, 7, 64, 1000] {
            let t = AliasTable::new(&vec![5u64; k]);
            assert!(t.threshold.iter().all(|&x| x == UNIT), "k = {k}");
        }
    }

    #[test]
    fn skewed_weights_sample_proportionally() {
        let weights = [1u64, 2, 3, 10, 100];
        let total: u64 = weights.iter().sum();
        let t = AliasTable::new(&weights);
        let draws = 2_000_000;
        let counts = empirical_counts(&t, draws, 42);
        for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
            let expect = draws as f64 * w as f64 / total as f64;
            let err = (c as f64 - expect).abs() / expect;
            // 100x the binomial standard error at the smallest weight
            // would be ~0.05; allow 0.02 for all.
            assert!(err < 0.02, "index {i}: count {c}, expected {expect:.0}");
        }
    }

    #[test]
    fn extreme_skew_still_covers_every_index() {
        let weights = [1u64, 1 << 40];
        let t = AliasTable::new(&weights);
        let counts = empirical_counts(&t, 4_000_000, 7);
        assert!(counts[0] < 100, "tiny weight over-sampled: {}", counts[0]);
        assert!(counts[1] > 3_999_000);
    }

    #[test]
    fn construction_is_deterministic() {
        let weights: Vec<u64> = (1..=257).collect();
        let a = AliasTable::new(&weights);
        let b = AliasTable::new(&weights);
        assert_eq!(a.threshold, b.threshold);
        assert_eq!(a.alias, b.alias);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weight() {
        let _ = AliasTable::new(&[3, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_weights() {
        let _ = AliasTable::new(&[]);
    }
}
