//! The [`Topology`] abstraction (CSR adjacency) and its seeded,
//! deterministic generator menu ([`TopologySpec`]).
//!
//! A topology is an undirected **simple** graph: no self-loops, no
//! duplicate edges. Construction validates both, plus index bounds, so
//! a [`Topology`] value is a proof its invariants hold — the scheduler
//! built on it ([`crate::GraphSchedule`]) can sample without checks in
//! its hot loop.
//!
//! Every generator is a pure function of its [`TopologySpec`]: the same
//! spec always builds the identical graph, byte for byte. Generators
//! that need randomness (geometric, regular, preferential attachment)
//! derive it from the spec's own seed, and generators that need a
//! *search* (a geometric radius that happens to disconnect, a stub
//! pairing with a collision) retry deterministically with salted
//! sub-seeds — so determinism survives the retries. This purity is what
//! lets a scheduler checkpoint carry the spec (four `u64` words, see
//! [`TopologySpec::encode`]) instead of the edge list.

use analysis::spectral::{normalized_gap, GapEstimate};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Salt between deterministic generator retry attempts (the SplitMix64
/// increment, so sibling attempts use well-separated seed orbits).
const RETRY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Bounded attempts for generators that must search for a valid graph.
const MAX_ATTEMPTS: u64 = 256;

/// An undirected simple graph over `n` vertices in CSR adjacency form.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    n: usize,
    /// CSR row offsets, `n + 1` entries: vertex `i`'s neighbors are
    /// `targets[offsets[i]..offsets[i + 1]]`, sorted ascending.
    offsets: Vec<usize>,
    /// Flattened neighbor lists, `2m` entries (each undirected edge
    /// appears in both endpoint rows).
    targets: Vec<u32>,
    /// The generator specification this graph was built from.
    spec: TopologySpec,
}

impl Topology {
    /// Build from an undirected edge list (validates simplicity).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range endpoint, a self-loop, or a duplicate
    /// edge (in either orientation) — generator bugs, not runtime
    /// conditions.
    fn from_edges(n: usize, spec: TopologySpec, edges: &[(u32, u32)]) -> Self {
        assert!(n >= 2, "topology needs at least two vertices");
        assert!(u32::try_from(n).is_ok(), "vertex count exceeds u32");
        let mut degree = vec![0usize; n];
        for &(a, b) in edges {
            assert!((a as usize) < n && (b as usize) < n, "edge out of range");
            assert_ne!(a, b, "self-loop in edge list");
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut targets = vec![0u32; offsets[n]];
        let mut cursor = offsets.clone();
        for &(a, b) in edges {
            targets[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        for i in 0..n {
            let row = &mut targets[offsets[i]..offsets[i + 1]];
            row.sort_unstable();
            assert!(
                row.windows(2).all(|w| w[0] != w[1]),
                "duplicate edge at vertex {i}"
            );
        }
        Self {
            n,
            offsets,
            targets,
            spec,
        }
    }

    /// Number of vertices (the population size a schedule built on this
    /// topology serves).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The sorted neighbor list of vertex `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Smallest vertex degree.
    pub fn min_degree(&self) -> usize {
        (0..self.n).map(|i| self.degree(i)).min().unwrap_or(0)
    }

    /// Largest vertex degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|i| self.degree(i)).max().unwrap_or(0)
    }

    /// CSR row offsets (`n + 1` entries) — the raw adjacency view the
    /// spectral estimator consumes.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// CSR flattened neighbor lists (`2m` entries).
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// The generator specification this graph was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Is the graph connected? (BFS from vertex 0.) Ranking requires
    /// it: information cannot cross a disconnected cut, so a protocol
    /// on a disconnected topology can never form one global ranking.
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v as usize) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    reached += 1;
                    queue.push_back(w);
                }
            }
        }
        reached == self.n
    }

    /// Estimate the spectral gap `1 − λ₂` of the normalized adjacency
    /// `D⁻¹A` (power iteration on the lazy chain; see
    /// [`analysis::spectral`]). Large gap ≈ expander ≈ fast mixing;
    /// the ring's gap vanishes as `Θ(1/n²)`. This is the x-axis of the
    /// `BENCH_topo.json` stabilization curve.
    pub fn spectral_gap(&self) -> GapEstimate {
        normalized_gap(&self.offsets, &self.targets, 20_000, 1e-12)
    }
}

/// The seeded generator menu. A spec is a small pure value — building
/// it twice yields the identical [`Topology`] — and encodes to exactly
/// four `u64` words for the scheduler-cursor seam.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// The clique: every pair adjacent. The baseline — a
    /// [`crate::GraphSchedule`] over it is statistically the paper's
    /// uniform scheduler.
    Complete {
        /// Vertex count (`≥ 2`).
        n: u32,
    },
    /// The cycle `0 — 1 — … — n−1 — 0`: diameter `⌊n/2⌋`, spectral gap
    /// `Θ(1/n²)` — the worst connected case measured here.
    Ring {
        /// Vertex count (`≥ 3`; a 2-ring would duplicate its one edge).
        n: u32,
    },
    /// The `w × h` 2-D torus (both dimensions wrap): degree 4,
    /// diameter `Θ(w + h)`, gap `Θ(1/max(w,h)²)`.
    Torus {
        /// Width (`≥ 3`; width 2 would duplicate wrap edges).
        w: u32,
        /// Height (`≥ 3`).
        h: u32,
    },
    /// Random geometric graph: `n` points uniform in the unit square,
    /// an edge whenever two points lie within `radius`. Models
    /// proximity-limited communication. `build` retries salted seeds
    /// (bounded) until the sampled graph is connected.
    Geometric {
        /// Vertex count (`≥ 2`).
        n: u32,
        /// Connection radius in `(0, √2]`, stored as `f64` bits in the
        /// encoded form. Connectivity needs roughly
        /// `radius ≳ √(ln n / n)`.
        radius: f64,
        /// Generator seed (point placement).
        seed: u64,
    },
    /// Random `d`-regular graph by the configuration model (stub
    /// pairing, resampled until simple and connected — for `d ≥ 3`
    /// almost every pairing already is). The expander of the menu: gap
    /// `Θ(1)` with high probability.
    Regular {
        /// Vertex count (`n · d` must be even, `d < n`).
        n: u32,
        /// Uniform degree (`≥ 3` for the expansion guarantee).
        d: u32,
        /// Generator seed (stub shuffle).
        seed: u64,
    },
    /// Barabási–Albert preferential attachment: start from a clique on
    /// `m + 1` vertices, each later vertex attaches to `m` distinct
    /// existing vertices chosen proportionally to degree. Heavy-tailed
    /// degrees, small diameter — the "scale-free service" topology.
    Preferential {
        /// Vertex count (`≥ m + 1`).
        n: u32,
        /// Edges added per arriving vertex (`≥ 1`).
        m: u32,
        /// Generator seed (attachment draws).
        seed: u64,
    },
}

/// Discriminants of the four-word encoding (word 0).
const KIND_COMPLETE: u64 = 0;
const KIND_RING: u64 = 1;
const KIND_TORUS: u64 = 2;
const KIND_GEOMETRIC: u64 = 3;
const KIND_REGULAR: u64 = 4;
const KIND_PREFERENTIAL: u64 = 5;

impl TopologySpec {
    /// A short stable name for tables and JSON artifacts.
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::Complete { .. } => "complete",
            TopologySpec::Ring { .. } => "ring",
            TopologySpec::Torus { .. } => "torus",
            TopologySpec::Geometric { .. } => "geometric",
            TopologySpec::Regular { .. } => "regular",
            TopologySpec::Preferential { .. } => "preferential",
        }
    }

    /// The vertex count the built graph will have.
    pub fn n(&self) -> usize {
        match *self {
            TopologySpec::Complete { n } => n as usize,
            TopologySpec::Ring { n } => n as usize,
            TopologySpec::Torus { w, h } => w as usize * h as usize,
            TopologySpec::Geometric { n, .. } => n as usize,
            TopologySpec::Regular { n, .. } => n as usize,
            TopologySpec::Preferential { n, .. } => n as usize,
        }
    }

    /// Validate the spec's parameters, returning a human-readable
    /// reason on the first violation. [`build`](TopologySpec::build)
    /// panics on exactly these conditions; cursor restore paths call
    /// this first to keep malformed snapshots loud but non-panicking
    /// where a `Result` is wanted.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            TopologySpec::Complete { n } if n < 2 => {
                Err(format!("complete graph needs n >= 2, got {n}"))
            }
            TopologySpec::Ring { n } if n < 3 => Err(format!("ring needs n >= 3, got {n}")),
            TopologySpec::Torus { w, h } if w < 3 || h < 3 => {
                Err(format!("torus needs w, h >= 3, got {w}x{h}"))
            }
            TopologySpec::Geometric { n, radius, .. } => {
                if n < 2 {
                    Err(format!("geometric graph needs n >= 2, got {n}"))
                } else if !(radius > 0.0 && radius <= std::f64::consts::SQRT_2) {
                    Err(format!(
                        "geometric radius must be in (0, sqrt(2)], got {radius}"
                    ))
                } else {
                    Ok(())
                }
            }
            TopologySpec::Regular { n, d, .. } => {
                if n < 2 || d == 0 || d >= n {
                    Err(format!("regular graph needs 1 <= d < n, got d={d}, n={n}"))
                } else if d == 1 && n > 2 {
                    Err(format!(
                        "a 1-regular graph on {n} > 2 vertices is a matching, never connected"
                    ))
                } else if !(n as u64 * d as u64).is_multiple_of(2) {
                    Err(format!("regular graph needs n*d even, got d={d}, n={n}"))
                } else {
                    Ok(())
                }
            }
            TopologySpec::Preferential { n, m, .. } => {
                if m == 0 {
                    Err("preferential attachment needs m >= 1".into())
                } else if n < m + 1 {
                    Err(format!(
                        "preferential attachment needs n >= m + 1, got n={n}, m={m}"
                    ))
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }

    /// Build the graph — a pure function of the spec (same spec, same
    /// graph, bit for bit; retries inside the randomized generators are
    /// deterministically salted).
    ///
    /// # Panics
    ///
    /// Panics if [`validate`](TopologySpec::validate) rejects the
    /// parameters, or if a randomized generator exhausts its bounded
    /// retry budget without a valid (simple, connected) graph — which
    /// for sane parameters (geometric radius above the connectivity
    /// threshold, `d ≥ 3`) does not happen.
    pub fn build(self) -> Topology {
        if let Err(why) = self.validate() {
            panic!("invalid topology spec: {why}");
        }
        match self {
            TopologySpec::Complete { n } => build_complete(self, n),
            TopologySpec::Ring { n } => build_ring(self, n),
            TopologySpec::Torus { w, h } => build_torus(self, w, h),
            TopologySpec::Geometric { n, radius, seed } => build_geometric(self, n, radius, seed),
            TopologySpec::Regular { n, d, seed } => build_regular(self, n, d, seed),
            TopologySpec::Preferential { n, m, seed } => build_preferential(self, n, m, seed),
        }
    }

    /// Encode to exactly four `u64` words (kind, two parameters, seed)
    /// — the payload of
    /// [`ScheduleCursor::topo`](population::ScheduleCursor) for a
    /// graph-restricted scheduler.
    pub fn encode(&self) -> Vec<u64> {
        match *self {
            TopologySpec::Complete { n } => vec![KIND_COMPLETE, n as u64, 0, 0],
            TopologySpec::Ring { n } => vec![KIND_RING, n as u64, 0, 0],
            TopologySpec::Torus { w, h } => vec![KIND_TORUS, w as u64, h as u64, 0],
            TopologySpec::Geometric { n, radius, seed } => {
                vec![KIND_GEOMETRIC, n as u64, radius.to_bits(), seed]
            }
            TopologySpec::Regular { n, d, seed } => vec![KIND_REGULAR, n as u64, d as u64, seed],
            TopologySpec::Preferential { n, m, seed } => {
                vec![KIND_PREFERENTIAL, n as u64, m as u64, seed]
            }
        }
    }

    /// Decode four words written by [`encode`](TopologySpec::encode),
    /// validating the parameters (so a corrupted-but-CRC-clean cursor
    /// is rejected with a reason rather than built into nonsense).
    pub fn decode(words: &[u64]) -> Result<Self, String> {
        let [kind, a, b, seed] = *words else {
            return Err(format!(
                "topology spec must be exactly 4 words, got {}",
                words.len()
            ));
        };
        let small = |x: u64, what: &str| -> Result<u32, String> {
            u32::try_from(x).map_err(|_| format!("{what} {x} exceeds u32"))
        };
        let spec = match kind {
            KIND_COMPLETE => TopologySpec::Complete {
                n: small(a, "vertex count")?,
            },
            KIND_RING => TopologySpec::Ring {
                n: small(a, "vertex count")?,
            },
            KIND_TORUS => TopologySpec::Torus {
                w: small(a, "torus width")?,
                h: small(b, "torus height")?,
            },
            KIND_GEOMETRIC => TopologySpec::Geometric {
                n: small(a, "vertex count")?,
                radius: f64::from_bits(b),
                seed,
            },
            KIND_REGULAR => TopologySpec::Regular {
                n: small(a, "vertex count")?,
                d: small(b, "degree")?,
                seed,
            },
            KIND_PREFERENTIAL => TopologySpec::Preferential {
                n: small(a, "vertex count")?,
                m: small(b, "attachment count")?,
                seed,
            },
            other => return Err(format!("unknown topology kind {other}")),
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn build_complete(spec: TopologySpec, n: u32) -> Topology {
    let mut edges = Vec::with_capacity(n as usize * (n as usize - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    Topology::from_edges(n as usize, spec, &edges)
}

fn build_ring(spec: TopologySpec, n: u32) -> Topology {
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Topology::from_edges(n as usize, spec, &edges)
}

fn build_torus(spec: TopologySpec, w: u32, h: u32) -> Topology {
    let at = |r: u32, c: u32| r * w + c;
    let mut edges = Vec::with_capacity(2 * (w as usize) * (h as usize));
    for r in 0..h {
        for c in 0..w {
            edges.push((at(r, c), at(r, (c + 1) % w)));
            edges.push((at(r, c), at((r + 1) % h, c)));
        }
    }
    Topology::from_edges(w as usize * h as usize, spec, &edges)
}

fn build_geometric(spec: TopologySpec, n: u32, radius: f64, seed: u64) -> Topology {
    let r2 = radius * radius;
    for attempt in 0..MAX_ATTEMPTS {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(RETRY_SALT)));
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (uniform_unit(&mut rng), uniform_unit(&mut rng)))
            .collect();
        let mut edges = Vec::new();
        for a in 0..n as usize {
            for b in (a + 1)..n as usize {
                let (dx, dy) = (points[a].0 - points[b].0, points[a].1 - points[b].1);
                if dx * dx + dy * dy <= r2 {
                    edges.push((a as u32, b as u32));
                }
            }
        }
        let graph = Topology::from_edges(n as usize, spec, &edges);
        if graph.min_degree() >= 1 && graph.is_connected() {
            return graph;
        }
    }
    panic!(
        "geometric graph (n={n}, radius={radius}) disconnected after {MAX_ATTEMPTS} attempts — \
         radius is below the connectivity threshold ~sqrt(ln n / n)"
    );
}

/// Uniform `f64` in `[0, 1)` from 53 mantissa bits.
fn uniform_unit(rng: &mut SmallRng) -> f64 {
    use rand::RngCore;
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn build_regular(spec: TopologySpec, n: u32, d: u32, seed: u64) -> Topology {
    // Circulant base graph (always d-regular, simple, connected), then
    // seeded double-edge swaps to randomize. The configuration model's
    // wholesale rejection has success probability ≈ e^(−(d²−1)/4) —
    // hopeless already at d = 8 — while swaps preserve regularity and
    // simplicity by construction and mix to the uniform(-ish) random
    // regular graph, which is the expander this generator is for.
    let half = d / 2;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n as usize * d as usize / 2);
    for v in 0..n {
        for k in 1..=half {
            edges.push((v, (v + k) % n));
        }
    }
    if d % 2 == 1 {
        // n·d even with d odd forces n even: add the antipodal matching.
        for v in 0..n / 2 {
            edges.push((v, v + n / 2));
        }
    }
    // Normalize orientation and set up the membership index for swaps.
    for e in edges.iter_mut() {
        *e = (e.0.min(e.1), e.0.max(e.1));
    }
    let mut present: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
    let m = edges.len();

    for attempt in 0..MAX_ATTEMPTS {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(RETRY_SALT)));
        // ~20 accepted swaps per edge randomizes the circulant
        // structure thoroughly at these sizes.
        let mut accepted = 0usize;
        let target = 20 * m;
        let mut budget = 200 * m; // bound rejected proposals too
        while accepted < target && budget > 0 {
            budget -= 1;
            let x = rng.random_range(0..m as u64) as usize;
            let y = rng.random_range(0..m as u64) as usize;
            if x == y {
                continue;
            }
            let (a, b) = edges[x];
            let (c, e) = edges[y];
            // Swap to (a, e), (c, b); orientation chosen by a coin so
            // both rewirings of the 4 endpoints are reachable.
            let (c, e) = if rng.random_bool(0.5) { (c, e) } else { (e, c) };
            let p = (a.min(e), a.max(e));
            let q = (c.min(b), c.max(b));
            if a == e || c == b || present.contains(&p) || present.contains(&q) || p == q {
                continue;
            }
            present.remove(&edges[x]);
            present.remove(&edges[y]);
            present.insert(p);
            present.insert(q);
            edges[x] = p;
            edges[y] = q;
            accepted += 1;
        }
        let graph = Topology::from_edges(n as usize, spec, &edges);
        if graph.is_connected() {
            return graph;
        }
        // Disconnected (rare): restore determinism by rebuilding the
        // membership set from the current edges and re-swapping with the
        // salted seed — the swap chain is ergodic, so this terminates.
        present = edges.iter().copied().collect();
    }
    panic!("no connected {d}-regular swap outcome on {n} vertices in {MAX_ATTEMPTS} attempts");
}

fn build_preferential(spec: TopologySpec, n: u32, m: u32, seed: u64) -> Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    let core = m + 1;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for a in 0..core {
        for b in (a + 1)..core {
            edges.push((a, b));
        }
    }
    // Degree-proportional sampling by drawing uniformly from the list
    // of edge endpoints (each vertex appears exactly degree-many
    // times). Duplicate targets are redrawn — `m ≤` existing vertices,
    // so `m` distinct targets always exist.
    let mut endpoints: Vec<u32> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    let mut picked: Vec<u32> = Vec::with_capacity(m as usize);
    for v in core..n {
        picked.clear();
        while picked.len() < m as usize {
            let t = endpoints[rng.random_range(0..endpoints.len() as u64) as usize];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push((t, v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    Topology::from_edges(n as usize, spec, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape() {
        let g = TopologySpec::Ring { n: 8 }.build();
        assert_eq!(g.n(), 8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!((g.min_degree(), g.max_degree()), (2, 2));
        assert!(g.is_connected());
        assert_eq!(g.neighbors(0), &[1, 7]);
        assert_eq!(g.neighbors(5), &[4, 6]);
    }

    #[test]
    fn torus_shape() {
        let g = TopologySpec::Torus { w: 4, h: 3 }.build();
        assert_eq!(g.n(), 12);
        assert_eq!(g.edge_count(), 24);
        assert_eq!((g.min_degree(), g.max_degree()), (4, 4));
        assert!(g.is_connected());
        // Vertex 0 = (row 0, col 0): right 1, left 3, down 4, up 8.
        assert_eq!(g.neighbors(0), &[1, 3, 4, 8]);
    }

    #[test]
    fn complete_shape() {
        let g = TopologySpec::Complete { n: 6 }.build();
        assert_eq!(g.edge_count(), 15);
        assert_eq!((g.min_degree(), g.max_degree()), (5, 5));
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4, 5]);
    }

    #[test]
    fn regular_graph_is_simple_connected_and_regular() {
        for seed in 0..5 {
            let g = TopologySpec::Regular { n: 24, d: 4, seed }.build();
            assert_eq!((g.min_degree(), g.max_degree()), (4, 4), "seed {seed}");
            assert!(g.is_connected(), "seed {seed}");
            assert_eq!(g.edge_count(), 48);
        }
    }

    #[test]
    fn geometric_graph_is_connected_at_generous_radius() {
        for seed in 0..5 {
            let g = TopologySpec::Geometric {
                n: 32,
                radius: 0.45,
                seed,
            }
            .build();
            assert!(g.is_connected(), "seed {seed}");
            assert!(g.min_degree() >= 1);
        }
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = TopologySpec::Preferential {
            n: 40,
            m: 3,
            seed: 1,
        }
        .build();
        assert!(g.is_connected());
        // Core clique edges + m per later vertex.
        assert_eq!(g.edge_count(), 6 + 3 * 36);
        assert!(g.min_degree() >= 3);
        // The rich get richer: some vertex far exceeds the minimum.
        assert!(g.max_degree() > 6, "max degree {}", g.max_degree());
    }

    #[test]
    fn same_spec_same_graph() {
        for spec in [
            TopologySpec::Geometric {
                n: 24,
                radius: 0.5,
                seed: 9,
            },
            TopologySpec::Regular {
                n: 20,
                d: 4,
                seed: 9,
            },
            TopologySpec::Preferential {
                n: 20,
                m: 2,
                seed: 9,
            },
        ] {
            let a = spec.build();
            let b = spec.build();
            assert_eq!(a, b, "{spec:?} not deterministic");
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let specs = [
            TopologySpec::Complete { n: 7 },
            TopologySpec::Ring { n: 12 },
            TopologySpec::Torus { w: 5, h: 3 },
            TopologySpec::Geometric {
                n: 30,
                radius: 0.4375,
                seed: 0xABCD,
            },
            TopologySpec::Regular {
                n: 16,
                d: 4,
                seed: 77,
            },
            TopologySpec::Preferential {
                n: 25,
                m: 3,
                seed: 5,
            },
        ];
        for spec in specs {
            let words = spec.encode();
            assert_eq!(words.len(), 4);
            assert_eq!(TopologySpec::decode(&words), Ok(spec));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TopologySpec::decode(&[]).is_err());
        assert!(TopologySpec::decode(&[99, 8, 0, 0]).is_err());
        assert!(TopologySpec::decode(&[KIND_RING, 2, 0, 0]).is_err());
        // Torus 2xh duplicates wrap edges; must be rejected, not built.
        assert!(TopologySpec::decode(&[KIND_TORUS, 2, 5, 0]).is_err());
        let bad_radius = TopologySpec::Geometric {
            n: 8,
            radius: -1.0,
            seed: 0,
        };
        assert!(TopologySpec::decode(&bad_radius.encode()).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid topology spec")]
    fn build_rejects_odd_regular() {
        let _ = TopologySpec::Regular {
            n: 7,
            d: 3,
            seed: 0,
        }
        .build();
    }

    #[test]
    fn spectral_gap_orders_the_menu() {
        // Complete > regular (expander) > torus > ring at equal n = 36.
        // Degree 8 for the expander: a random d-regular graph's gap is
        // bounded near 1 − 2√(d−1)/d (Alon–Boppana), which for d = 4 is
        // ≈ 0.13 — *below* the small 6×6 torus's 0.25. At d = 8 the
        // bound is ≈ 0.34 and the expander clears the torus.
        let gap = |s: TopologySpec| s.build().spectral_gap().gap;
        let complete = gap(TopologySpec::Complete { n: 36 });
        let regular = gap(TopologySpec::Regular {
            n: 36,
            d: 8,
            seed: 1,
        });
        let torus = gap(TopologySpec::Torus { w: 6, h: 6 });
        let ring = gap(TopologySpec::Ring { n: 36 });
        assert!(
            complete > regular && regular > torus && torus > ring,
            "gap order violated: complete {complete:.4} regular {regular:.4} \
             torus {torus:.4} ring {ring:.4}"
        );
        assert!(ring > 0.0);
    }
}
