//! The tiny CLI convention shared by every experiment binary:
//! `key=value` arguments plus bare `--flag`s.

use std::collections::HashMap;

/// Parsed command-line arguments: `key=value` pairs and `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        for arg in args {
            if let Some(flag) = arg.strip_prefix("--") {
                out.flags.push(flag.to_string());
            } else if let Some((k, v)) = arg.split_once('=') {
                out.values.insert(k.to_string(), v.to_string());
            }
        }
        out
    }

    /// `key=value` lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `key=value` lookup returning the raw string, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Is `--flag` present?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Every `key=value` pair, sorted by key — stable input for run
    /// manifests.
    pub fn entries(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .values
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort();
        out
    }

    /// Every bare `--flag`, in the order given.
    pub fn flags(&self) -> &[String] {
        &self.flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_values_and_flags() {
        let a = Args::parse(["n=128", "--full", "sims=25"].iter().map(|s| s.to_string()));
        assert_eq!(a.get("n", 0usize), 128);
        assert_eq!(a.get("sims", 0usize), 25);
        assert_eq!(a.get("missing", 7u64), 7);
        assert!(a.flag("full"));
        assert!(!a.flag("csv"));
    }

    #[test]
    fn malformed_values_fall_back_to_default() {
        let a = Args::parse(["n=abc".to_string()]);
        assert_eq!(a.get("n", 42usize), 42);
    }

    #[test]
    fn raw_string_lookup() {
        let a = Args::parse(["out=results.json".to_string()]);
        assert_eq!(a.get_str("out"), Some("results.json"));
        assert_eq!(a.get_str("missing"), None);
    }
}
