//! Shared measurement recipes used by several experiment binaries.
//!
//! The most common experiment in this repository is "interactions until
//! the configuration is a valid ranking, across seeds" — Theorems 1/2,
//! the baselines, and the ablations all measure it. [`ranking_times`]
//! implements it once on the observer pipeline.

use analysis::stats::Summary;
use population::{is_valid_ranking, Protocol, RankOutput, Simulator};

use crate::experiment::Experiment;

/// For each seed, build `(protocol, initial)` via `make`, then measure
/// the interactions until [`is_valid_ranking`] first holds (polled every
/// `check` interactions), up to `budget`. `None` where the budget ran
/// out.
pub fn ranking_times<P, F>(
    exp: &Experiment,
    sims: u64,
    budget: u64,
    check: u64,
    make: F,
) -> Vec<Option<u64>>
where
    P: Protocol,
    P::State: RankOutput + Send,
    F: Fn(u64) -> (P, Vec<P::State>) + Sync,
{
    exp.run_seeds(sims, |seed| {
        let (protocol, init) = make(seed);
        let mut sim = Simulator::new(protocol, init, seed);
        sim.run_until(is_valid_ranking, budget, check)
            .converged_at()
    })
}

/// The completed runs of a measurement, as `f64` interaction counts.
pub fn completed(times: &[Option<u64>]) -> Vec<f64> {
    times.iter().flatten().map(|&t| t as f64).collect()
}

/// Summary over the completed runs (`None` if none completed).
pub fn summary(times: &[Option<u64>]) -> Option<Summary> {
    let done = completed(times);
    if done.is_empty() {
        None
    } else {
        Some(Summary::of(&done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Args;
    use baselines::naive::NaiveLeaderRanking;

    #[test]
    fn naive_ranking_is_measured_across_seeds() {
        let exp = Experiment::with_args("t", Args::parse(Vec::new()));
        let n = 16;
        let times = ranking_times(&exp, 4, 200_000, 16, |_| {
            let p = NaiveLeaderRanking::new(n);
            let init = p.initial();
            (p, init)
        });
        assert_eq!(times.len(), 4);
        assert!(times.iter().all(|t| t.is_some()), "{times:?}");
        let s = summary(&times).expect("all completed");
        assert!(s.mean > 0.0);
    }

    #[test]
    fn summary_of_no_completions_is_none() {
        assert!(summary(&[None, None]).is_none());
        assert_eq!(completed(&[Some(5), None, Some(7)]), vec![5.0, 7.0]);
    }
}
