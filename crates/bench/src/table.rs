//! Result tables: one in-memory representation, two renderings
//! (human-aligned text and CSV).

/// A titled table of string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (printed above the aligned rendering).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with right-aligned, width-fitted columns.
    pub fn render_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("\n== {} ==\n", self.title);
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for piping into plotting tools).
    pub fn render_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with three decimals (the repository's table
/// convention).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "mean"]);
        t.push(vec!["8".into(), f3(1.25)]);
        t.push(vec!["1024".into(), f3(0.5)]);
        t
    }

    #[test]
    fn aligned_rendering_fits_widths() {
        let s = sample().render_aligned();
        assert!(s.contains("== demo =="));
        assert!(s.contains("1024  0.500"));
        // The header line right-aligns "n" to the widest cell (1024).
        assert!(s.contains("   n"));
    }

    #[test]
    fn csv_rendering_is_plain() {
        let s = sample().render_csv();
        assert_eq!(s, "n,mean\n8,1.250\n1024,0.500\n");
    }

    #[test]
    fn f3_rounds_to_three_decimals() {
        assert_eq!(f3(1.0 / 3.0), "0.333");
        assert_eq!(f3(2.0), "2.000");
    }
}
