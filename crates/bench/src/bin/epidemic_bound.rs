//! E8 — Lemma 14: one-way epidemic completion times among a
//! subpopulation.
//!
//! `OWE(n, m)`: one of `m` participating agents (in a population of `n`)
//! is informed; how many interactions until all `m` are? Lemma 14:
//! `Pr[X > (3n²/m)(ln m + 2γ ln n)] ≤ 2n^{-γ}`. The phase-advancement
//! and reset broadcasts of the ranking protocols are exactly such
//! epidemics restricted to the unranked subpopulation, which is why the
//! waiting-phase budget grows as `2^k` (the subpopulation halves each
//! phase).
//!
//! Usage: `cargo run --release -p bench --bin epidemic_bound -- [n=1024]
//! [sims=20] [--csv]`

use analysis::bounds::owe_upper;
use analysis::stats::{quantile, Summary};
use bench::{f3, Experiment, Table};
use population::primitives::epidemic::Epidemic;
use population::Simulator;

fn main() {
    let exp = Experiment::from_env("epidemic_bound");
    let n: usize = exp.get("n", 1024);
    let sims = exp.sims(20);

    let mut table = Table::new(
        format!("Lemma 14: OWE(n={n}, m) completion times, unit n^2/m ({sims} sims)"),
        &[
            "m",
            "mean*m/n^2",
            "p95*m/n^2",
            "bound*m/n^2 (gamma=1)",
            "max/bound",
        ],
    );
    let mut m = 4usize;
    while m <= n {
        let times: Vec<f64> = exp.run_seeds(sims, |seed| {
            let protocol = Epidemic::new(n);
            let init = protocol.initial(m);
            let mut sim = Simulator::new(protocol, init, seed);
            let budget = 100 * (n as u64) * (n as u64);
            sim.run_until(Epidemic::complete, budget, (n / 4).max(1) as u64)
                .converged_at()
                .expect("epidemic must complete within budget") as f64
        });
        let s = Summary::of(&times);
        let p95 = quantile(&times, 0.95);
        let bound = owe_upper(n as f64, m as f64, 1.0);
        table.push(vec![
            m.to_string(),
            f3(s.mean / (n * n) as f64 * m as f64),
            f3(p95 / (n * n) as f64 * m as f64),
            f3(bound / (n * n) as f64 * m as f64),
            f3(s.max / bound),
        ]);
        m *= 4;
    }

    exp.emit(&table);
    exp.note(
        "\nexpected shape: mean*m/n^2 grows like ln(m) (the epidemic among m \
         agents costs ~(n^2/m)*ln m); every max stays below the Lemma 14 \
         bound (max/bound < 1).",
    );
}
