//! E6 — Lemma 30: `FASTLEADERELECTION` elects a *unique* leader with
//! probability at least `1/(8e) ≈ 0.046`.
//!
//! Each agent wins the lottery iff its first `⌈log n⌉ (+1)` observed
//! coins are all heads, so `Pr[win] ≈ Θ(1/n)` and the winner count is
//! approximately Poisson(Θ(1)). The lemma's bound is loose; the measured
//! unique-winner probability is around 0.2–0.4. When the lottery fails
//! (0 winners) the embedding protocol retries via the `LECount` timeout;
//! when it produces several winners, `Ranking⁺` detects the resulting
//! duplicates — both paths are exercised by the `StableRanking` tests.
//!
//! Usage: `cargo run --release -p bench --bin fastle_probability --
//! [trials=1000] [--csv]`

use bench::{f3, Experiment, Table};
use leader_election::fast::FastLeLottery;
use population::Simulator;

fn main() {
    let exp = Experiment::from_env("fastle_probability");
    let trials: u64 = exp.get("trials", 1000);

    let mut table = Table::new(
        format!("Lemma 30: FastLeaderElection outcomes over {trials} trials"),
        &["n", "P[unique]", "P[none]", "P[multiple]", "E[winners]"],
    );
    for n in [64usize, 256, 1024] {
        let winners: Vec<usize> = exp.run_seeds(trials, |seed| {
            let protocol = FastLeLottery::new(n, 4.0);
            let init = protocol.initial();
            let mut sim = Simulator::new(protocol, init, seed);
            sim.run_until(FastLeLottery::all_decided, 10_000 * n as u64, n as u64);
            FastLeLottery::winner_count(sim.states())
        });
        let unique = winners.iter().filter(|w| **w == 1).count();
        let zero = winners.iter().filter(|w| **w == 0).count();
        let multi = winners.iter().filter(|w| **w > 1).count();
        let mean = winners.iter().sum::<usize>() as f64 / trials as f64;
        table.push(vec![
            n.to_string(),
            f3(unique as f64 / trials as f64),
            f3(zero as f64 / trials as f64),
            f3(multi as f64 / trials as f64),
            f3(mean),
        ]);
    }

    exp.emit(&table);
    exp.note(&format!(
        "\nexpected shape: P[unique] well above the 1/(8e) = {:.3} bound and \
         roughly constant in n; E[winners] = Theta(1).",
        1.0 / (8.0 * std::f64::consts::E)
    ));
}
