//! E1 — Figure 2: recovery from a worst-case invalid initialization.
//!
//! `StableRanking` at `n = 256` (paper value), initialized with ranks
//! `2..=n` assigned and a single phase agent with maximal liveness
//! counter. The protocol must *detect* the inconsistency (expected
//! `Θ(n² log n)` interactions: the rank the unaware "leaders" hand out
//! duplicates an existing one, and the duplicate pair must meet), reset,
//! re-elect, and re-rank. Output: number of ranked agents and the mean
//! phase of unranked phase agents as a function of interactions / n².
//!
//! Writes `BENCH_fig2.json` (override with `out=`) so the recovery
//! curve is tracked as a regression artifact.
//!
//! Usage: `cargo run --release -p bench --bin fig2 -- [n=256] [seed=1]
//! [horizon=60] [samples=120] [out=BENCH_fig2.json] [--csv]`

use bench::{f3, Experiment, Json, Table};
use population::observe::Series;
use population::{ranked_count, Simulator};
use ranking::stable::{StableRanking, StableState};
use ranking::Params;

/// Ranked count and mean phase of the phase agents, one Figure 2 sample.
fn composition(states: &[StableState]) -> (usize, f64) {
    let ranked = ranked_count(states);
    let (phase_sum, phase_agents) =
        states
            .iter()
            .fold((0u64, 0u64), |(s, c), st| match st.phase() {
                Some(k) => (s + u64::from(k), c + 1),
                None => (s, c),
            });
    let avg_phase = if phase_agents > 0 {
        phase_sum as f64 / phase_agents as f64
    } else {
        0.0
    };
    (ranked, avg_phase)
}

fn main() {
    let exp = Experiment::from_env("fig2");
    let n: usize = exp.get("n", 256);
    let seed: u64 = exp.get("seed", 1);
    let horizon_n2: u64 = exp.get("horizon", 60);
    let samples: u64 = exp.get("samples", 120);

    let protocol = StableRanking::new(Params::new(n));
    let init = protocol.figure2();
    let mut sim = Simulator::new(protocol, init, seed);

    let horizon = horizon_n2 * (n as u64) * (n as u64);
    let every = (horizon / samples).max(1);
    let mut series = Series::new(composition);
    sim.run_observed(horizon, every, &mut series);

    let mut table = Table::new(
        format!("Figure 2: StableRanking recovery, n = {n}, seed = {seed}"),
        &["interactions/n^2", "ranked agents", "avg phase (unranked)"],
    );
    for &(t, (ranked, avg_phase)) in series.rows() {
        table.push(vec![
            f3(t as f64 / (n * n) as f64),
            ranked.to_string(),
            f3(avg_phase),
        ]);
    }
    exp.emit(&table);

    let payload = Json::obj([
        ("n", n.into()),
        ("seed", seed.into()),
        ("horizon_n2", horizon_n2.into()),
        ("resets_triggered", sim.protocol().resets_triggered().into()),
        ("final_ranked", ranked_count(sim.states()).into()),
        ("rows", Experiment::table_json(&table)),
    ]);
    exp.write_json("BENCH_fig2.json", payload);

    exp.note(&format!(
        "\nresets triggered: {}",
        sim.protocol().resets_triggered()
    ));
    exp.note(&format!(
        "final ranked agents: {} / {n}",
        ranked_count(sim.states())
    ));
    exp.note(&format!(
        "expected shape (paper): plateau at {} ranked, drop to 0 after the \
         duplicate is detected, then a ramp back to {n} with the phase \
         staircase climbing to {}",
        n - 1,
        sim.protocol().fseq().kmax()
    ));
}
