//! E1 — Figure 2: recovery from a worst-case invalid initialization.
//!
//! `StableRanking` at `n = 256` (paper value), initialized with ranks
//! `2..=n` assigned and a single phase agent with maximal liveness
//! counter. The protocol must *detect* the inconsistency (expected
//! `Θ(n² log n)` interactions: the rank the unaware "leaders" hand out
//! duplicates an existing one, and the duplicate pair must meet), reset,
//! re-elect, and re-rank. Output: number of ranked agents and the mean
//! phase of unranked phase agents as a function of interactions / n².
//!
//! Usage: `cargo run --release -p bench --bin fig2 -- [n=256] [seed=1]
//! [horizon=60] [samples=120] [--csv]`

use bench::{f3, print_csv, print_table, Args};
use population::{ranked_count, Simulator};
use ranking::stable::StableRanking;
use ranking::Params;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n", 256);
    let seed: u64 = args.get("seed", 1);
    let horizon_n2: u64 = args.get("horizon", 60);
    let samples: u64 = args.get("samples", 120);

    let protocol = StableRanking::new(Params::new(n));
    let init = protocol.figure2();
    let mut sim = Simulator::new(protocol, init, seed);

    let horizon = horizon_n2 * (n as u64) * (n as u64);
    let every = (horizon / samples).max(1);
    let mut rows = Vec::new();
    sim.run_sampled(horizon, every, |t, states| {
        let ranked = ranked_count(states);
        let (phase_sum, phase_agents) = states.iter().fold((0u64, 0u64), |(s, c), st| {
            match st.phase() {
                Some(k) => (s + u64::from(k), c + 1),
                None => (s, c),
            }
        });
        let avg_phase = if phase_agents > 0 {
            phase_sum as f64 / phase_agents as f64
        } else {
            0.0
        };
        rows.push(vec![
            f3(t as f64 / (n * n) as f64),
            ranked.to_string(),
            f3(avg_phase),
        ]);
    });

    let headers = ["interactions/n^2", "ranked agents", "avg phase (unranked)"];
    if args.flag("csv") {
        print_csv(&headers, &rows);
    } else {
        print_table(
            &format!("Figure 2: StableRanking recovery, n = {n}, seed = {seed}"),
            &headers,
            &rows,
        );
        println!(
            "\nresets triggered: {}",
            sim.protocol().resets_triggered()
        );
        println!(
            "final ranked agents: {} / {n}",
            ranked_count(sim.states())
        );
        println!(
            "expected shape (paper): plateau at {} ranked, drop to 0 after the \
             duplicate is detected, then a ramp back to {n} with the phase \
             staircase climbing to {}",
            n - 1,
            sim.protocol().fseq().kmax()
        );
    }
}
