//! Run-forever driver: a crash-restartable `StableRanking` run with
//! durable checkpoints.
//!
//! `interactions=` is the **total** trajectory target, not an
//! increment: a fresh start runs `0 → total`, a restart resumes from
//! the newest valid snapshot in `checkpoint_dir=` and runs the
//! remainder. Kill the process at any point — SIGKILL, OOM, power cut —
//! and re-running the same command continues the same trajectory. The
//! final line prints `digest=<crc64>` over the final frame (interaction
//! count, state words, scheduler cursors), and the keystone durability
//! property makes that digest **independent of how often the run was
//! killed**: a run resumed ten times prints the same digest as one that
//! never stopped (enforced by the CI kill-and-resume smoke and
//! `tests/snapshot_resume.rs`).
//!
//! On completion the driver writes one final snapshot at `t = total`,
//! so re-running a finished command is a no-op that just reprints the
//! digest.
//!
//! Fault soaking: `fault=<kind>` (any `scenarios::ranking_faults`
//! injector) fires the injector every `fault_every=` interactions from
//! a legal silent start — a sustained-fault endurance run. Fault RNG,
//! pending fire times, and the fired log ride in the snapshots, so
//! resumed fault runs are bit-for-bit too. Without `fault=` the run
//! starts from the clean election configuration.
//!
//! Dynamic populations: `arrivals=<per-million>` and/or
//! `lifetime=<mean>` switch the run onto the `DynamicPopulation`
//! engine (Poisson joins, exponential lifetimes, rank leasing, epoch
//! re-parameterization). Churn runs are single-shard and currently
//! exclusive with `fault=`; the whole engine state (roster, free-lists,
//! churn RNG) rides in the snapshots' DYNPOP section, so the
//! kill-anytime digest contract holds unchanged — the digest then also
//! covers those DYNPOP bytes.
//!
//! Usage: `cargo run --release -p bench --bin run-forever --
//! checkpoint_dir=DIR [n=256] [interactions=10000000]
//! [checkpoint_every=1000000] [shards=1] [seed=0] [keep=4]
//! [fault=none] [fault_every=n^2*64] [arrivals=0] [lifetime=0]
//! [resume=FILE.ssr]`

use std::path::Path;
use std::time::Instant;

use bench::Experiment;
use dynamic::{ChurnConfig, DynamicPopulation};
use population::{Frame, Simulator};
use ranking::stable::{StableRanking, StableState};
use ranking::Params;
use scenarios::{ranking_faults, FaultPlan};
use shard::ShardedSimulator;
use snapshot::{restore_hook, Crc64, Meta, Rotation, SimSnapshot, SnapshotSink};

fn die(msg: &str) -> ! {
    eprintln!("run-forever: {msg}");
    std::process::exit(1)
}

/// The trajectory digest: CRC-64 over the frame's interaction count,
/// every state word, every scheduler cursor (RNG position + pending
/// pairs), and — for dynamic runs — the DYNPOP section bytes (roster,
/// free-lists, churn RNG). Covering the cursors makes the digest
/// sensitive to *where in the pair stream* the run ended, not just what
/// configuration it reached — a resume that replayed or skipped even
/// one interaction changes it. For fixed-n runs `dynpop` is empty and
/// the digest is exactly the historical one.
fn digest(frame: &Frame, dynpop: &[u8]) -> u64 {
    let mut crc = Crc64::new();
    crc.update_u64(frame.interactions);
    for &w in &frame.words {
        crc.update_u64(w);
    }
    for c in &frame.cursors {
        for &r in &c.rng {
            crc.update_u64(r);
        }
        crc.update_u64(c.pending.len() as u64);
        for &(a, b) in &c.pending {
            crc.update_u64(u64::from(a));
            crc.update_u64(u64::from(b));
        }
    }
    crc.update(dynpop);
    crc.finish()
}

/// The fault plan for this configuration — rebuilt identically on every
/// (re)start from the same CLI knobs; a snapshot's FAULT section then
/// restores the dynamic position (RNG, next fire times, fired log) on
/// top.
fn build_plan(
    protocol: &StableRanking,
    n: usize,
    seed: u64,
    fault: Option<&str>,
    fault_every: u64,
) -> FaultPlan<StableState> {
    match fault {
        None => FaultPlan::empty(),
        Some(kind) => FaultPlan::new(seed ^ 0xF417).periodic(
            fault_every,
            fault_every,
            ranking_faults::standard(kind, protocol, n),
        ),
    }
}

fn main() {
    let exp = Experiment::from_env("run-forever");
    let n: usize = exp.get("n", 256);
    let total: u64 = exp.get("interactions", 10_000_000);
    let every = exp.checkpoint_every(1_000_000);
    let shards: usize = exp.get("shards", 1);
    let seed: u64 = exp.get("seed", 0);
    let keep: usize = exp.get("keep", snapshot::DEFAULT_KEEP);
    let fault = exp.args().get_str("fault").filter(|&f| f != "none");
    let fault_every: u64 = exp.get("fault_every", (n * n) as u64 * 64);
    let arrivals: f64 = exp.get("arrivals", 0.0);
    let lifetime: f64 = exp.get("lifetime", 0.0);
    let churning = arrivals > 0.0 || lifetime > 0.0;
    let Some(dir) = exp.checkpoint_dir() else {
        die("checkpoint_dir= is required (the whole point is durability)");
    };
    if churning && shards != 1 {
        die("dynamic runs (arrivals=/lifetime=) are single-shard; drop shards=");
    }
    if churning && fault.is_some() {
        die("fault= is not yet supported together with arrivals=/lifetime=");
    }

    // Everything that determines the trajectory is in the label (plus
    // the seed, carried separately in the snapshot meta) — resuming
    // under different knobs is refused, not silently blended.
    let fault_desc = match fault {
        Some(kind) => format!("{kind}@{fault_every}"),
        None => "none".to_string(),
    };
    let mut label = format!("run-forever n={n} shards={shards} fault={fault_desc}");
    if churning {
        label.push_str(&format!(" arrivals={arrivals} lifetime={lifetime}"));
    }

    let rotation = Rotation::with_keep(dir, keep)
        .unwrap_or_else(|e| die(&format!("cannot open rotation dir {dir}: {e}")));

    // Pick the resume point: an explicit `resume=` file, else the
    // newest valid snapshot in the rotation (reporting any corrupt ones
    // skipped on the way), else a fresh start.
    let loaded: Option<SimSnapshot> = match exp.resume_path() {
        Some(path) => Some(
            SimSnapshot::read(Path::new(path))
                .unwrap_or_else(|e| die(&format!("cannot resume from {path}: {e}"))),
        ),
        None => rotation.latest_valid().map(|l| {
            for (path, err) in &l.skipped {
                eprintln!(
                    "run-forever: skipped corrupt snapshot {}: {err}",
                    path.display()
                );
            }
            println!(
                "resuming from {} at t={}",
                l.path.display(),
                l.snapshot.frame.interactions
            );
            l.snapshot
        }),
    };
    if let Some(snap) = &loaded {
        if snap.meta.label != label || snap.meta.seed != seed {
            die(&format!(
                "snapshot belongs to \"{}\" seed={}, this run is \"{label}\" seed={seed} — \
                 refusing to blend trajectories (pick a different checkpoint_dir)",
                snap.meta.label, snap.meta.seed,
            ));
        }
        if snap.frame.interactions >= total {
            println!(
                "already complete: snapshot t={} >= target {total}; nothing to do",
                snap.frame.interactions
            );
            println!("digest={:016x}", digest(&snap.frame, &snap.dynpop));
            return;
        }
    }
    if loaded.is_none() {
        println!("fresh start (no usable snapshot)");
    }

    if churning {
        run_dynamic(
            &exp, rotation, loaded, &label, n, seed, total, every, arrivals, lifetime,
        );
        return;
    }

    let protocol = StableRanking::new(Params::new(n));
    let mut plan = build_plan(&protocol, n, seed, fault, fault_every);
    if let Some(state) = loaded.as_ref().and_then(|s| s.fault.as_ref()) {
        restore_hook(&mut plan, state)
            .unwrap_or_else(|e| die(&format!("cannot restore fault state: {e}")));
    }

    let start_t = loaded.as_ref().map_or(0, |s| s.frame.interactions);
    let meta = Meta::new(&label, seed, &exp.manifest());
    let mut sink = if loaded.is_some() {
        SnapshotSink::resumed(rotation, every, start_t, meta)
    } else {
        SnapshotSink::every(rotation, every, meta)
    };

    // Fault runs soak a legal silent configuration; fault-free runs
    // exercise the whole election-then-rank trajectory from the clean
    // start.
    let init = match fault {
        Some(_) => protocol.legal(),
        None => protocol.initial(),
    };

    let clock = Instant::now();
    let final_frame = if shards == 1 {
        let mut sim = match &loaded {
            Some(snap) => snapshot::resume_simulator(protocol, snap)
                .unwrap_or_else(|e| die(&format!("cannot restore: {e}"))),
            None => Simulator::new(protocol, init, seed),
        };
        sim.run_faulted_checkpointed(total - start_t, &mut plan, &mut sink);
        sim.frame()
    } else {
        let mut sim = match &loaded {
            Some(snap) => snapshot::resume_sharded(protocol, snap)
                .unwrap_or_else(|e| die(&format!("cannot restore: {e}"))),
            None => ShardedSimulator::new(protocol, init, seed, shards),
        };
        sim.run_faulted_checkpointed(total - start_t, &mut plan, &mut sink);
        sim.frame()
    };
    let secs = clock.elapsed().as_secs_f64();

    // One final snapshot at t = total: a re-run of a finished command
    // resumes here, sees t >= total, and is a pure no-op.
    use population::HookState;
    let final_snap = SimSnapshot {
        meta: Meta::new(&label, seed, &exp.manifest()),
        frame: final_frame,
        fault: plan.export_state(),
        observer: Vec::new(),
        dynpop: Vec::new(),
    };
    let final_path = sink
        .rotation()
        .save(&final_snap)
        .unwrap_or_else(|e| die(&format!("cannot write final snapshot: {e}")));

    let ran = total - start_t;
    println!(
        "ran {ran} interactions in {secs:.2}s ({:.1} M/s), faults fired: {}",
        ran as f64 / secs / 1e6,
        plan.fired().len(),
    );
    println!(
        "checkpoints: saves={} failures={} every={every} final={}",
        sink.saves,
        sink.failures,
        final_path.display()
    );
    println!(
        "digest={:016x}",
        digest(&final_snap.frame, &final_snap.dynpop)
    );
}

/// The dynamic-population arm: same resume/label/digest contract, but
/// the engine carries its whole lifecycle state (roster, free-lists,
/// churn RNG cursor, epoch) in the snapshots' DYNPOP section.
/// Checkpoints land on exact multiples of `every`, so a killed run
/// resumes onto the identical trajectory.
#[allow(clippy::too_many_arguments)]
fn run_dynamic(
    exp: &Experiment,
    rotation: Rotation,
    loaded: Option<SimSnapshot>,
    label: &str,
    n: usize,
    seed: u64,
    total: u64,
    every: u64,
    arrivals: f64,
    lifetime: f64,
) {
    let mut engine: DynamicPopulation<StableRanking> = match &loaded {
        Some(snap) => DynamicPopulation::restore(snap)
            .unwrap_or_else(|e| die(&format!("cannot restore dynamic run: {e}"))),
        None => DynamicPopulation::new(
            Params::new(n),
            ChurnConfig::poisson(arrivals, lifetime),
            seed,
        ),
    };
    let start_t = engine.interactions();
    let clock = Instant::now();
    let mut saves = 0u64;
    let mut failures = 0u64;
    while engine.interactions() < total {
        let boundary = (engine.interactions() / every + 1) * every;
        let target = total.min(boundary);
        engine.run(target - engine.interactions());
        let snap = engine.snapshot(Meta::new(label, seed, &exp.manifest()));
        match rotation.save(&snap) {
            Ok(_) => saves += 1,
            Err(e) => {
                failures += 1;
                eprintln!("run-forever: checkpoint save failed: {e}");
            }
        }
    }
    let secs = clock.elapsed().as_secs_f64();

    let metrics = engine.metrics().snapshot();
    let counter = |name: &str| metrics.counter(name).unwrap_or(0);
    let final_snap = engine.snapshot(Meta::new(label, seed, &exp.manifest()));
    let ran = total - start_t;
    println!(
        "ran {ran} interactions in {secs:.2}s ({:.1} M/s), live={} epoch={} \
         joins={} leaves={} hibernates={} revives={} valid={:.3}",
        ran as f64 / secs / 1e6,
        engine.live(),
        engine.epoch().epoch(),
        counter("dyn_joins"),
        counter("dyn_leaves"),
        counter("dyn_hibernates"),
        counter("dyn_revives"),
        engine.fraction_valid(),
    );
    println!("checkpoints: saves={saves} failures={failures} every={every}");
    println!(
        "digest={:016x}",
        digest(&final_snap.frame, &final_snap.dynpop)
    );
}
