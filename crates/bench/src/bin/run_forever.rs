//! Run-forever driver: a crash-restartable `StableRanking` run with
//! durable checkpoints.
//!
//! `interactions=` is the **total** trajectory target, not an
//! increment: a fresh start runs `0 → total`, a restart resumes from
//! the newest valid snapshot in `checkpoint_dir=` and runs the
//! remainder. Kill the process at any point — SIGKILL, OOM, power cut —
//! and re-running the same command continues the same trajectory. The
//! final line prints `digest=<crc64>` over the final frame (interaction
//! count, state words, scheduler cursors), and the keystone durability
//! property makes that digest **independent of how often the run was
//! killed**: a run resumed ten times prints the same digest as one that
//! never stopped (enforced by the CI kill-and-resume smoke and
//! `tests/snapshot_resume.rs`).
//!
//! On completion the driver writes one final snapshot at `t = total`,
//! so re-running a finished command is a no-op that just reprints the
//! digest.
//!
//! Fault soaking: `fault=<kind>` (any `scenarios::ranking_faults`
//! injector) fires the injector every `fault_every=` interactions from
//! a legal silent start — a sustained-fault endurance run. Fault RNG,
//! pending fire times, and the fired log ride in the snapshots, so
//! resumed fault runs are bit-for-bit too. Without `fault=` the run
//! starts from the clean election configuration.
//!
//! Usage: `cargo run --release -p bench --bin run-forever --
//! checkpoint_dir=DIR [n=256] [interactions=10000000]
//! [checkpoint_every=1000000] [shards=1] [seed=0] [keep=4]
//! [fault=none] [fault_every=n^2*64] [resume=FILE.ssr]`

use std::path::Path;
use std::time::Instant;

use bench::Experiment;
use population::{Frame, Simulator};
use ranking::stable::{StableRanking, StableState};
use ranking::Params;
use scenarios::{ranking_faults, FaultPlan};
use shard::ShardedSimulator;
use snapshot::{restore_hook, Crc64, Meta, Rotation, SimSnapshot, SnapshotSink};

fn die(msg: &str) -> ! {
    eprintln!("run-forever: {msg}");
    std::process::exit(1)
}

/// The trajectory digest: CRC-64 over the frame's interaction count,
/// every state word, and every scheduler cursor (RNG position + pending
/// pairs). Covering the cursors makes the digest sensitive to *where in
/// the pair stream* the run ended, not just what configuration it
/// reached — a resume that replayed or skipped even one interaction
/// changes it.
fn digest(frame: &Frame) -> u64 {
    let mut crc = Crc64::new();
    crc.update_u64(frame.interactions);
    for &w in &frame.words {
        crc.update_u64(w);
    }
    for c in &frame.cursors {
        for &r in &c.rng {
            crc.update_u64(r);
        }
        crc.update_u64(c.pending.len() as u64);
        for &(a, b) in &c.pending {
            crc.update_u64(u64::from(a));
            crc.update_u64(u64::from(b));
        }
    }
    crc.finish()
}

/// The fault plan for this configuration — rebuilt identically on every
/// (re)start from the same CLI knobs; a snapshot's FAULT section then
/// restores the dynamic position (RNG, next fire times, fired log) on
/// top.
fn build_plan(
    protocol: &StableRanking,
    n: usize,
    seed: u64,
    fault: Option<&str>,
    fault_every: u64,
) -> FaultPlan<StableState> {
    match fault {
        None => FaultPlan::empty(),
        Some(kind) => FaultPlan::new(seed ^ 0xF417).periodic(
            fault_every,
            fault_every,
            ranking_faults::standard(kind, protocol, n),
        ),
    }
}

fn main() {
    let exp = Experiment::from_env("run-forever");
    let n: usize = exp.get("n", 256);
    let total: u64 = exp.get("interactions", 10_000_000);
    let every = exp.checkpoint_every(1_000_000);
    let shards: usize = exp.get("shards", 1);
    let seed: u64 = exp.get("seed", 0);
    let keep: usize = exp.get("keep", snapshot::DEFAULT_KEEP);
    let fault = exp.args().get_str("fault").filter(|&f| f != "none");
    let fault_every: u64 = exp.get("fault_every", (n * n) as u64 * 64);
    let Some(dir) = exp.checkpoint_dir() else {
        die("checkpoint_dir= is required (the whole point is durability)");
    };

    // Everything that determines the trajectory is in the label (plus
    // the seed, carried separately in the snapshot meta) — resuming
    // under different knobs is refused, not silently blended.
    let fault_desc = match fault {
        Some(kind) => format!("{kind}@{fault_every}"),
        None => "none".to_string(),
    };
    let label = format!("run-forever n={n} shards={shards} fault={fault_desc}");

    let rotation = Rotation::with_keep(dir, keep)
        .unwrap_or_else(|e| die(&format!("cannot open rotation dir {dir}: {e}")));

    // Pick the resume point: an explicit `resume=` file, else the
    // newest valid snapshot in the rotation (reporting any corrupt ones
    // skipped on the way), else a fresh start.
    let loaded: Option<SimSnapshot> = match exp.resume_path() {
        Some(path) => Some(
            SimSnapshot::read(Path::new(path))
                .unwrap_or_else(|e| die(&format!("cannot resume from {path}: {e}"))),
        ),
        None => rotation.latest_valid().map(|l| {
            for (path, err) in &l.skipped {
                eprintln!(
                    "run-forever: skipped corrupt snapshot {}: {err}",
                    path.display()
                );
            }
            println!(
                "resuming from {} at t={}",
                l.path.display(),
                l.snapshot.frame.interactions
            );
            l.snapshot
        }),
    };
    if let Some(snap) = &loaded {
        if snap.meta.label != label || snap.meta.seed != seed {
            die(&format!(
                "snapshot belongs to \"{}\" seed={}, this run is \"{label}\" seed={seed} — \
                 refusing to blend trajectories (pick a different checkpoint_dir)",
                snap.meta.label, snap.meta.seed,
            ));
        }
        if snap.frame.interactions >= total {
            println!(
                "already complete: snapshot t={} >= target {total}; nothing to do",
                snap.frame.interactions
            );
            println!("digest={:016x}", digest(&snap.frame));
            return;
        }
    }
    if loaded.is_none() {
        println!("fresh start (no usable snapshot)");
    }

    let protocol = StableRanking::new(Params::new(n));
    let mut plan = build_plan(&protocol, n, seed, fault, fault_every);
    if let Some(state) = loaded.as_ref().and_then(|s| s.fault.as_ref()) {
        restore_hook(&mut plan, state)
            .unwrap_or_else(|e| die(&format!("cannot restore fault state: {e}")));
    }

    let start_t = loaded.as_ref().map_or(0, |s| s.frame.interactions);
    let meta = Meta::new(&label, seed, &exp.manifest());
    let mut sink = if loaded.is_some() {
        SnapshotSink::resumed(rotation, every, start_t, meta)
    } else {
        SnapshotSink::every(rotation, every, meta)
    };

    // Fault runs soak a legal silent configuration; fault-free runs
    // exercise the whole election-then-rank trajectory from the clean
    // start.
    let init = match fault {
        Some(_) => protocol.legal(),
        None => protocol.initial(),
    };

    let clock = Instant::now();
    let final_frame = if shards == 1 {
        let mut sim = match &loaded {
            Some(snap) => snapshot::resume_simulator(protocol, snap)
                .unwrap_or_else(|e| die(&format!("cannot restore: {e}"))),
            None => Simulator::new(protocol, init, seed),
        };
        sim.run_faulted_checkpointed(total - start_t, &mut plan, &mut sink);
        sim.frame()
    } else {
        let mut sim = match &loaded {
            Some(snap) => snapshot::resume_sharded(protocol, snap)
                .unwrap_or_else(|e| die(&format!("cannot restore: {e}"))),
            None => ShardedSimulator::new(protocol, init, seed, shards),
        };
        sim.run_faulted_checkpointed(total - start_t, &mut plan, &mut sink);
        sim.frame()
    };
    let secs = clock.elapsed().as_secs_f64();

    // One final snapshot at t = total: a re-run of a finished command
    // resumes here, sees t >= total, and is a pure no-op.
    use population::HookState;
    let final_snap = SimSnapshot {
        meta: Meta::new(&label, seed, &exp.manifest()),
        frame: final_frame,
        fault: plan.export_state(),
        observer: Vec::new(),
    };
    let final_path = sink
        .rotation()
        .save(&final_snap)
        .unwrap_or_else(|e| die(&format!("cannot write final snapshot: {e}")));

    let ran = total - start_t;
    println!(
        "ran {ran} interactions in {secs:.2}s ({:.1} M/s), faults fired: {}",
        ran as f64 / secs / 1e6,
        plan.fired().len(),
    );
    println!(
        "checkpoints: saves={} failures={} every={every} final={}",
        sink.saves,
        sink.failures,
        final_path.display()
    );
    println!("digest={:016x}", digest(&final_snap.frame));
}
