//! Scheduler-bias benchmark: fig3-style stabilization curves per
//! [`PairSource`], measuring how much adversarial scheduling inflates
//! stabilization time relative to the paper's uniform scheduler.
//!
//! The paper's `O(n² log n)` analysis assumes the uniform scheduler.
//! PR 2 added adversarial sources (biased hot set, clustered
//! near-partition, deterministic round-robin) but their cost was never
//! *measured* — only anecdotal. This binary runs `StableRanking` from
//! its clean start under each source, records the interactions until
//! the configuration is a valid ranking (plus the fig3-style fractional
//! ranking crossings at ½, ¾, 15/16), and reports each source's
//! inflation factor over uniform at the same `n`.
//!
//! Scenario parameters (moderated so the damage is quantifiable —
//! harsher settings simply never stabilize within any affordable
//! budget): biased — a hot eighth of the population takes 40% of all
//! initiations; clustered — 2 halves with 30% cross-cluster traffic;
//! round-robin — the fully deterministic sweep (no randomness at all:
//! the only entropy left is in the synthetic coins' initial pattern).
//!
//! Measured shape (this is the point — bias inflation is now a number,
//! not an anecdote; see BENCH_sched.json): *biased* inflates mean
//! stabilization ≈ 1.3–4.2× over uniform (shrinking with `n`);
//! *clustered* reaches 15/16-ranked within hundreds of `n²` but full
//! validity takes ≈ 10–100× uniform and usually exceeds the default
//! budget (per-cluster leader election keeps minting duplicate ranks
//! that only cross-traffic can surface); *round-robin* never stabilizes
//! at all within the budget (with every source of scheduler randomness
//! removed, the lottery's coin-observation argument collapses) — each
//! row reports `stabilized/runs` so the failure mode is visible, with
//! the fractional crossings showing how far each run got.
//!
//! **Round-robin verdict (PR 4 open question, resolved):** the
//! non-stabilization is a *true deterministic livelock*, not merely
//! ≫ budget. With the scheduler derandomized the whole trajectory is
//! deterministic, hence eventually periodic;
//! `population::modelcheck::trace_cycle` proves that from the clean
//! start it enters a periodic orbit that never contains a valid
//! ranking at `n = 3, 4, 5` (at `n = 3` the orbit is entered after 72
//! interactions with period 54 — no budget helps). Pinned by
//! `round_robin_is_a_true_deterministic_livelock_at_tiny_n` in
//! `tests/model_checking.rs`, alongside the counterexamples (`n = 2`,
//! the `n = 6` clean start, and the `n = 4` all-same-rank start *do*
//! stabilize deterministically): without scheduler entropy,
//! stabilization degenerates from a guarantee into an accident of
//! `(n, initialization)`.
//!
//! Writes `BENCH_sched.json` (override with `out=`).
//!
//! Usage: `cargo run --release -p bench --bin sched_compare --
//! [sizes=64,128,256] [sims=15] [budget_c=2000] [seed0=0]
//! [out=BENCH_sched.json] [--csv]`

use analysis::stats::Summary;
use bench::{f3, Experiment, Json, Table};
use population::observe::{Observer, Thresholds};
use population::{
    is_valid_ranking, ranked_count, Control, Packed, PairSource, Schedule, Simulator,
};
use ranking::stable::{PackedState, StableRanking};
use ranking::Params;
use scenarios::{BiasedSchedule, ClusteredSchedule, RoundRobinSchedule};

/// Fractional ranking targets recorded on the way to stabilization.
const FRACTIONS: [(u64, u64, &str); 3] = [(1, 2, "1/2"), (3, 4, "3/4"), (15, 16, "15/16")];

/// The scheduler kinds compared, in table order.
const KINDS: [&str; 4] = ["uniform", "biased", "clustered", "round_robin"];

/// The effective interaction topology each scheduler induces, recorded
/// per measurement in `BENCH_sched.json`. Every scheduler here can
/// propose *any* ordered pair — they all assume the complete graph and
/// differ only in the distribution over its edges. Graph-*restricted*
/// scheduling (pairs drawn from a sparse edge set) is the `topology`
/// crate's `GraphSchedule`, benched separately in `BENCH_topo.json`;
/// see `docs/TOPOLOGY.md`.
fn topology_assumption(kind: &str) -> &'static str {
    match kind {
        "uniform" => "complete graph, uniform over ordered pairs",
        "biased" => "complete graph, non-uniform (hot set favored)",
        "clustered" => "complete graph, non-uniform (thin cut between clusters)",
        "round_robin" => "complete graph, deterministic cyclic order",
        other => unreachable!("unknown scheduler kind {other}"),
    }
}

/// Per-seed outcome: fractional crossing times plus the stabilization
/// (valid-ranking) time, all in interactions.
#[derive(Clone)]
struct Outcome {
    crossings: Vec<Option<u64>>,
    stabilized: Option<u64>,
}

/// Rides a [`Thresholds`] observer along while stopping only on the
/// valid-ranking predicate (`ranked_count = n` crossings can precede
/// validity when duplicates exist, so the threshold observer must not
/// end the run).
struct Watch<F> {
    thresholds: Thresholds<F>,
    valid_at: Option<u64>,
}

impl<P, F> Observer<P> for Watch<F>
where
    P: population::Protocol,
    P::State: population::RankOutput,
    F: FnMut(&[P::State]) -> u64,
{
    fn observe(&mut self, protocol: &P, t: u64, states: &[P::State]) -> Control {
        let _ = self.thresholds.observe(protocol, t, states);
        if self.valid_at.is_none() && is_valid_ranking(states) {
            self.valid_at = Some(t);
        }
        if self.valid_at.is_some() {
            Control::Stop
        } else {
            Control::Continue
        }
    }
}

fn run_one<S: PairSource>(n: usize, budget: u64, source: S) -> Outcome {
    let protocol = Packed(StableRanking::new(Params::new(n)));
    let init = protocol.pack_all(&protocol.inner().initial());
    let mut sim = Simulator::with_source(protocol, init, source);
    let targets: Vec<u64> = FRACTIONS
        .iter()
        .map(|(num, den, _)| (n as u64) * num / den)
        .collect();
    let mut watch = Watch {
        thresholds: Thresholds::new(|s: &[PackedState]| ranked_count(s) as u64, targets),
        valid_at: None,
    };
    sim.run_observed(budget, (n as u64).max(64), &mut watch);
    Outcome {
        crossings: watch.thresholds.into_crossings(),
        stabilized: watch.valid_at,
    }
}

fn measure(exp: &Experiment, kind: &str, n: usize, sims: u64, budget: u64) -> Vec<Outcome> {
    // Round-robin is fully deterministic — the scheduler ignores the
    // seed and the clean start is fixed, so every "seed" would replay
    // the identical (budget-exhausting) trajectory. It is measured as
    // a single run, and reported as one sample (not replicated — the
    // artifact must not present one measurement as `sims` samples).
    if kind == "round_robin" {
        return vec![run_one(n, budget, RoundRobinSchedule::new(n))];
    }
    exp.run_seeds(sims, |seed| match kind {
        "uniform" => run_one(n, budget, Schedule::new(n, seed)),
        "biased" => run_one(n, budget, BiasedSchedule::new(n, (n / 8).max(1), 0.4, seed)),
        "clustered" => run_one(n, budget, ClusteredSchedule::new(n, 2, 0.3, seed)),
        other => unreachable!("unknown scheduler kind {other}"),
    })
}

fn main() {
    let exp = Experiment::from_env("sched_compare");
    let sims = exp.sims(15);
    let budget_c: f64 = exp.get("budget_c", 2000.0);
    let sizes: Vec<usize> = exp
        .args()
        .get_str("sizes")
        .unwrap_or("64,128,256")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    assert!(!sizes.is_empty(), "sizes= parsed to an empty list");

    let mut table = Table::new(
        format!("Stabilization from clean start per scheduler, unit n^2 ({sims} sims)"),
        &[
            "scheduler",
            "n",
            "stabilized",
            "t(1/2)/n^2",
            "t(15/16)/n^2",
            "mean t/n^2",
            "median",
            "vs uniform",
        ],
    );
    let mut measurements = Vec::new();
    for &n in &sizes {
        let budget = (budget_c * (n * n) as f64).ceil() as u64;
        let norm = (n * n) as f64;
        let mut uniform_mean: Option<f64> = None;
        for kind in KINDS {
            let outcomes = measure(&exp, kind, n, sims, budget);
            // Deterministic sources contribute a single sample; the
            // "stabilized k/runs" column and the artifact report the
            // real sample count.
            let runs = outcomes.len();
            let stab: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.stabilized)
                .map(|t| t as f64)
                .collect();
            let frac_mean = |idx: usize| -> Option<f64> {
                let times: Vec<f64> = outcomes
                    .iter()
                    .filter_map(|o| o.crossings[idx])
                    .map(|t| t as f64)
                    .collect();
                (!times.is_empty()).then(|| Summary::of(&times).mean / norm)
            };
            let row = if stab.is_empty() {
                vec![
                    kind.to_string(),
                    n.to_string(),
                    format!("0/{runs}"),
                    frac_mean(0).map_or("-".into(), f3),
                    frac_mean(2).map_or("-".into(), f3),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]
            } else {
                let s = Summary::of(&stab);
                if kind == "uniform" {
                    uniform_mean = Some(s.mean);
                }
                let inflation = uniform_mean
                    .map(|u| f3(s.mean / u))
                    .unwrap_or_else(|| "-".into());
                vec![
                    kind.to_string(),
                    n.to_string(),
                    format!("{}/{runs}", stab.len()),
                    frac_mean(0).map_or("-".into(), f3),
                    frac_mean(2).map_or("-".into(), f3),
                    f3(s.mean / norm),
                    f3(s.median / norm),
                    inflation,
                ]
            };
            table.push(row);
            measurements.push(Json::obj([
                ("scheduler", kind.into()),
                ("topology", topology_assumption(kind).into()),
                ("n", n.into()),
                ("stabilized", stab.len().into()),
                ("runs", runs.into()),
                ("deterministic", (kind == "round_robin").into()),
                (
                    "stabilization_interactions",
                    Json::Arr(
                        outcomes
                            .iter()
                            .map(|o| o.stabilized.map_or(Json::Null, Json::from))
                            .collect(),
                    ),
                ),
                (
                    "crossings",
                    Json::Arr(
                        FRACTIONS
                            .iter()
                            .enumerate()
                            .map(|(i, (_, _, label))| {
                                Json::obj([
                                    ("fraction", (*label).into()),
                                    (
                                        "interactions",
                                        Json::Arr(
                                            outcomes
                                                .iter()
                                                .map(|o| {
                                                    o.crossings[i].map_or(Json::Null, Json::from)
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]));
        }
    }

    exp.emit(&table);
    let payload = Json::obj([
        (
            "sizes",
            Json::Arr(sizes.iter().map(|&n| n.into()).collect()),
        ),
        ("sims", sims.into()),
        ("budget_c", budget_c.into()),
        ("biased", "hot=n/8 bias=0.4".into()),
        ("clustered", "clusters=2 p_cross=0.3".into()),
        ("measurements", Json::Arr(measurements)),
    ]);
    exp.write_json("BENCH_sched.json", payload);
    exp.note(
        "\nexpected shape: biased ~2x uniform; clustered reaches 15/16-ranked but \
         full validity costs ~100x uniform (duplicate ranks from per-cluster \
         elections); round-robin never stabilizes (no scheduler randomness left \
         for the lottery). 0/sims rows are the measurement, not a failure: the \
         crossings columns show how far those runs got.",
    );
}
