//! Topology benchmark: stabilization and ranking progress vs the
//! interaction graph, with the spectral gap as the x-axis.
//!
//! The paper's `O(n² log n)` stabilization guarantee assumes the
//! uniform clique scheduler. This binary runs `StableRanking` from its
//! clean start under a [`GraphSchedule`] for every generator in the
//! `topology` crate's menu (plus the uniform `Schedule` baseline) and
//! records, per `(topology, n, seed)`: the interactions until a valid
//! ranking (censored at the budget), the interactions until *half* the
//! population is ranked, and the ranked-count high-water mark — next to
//! the topology's measured spectral gap.
//!
//! Measured shape (see BENCH_topo.json and `docs/BENCHMARKS.md`): full
//! stabilization is a **cliff**, not a curve. Only the complete graph
//! stabilizes — and through `GraphSchedule` it does so within ~2× of
//! the uniform scheduler's median (the distributions are identical; the
//! graph path just spends two RNG words per pair), which is the
//! baseline sanity gate recorded in `clique_baseline`. Every incomplete
//! topology livelocks in a reset cycle: Protocol 2 hands out ranks only
//! when the current dispenser *directly meets* an unranked phase agent
//! (`ranking_step` lines 4–5), so on a graph the dispenser can rank
//! only its own neighbors, and `Ranking⁺`'s liveness clock —
//! `Θ(log n)` decrements tuned for uniform meeting rates — fires a
//! reset long before a dispensing chain can cross the graph. The
//! *partial-progress* metrics do track the gap monotonically (modulo
//! the geometric graph's density): high-gap topologies rank most of the
//! population quickly and repeatedly; the ring cannot even reach half.
//! That is the quantitative form of why the paper's uniform-scheduler
//! assumption is load-bearing and why the graph-restricted ranking
//! problem needs a genuinely different protocol (see `ROADMAP.md`).
//!
//! `--smoke` (CI gate) checks at `n = 32`: (a) two identically-seeded
//! ring runs are bit-for-bit identical; (b) per seed, the ring's
//! time-to-half (censored at the smoke budget) is at least the d=8
//! expander's, *and* the ring's ranked high-water mark is strictly
//! below the expander's — the gap ordering in its sharpest measurable
//! form, with a cadence-insensitive backstop.
//!
//! Usage: `cargo run --release -p bench --bin topology --
//! [sizes=16,36,64] [sims=5] [budget_c=3000] [seed0=0]
//! [out=BENCH_topo.json] [--smoke] [--csv]`
//! (sizes must be perfect squares ≥ 9 so the torus fits).

use std::process::ExitCode;

use analysis::stats::Summary;
use bench::{f3, Experiment, Json, Table};
use population::{is_valid_ranking, ranked_count, Packed, PairSource, Schedule, Simulator};
use ranking::stable::StableRanking;
use ranking::Params;
use topology::{GraphSchedule, TopologySpec};

/// One table row on the way to emission: name, spec (`None` for the
/// uniform-`Schedule` baseline), gap, `λ₂`, per-seed outcomes.
type Row = (String, Option<TopologySpec>, f64, f64, Vec<Outcome>);

/// Per-seed outcome of one run.
#[derive(Clone)]
struct Outcome {
    /// Interactions until `is_valid_ranking` (None = censored at budget).
    stabilized: Option<u64>,
    /// Interactions until `ranked_count ≥ n/2` (None = never).
    t_half: Option<u64>,
    /// Ranked-count high-water mark over the run.
    max_ranked: usize,
}

/// One clean-start run on `source`, sampled every `check` interactions.
fn run_one<S: PairSource>(n: usize, budget: u64, check: u64, source: S) -> Outcome {
    let protocol = Packed(StableRanking::new(Params::new(n)));
    let init = protocol.pack_all(&protocol.inner().initial());
    let mut sim = Simulator::with_source(protocol, init, source);
    let mut out = Outcome {
        stabilized: None,
        t_half: None,
        max_ranked: 0,
    };
    let mut t = 0u64;
    while t < budget {
        let burst = check.min(budget - t);
        sim.run_batched(burst);
        t += burst;
        let ranked = ranked_count(sim.states());
        out.max_ranked = out.max_ranked.max(ranked);
        if out.t_half.is_none() && ranked >= n / 2 {
            out.t_half = Some(t);
        }
        if is_valid_ranking(sim.states()) {
            out.stabilized = Some(t);
            break;
        }
    }
    out
}

/// The generator menu at size `n` (`side² = n`): name + spec. The
/// geometric radius scales as `√(2 ln n / n)` — comfortably above the
/// `√(ln n / n)` connectivity threshold at every benched size.
fn menu(n: u32, side: u32) -> Vec<(String, TopologySpec)> {
    let radius = (2.0 * f64::from(n).ln() / f64::from(n)).sqrt();
    vec![
        ("complete".into(), TopologySpec::Complete { n }),
        (
            "preferential_m3".into(),
            TopologySpec::Preferential { n, m: 3, seed: 1 },
        ),
        (
            "regular_d8".into(),
            TopologySpec::Regular { n, d: 8, seed: 1 },
        ),
        (
            "geometric".into(),
            TopologySpec::Geometric { n, radius, seed: 1 },
        ),
        ("torus".into(), TopologySpec::Torus { w: side, h: side }),
        (
            "regular_d4".into(),
            TopologySpec::Regular { n, d: 4, seed: 1 },
        ),
        ("ring".into(), TopologySpec::Ring { n }),
    ]
}

fn smoke(exp: &Experiment) -> ExitCode {
    const N: u32 = 32;
    let budget: u64 = exp.get("smoke_budget", 4_000_000);
    let seeds = [0u64, 1];
    let mut ok = true;

    // (a) Determinism: two identically-seeded ring runs, bit for bit.
    let run_states = || {
        let p = Packed(StableRanking::new(Params::new(N as usize)));
        let init = p.pack_all(&p.inner().initial());
        let source = GraphSchedule::new(TopologySpec::Ring { n: N }, 7);
        let mut sim = Simulator::with_source(p, init, source);
        sim.run_batched(200_000);
        sim.states().to_vec()
    };
    if run_states() != run_states() {
        eprintln!(
            "SMOKE FAILURE: identically-seeded ring runs diverged — GraphSchedule lost determinism"
        );
        ok = false;
    } else {
        exp.note("smoke: ring rerun bit-identical at n=32");
    }

    // (b) Gap ordering, sharpest measurable form: time-to-half on the
    // ring (censored at the budget — it never gets there) must be at
    // least the d=8 expander's, per seed. The ranked count oscillates
    // through reset cycles, so the crossing is sampled finely (512);
    // the max-ranked high-water mark backs the timing check with a
    // cadence-insensitive ordering.
    for seed in seeds {
        let expander = run_one(
            N as usize,
            budget,
            512,
            GraphSchedule::new(
                TopologySpec::Regular {
                    n: N,
                    d: 8,
                    seed: 1,
                },
                seed,
            ),
        );
        let ring = run_one(
            N as usize,
            budget,
            512,
            GraphSchedule::new(TopologySpec::Ring { n: N }, seed),
        );
        let e_half = expander.t_half.unwrap_or(budget);
        let r_half = ring.t_half.unwrap_or(budget);
        exp.note(&format!(
            "smoke seed {seed}: t_half expander={e_half} ring={r_half}, \
             max_ranked expander={} ring={} (budget {budget})",
            expander.max_ranked, ring.max_ranked
        ));
        if expander.t_half.is_none() {
            eprintln!(
                "SMOKE FAILURE: d=8 expander did not reach half-ranked within {budget} \
                 interactions at n={N} (seed {seed})"
            );
            ok = false;
        }
        if r_half < e_half {
            eprintln!(
                "SMOKE FAILURE: ring reached half-ranked faster than the expander \
                 ({r_half} < {e_half}, seed {seed}) — gap ordering inverted"
            );
            ok = false;
        }
        if ring.max_ranked >= expander.max_ranked {
            eprintln!(
                "SMOKE FAILURE: ring ranked high-water {} ≥ expander {} (seed {seed}) — \
                 gap ordering inverted",
                ring.max_ranked, expander.max_ranked
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let exp = Experiment::from_env("topology");
    if exp.flag("smoke") {
        return smoke(&exp);
    }
    let sims = exp.sims(5);
    let budget_c: f64 = exp.get("budget_c", 3000.0);
    let sizes: Vec<usize> = exp
        .args()
        .get_str("sizes")
        .unwrap_or("16,36,64")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    assert!(!sizes.is_empty(), "sizes= parsed to an empty list");

    let mut table = Table::new(
        format!("Stabilization and ranking progress per topology ({sims} sims, clean start)"),
        &[
            "topology",
            "n",
            "gap",
            "stabilized",
            "mean t/n^2",
            "median t/n^2",
            "t(1/2)/n^2",
            "max ranked",
        ],
    );
    let mut measurements = Vec::new();
    let mut baselines = Vec::new();
    for &n in &sizes {
        let side = (n as f64).sqrt().round() as u32;
        assert_eq!(
            (side * side) as usize,
            n,
            "sizes must be perfect squares so the torus fits, got {n}"
        );
        let budget = (budget_c * (n * n) as f64).ceil() as u64;
        let check = (n as u64).max(2_048);
        let norm = (n * n) as f64;

        // The uniform-Schedule baseline row (gap of the clique).
        let uniform_gap = TopologySpec::Complete { n: n as u32 }
            .build()
            .spectral_gap();
        let mut rows: Vec<Row> = Vec::new();
        let outcomes = exp.run_seeds(sims, |seed| {
            run_one(n, budget, check, Schedule::new(n, seed))
        });
        rows.push((
            "uniform".into(),
            None,
            uniform_gap.gap,
            uniform_gap.lambda2,
            outcomes,
        ));
        for (name, spec) in menu(n as u32, side) {
            let est = spec.build().spectral_gap();
            let outcomes = exp.run_seeds(sims, |seed| {
                run_one(n, budget, check, GraphSchedule::new(spec, seed))
            });
            rows.push((name, Some(spec), est.gap, est.lambda2, outcomes));
        }

        let mut uniform_median: Option<f64> = None;
        let mut complete_median: Option<f64> = None;
        for (name, spec, gap, lambda2, outcomes) in rows {
            let stab: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.stabilized)
                .map(|t| t as f64)
                .collect();
            let halves: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.t_half)
                .map(|t| t as f64)
                .collect();
            let max_frac = outcomes
                .iter()
                .map(|o| o.max_ranked as f64 / n as f64)
                .fold(0.0f64, f64::max);
            let median = (!stab.is_empty()).then(|| Summary::of(&stab).median);
            if name == "uniform" {
                uniform_median = median;
            }
            if name == "complete" {
                complete_median = median;
            }
            table.push(vec![
                name.clone(),
                n.to_string(),
                f3(gap),
                format!("{}/{sims}", stab.len()),
                if stab.is_empty() {
                    "-".into()
                } else {
                    f3(Summary::of(&stab).mean / norm)
                },
                median.map_or("-".into(), |m| f3(m / norm)),
                if halves.is_empty() {
                    "-".into()
                } else {
                    f3(Summary::of(&halves).mean / norm)
                },
                f3(max_frac),
            ]);
            measurements.push(Json::obj([
                ("topology", name.as_str().into()),
                ("n", n.into()),
                (
                    "spec_words",
                    spec.map_or(Json::Null, |s| {
                        Json::Arr(s.encode().into_iter().map(Json::from).collect())
                    }),
                ),
                ("spectral_gap", gap.into()),
                ("lambda2", lambda2.into()),
                ("runs", outcomes.len().into()),
                ("stabilized", stab.len().into()),
                ("budget", budget.into()),
                (
                    "stabilization_interactions",
                    Json::Arr(
                        outcomes
                            .iter()
                            .map(|o| o.stabilized.map_or(Json::Null, Json::from))
                            .collect(),
                    ),
                ),
                (
                    "t_half_interactions",
                    Json::Arr(
                        outcomes
                            .iter()
                            .map(|o| o.t_half.map_or(Json::Null, Json::from))
                            .collect(),
                    ),
                ),
                (
                    "max_ranked",
                    Json::Arr(outcomes.iter().map(|o| o.max_ranked.into()).collect()),
                ),
            ]));
        }

        // The clique-baseline gate: GraphSchedule(complete) within 2x of
        // the uniform scheduler's median at equal (n, seeds).
        if let (Some(u), Some(c)) = (uniform_median, complete_median) {
            let ratio = c / u;
            exp.note(&format!(
                "clique baseline n={n}: graph median/uniform median = {ratio:.2} (gate: <= 2)"
            ));
            baselines.push(Json::obj([
                ("n", n.into()),
                ("uniform_median", u.into()),
                ("graph_complete_median", c.into()),
                ("ratio", ratio.into()),
            ]));
            assert!(
                ratio <= 2.0,
                "clique baseline violated at n={n}: GraphSchedule(complete) median is \
                 {ratio:.2}x the uniform scheduler's"
            );
        } else {
            panic!(
                "clique baseline unmeasurable at n={n}: a complete-graph run failed to stabilize"
            );
        }
    }

    exp.emit(&table);
    let payload = Json::obj([
        (
            "sizes",
            Json::Arr(sizes.iter().map(|&n| n.into()).collect()),
        ),
        ("sims", sims.into()),
        ("budget_c", budget_c.into()),
        ("clique_baseline", Json::Arr(baselines)),
        ("measurements", Json::Arr(measurements)),
    ]);
    exp.write_json("BENCH_topo.json", payload);
    exp.note(
        "\nmeasured shape: stabilization is a cliff — only the complete graph \
         stabilizes (within ~2x of the uniform scheduler through the same \
         GraphSchedule path); every incomplete topology livelocks in a reset \
         cycle because Protocol 2's dispenser can only rank direct neighbors \
         while Ranking+'s liveness clock is tuned for uniform meeting rates. \
         The partial-progress metrics (t(1/2), max ranked) track the spectral \
         gap: see docs/BENCHMARKS.md for the full analysis.",
    );
    ExitCode::SUCCESS
}
