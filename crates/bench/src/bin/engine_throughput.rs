//! Engine throughput: scalar stepping vs the batched hot path vs the
//! packed-word state representation.
//!
//! Measures interactions/second of [`Simulator::step`] in a loop (the
//! reference execution path) against [`Simulator::run_batched`] (the
//! block-sampling hot path), over `n ∈ {10³, 10⁴, 10⁵}` by default, for:
//!
//! * the one-way epidemic (engine-bound: a two-byte compare per
//!   transition — the engine's speed-of-light);
//! * the paper's `StableRanking` over its structured enum states
//!   (transition-bound: the protocol dominates);
//! * `StableRanking` over the packed single-word representation
//!   (`Packed<StableRanking>`): same trajectory bit-for-bit, flat
//!   `u64` storage, table-driven transitions.
//!
//! All paths execute the identical trajectory, so every comparison is
//! pure representation/engine overhead.
//!
//! Writes `BENCH_engine.json` (override with `out=`) so later
//! performance work has a recorded trajectory to beat. Pass
//! `baseline=BENCH_engine.json` to print per-protocol speedup against a
//! previously recorded artifact — perf regressions visible in one
//! command. Pass `--smoke` to assert (exit 1 on failure) that the
//! packed path is at least `floor=` (default 0.9) times the enum path —
//! the CI throughput smoke.
//!
//! Usage: `cargo run --release -p bench --bin engine_throughput --
//! [interactions=20000000] [samples=5] [sizes=1000,10000,100000]
//! [out=BENCH_engine.json] [baseline=PATH] [floor=0.9] [--smoke] [--csv]`

use std::process::ExitCode;

use bench::timing::time_runs;
use bench::{f3, Experiment, Json, Table};
use population::primitives::epidemic::Epidemic;
use population::{Packed, Protocol, Simulator};
use ranking::stable::StableRanking;
use ranking::Params;

struct Measurement {
    protocol: &'static str,
    n: usize,
    interactions: u64,
    scalar_ips: f64,
    batched_ips: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.batched_ips / self.scalar_ips
    }
}

fn measure<P, F>(
    name: &'static str,
    n: usize,
    interactions: u64,
    samples: usize,
    make: F,
) -> Measurement
where
    P: Protocol,
    F: Fn() -> (P, Vec<P::State>),
{
    let (protocol, init) = make();
    let mut sim = Simulator::new(protocol, init, 7);
    let scalar = time_runs(1, samples, || {
        for _ in 0..interactions {
            sim.step();
        }
    });

    let (protocol, init) = make();
    let mut sim = Simulator::new(protocol, init, 7);
    let batched = time_runs(1, samples, || {
        sim.run_batched(interactions);
    });

    Measurement {
        protocol: name,
        n,
        interactions,
        scalar_ips: scalar.per_second(interactions as f64),
        batched_ips: batched.per_second(interactions as f64),
    }
}

/// Minimal reader for previously written `BENCH_engine.json` artifacts:
/// extracts `(protocol, n, batched_interactions_per_sec)` triples from
/// the pretty-printed (one key per line) layout. Not a JSON parser —
/// just enough to compare against our own output format.
fn read_baseline(path: &str) -> Vec<(String, usize, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\":"))?;
        Some(
            rest.trim()
                .trim_end_matches(',')
                .trim_matches('"')
                .to_string(),
        )
    };
    let mut out = Vec::new();
    let (mut protocol, mut n) = (None::<String>, None::<usize>);
    for line in text.lines() {
        if let Some(p) = field(line, "protocol") {
            protocol = Some(p);
        } else if let Some(v) = field(line, "n") {
            n = v.parse().ok();
        } else if let Some(v) = field(line, "batched_interactions_per_sec") {
            if let (Some(p), Some(nn), Ok(ips)) = (protocol.take(), n.take(), v.parse()) {
                out.push((p, nn, ips));
            }
        }
    }
    assert!(
        !out.is_empty(),
        "baseline {path} contains no measurements (expected the BENCH_engine.json layout)"
    );
    out
}

fn main() -> ExitCode {
    let exp = Experiment::from_env("engine_throughput");
    let interactions: u64 = exp.get("interactions", 20_000_000);
    let samples: usize = exp.get("samples", 5);
    let sizes: Vec<usize> = exp
        .args()
        .get_str("sizes")
        .unwrap_or("1000,10000,100000")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .expect("sizes= must be comma-separated integers")
        })
        .collect();

    let mut results = Vec::new();
    for &n in &sizes {
        results.push(measure("epidemic", n, interactions, samples, || {
            let p = Epidemic::new(n);
            let init = p.initial(n);
            (p, init)
        }));
        // StableRanking transitions dominate the engine overhead, so
        // its speedup bounds what protocol-heavy workloads see; fewer
        // interactions keep the run short.
        results.push(measure(
            "stable_ranking",
            n,
            interactions / 4,
            samples,
            || {
                let p = StableRanking::new(Params::new(n));
                let init = p.initial();
                (p, init)
            },
        ));
        // The same protocol and trajectory over packed words.
        results.push(measure(
            "stable_ranking_packed",
            n,
            interactions / 4,
            samples,
            || {
                let p = Packed(StableRanking::new(Params::new(n)));
                let init = p.pack_all(&p.inner().initial());
                (p, init)
            },
        ));
    }

    let mut table = Table::new(
        format!("Engine throughput, median of {samples} runs"),
        &["protocol", "n", "scalar M/s", "batched M/s", "speedup"],
    );
    for m in &results {
        table.push(vec![
            m.protocol.to_string(),
            m.n.to_string(),
            f3(m.scalar_ips / 1e6),
            f3(m.batched_ips / 1e6),
            f3(m.speedup()),
        ]);
    }
    exp.emit(&table);

    if let Some(baseline_path) = exp.args().get_str("baseline") {
        let baseline = read_baseline(baseline_path);
        let mut cmp = Table::new(
            format!("Batched throughput vs baseline {baseline_path}"),
            &[
                "protocol",
                "n",
                "baseline M/s",
                "now M/s",
                "speedup vs baseline",
            ],
        );
        for m in &results {
            let Some((_, _, base)) = baseline
                .iter()
                .find(|(p, n, _)| p == m.protocol && *n == m.n)
            else {
                continue;
            };
            cmp.push(vec![
                m.protocol.to_string(),
                m.n.to_string(),
                f3(base / 1e6),
                f3(m.batched_ips / 1e6),
                f3(m.batched_ips / base),
            ]);
        }
        exp.emit(&cmp);
    }

    let payload = Json::obj([
        ("samples", samples.into()),
        (
            "measurements",
            Json::Arr(
                results
                    .iter()
                    .map(|m| {
                        Json::obj([
                            ("protocol", m.protocol.into()),
                            ("n", m.n.into()),
                            ("interactions_per_sample", m.interactions.into()),
                            ("scalar_interactions_per_sec", m.scalar_ips.into()),
                            ("batched_interactions_per_sec", m.batched_ips.into()),
                            ("speedup", m.speedup().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    exp.write_json("BENCH_engine.json", payload);

    if let Some(engine_bound) = results
        .iter()
        .find(|m| m.protocol == "epidemic" && m.n == 100_000)
    {
        exp.note(&format!(
            "engine-bound speedup at n = 1e5: {:.2}x (target: >= 1.5x)",
            engine_bound.speedup()
        ));
    }

    // CI throughput smoke: the packed representation must not be slower
    // than the enum path. The floor is deliberately generous (0.9x) so
    // shared-runner noise cannot flake the build; real regressions are
    // far below it.
    if exp.flag("smoke") {
        let floor: f64 = exp.get("floor", 0.9);
        let mut ok = true;
        for &n in &sizes {
            let by = |name: &str| {
                results
                    .iter()
                    .find(|m| m.protocol == name && m.n == n)
                    .expect("measured above")
            };
            let enum_ips = by("stable_ranking").batched_ips;
            let packed_ips = by("stable_ranking_packed").batched_ips;
            let ratio = packed_ips / enum_ips;
            exp.note(&format!(
                "smoke n={n}: packed/enum batched ratio {ratio:.2} (floor {floor})"
            ));
            if ratio < floor {
                eprintln!(
                    "SMOKE FAILURE: packed path is {ratio:.2}x the enum path at n={n} \
                     (floor {floor}) — the packed representation regressed"
                );
                ok = false;
            }
        }
        if !ok {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
