//! Engine throughput: scalar stepping vs the batched hot path vs the
//! packed-word state representation.
//!
//! Measures interactions/second of [`Simulator::step`] in a loop (the
//! reference execution path) against [`Simulator::run_batched`] (the
//! block-sampling hot path), over `n ∈ {10³, 10⁴, 10⁵}` by default, for:
//!
//! * the one-way epidemic (engine-bound: a two-byte compare per
//!   transition — the engine's speed-of-light);
//! * the paper's `StableRanking` over its structured enum states
//!   (transition-bound: the protocol dominates);
//! * `StableRanking` over the packed single-word representation with
//!   the scalar (pair-at-a-time) block loop
//!   (`ScalarBlock<Packed<StableRanking>>`): flat `u64` storage,
//!   table-driven transitions;
//! * `StableRanking` through its block transition kernel
//!   (`Packed<StableRanking>`, see `ranking::stable::kernel`): whole
//!   schedule blocks walked in one in-order pass with branchless
//!   classification and per-class branchless cores. The kernel rows
//!   also record the *dispatch mix* — the fraction of interactions
//!   each transition class executed — so a throughput shift can be
//!   attributed to a workload shift vs a kernel change;
//! * both packed paths again on the *converged* configuration
//!   (`stable_ranking_silent` / `stable_ranking_kernel_silent`): a
//!   fully ranked population is silent, every meeting is a
//!   ranked×ranked null pair, and a stabilized simulation spends all
//!   further interactions there — the regime the kernel's null fast
//!   path targets.
//!
//! All paths execute the identical trajectory, so every comparison is
//! pure representation/engine overhead.
//!
//! Two extra kernel rows measure the telemetry **probe seam**
//! (`population::Probe`): `stable_ranking_kernel_null_probe` times
//! `run_probed::<NullProbe>` against the unprobed `run_batched` in
//! interleaved pairs (in these rows the "scalar" column is the paired
//! unprobed throughput), and `stable_ranking_kernel_recorded` times a
//! full `telemetry::Recorder` riding the same blocks. The JSON artifact
//! additionally records each size's best paired null-probe ratio
//! (`probe_overhead`), and every artifact now embeds a run-provenance
//! `manifest` block (arguments, git revision, rustc, host cores).
//!
//! Writes `BENCH_engine.json` (override with `out=`) so later
//! performance work has a recorded trajectory to beat. Pass
//! `baseline=BENCH_engine.json` to print per-protocol speedup against a
//! previously recorded artifact — perf regressions visible in one
//! command. Pass `--smoke` to assert (exit 1 on failure) that the
//! packed path is at least `floor=` (default 0.9) times the enum path
//! and, at `n ≥ 10⁴`, that the kernel is at least `kernel_floor=`
//! (default 0.7) times the scalar packed path on the transient
//! workload, at least `silent_floor=` (default 1.05) times it on
//! the converged workload, and that the best paired null-probe ratio
//! reaches `probe_floor=` (default 0.95) — the CI throughput smoke.
//!
//! Usage: `cargo run --release -p bench --bin engine_throughput --
//! [interactions=20000000] [samples=5] [sizes=1000,10000,100000]
//! [out=BENCH_engine.json] [baseline=PATH] [floor=0.9]
//! [kernel_floor=0.7] [silent_floor=1.05] [probe_floor=0.95]
//! [--smoke] [--csv]`

use std::process::ExitCode;
use std::time::Instant;

use bench::timing::time_runs;
use bench::{f3, Experiment, Json, Table};
use population::primitives::epidemic::Epidemic;
use population::{NullProbe, Packed, Protocol, ScalarBlock, Simulator};
use ranking::stable::state::StableState;
use ranking::stable::StableRanking;
use ranking::Params;

struct Measurement {
    protocol: &'static str,
    n: usize,
    interactions: u64,
    scalar_ips: f64,
    batched_ips: f64,
    /// Kernel rows only: fraction of batched interactions executed by
    /// each dispatch lane (`[reset, both-elect, one-elect, main/main]`).
    dispatch_mix: Option<[f64; 4]>,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.batched_ips / self.scalar_ips
    }
}

fn measure<P, F>(
    name: &'static str,
    n: usize,
    interactions: u64,
    samples: usize,
    make: F,
) -> Measurement
where
    P: Protocol,
    F: Fn() -> (P, Vec<P::State>),
{
    measure_with(name, n, interactions, samples, make, |_, _| None)
}

/// Like [`measure`], but `finish` inspects the batched simulator's
/// protocol after its timed runs — the hook the kernel row uses to pull
/// the accumulated dispatch-mix counters.
fn measure_with<P, F>(
    name: &'static str,
    n: usize,
    interactions: u64,
    samples: usize,
    make: F,
    finish: impl Fn(&P, u64) -> Option<[f64; 4]>,
) -> Measurement
where
    P: Protocol,
    F: Fn() -> (P, Vec<P::State>),
{
    let (protocol, init) = make();
    let mut sim = Simulator::new(protocol, init, 7);
    let scalar = time_runs(1, samples, || {
        for _ in 0..interactions {
            sim.step();
        }
    });

    let (protocol, init) = make();
    let mut sim = Simulator::new(protocol, init, 7);
    let batched = time_runs(1, samples, || {
        sim.run_batched(interactions);
    });
    let dispatch_mix = finish(sim.protocol(), sim.interactions());

    Measurement {
        protocol: name,
        n,
        interactions,
        scalar_ips: scalar.per_second(interactions as f64),
        batched_ips: batched.per_second(interactions as f64),
        dispatch_mix,
    }
}

/// Minimal reader for previously written `BENCH_engine.json` artifacts:
/// extracts `(protocol, n, batched_interactions_per_sec)` triples from
/// the pretty-printed (one key per line) layout. Not a JSON parser —
/// just enough to compare against our own output format.
fn read_baseline(path: &str) -> Vec<(String, usize, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\":"))?;
        Some(
            rest.trim()
                .trim_end_matches(',')
                .trim_matches('"')
                .to_string(),
        )
    };
    let mut out = Vec::new();
    let (mut protocol, mut n) = (None::<String>, None::<usize>);
    for line in text.lines() {
        if let Some(p) = field(line, "protocol") {
            protocol = Some(p);
        } else if let Some(v) = field(line, "n") {
            n = v.parse().ok();
        } else if let Some(v) = field(line, "batched_interactions_per_sec") {
            if let (Some(p), Some(nn), Ok(ips)) = (protocol.take(), n.take(), v.parse()) {
                out.push((p, nn, ips));
            }
        }
    }
    assert!(
        !out.is_empty(),
        "baseline {path} contains no measurements (expected the BENCH_engine.json layout)"
    );
    out
}

/// The dispatch-mix hook for kernel rows: read the per-class counters
/// out of the protocol's unified metrics registry (the same snapshot
/// any telemetry consumer sees) and turn them into fractions of the
/// executed interactions.
fn kernel_mix(p: &Packed<StableRanking>, executed: u64) -> Option<[f64; 4]> {
    let snap = p.inner().metrics().snapshot();
    let mix = ranking::stable::DISPATCH_COUNTERS.map(|name| snap.counter(name).unwrap_or(0));
    let total: u64 = mix.iter().sum();
    debug_assert_eq!(total, executed);
    let _ = executed;
    (total > 0).then(|| mix.map(|c| c as f64 / total as f64))
}

/// The converged configuration: a valid ranking is silent, so every
/// interaction is a ranked×ranked null pair.
fn ranked_init(n: usize) -> Vec<StableState> {
    (1..=n as u64).map(StableState::Ranked).collect()
}

/// Probe-seam overhead rows, measured by **interleaved paired
/// sampling**.
///
/// The bench host is a single-core, frequency-unstable machine: two
/// independently timed medians of *identical* machine code routinely
/// differ by ~10%, so an independent-median ratio cannot resolve a 5%
/// seam regression. Instead every sample times the unprobed
/// `run_batched` and the `NullProbe` `run_probed` back-to-back (same
/// frequency window) and the smoke gate uses the **best** paired ratio
/// across samples: if `run_probed::<NullProbe>` truly monomorphizes to
/// the pre-seam code, at least one quiet window shows a ratio near 1.0,
/// while a real codegen regression caps every window's ratio below it.
/// A `Recorder`-mode sample rides the same loop for the recorded-mode
/// row (informational — active tracing is allowed to cost).
struct ProbeRows {
    n: usize,
    interactions: u64,
    plain_ips: f64,
    null_ips: f64,
    recorded_ips: f64,
    /// Best (max) per-sample ratio `t_plain / t_null` — the smoke gate.
    best_null_ratio: f64,
}

fn measure_probe_rows(n: usize, interactions: u64, samples: usize) -> ProbeRows {
    let fresh = || {
        let p = Packed(StableRanking::new(Params::new(n)));
        let init = p.pack_all(&p.inner().initial());
        Simulator::new(p, init, 7)
    };
    let mut plain_sim = fresh();
    let mut null_sim = fresh();
    let mut rec_sim = fresh();
    // A small ring keeps the recorded row's memory bounded; overwritten
    // events are still counted, which is all this row needs.
    let mut recorder = telemetry::Recorder::with_capacity(1 << 12);
    // One untimed warmup per path.
    plain_sim.run_batched(interactions);
    null_sim.run_probed(interactions, &mut NullProbe);
    rec_sim.run_probed(interactions, &mut recorder);
    let mut plain_t = Vec::with_capacity(samples);
    let mut null_t = Vec::with_capacity(samples);
    let mut rec_t = Vec::with_capacity(samples);
    let mut best_null_ratio = 0.0f64;
    for _ in 0..samples {
        let t0 = Instant::now();
        plain_sim.run_batched(interactions);
        let tp = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        null_sim.run_probed(interactions, &mut NullProbe);
        let tn = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        rec_sim.run_probed(interactions, &mut recorder);
        let tr = t0.elapsed().as_secs_f64();
        best_null_ratio = best_null_ratio.max(tp / tn);
        plain_t.push(tp);
        null_t.push(tn);
        rec_t.push(tr);
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    ProbeRows {
        n,
        interactions,
        plain_ips: interactions as f64 / median(plain_t),
        null_ips: interactions as f64 / median(null_t),
        recorded_ips: interactions as f64 / median(rec_t),
        best_null_ratio,
    }
}

fn main() -> ExitCode {
    let exp = Experiment::from_env("engine_throughput");
    let interactions: u64 = exp.get("interactions", 20_000_000);
    let samples: usize = exp.get("samples", 5);
    let sizes: Vec<usize> = exp
        .args()
        .get_str("sizes")
        .unwrap_or("1000,10000,100000")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .expect("sizes= must be comma-separated integers")
        })
        .collect();

    let mut results = Vec::new();
    for &n in &sizes {
        results.push(measure("epidemic", n, interactions, samples, || {
            let p = Epidemic::new(n);
            let init = p.initial(n);
            (p, init)
        }));
        // StableRanking transitions dominate the engine overhead, so
        // its speedup bounds what protocol-heavy workloads see; fewer
        // interactions keep the run short.
        results.push(measure(
            "stable_ranking",
            n,
            interactions / 4,
            samples,
            || {
                let p = StableRanking::new(Params::new(n));
                let init = p.initial();
                (p, init)
            },
        ));
        // The same protocol and trajectory over packed words, forced
        // through the scalar (pair-at-a-time) block loop — the A/B
        // baseline for the kernel row below.
        results.push(measure(
            "stable_ranking_packed",
            n,
            interactions / 4,
            samples,
            || {
                let inner = Packed(StableRanking::new(Params::new(n)));
                let init = inner.pack_all(&inner.inner().initial());
                (ScalarBlock(inner), init)
            },
        ));
        // Packed words through the block transition kernel: one
        // in-order pass per block, branchless classification and
        // per-class branchless cores. Same trajectory bit-for-bit; the
        // dispatch-mix counters attribute the throughput to the
        // classes that did the work.
        results.push(measure_with(
            "stable_ranking_kernel",
            n,
            interactions / 4,
            samples,
            || {
                let p = Packed(StableRanking::new(Params::new(n)));
                let init = p.pack_all(&p.inner().initial());
                (p, init)
            },
            kernel_mix,
        ));
        // The converged regime, no warmup needed: a pre-built valid
        // ranking starts silent and stays silent.
        results.push(measure(
            "stable_ranking_silent",
            n,
            interactions / 4,
            samples,
            || {
                let inner = Packed(StableRanking::new(Params::new(n)));
                let init = inner.pack_all(&ranked_init(n));
                (ScalarBlock(inner), init)
            },
        ));
        results.push(measure_with(
            "stable_ranking_kernel_silent",
            n,
            interactions / 4,
            samples,
            || {
                let p = Packed(StableRanking::new(Params::new(n)));
                let init = p.pack_all(&ranked_init(n));
                (p, init)
            },
            kernel_mix,
        ));
    }

    // Probe-seam overhead rows: paired unprobed vs NullProbe vs
    // Recorder samples over the kernel path (see [`measure_probe_rows`]).
    // In these rows the "scalar" column is the *paired unprobed*
    // `run_batched` throughput, not a step loop.
    let probe_rows: Vec<ProbeRows> = sizes
        .iter()
        .map(|&n| measure_probe_rows(n, interactions / 4, samples))
        .collect();
    for p in &probe_rows {
        results.push(Measurement {
            protocol: "stable_ranking_kernel_null_probe",
            n: p.n,
            interactions: p.interactions,
            scalar_ips: p.plain_ips,
            batched_ips: p.null_ips,
            dispatch_mix: None,
        });
        results.push(Measurement {
            protocol: "stable_ranking_kernel_recorded",
            n: p.n,
            interactions: p.interactions,
            scalar_ips: p.plain_ips,
            batched_ips: p.recorded_ips,
            dispatch_mix: None,
        });
    }

    let mut table = Table::new(
        format!("Engine throughput, median of {samples} runs"),
        &[
            "protocol",
            "n",
            "scalar M/s",
            "batched M/s",
            "speedup",
            "mix rst/e2/e1/main %",
        ],
    );
    for m in &results {
        let mix = m.dispatch_mix.map_or_else(
            || "-".to_string(),
            |mix| mix.map(|f| format!("{:.1}", f * 100.0)).join("/"),
        );
        table.push(vec![
            m.protocol.to_string(),
            m.n.to_string(),
            f3(m.scalar_ips / 1e6),
            f3(m.batched_ips / 1e6),
            f3(m.speedup()),
            mix,
        ]);
    }
    exp.emit(&table);

    if let Some(baseline_path) = exp.args().get_str("baseline") {
        let baseline = read_baseline(baseline_path);
        let mut cmp = Table::new(
            format!("Batched throughput vs baseline {baseline_path}"),
            &[
                "protocol",
                "n",
                "baseline M/s",
                "now M/s",
                "speedup vs baseline",
            ],
        );
        for m in &results {
            let Some((_, _, base)) = baseline
                .iter()
                .find(|(p, n, _)| p == m.protocol && *n == m.n)
            else {
                continue;
            };
            cmp.push(vec![
                m.protocol.to_string(),
                m.n.to_string(),
                f3(base / 1e6),
                f3(m.batched_ips / 1e6),
                f3(m.batched_ips / base),
            ]);
        }
        exp.emit(&cmp);
    }

    let payload = Json::obj([
        ("samples", samples.into()),
        (
            "probe_overhead",
            Json::Arr(
                probe_rows
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("n", p.n.into()),
                            ("best_null_paired_ratio", p.best_null_ratio.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "measurements",
            Json::Arr(
                results
                    .iter()
                    .map(|m| {
                        let mut fields = vec![
                            ("protocol", m.protocol.into()),
                            ("n", m.n.into()),
                            ("interactions_per_sample", m.interactions.into()),
                            ("scalar_interactions_per_sec", m.scalar_ips.into()),
                            ("batched_interactions_per_sec", m.batched_ips.into()),
                            ("speedup", m.speedup().into()),
                        ];
                        if let Some(mix) = m.dispatch_mix {
                            fields.extend([
                                ("mix_reset", mix[0].into()),
                                ("mix_both_elect", mix[1].into()),
                                ("mix_one_elect", mix[2].into()),
                                ("mix_main_main", mix[3].into()),
                            ]);
                        }
                        Json::obj(fields)
                    })
                    .collect(),
            ),
        ),
    ]);
    exp.write_json("BENCH_engine.json", payload);

    // Historical note: this ratio sat at ~2.5x while the scalar step
    // path cloned both states per transition; the copy-free scalar loop
    // tripled scalar epidemic throughput, so batched/scalar ~0.7-1.0x
    // on a trivial transition is expected now (batching pays a block
    // buffer round-trip that the inline sampler does not).
    if let Some(engine_bound) = results
        .iter()
        .find(|m| m.protocol == "epidemic" && m.n == 100_000)
    {
        exp.note(&format!(
            "engine-bound batched/scalar at n = 1e5: {:.2}x \
             (informational; both paths are copy-free since the kernel PR)",
            engine_bound.speedup()
        ));
    }

    // CI throughput smoke: the packed representation must not be slower
    // than the enum path, and the block kernel must hold its measured
    // position against the scalar packed loop — parity (within host
    // noise) on the churn-heavy transient, a clear win on the
    // converged/silent workload. The floors sit well below the
    // steady-state measurements (0.9x vs ~2x, 0.7x vs ~0.9x, 1.05x vs
    // ~1.3x) so shared-runner noise cannot flake the build; real
    // regressions are far below them.
    if exp.flag("smoke") {
        let floor: f64 = exp.get("floor", 0.9);
        let kernel_floor: f64 = exp.get("kernel_floor", 0.7);
        let silent_floor: f64 = exp.get("silent_floor", 1.05);
        let probe_floor: f64 = exp.get("probe_floor", 0.95);
        let mut ok = true;
        // The probe-seam guard: on at least one paired sample the
        // NullProbe path must reach probe_floor of the unprobed path
        // (tiny populations blur under measurement noise, so the gate
        // starts at n = 1e4 like the kernel floors below).
        for p in probe_rows.iter().filter(|p| p.n >= 10_000) {
            exp.note(&format!(
                "smoke n={}: best paired null-probe/unprobed ratio {:.3} (floor {probe_floor})",
                p.n, p.best_null_ratio
            ));
            if p.best_null_ratio < probe_floor {
                eprintln!(
                    "SMOKE FAILURE: NullProbe kernel path reached only {:.3}x the \
                     unprobed path at n={} across every paired sample \
                     (floor {probe_floor}) — the probe seam is no longer free",
                    p.best_null_ratio, p.n
                );
                ok = false;
            }
        }
        for &n in &sizes {
            let by = |name: &str| {
                results
                    .iter()
                    .find(|m| m.protocol == name && m.n == n)
                    .expect("measured above")
            };
            let enum_ips = by("stable_ranking").batched_ips;
            let packed_ips = by("stable_ranking_packed").batched_ips;
            let kernel_ips = by("stable_ranking_kernel").batched_ips;
            let ratio = packed_ips / enum_ips;
            exp.note(&format!(
                "smoke n={n}: packed/enum batched ratio {ratio:.2} (floor {floor})"
            ));
            if ratio < floor {
                eprintln!(
                    "SMOKE FAILURE: packed path is {ratio:.2}x the enum path at n={n} \
                     (floor {floor}) — the packed representation regressed"
                );
                ok = false;
            }
            // Tiny populations finish ranking mid-measurement and the
            // two regimes blur; gate the kernel floors from n = 1e4 up
            // where the mixes are stable.
            if n >= 10_000 {
                let kratio = kernel_ips / packed_ips;
                exp.note(&format!(
                    "smoke n={n}: kernel/scalar-packed batched ratio {kratio:.2} \
                     (floor {kernel_floor})"
                ));
                if kratio < kernel_floor {
                    eprintln!(
                        "SMOKE FAILURE: block kernel is {kratio:.2}x the scalar packed \
                         path at n={n} (floor {kernel_floor}) — the kernel regressed"
                    );
                    ok = false;
                }
                let silent_packed = by("stable_ranking_silent").batched_ips;
                let silent_kernel = by("stable_ranking_kernel_silent").batched_ips;
                let sratio = silent_kernel / silent_packed;
                exp.note(&format!(
                    "smoke n={n}: silent kernel/scalar-packed ratio {sratio:.2} \
                     (floor {silent_floor})"
                ));
                if sratio < silent_floor {
                    eprintln!(
                        "SMOKE FAILURE: block kernel is {sratio:.2}x the scalar packed \
                         path on the silent workload at n={n} (floor {silent_floor}) — \
                         the null fast path regressed"
                    );
                    ok = false;
                }
            }
        }
        if !ok {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
