//! Engine throughput: scalar stepping vs the batched hot path.
//!
//! Measures interactions/second of [`Simulator::step`] in a loop (the
//! reference execution path) against [`Simulator::run_batched`] (the
//! block-sampling hot path), over `n ∈ {10³, 10⁴, 10⁵}`, for an
//! engine-bound protocol (the one-way epidemic, whose transition is a
//! two-byte compare) and the paper's `StableRanking` (whose transition
//! dominates, bounding the achievable engine speedup). Both paths
//! execute the identical trajectory, so this is a pure engine
//! comparison.
//!
//! Writes `BENCH_engine.json` (override with `out=`) so later
//! performance work has a recorded trajectory to beat.
//!
//! Usage: `cargo run --release -p bench --bin engine_throughput --
//! [interactions=20000000] [samples=5] [out=BENCH_engine.json] [--csv]`

use bench::timing::time_runs;
use bench::{f3, Experiment, Json, Table};
use population::primitives::epidemic::Epidemic;
use population::{Protocol, Simulator};
use ranking::stable::StableRanking;
use ranking::Params;

struct Measurement {
    protocol: &'static str,
    n: usize,
    interactions: u64,
    scalar_ips: f64,
    batched_ips: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.batched_ips / self.scalar_ips
    }
}

fn measure<P, F>(
    name: &'static str,
    n: usize,
    interactions: u64,
    samples: usize,
    make: F,
) -> Measurement
where
    P: Protocol,
    F: Fn() -> (P, Vec<P::State>),
{
    let (protocol, init) = make();
    let mut sim = Simulator::new(protocol, init, 7);
    let scalar = time_runs(1, samples, || {
        for _ in 0..interactions {
            sim.step();
        }
    });

    let (protocol, init) = make();
    let mut sim = Simulator::new(protocol, init, 7);
    let batched = time_runs(1, samples, || {
        sim.run_batched(interactions);
    });

    Measurement {
        protocol: name,
        n,
        interactions,
        scalar_ips: scalar.per_second(interactions as f64),
        batched_ips: batched.per_second(interactions as f64),
    }
}

fn main() {
    let exp = Experiment::from_env("engine_throughput");
    let interactions: u64 = exp.get("interactions", 20_000_000);
    let samples: usize = exp.get("samples", 5);
    let sizes = [1_000usize, 10_000, 100_000];

    let mut results = Vec::new();
    for &n in &sizes {
        results.push(measure("epidemic", n, interactions, samples, || {
            let p = Epidemic::new(n);
            let init = p.initial(n);
            (p, init)
        }));
        // StableRanking transitions are ~10× heavier than the engine
        // overhead, so its speedup bounds what protocol-heavy workloads
        // see; fewer interactions keep the run short.
        results.push(measure(
            "stable_ranking",
            n,
            interactions / 4,
            samples,
            || {
                let p = StableRanking::new(Params::new(n));
                let init = p.initial();
                (p, init)
            },
        ));
    }

    let mut table = Table::new(
        format!("Engine throughput, median of {samples} runs"),
        &["protocol", "n", "scalar M/s", "batched M/s", "speedup"],
    );
    for m in &results {
        table.push(vec![
            m.protocol.to_string(),
            m.n.to_string(),
            f3(m.scalar_ips / 1e6),
            f3(m.batched_ips / 1e6),
            f3(m.speedup()),
        ]);
    }
    exp.emit(&table);

    let payload = Json::obj([
        ("samples", samples.into()),
        (
            "measurements",
            Json::Arr(
                results
                    .iter()
                    .map(|m| {
                        Json::obj([
                            ("protocol", m.protocol.into()),
                            ("n", m.n.into()),
                            ("interactions_per_sample", m.interactions.into()),
                            ("scalar_interactions_per_sec", m.scalar_ips.into()),
                            ("batched_interactions_per_sec", m.batched_ips.into()),
                            ("speedup", m.speedup().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    exp.write_json("BENCH_engine.json", payload);

    let engine_bound = results
        .iter()
        .find(|m| m.protocol == "epidemic" && m.n == 100_000)
        .expect("n=1e5 epidemic measured");
    exp.note(&format!(
        "engine-bound speedup at n = 1e5: {:.2}x (target: >= 1.5x)",
        engine_bound.speedup()
    ));
}
