//! E3/E4 — scaling-law fits for Theorems 1 and 2.
//!
//! Measures stabilization interactions across a geometric range of `n`
//! and fits `T = a·n^b`: both theorems predict `b ≈ 2` (up to the
//! `log n` factor, which pushes the fitted exponent slightly above 2),
//! in contrast to the Cai baseline's `b ≈ 3` (see `cai_scaling`).
//! Additionally reports `T/(n² log₂ n)`, which the theorems predict to
//! be roughly constant.
//!
//! Writes `BENCH_scaling.json` (override with `out=`) recording both
//! fits and the per-size rows, so exponent regressions are caught
//! automatically.
//!
//! Usage: `cargo run --release -p bench --bin scaling -- [sims=8]
//! [max_exp=8] [out=BENCH_scaling.json] [--csv]`

use analysis::fit::power_fit;
use bench::measure::{completed, ranking_times, summary};
use bench::{f3, Experiment, Json, Table};
use leader_election::tournament::TournamentLe;
use ranking::space_efficient::SpaceEfficientRanking;
use ranking::stable::StableRanking;
use ranking::Params;

fn main() {
    let exp = Experiment::from_env("scaling");
    let sims = exp.sims(8);
    let max_exp: u32 = exp.get("max_exp", 8);
    let sizes: Vec<usize> = (4..=max_exp).map(|e| 1usize << e).collect();

    let stable = run_fit(
        &exp,
        &format!("Theorem 2: StableRanking stabilization, unit n^2 log2 n ({sims} sims)"),
        &sizes,
        sims,
        |n, seed| {
            let protocol = StableRanking::new(Params::new(n));
            let init = protocol.adversarial_uniform(seed * 101 + 7);
            (protocol, init)
        },
    );

    let space_efficient = run_fit(
        &exp,
        &format!("Theorem 1: SpaceEfficientRanking, unit n^2 log2 n ({sims} sims)"),
        &sizes,
        sims,
        |n, _seed| {
            let protocol = SpaceEfficientRanking::new(&Params::new(n), TournamentLe::for_n(n));
            let init = protocol.initial();
            (protocol, init)
        },
    );

    let payload = Json::obj([
        ("sims", sims.into()),
        (
            "sizes",
            Json::Arr(sizes.iter().map(|&n| n.into()).collect()),
        ),
        ("stable_ranking", stable),
        ("space_efficient_ranking", space_efficient),
    ]);
    exp.write_json("BENCH_scaling.json", payload);
}

/// Measure, emit the table, and return the JSON section for this
/// protocol (rows + power fit).
fn run_fit<P, F>(exp: &Experiment, title: &str, sizes: &[usize], sims: u64, make: F) -> Json
where
    P: population::Protocol,
    P::State: population::RankOutput + Send,
    F: Fn(usize, u64) -> (P, Vec<P::State>) + Sync,
{
    let mut table = Table::new(title, &["n", "mean", "median", "completed"]);
    let mut points = Vec::new();
    for &n in sizes {
        let budget = (10_000.0 * (n * n) as f64 * (n as f64).log2()) as u64;
        let times = ranking_times(exp, sims, budget, n as u64, |seed| make(n, seed));
        let done = completed(&times);
        let norm = (n * n) as f64 * (n as f64).log2();
        // A size where no seed completed still gets a row — an all-"-"
        // line is the signal that a budget regression ate the point.
        match summary(&times) {
            Some(s) => {
                points.push((n as f64, s.mean));
                table.push(vec![
                    n.to_string(),
                    f3(s.mean / norm),
                    f3(s.median / norm),
                    format!("{}/{sims}", done.len()),
                ]);
            }
            None => table.push(vec![
                n.to_string(),
                "-".into(),
                "-".into(),
                format!("0/{sims}"),
            ]),
        }
    }
    exp.emit(&table);
    let fit = power_fit(&points);
    exp.note(&format!(
        "power fit: T ~ {:.2} * n^{:.3} (R^2 = {:.4}) — expected exponent ~2.1-2.5",
        fit.a, fit.b, fit.r_squared
    ));
    Json::obj([
        ("rows", Experiment::table_json(&table)),
        (
            "power_fit",
            Json::obj([
                ("a", fit.a.into()),
                ("b", fit.b.into()),
                ("r_squared", fit.r_squared.into()),
            ]),
        ),
    ])
}
