//! E3/E4 — scaling-law fits for Theorems 1 and 2.
//!
//! Measures stabilization interactions across a geometric range of `n`
//! and fits `T = a·n^b`: both theorems predict `b ≈ 2` (up to the
//! `log n` factor, which pushes the fitted exponent slightly above 2),
//! in contrast to the Cai baseline's `b ≈ 3` (see `cai_scaling`).
//! Additionally reports `T/(n² log₂ n)`, which the theorems predict to
//! be roughly constant.
//!
//! Usage: `cargo run --release -p bench --bin scaling -- [sims=8]
//! [max_exp=8]`

use analysis::fit::power_fit;
use analysis::stats::Summary;
use bench::{f3, print_table, Args};
use leader_election::tournament::TournamentLe;
use population::runner::run_seed_range;
use population::{is_valid_ranking, Simulator};
use ranking::space_efficient::SpaceEfficientRanking;
use ranking::stable::StableRanking;
use ranking::Params;

fn main() {
    let args = Args::from_env();
    let sims: u64 = args.get("sims", 8);
    let max_exp: u32 = args.get("max_exp", 8);

    let sizes: Vec<usize> = (4..=max_exp).map(|e| 1usize << e).collect();

    // ---- Theorem 2: StableRanking from adversarial configurations ----
    let mut rows = Vec::new();
    let mut pts_stable = Vec::new();
    for &n in &sizes {
        let times: Vec<f64> = run_seed_range(sims, |seed| {
            let protocol = StableRanking::new(Params::new(n));
            let init = protocol.adversarial_uniform(seed * 101 + 7);
            let mut sim = Simulator::new(protocol, init, seed);
            let budget = (10_000.0 * (n * n) as f64 * (n as f64).log2()) as u64;
            sim.run_until(is_valid_ranking, budget, n as u64)
                .converged_at()
                .map(|t| t as f64)
        })
        .into_iter()
        .flatten()
        .collect();
        let s = Summary::of(&times);
        pts_stable.push((n as f64, s.mean));
        rows.push(vec![
            n.to_string(),
            f3(s.mean / ((n * n) as f64 * (n as f64).log2())),
            f3(s.median / ((n * n) as f64 * (n as f64).log2())),
            format!("{}/{sims}", times.len()),
        ]);
    }
    print_table(
        &format!("Theorem 2: StableRanking stabilization, unit n^2 log2 n ({sims} sims)"),
        &["n", "mean", "median", "completed"],
        &rows,
    );
    let fit = power_fit(&pts_stable);
    println!(
        "power fit: T ~ {:.2} * n^{:.3} (R^2 = {:.4}) — expected exponent ~2.1-2.5",
        fit.a, fit.b, fit.r_squared
    );

    // ---- Theorem 1: SpaceEfficientRanking from the clean start ----
    let mut rows = Vec::new();
    let mut pts_se = Vec::new();
    for &n in &sizes {
        let times: Vec<f64> = run_seed_range(sims, |seed| {
            let protocol =
                SpaceEfficientRanking::new(&Params::new(n), TournamentLe::for_n(n));
            let init = protocol.initial();
            let mut sim = Simulator::new(protocol, init, seed);
            let budget = (10_000.0 * (n * n) as f64 * (n as f64).log2()) as u64;
            sim.run_until(is_valid_ranking, budget, n as u64)
                .converged_at()
                .map(|t| t as f64)
        })
        .into_iter()
        .flatten()
        .collect();
        let s = Summary::of(&times);
        pts_se.push((n as f64, s.mean));
        rows.push(vec![
            n.to_string(),
            f3(s.mean / ((n * n) as f64 * (n as f64).log2())),
            f3(s.median / ((n * n) as f64 * (n as f64).log2())),
            format!("{}/{sims}", times.len()),
        ]);
    }
    print_table(
        &format!("Theorem 1: SpaceEfficientRanking, unit n^2 log2 n ({sims} sims)"),
        &["n", "mean", "median", "completed"],
        &rows,
    );
    let fit = power_fit(&pts_se);
    println!(
        "power fit: T ~ {:.2} * n^{:.3} (R^2 = {:.4}) — expected exponent ~2.1-2.5",
        fit.a, fit.b, fit.r_squared
    );
}
