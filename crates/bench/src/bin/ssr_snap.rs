//! `ssr-snap`: inspect, verify, and deliberately damage snapshot files.
//!
//! Three modes over the `SSRSNAP` format (see `docs/DURABILITY.md`):
//!
//! * **inspect** (default) — decode a snapshot and print its metadata,
//!   frame geometry, fault state, and provenance;
//! * **`--verify`** — exit 0 iff a usable snapshot exists: for `path=`,
//!   that one file; for `dir=`, the rotation's fallback ladder (newest
//!   valid wins, corrupt generations are reported and skipped — a
//!   directory with one torn file and one good one still verifies);
//! * **`--inject`** — damage a snapshot the way real failures do
//!   (`kind=` torn | bitflip | crc_flip | stale_version), for testing
//!   the ladder. The CI corruption smoke is: inject the newest
//!   generation, then `--verify` must still exit 0 via fallback.
//!
//! Usage: `cargo run --release -p bench --bin ssr-snap --
//! [path=FILE.ssr | dir=CKPT_DIR] [--verify] [--inject kind=torn]`

use std::path::{Path, PathBuf};

use bench::Args;
use snapshot::{Rotation, SimSnapshot};

fn die(msg: &str) -> ! {
    eprintln!("ssr-snap: {msg}");
    std::process::exit(1)
}

/// Resolve the target file: `path=` wins; `dir=` means the newest
/// snapshot file in the rotation (by name — validity is the caller's
/// question to ask).
fn target_file(args: &Args) -> PathBuf {
    if let Some(path) = args.get_str("path") {
        return PathBuf::from(path);
    }
    if let Some(dir) = args.get_str("dir") {
        let rotation =
            Rotation::open(dir).unwrap_or_else(|e| die(&format!("cannot open {dir}: {e}")));
        return rotation
            .files()
            .pop()
            .unwrap_or_else(|| die(&format!("no snapshot files in {dir}")));
    }
    die("need path=FILE.ssr or dir=CKPT_DIR");
}

/// Render the inspect report as one string, printed with a single
/// write whose failure is ignored — `ssr-snap dir=… | head` must not
/// panic on the broken pipe.
fn inspect(path: &Path, snap: &SimSnapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "{}", path.display());
    let _ = writeln!(w, "  label        {}", snap.meta.label);
    let _ = writeln!(w, "  seed         {}", snap.meta.seed);
    let f = &snap.frame;
    let _ = writeln!(w, "  interactions {}", f.interactions);
    let _ = writeln!(
        w,
        "  frame        n={} shards={} block_pairs={}",
        f.words.len(),
        f.shards,
        f.block_pairs
    );
    for (i, c) in f.cursors.iter().enumerate() {
        let _ = writeln!(
            w,
            "  cursor[{i}]    lane {}..{} of n={}, {} pending pair(s)",
            c.start,
            c.start + c.len,
            c.n,
            c.pending.len()
        );
    }
    match &snap.fault {
        Some(fs) => {
            let _ = writeln!(
                w,
                "  fault        {} entr(ies), {} fired",
                fs.next.len(),
                fs.fired.len()
            );
        }
        None => {
            let _ = writeln!(w, "  fault        none");
        }
    }
    if !snap.observer.is_empty() {
        let _ = writeln!(w, "  observer     {} byte(s)", snap.observer.len());
    }
    for (k, v) in &snap.meta.provenance {
        let _ = writeln!(w, "  {k:12} {v}");
    }
    out
}

/// `--verify` over a rotation directory: walk the fallback ladder.
/// Exit 0 iff *some* generation loads.
fn verify_dir(dir: &str) -> ! {
    let rotation = Rotation::open(dir).unwrap_or_else(|e| die(&format!("cannot open {dir}: {e}")));
    match rotation.latest_valid() {
        Some(loaded) => {
            for (path, err) in &loaded.skipped {
                println!("SKIP {}: {err}", path.display());
            }
            println!(
                "OK   {} (t={})",
                loaded.path.display(),
                loaded.snapshot.frame.interactions
            );
            std::process::exit(0)
        }
        None => {
            eprintln!("ssr-snap: no valid snapshot in {dir}");
            std::process::exit(1)
        }
    }
}

fn main() {
    let args = Args::from_env();

    if args.flag("inject") {
        let kind = args.get_str("kind").unwrap_or_else(|| {
            die("--inject needs kind= (torn | bitflip | crc_flip | stale_version)")
        });
        if !snapshot::inject::KINDS.contains(&kind) {
            die(&format!(
                "unknown kind {kind:?} (expected one of {:?})",
                snapshot::inject::KINDS
            ));
        }
        let path = target_file(&args);
        let what = snapshot::inject(&path, kind)
            .unwrap_or_else(|e| die(&format!("cannot inject into {}: {e}", path.display())));
        println!("{}: {what}", path.display());
        return;
    }

    if args.flag("verify") {
        if let Some(path) = args.get_str("path") {
            match SimSnapshot::read(Path::new(path)) {
                Ok(snap) => {
                    println!("OK   {path} (t={})", snap.frame.interactions);
                    std::process::exit(0)
                }
                Err(e) => {
                    eprintln!("ssr-snap: {path}: {e}");
                    std::process::exit(1)
                }
            }
        }
        if let Some(dir) = args.get_str("dir") {
            verify_dir(dir);
        }
        die("--verify needs path=FILE.ssr or dir=CKPT_DIR");
    }

    // Default: inspect.
    let path = target_file(&args);
    match SimSnapshot::read(&path) {
        Ok(snap) => {
            use std::io::Write;
            let _ = std::io::stdout().write_all(inspect(&path, &snap).as_bytes());
        }
        Err(e) => die(&format!("{}: {e}", path.display())),
    }
}
