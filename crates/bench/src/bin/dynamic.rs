//! E14 — dynamic-population benchmark: ranking quality under churn.
//!
//! Two experiments over the `DynamicPopulation` engine
//! (see `docs/DYNAMICS.md`):
//!
//! 1. **Steady state**: for each arrival rate λ (joins per 10⁶
//!    interactions), run an M/M/∞ churn process whose mean lifetime is
//!    chosen so the equilibrium population sits at the starting `n`
//!    (`lifetime = n·10⁶/λ`), warm up past stabilization, then sample
//!    the fraction of live agents holding a valid (in-range, distinct)
//!    rank. The curve of that fraction against the normalized churn
//!    rate λ/n is the headline: with rank leasing, departures hand
//!    their ranks to arrivals and validity stays near 1 until churn
//!    outpaces repair.
//!
//! 2. **Churn-burst re-stabilization lag**: converge a quiescent run,
//!    then replace a fraction of the population at once
//!    (`inject_burst`) and measure interactions until every live agent
//!    is validly ranked again — once with rank leasing (arrivals adopt
//!    the freed ranks; the lag collapses) and once without (arrivals
//!    are fresh electors whose presence forces detection → reset →
//!    full re-ranking; the lag is a whole stabilization).
//!
//! `--smoke` runs the CI gate instead: zero-churn bit-equivalence
//! against the fixed-n engine on all three execution shapes,
//! bit-identical rerun determinism under churn, and a steady-state
//! validity floor at modest λ. Any failure exits nonzero.
//!
//! Writes `BENCH_dyn.json` (override with `out=`).
//!
//! Usage: `cargo run --release -p bench --bin dynamic --
//! [n=64] [lambdas=0,25,50,100,200,400] [burst_frac=0.25] [seed=1]
//! [--smoke] [--csv]`

use bench::{f3, Experiment, Json, Table};
use dynamic::{ChurnConfig, DynamicPopulation};
use population::{Packed, ScalarBlock, Simulator};
use ranking::stable::StableRanking;
use ranking::Params;

/// Warmup horizon: clean-start stabilization reaches ~90% ranked by
/// 7·n² (BENCH_fig2) but the last stragglers take much longer — 120·n²
/// puts the zero-churn baseline at full validity before sampling
/// starts.
const WARMUP_N2: u64 = 120;

/// Steady-state sampling: this many samples, one per n² interactions.
const SAMPLES: u64 = 32;

fn die(msg: &str) -> ! {
    eprintln!("dynamic: {msg}");
    std::process::exit(1)
}

/// The churn config for arrival rate `lambda` with the equilibrium
/// population pinned at `n` (M/M/∞: live ≈ λ·lifetime).
fn config_for(n: usize, lambda: f64) -> ChurnConfig {
    if lambda > 0.0 {
        ChurnConfig::poisson(lambda, n as f64 * 1.0e6 / lambda)
    } else {
        ChurnConfig::quiescent()
    }
}

struct SteadyPoint {
    valid_mean: f64,
    valid_min: f64,
    live_mean: f64,
    joins: u64,
    leaves: u64,
    epochs: u64,
}

/// One steady-state measurement at arrival rate `lambda`.
fn steady_state(n: usize, lambda: f64, seed: u64) -> SteadyPoint {
    let mut engine =
        DynamicPopulation::<StableRanking>::new(Params::new(n), config_for(n, lambda), seed);
    let n2 = (n * n) as u64;
    engine.run(WARMUP_N2 * n2);
    let (mut valid_sum, mut valid_min, mut live_sum) = (0.0, 1.0f64, 0u64);
    for _ in 0..SAMPLES {
        engine.run(n2);
        let v = engine.fraction_valid();
        valid_sum += v;
        valid_min = valid_min.min(v);
        live_sum += engine.live() as u64;
    }
    let metrics = engine.metrics().snapshot();
    let counter = |name: &str| metrics.counter(name).unwrap_or(0);
    SteadyPoint {
        valid_mean: valid_sum / SAMPLES as f64,
        valid_min,
        live_mean: live_sum as f64 / SAMPLES as f64,
        joins: counter("dyn_joins"),
        leaves: counter("dyn_leaves"),
        epochs: counter("dyn_epochs"),
    }
}

/// Converge a quiescent run, hit it with a burst replacing
/// `burst_frac` of the population, and count interactions until fully
/// valid again. `None` = not recovered within the budget.
fn burst_lag(n: usize, burst_frac: f64, lease: bool, seed: u64) -> Option<u64> {
    let mut config = ChurnConfig::quiescent();
    config.rank_lease = lease;
    let mut engine = DynamicPopulation::<StableRanking>::new(Params::new(n), config, seed);
    let n2 = (n * n) as u64;
    let budget = 400 * n2;
    while engine.fraction_valid() < 1.0 {
        if engine.interactions() > budget {
            die("quiescent run failed to stabilize inside the budget");
        }
        engine.run(n2);
    }
    let k = ((n as f64 * burst_frac) as usize).max(1);
    engine.inject_burst(k, k);
    let start = engine.interactions();
    while engine.fraction_valid() < 1.0 {
        if engine.interactions() - start > budget {
            return None;
        }
        engine.run((n2 / 16).max(1));
    }
    Some(engine.interactions() - start)
}

/// The CI gate (`--smoke`): cheap, deterministic, loud on failure.
fn smoke(exp: &Experiment) {
    let n = 32;
    let seed = 7;
    let steps = 50_000;

    // Gate 1: zero-churn runs are bit-for-bit the fixed-n engine, on
    // all three execution shapes.
    let params = || Params::new(n);
    let quiet = ChurnConfig::quiescent;
    {
        let mut d = DynamicPopulation::<StableRanking>::new(params(), quiet(), seed);
        let p = StableRanking::new(params());
        let mut s = Simulator::new(p.clone(), p.initial(), seed);
        d.run(steps);
        s.run_batched(steps);
        if d.states() != s.states() {
            die("smoke: zero-churn enum trajectory diverged from Simulator");
        }
    }
    {
        let mut d =
            DynamicPopulation::<ScalarBlock<Packed<StableRanking>>>::new(params(), quiet(), seed);
        let p = ScalarBlock(Packed(StableRanking::new(params())));
        let init = p.0.pack_all(&p.0.inner().initial());
        let mut s = Simulator::new(p, init, seed);
        d.run(steps);
        s.run_batched(steps);
        if d.states() != s.states() {
            die("smoke: zero-churn packed-scalar trajectory diverged from Simulator");
        }
    }
    {
        let mut d = DynamicPopulation::<Packed<StableRanking>>::new(params(), quiet(), seed);
        let p = Packed(StableRanking::new(params()));
        let init = p.pack_all(&p.inner().initial());
        let mut s = Simulator::new(p, init, seed);
        d.run(steps);
        s.run_batched(steps);
        if d.states() != s.states() {
            die("smoke: zero-churn kernel trajectory diverged from Simulator");
        }
    }
    exp.note("smoke: zero-churn equivalence holds on enum, packed-scalar, and kernel");

    // Gate 2: a churning run is a pure function of the seed.
    let churny = || {
        let mut e = DynamicPopulation::<StableRanking>::new(
            params(),
            ChurnConfig::poisson(200.0, n as f64 * 1.0e6 / 200.0),
            seed,
        );
        e.run(100_000);
        e
    };
    let (a, b) = (churny(), churny());
    if a.states() != b.states() || a.ids() != b.ids() || a.interactions() != b.interactions() {
        die("smoke: churn rerun was not bit-identical");
    }
    exp.note("smoke: churn rerun is bit-identical");

    // Gate 3: steady-state validity floor at modest churn. The run is
    // deterministic at this (n, λ, seed) — measured 0.969; the 0.7
    // floor leaves a wide margin while still catching any regression
    // that breaks rank leasing or epoch handoff.
    let point = steady_state(n, 25.0, seed);
    if point.valid_mean < 0.7 {
        die(&format!(
            "smoke: steady-state validity {:.3} under λ=25 fell below the 0.7 floor",
            point.valid_mean
        ));
    }
    exp.note(&format!(
        "smoke: steady-state validity {:.3} at λ=25 (floor 0.7), live mean {:.1}",
        point.valid_mean, point.live_mean
    ));
    println!("dynamic smoke: all gates green");
}

fn main() {
    let exp = Experiment::from_env("dynamic");
    if exp.flag("smoke") {
        smoke(&exp);
        return;
    }

    let n: usize = exp.get("n", 64);
    let seed: u64 = exp.get("seed", 1);
    let burst_frac: f64 = exp.get("burst_frac", 0.25);
    let lambdas: Vec<f64> = exp
        .args()
        .get_str("lambdas")
        .unwrap_or("0,25,50,100,200,400")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    if lambdas.is_empty() {
        die("lambdas= parsed to an empty list");
    }

    // Experiment 1: steady-state validity vs normalized churn rate.
    let mut table = Table::new(
        format!("Steady-state ranking validity under churn (n={n}, window {SAMPLES}·n²)"),
        &[
            "λ (/1e6)",
            "λ/n (/1e6)",
            "valid mean",
            "valid min",
            "live mean",
            "joins",
            "leaves",
            "epochs",
        ],
    );
    let mut steady = Vec::new();
    for &lambda in &lambdas {
        let p = steady_state(n, lambda, seed);
        table.push(vec![
            format!("{lambda}"),
            f3(lambda / n as f64),
            f3(p.valid_mean),
            f3(p.valid_min),
            format!("{:.1}", p.live_mean),
            p.joins.to_string(),
            p.leaves.to_string(),
            p.epochs.to_string(),
        ]);
        steady.push(Json::obj([
            ("lambda_per_million", lambda.into()),
            ("lambda_over_n", (lambda / n as f64).into()),
            ("valid_mean", p.valid_mean.into()),
            ("valid_min", p.valid_min.into()),
            ("live_mean", p.live_mean.into()),
            ("joins", p.joins.into()),
            ("leaves", p.leaves.into()),
            ("epochs", p.epochs.into()),
        ]));
    }
    exp.emit(&table);

    // Experiment 2: burst re-stabilization lag, lease on vs off.
    let mut burst_table = Table::new(
        format!(
            "Re-stabilization lag after a churn burst replacing {:.0}% of n={n}",
            burst_frac * 100.0
        ),
        &["rank lease", "lag (interactions)", "lag / n²"],
    );
    let mut burst = Vec::new();
    for lease in [true, false] {
        let lag = burst_lag(n, burst_frac, lease, seed);
        let n2 = (n * n) as f64;
        burst_table.push(vec![
            lease.to_string(),
            lag.map_or("unrecovered".into(), |l| l.to_string()),
            lag.map_or("-".into(), |l| f3(l as f64 / n2)),
        ]);
        burst.push(Json::obj([
            ("rank_lease", lease.into()),
            ("lag", lag.map_or(Json::Null, Json::from)),
            (
                "lag_over_n2",
                lag.map_or(Json::Null, |l| (l as f64 / n2).into()),
            ),
        ]));
    }
    exp.emit(&burst_table);

    let payload = Json::obj([
        ("n", n.into()),
        ("seed", seed.into()),
        ("warmup_n2", WARMUP_N2.into()),
        ("samples", SAMPLES.into()),
        ("burst_frac", burst_frac.into()),
        ("steady_state", Json::Arr(steady)),
        ("burst", Json::Arr(burst)),
    ]);
    exp.write_json("BENCH_dyn.json", payload);
    exp.note(
        "\nexpected shape: with rank leasing, validity stays near 1.0 until the \
         arrival gap approaches the repair time, and a lease-on burst repairs in \
         ~0 interactions while a lease-off burst pays a full detection → reset → \
         re-ranking cycle.",
    );
}
