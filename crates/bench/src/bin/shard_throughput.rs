//! Sharded-engine throughput: the `shard` crate's partitioned
//! single-run simulator vs the sequential packed batched path.
//!
//! For every `(n, shards)` point in the `sizes=` × `shards=` sweep the
//! single-thread baseline (`Simulator::run_batched` over
//! `Packed<StableRanking>` words) and the sharded engine (at `workers=`
//! threads, defaulting to the machine parallelism capped at the shard
//! count) are sampled back to back, alternating, so clock-speed drift
//! on shared machines cancels out of the speedup column. All
//! configurations execute the paper protocol from its clean start.
//!
//! Wall-clock speedup needs real cores: the JSON artifact records
//! `cores` (honoring `SSR_WORKERS`) next to every row, so a sweep taken
//! on a single-core box — where every sharded row runs inline and
//! measures pure partitioning overhead plus locality effects — is not
//! mistaken for a parallel measurement. On a multi-core machine the
//! intra phase scales with the worker count and the exchange rounds at
//! `shards/2`-way parallelism; ≥ 2× over the sequential baseline is the
//! expectation from 4 shards up.
//!
//! `--smoke` (the CI step) additionally asserts, at the first
//! configured `(n, shards)` point: (a) the best *paired*
//! sharded/batched ratio — adjacent samples, so shared-runner CPU-steal
//! spikes cancel while a real regression degrades every pair — is at
//! least `floor=` (default 0.9 with > 1 core; 0.6 on a single core,
//! where inline boundary-pair deferral legitimately costs ~20–25%); and
//! (b) two identical sharded runs produce bit-for-bit identical final
//! configurations (the determinism contract). When `shards=` is
//! omitted the sweep honors the `SSR_SHARDS` environment override
//! (mirroring `SSR_WORKERS`), so CI pins the partition without CLI
//! plumbing.
//!
//! Writes `BENCH_shard.json` (override with `out=`).
//!
//! Usage: `cargo run --release -p bench --bin shard_throughput --
//! [interactions=20000000] [samples=3] [sizes=10000,100000,1000000]
//! [shards=1,2,4,8] [workers=N] [floor=0.9] [out=BENCH_shard.json]
//! [--smoke] [--csv]`

use std::process::ExitCode;
use std::time::Instant;

use bench::{f3, Experiment, Json, Table};
use population::{Packed, Simulator};
use ranking::stable::{PackedState, StableRanking};
use ranking::Params;
use shard::ShardedSimulator;

fn packed(n: usize) -> (Packed<StableRanking>, Vec<PackedState>) {
    let p = Packed(StableRanking::new(Params::new(n)));
    let init = p.pack_all(&p.inner().initial());
    (p, init)
}

/// Measure one `(n, shards)` point with the baseline and the sharded
/// engine sampled back to back, alternating, and the medians taken per
/// engine. On shared machines the clock speed drifts on the scale of a
/// whole sweep; interleaving makes every ratio compare samples taken
/// milliseconds apart, so drift cancels out of the speedup column.
fn measure_pair(
    n: usize,
    shards: usize,
    workers: Option<usize>,
    interactions: u64,
    samples: usize,
) -> Measurement {
    let (protocol, init) = packed(n);
    let mut baseline = Simulator::new(protocol, init, 7);
    let (protocol, init) = packed(n);
    let mut sharded = ShardedSimulator::new(protocol, init, 7, shards);
    if let Some(w) = workers {
        sharded = sharded.with_workers(w);
    }
    let effective = sharded.workers();
    // Warm-up both engines (page in the lanes, settle frequency).
    baseline.run_batched(interactions);
    sharded.run(interactions);
    let mut base_s = Vec::with_capacity(samples);
    let mut shard_s = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        baseline.run_batched(interactions);
        base_s.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        sharded.run(interactions);
        shard_s.push(t0.elapsed().as_secs_f64());
    }
    // Best paired ratio: each sample pair ran milliseconds apart, so a
    // CPU-steal spike hits at most a few pairs — a real regression
    // degrades *every* pair. The smoke gates on this (flake-resistant);
    // the table reports the medians.
    let best_ratio = base_s
        .iter()
        .zip(&shard_s)
        .map(|(b, s)| b / s)
        .fold(f64::MIN, f64::max);
    base_s.sort_by(f64::total_cmp);
    shard_s.sort_by(f64::total_cmp);
    let per_sec = |s: &[f64]| interactions as f64 / s[s.len() / 2];
    Measurement {
        baseline: per_sec(&base_s),
        sharded: per_sec(&shard_s),
        best_ratio,
        workers: effective,
    }
}

struct Measurement {
    baseline: f64,
    sharded: f64,
    best_ratio: f64,
    workers: usize,
}

/// Final configuration of a fresh sharded run — the determinism probe.
fn sharded_final(n: usize, shards: usize, interactions: u64) -> Vec<PackedState> {
    let (protocol, init) = packed(n);
    let mut sim = ShardedSimulator::new(protocol, init, 7, shards);
    sim.run(interactions);
    sim.into_states()
}

struct Row {
    n: usize,
    shards: usize,
    workers: usize,
    baseline: f64,
    sharded: f64,
    best_ratio: f64,
}

fn main() -> ExitCode {
    let exp = Experiment::from_env("shard_throughput");
    let interactions: u64 = exp.get("interactions", 20_000_000);
    let samples: usize = exp.get("samples", 3);
    let workers: Option<usize> = exp
        .args()
        .get_str("workers")
        .map(|w| w.parse().expect("workers= must be a positive integer"));
    let sizes: Vec<usize> = exp
        .args()
        .get_str("sizes")
        .unwrap_or("10000,100000,1000000")
        .split(',')
        .map(|s| s.trim().parse().expect("sizes= must be integers"))
        .collect();
    let shard_counts: Vec<usize> = match exp.args().get_str("shards") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("shards= must be integers"))
            .collect(),
        // No explicit sweep: honor the SSR_SHARDS override (mirroring
        // SSR_WORKERS), falling back to the default ladder.
        None if std::env::var("SSR_SHARDS").is_ok() => vec![shard::default_shards().get()],
        None => vec![1, 2, 4, 8],
    };
    let cores = population::runner::available_workers().get();

    let mut rows = Vec::new();
    for &n in &sizes {
        for &shards in &shard_counts {
            assert!(shards <= n, "shards={shards} exceeds n={n}");
            let m = measure_pair(n, shards, workers, interactions, samples);
            rows.push(Row {
                n,
                shards,
                workers: m.workers,
                baseline: m.baseline,
                sharded: m.sharded,
                best_ratio: m.best_ratio,
            });
        }
    }

    let mut table = Table::new(
        format!(
            "Sharded vs sequential packed throughput, median of {samples} runs ({cores} core(s))"
        ),
        &[
            "n",
            "shards",
            "workers",
            "batched M/s",
            "sharded M/s",
            "speedup",
        ],
    );
    for r in &rows {
        table.push(vec![
            r.n.to_string(),
            r.shards.to_string(),
            r.workers.to_string(),
            f3(r.baseline / 1e6),
            f3(r.sharded / 1e6),
            f3(r.sharded / r.baseline),
        ]);
    }
    exp.emit(&table);

    let payload = Json::obj([
        ("cores", cores.into()),
        ("samples", samples.into()),
        ("interactions_per_sample", interactions.into()),
        (
            "measurements",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("n", r.n.into()),
                            ("shards", r.shards.into()),
                            ("workers", r.workers.into()),
                            ("batched_interactions_per_sec", r.baseline.into()),
                            ("sharded_interactions_per_sec", r.sharded.into()),
                            ("speedup", (r.sharded / r.baseline).into()),
                            ("best_paired_ratio", r.best_ratio.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    exp.write_json("BENCH_shard.json", payload);
    if cores == 1 {
        exp.note(
            "\nnote: single-core environment — every sharded row ran inline \
             (workers = 1), so speedups measure partitioning overhead and \
             locality only, not parallel scaling.",
        );
    }

    if exp.flag("smoke") {
        // With real cores the sharded engine must not lose throughput
        // (0.9 floor). A single-core machine runs inline, where the
        // boundary-pair deferral legitimately costs ~20–25% — the floor
        // there bounds that overhead instead (0.6).
        let floor: f64 = exp.get("floor", if cores > 1 { 0.9 } else { 0.6 });
        // Gate on the highest shard count measured: a shards = 1 row
        // never runs boundary pairs or exchange rounds, so it cannot
        // protect the code paths the smoke exists for.
        let r = rows
            .iter()
            .max_by_key(|r| r.shards)
            .expect("at least one configuration");
        // Gate on the best paired ratio (see `measure_pair`): robust to
        // CPU-steal spikes on shared runners, while a real regression
        // degrades every pair and still trips the floor.
        let ratio = r.best_ratio;
        exp.note(&format!(
            "smoke n={} shards={}: best paired sharded/batched ratio {ratio:.2} (floor {floor})",
            r.n, r.shards
        ));
        if ratio < floor {
            eprintln!(
                "SMOKE FAILURE: sharded engine is {ratio:.2}x the sequential baseline \
                 at n={} shards={} (floor {floor})",
                r.n, r.shards
            );
            return ExitCode::FAILURE;
        }
        // Determinism across two identical runs (fixed seed + shards).
        let probe = interactions.min(2_000_000);
        let first = sharded_final(r.n, r.shards, probe);
        let second = sharded_final(r.n, r.shards, probe);
        if first != second {
            eprintln!(
                "SMOKE FAILURE: two identical sharded runs diverged at n={} shards={}",
                r.n, r.shards
            );
            return ExitCode::FAILURE;
        }
        exp.note(&format!(
            "smoke n={} shards={}: determinism OK ({} interactions, bit-identical reruns)",
            r.n, r.shards, probe
        ));
    }
    ExitCode::SUCCESS
}
