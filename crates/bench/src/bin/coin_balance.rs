//! E9 — Lemma 28: synthetic-coin balance after warm-up.
//!
//! All coins start at tails (the adversarial extreme). Lemma 28: after
//! `t ≥ n·log(4·log n)/2` interactions the number of zeros lies in
//! `(1 ± 1/(4 log n))·n/2` w.h.p.
//!
//! Starting from all-tails, an agent's coin is heads iff it was responder
//! an odd number of times, so `E[#heads] = (1 − e^{−2t/n})·n/2`: the
//! *bias* term `e^{−2t/n}·n/2` decays with the warm-up length, while the
//! random fluctuation is `Θ(√n)`. Reading the lemma's `log` as `log₂`
//! makes the bias comfortably smaller than the band; with natural logs
//! the bias sits exactly at the band edge — we report both horizons
//! (`t₀ = n·log₂(4·log₂ n)/2` and `4t₀`) to make the effect visible.
//!
//! Usage: `cargo run --release -p bench --bin coin_balance -- [sims=50]
//! [--csv]`

use analysis::stats::Summary;
use bench::{f3, Experiment, Table};
use population::primitives::coin::CoinPopulation;
use population::Simulator;

fn measure(exp: &Experiment, n: usize, warmup: u64, sims: u64, band: f64) -> (Summary, usize) {
    let (devs, inside): (Vec<f64>, Vec<bool>) = exp
        .run_seeds(sims, |seed| {
            let protocol = CoinPopulation::new(n);
            let init = protocol.all_tails();
            let mut sim = Simulator::new(protocol, init, seed);
            sim.run(warmup);
            let heads = CoinPopulation::heads_count(sim.states()) as f64;
            let dev = (heads - n as f64 / 2.0).abs();
            (dev, dev <= band)
        })
        .into_iter()
        .unzip();
    (Summary::of(&devs), inside.iter().filter(|b| **b).count())
}

fn main() {
    let exp = Experiment::from_env("coin_balance");
    let sims = exp.sims(50);

    let mut table = Table::new(
        format!("Lemma 28: coin deviation from n/2 (all-tails start, {sims} sims)"),
        &[
            "n",
            "horizon",
            "t",
            "band n/(8 ln n)",
            "residual bias",
            "mean |dev|",
            "max |dev|",
            "within band",
        ],
    );
    for n in [256usize, 1024, 4096, 16384] {
        let log2n = (n as f64).log2();
        let t0 = ((n as f64) * (4.0 * log2n).log2() / 2.0).ceil() as u64;
        let band = (n as f64) / 2.0 / (4.0 * (n as f64).ln());
        for (label, warmup) in [("t0", t0), ("4*t0", 4 * t0)] {
            let (s, in_band) = measure(&exp, n, warmup, sims, band);
            let bias = (-2.0 * warmup as f64 / n as f64).exp() * n as f64 / 2.0;
            table.push(vec![
                n.to_string(),
                label.to_string(),
                warmup.to_string(),
                f3(band),
                f3(bias),
                f3(s.mean),
                f3(s.max),
                format!("{in_band}/{sims}"),
            ]);
        }
    }

    exp.emit(&table);
    exp.note(
        "\nexpected shape: the residual bias e^(-2t/n)*n/2 shrinks with the \
         warm-up while the sqrt(n) fluctuation stays; at 4*t0 the bias is \
         negligible and the in-band fraction approaches 1 for large n \
         (band/sqrt(n) grows). The protocol's dormancy period D_max = \
         Theta(log n) per agent corresponds to the 4*t0 regime.",
    );
}
