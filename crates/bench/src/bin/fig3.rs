//! E2 — Figure 3: interactions (normalized by n²) to rank constant
//! fractions of the population.
//!
//! Initialization per the paper's caption: one agent holds rank 1 (the
//! unaware leader), all others are still in a leader-election state.
//! For each `n ∈ {2⁷, …}` we record when `c·n` agents are ranked for
//! `c ∈ {1/2, 3/4, 7/8, 15/16}`. The paper runs 100 simulations per `n`
//! up to `n = 2¹³`; the default here is 25 simulations up to `n = 2¹⁰`
//! (pass `--full` for the paper-scale sweep).
//!
//! Expected shape: after `Θ(n²)` interactions constant fractions are
//! ranked (normalized values roughly flat in `n`), with successive
//! fractions spaced like a coupon collector — ranking the next half of
//! the remainder costs about as much as everything before it.
//!
//! Usage: `cargo run --release -p bench --bin fig3 -- [sims=25] [--full]
//! [--csv]`

use analysis::stats::Summary;
use bench::{f3, print_csv, print_table, Args};
use population::runner::run_seed_range;
use population::{ranked_count, Simulator};
use ranking::stable::StableRanking;
use ranking::Params;

const FRACTIONS: [(u64, u64, &str); 4] = [
    (1, 2, "1/2"),
    (3, 4, "3/4"),
    (7, 8, "7/8"),
    (15, 16, "15/16"),
];

fn main() {
    let args = Args::from_env();
    let full = args.flag("full");
    let sims: u64 = args.get("sims", if full { 100 } else { 25 });
    let max_exp: u32 = args.get("max_exp", if full { 13 } else { 10 });
    let min_exp: u32 = args.get("min_exp", 7);

    let mut rows = Vec::new();
    for exp in min_exp..=max_exp {
        let n = 1usize << exp;
        let thresholds: Vec<u64> = FRACTIONS
            .iter()
            .map(|(num, den, _)| (n as u64) * num / den)
            .collect();

        // Each simulation returns the crossing time (interactions) for
        // each fraction, or None if the budget ran out (e.g. a rare
        // reset).
        let results = run_seed_range(sims, |seed| {
            let protocol = StableRanking::new(Params::new(n));
            let init = protocol.figure3();
            let mut sim = Simulator::new(protocol, init, seed);
            let budget = 60 * (n as u64) * (n as u64);
            let mut crossings: Vec<Option<u64>> = vec![None; thresholds.len()];
            let check = (n as u64).max(64);
            while sim.interactions() < budget {
                sim.run(check);
                let ranked = ranked_count(sim.states()) as u64;
                for (i, &th) in thresholds.iter().enumerate() {
                    if crossings[i].is_none() && ranked >= th {
                        crossings[i] = Some(sim.interactions());
                    }
                }
                if crossings.iter().all(|c| c.is_some()) {
                    break;
                }
            }
            crossings
        });

        for (i, (_, _, label)) in FRACTIONS.iter().enumerate() {
            let times: Vec<f64> = results
                .iter()
                .filter_map(|r| r[i])
                .map(|t| t as f64 / (n * n) as f64)
                .collect();
            if times.is_empty() {
                continue;
            }
            let s = Summary::of(&times);
            rows.push(vec![
                n.to_string(),
                (*label).to_string(),
                f3(s.mean),
                f3(s.median),
                f3(s.min),
                f3(s.max),
                format!("{}/{}", times.len(), sims),
            ]);
        }
    }

    let headers = [
        "n",
        "fraction",
        "mean t/n^2",
        "median",
        "min",
        "max",
        "completed",
    ];
    if args.flag("csv") {
        print_csv(&headers, &rows);
    } else {
        print_table(
            &format!("Figure 3: interactions/n^2 to rank c*n agents ({sims} sims)"),
            &headers,
            &rows,
        );
        println!(
            "\nexpected shape (paper): values roughly flat in n per fraction; \
             1/2 around 2-4, 15/16 around 6-10, successive fractions roughly \
             equally spaced (coupon-collector behaviour)."
        );
    }
}
