//! E2 — Figure 3: interactions (normalized by n²) to rank constant
//! fractions of the population.
//!
//! Initialization per the paper's caption: one agent holds rank 1 (the
//! unaware leader), all others are still in a leader-election state.
//! For each `n ∈ {2⁷, …}` we record when `c·n` agents are ranked for
//! `c ∈ {1/2, 3/4, 7/8, 15/16}`. The paper runs 100 simulations per `n`
//! up to `n = 2¹³`; the default here is 25 simulations up to `n = 2¹⁰`
//! (pass `--full` for the paper-scale sweep).
//!
//! Expected shape: after `Θ(n²)` interactions constant fractions are
//! ranked (normalized values roughly flat in `n`), with successive
//! fractions spaced like a coupon collector — ranking the next half of
//! the remainder costs about as much as everything before it.
//!
//! Writes `BENCH_fig3.json` (override with `out=`) so the normalized
//! crossing times are tracked as a regression artifact.
//!
//! Usage: `cargo run --release -p bench --bin fig3 -- [sims=25] [--full]
//! [out=BENCH_fig3.json] [--csv]`

use analysis::stats::Summary;
use bench::{f3, Experiment, Json, Table};
use population::observe::Thresholds;
use population::{ranked_count, Simulator};
use ranking::stable::StableRanking;
use ranking::Params;

const FRACTIONS: [(u64, u64, &str); 4] = [
    (1, 2, "1/2"),
    (3, 4, "3/4"),
    (7, 8, "7/8"),
    (15, 16, "15/16"),
];

fn main() {
    let exp = Experiment::from_env("fig3");
    let full = exp.flag("full");
    let sims = exp.sims(if full { 100 } else { 25 });
    let max_exp: u32 = exp.get("max_exp", if full { 13 } else { 10 });
    let min_exp: u32 = exp.get("min_exp", 7);

    let mut table = Table::new(
        format!("Figure 3: interactions/n^2 to rank c*n agents ({sims} sims)"),
        &[
            "n",
            "fraction",
            "mean t/n^2",
            "median",
            "min",
            "max",
            "completed",
        ],
    );
    for exp2 in min_exp..=max_exp {
        let n = 1usize << exp2;
        let targets: Vec<u64> = FRACTIONS
            .iter()
            .map(|(num, den, _)| (n as u64) * num / den)
            .collect();

        // Each simulation observes the crossing time (interactions) of
        // each fraction, or None if the budget ran out (e.g. a rare
        // reset).
        let results = exp.run_seeds(sims, |seed| {
            let protocol = StableRanking::new(Params::new(n));
            let init = protocol.figure3();
            let mut sim = Simulator::new(protocol, init, seed);
            let budget = 60 * (n as u64) * (n as u64);
            let check = (n as u64).max(64);
            let mut crossings = Thresholds::new(|s: &[_]| ranked_count(s) as u64, targets.clone());
            sim.run_observed(budget, check, &mut crossings);
            crossings.into_crossings()
        });

        for (i, (_, _, label)) in FRACTIONS.iter().enumerate() {
            let times: Vec<f64> = results
                .iter()
                .filter_map(|r| r[i])
                .map(|t| t as f64 / (n * n) as f64)
                .collect();
            if times.is_empty() {
                continue;
            }
            let s = Summary::of(&times);
            table.push(vec![
                n.to_string(),
                (*label).to_string(),
                f3(s.mean),
                f3(s.median),
                f3(s.min),
                f3(s.max),
                format!("{}/{}", times.len(), sims),
            ]);
        }
    }

    exp.emit(&table);
    let payload = Json::obj([
        ("sims", sims.into()),
        ("min_exp", min_exp.into()),
        ("max_exp", max_exp.into()),
        ("rows", Experiment::table_json(&table)),
    ]);
    exp.write_json("BENCH_fig3.json", payload);
    exp.note(
        "\nexpected shape (paper): values roughly flat in n per fraction; \
         1/2 around 2-4, 15/16 around 6-10, successive fractions roughly \
         equally spaced (coupon-collector behaviour).",
    );
}
