//! E7 — Lemmas 6/7: per-phase durations of `SPACEEFFICIENTRANKING`.
//!
//! Phase `k` consists of a waiting period (the leader counts down
//! `⌈c_wait log n⌉` meetings while the phase epidemic finishes; Lemma 6
//! bounds it by `(c_wait + γ)·2^k·n log n`) followed by a ranking period
//! (Lemma 7: `2n² + 2γ·2^k·n log n`). We record the interaction times at
//! which the cumulative rank count `n − f_{k+1}` is reached — the end of
//! phase `k` — and compare the measured phase lengths with the combined
//! bound. Later phases take longer (the epidemics run among ever fewer
//! unranked agents), which is the paper's explanation for Figure 2's
//! tail.
//!
//! Usage: `cargo run --release -p bench --bin phase_timing -- [n=256]
//! [sims=10] [--csv]`

use analysis::bounds::{rank_phase_upper, wait_phase_upper};
use analysis::stats::Summary;
use bench::{f3, Experiment, Table};
use leader_election::tournament::TournamentLe;
use population::observe::Thresholds;
use population::{ranked_count, Simulator};
use ranking::space_efficient::SpaceEfficientRanking;
use ranking::Params;

fn main() {
    let exp = Experiment::from_env("phase_timing");
    let n: usize = exp.get("n", 256);
    let sims = exp.sims(10);

    let params = Params::new(n);
    let fseq = params.fseq();
    let kmax = fseq.kmax();

    // Cumulative ranked-count target after each phase k: n − f_{k+1} + 1
    // counts the leader only in the final phase; during phase
    // transitions the leader is waiting (unranked), so the stable marker
    // is "all ranks > f_{k+1} assigned": ranked ≥ n − f_{k+1}.
    let targets: Vec<u64> = (1..=kmax).map(|k| n as u64 - fseq.f(k + 1)).collect();

    let per_run = exp.run_seeds(sims, |seed| {
        let p = SpaceEfficientRanking::new(&Params::new(n), TournamentLe::for_n(n));
        let init = p.initial();
        let mut sim = Simulator::new(p, init, seed);
        let budget = 500 * (n as u64) * (n as u64);
        let mut crossings = Thresholds::new(|s: &[_]| ranked_count(s) as u64, targets.clone());
        sim.run_observed(budget, n as u64, &mut crossings);
        crossings.into_crossings()
    });

    let mut table = Table::new(
        format!("Lemmas 6+7: phase durations for n = {n} ({sims} sims), unit n^2"),
        &[
            "phase k",
            "ranks",
            "mean/n^2",
            "median/n^2",
            "bound/n^2 (gamma=1)",
            "mean/bound",
        ],
    );
    for k in 1..=kmax {
        let idx = (k - 1) as usize;
        let durations: Vec<f64> = per_run
            .iter()
            .filter_map(|run| {
                let end = run[idx]?;
                let start = if idx == 0 { 0 } else { run[idx - 1]? };
                Some((end - start) as f64)
            })
            .collect();
        if durations.is_empty() {
            continue;
        }
        let s = Summary::of(&durations);
        let bound = wait_phase_upper(n as f64, k, params.c_wait(), 1.0)
            + rank_phase_upper(n as f64, k, 1.0);
        table.push(vec![
            k.to_string(),
            fseq.phase_ranks(k).start().to_string() + "-" + &fseq.phase_ranks(k).end().to_string(),
            f3(s.mean / (n * n) as f64),
            f3(s.median / (n * n) as f64),
            f3(bound / (n * n) as f64),
            f3(s.mean / bound),
        ]);
    }

    exp.emit(&table);
    exp.note(
        "\nexpected shape: durations grow with k (epidemics among fewer agents); \
         every measured mean stays below the Lemma 6+7 bound (ratio < 1). \
         Phase 1 includes leader election.",
    );
}
