//! E13 — recovery-time benchmark: fault → re-stabilization interactions
//! for `StableRanking` under every injector in `scenarios`.
//!
//! Each run starts from the *legal* (silent) ranking configuration,
//! fires one fault, and measures the interactions until the
//! configuration is a valid ranking again — Theorem 2's
//! self-stabilization claim, exercised as sustained-fault recovery
//! rather than adversarial initialization. The one exception is
//! `coin_bias`: ranked agents store no coin, so biasing a silent legal
//! configuration is a no-op; that scenario instead starts from the
//! clean leader-election start and injects mid-election, measuring
//! stabilization despite the biased coins.
//!
//! Expected shape: rank-surgery faults (`duplicate_rank`, `erase_rank`)
//! and garbage faults (`corrupt`, `randomize`) force detection → reset →
//! re-election → re-ranking, so their recovery normalizes to the same
//! `Θ(n² log n)` band as stabilization from scratch (roughly constant
//! per-fault values in the `n² log₂ n` unit); `churn` behaves like
//! `erase_rank` (fresh joiners must be re-absorbed); `coin_bias` merely
//! delays the lottery and tends to sit at the low end at small `n`.
//!
//! Writes `BENCH_recovery.json` (override with `out=`) with the raw
//! per-seed fault → re-stabilization interaction counts. With two or
//! more sizes the binary additionally fits `t ≈ a·n^b` per injector
//! (least squares in log–log space over the per-size mean recovery
//! times) and emits the exponents — the recovery *scaling study*:
//! Theorem 2 predicts recovery within the `Θ(n² log n)` stabilization
//! band, i.e. fitted exponents slightly above 2. Pass `--full` for the
//! scaling sweep (`sizes=16,24,32,48,64,96`, sharper fits).
//!
//! Usage: `cargo run --release -p bench --bin recovery --
//! [sizes=32,64] [sims=5] [budget_c=4000] [seed0=0]
//! [out=BENCH_recovery.json] [checkpoint_dir=DIR] [--full] [--csv]`
//!
//! The `--full` sweep is the long one, so it supports kill-and-resume:
//! with `checkpoint_dir=DIR`, every completed `(fault, n, seed)` cell is
//! appended durably to `DIR/recovery-sweep.log` (see
//! `snapshot::SweepLog` and `docs/DURABILITY.md`), and a restarted
//! invocation re-runs only the cells the kill interrupted — the tables,
//! fits, and JSON artifact come out identical to an uninterrupted run
//! because the measurements themselves are deterministic per seed.

use analysis::fit::power_fit;
use analysis::stats::Summary;
use bench::{f3, Experiment, Json, Table};
use population::is_valid_ranking;
use ranking::stable::{StableRanking, StableState};
use ranking::Params;
use scenarios::{ranking_faults, FaultPlan, Recovery, RecoveryEvent};
use snapshot::{SweepLog, UNRECOVERED};

/// The injector kinds measured, in table order (the canonical list).
const KINDS: [&str; 6] = ranking_faults::KINDS;

/// The initial configuration for a scenario (see module docs).
fn init_for(kind: &str, protocol: &StableRanking) -> Vec<StableState> {
    match kind {
        "coin_bias" => protocol.initial(),
        _ => protocol.legal(),
    }
}

/// The single-shot plan for a scenario: what to inject, and when.
fn plan_for(kind: &str, protocol: &StableRanking, n: usize, seed: u64) -> FaultPlan<StableState> {
    let plan = FaultPlan::new(seed.wrapping_mul(0x9E37_79B9) ^ 0xFA01);
    let quarter = (n / 4).max(1);
    match kind {
        "corrupt" => plan.once(0, ranking_faults::corrupt(protocol, quarter)),
        "churn" => plan.once(0, ranking_faults::churn(protocol, quarter)),
        "duplicate_rank" => plan.once(0, ranking_faults::duplicate_rank(1)),
        "erase_rank" => plan.once(0, ranking_faults::erase_rank(protocol, (n / 8).max(1))),
        // Mid-election injection: half the population is still running
        // the lottery when every coin is forced to tails.
        "coin_bias" => plan.once((n * n / 2) as u64, ranking_faults::coin_bias(false)),
        "randomize" => plan.once(0, ranking_faults::randomize(protocol)),
        other => unreachable!("unknown injector kind {other}"),
    }
}

/// One completed `(fault, n, seed)` cell in the sweep log is two
/// durable lines keyed off `base`: the injection time and the recovery
/// time ([`UNRECOVERED`] when the budget ran out). Two `u64` values are
/// exactly a [`RecoveryEvent`], so a resumed sweep reconstructs cached
/// events losslessly.
fn cached_event(log: &SweepLog, base: &str, kind: &'static str) -> Option<RecoveryEvent> {
    let injected_at = log.get(&format!("{base}:inj"))?;
    let rec = log.get(&format!("{base}:rec"))?;
    Some(RecoveryEvent {
        name: kind,
        injected_at,
        recovered_at: (rec != UNRECOVERED).then_some(rec),
    })
}

fn measure(
    exp: &Experiment,
    kind: &'static str,
    n: usize,
    sims: u64,
    budget: u64,
    log: &mut Option<SweepLog>,
) -> Vec<RecoveryEvent> {
    let seeds = exp.seeds(sims);
    let cached: Vec<Option<RecoveryEvent>> = seeds
        .iter()
        .map(|&seed| cached_event(log.as_ref()?, &format!("{kind}:{n}:{seed}"), kind))
        .collect();
    let missing: Vec<u64> = seeds
        .iter()
        .zip(&cached)
        .filter(|(_, hit)| hit.is_none())
        .map(|(&seed, _)| seed)
        .collect();
    let fresh = population::runner::run_seeds(&missing, |seed| {
        let protocol = StableRanking::new(Params::new(n));
        let init = init_for(kind, &protocol);
        let mut plan = plan_for(kind, &protocol, n, seed);
        let mut sim = population::Simulator::new(protocol, init, seed);
        let mut recovery =
            Recovery::new(|_: &StableRanking, s: &[StableState]| is_valid_ranking(s));
        scenarios::run_recovery(&mut sim, &mut plan, &mut recovery, budget, n as u64);
        let events = recovery.into_events();
        assert_eq!(events.len(), 1, "single-shot plan fired {}", events.len());
        events[0]
    });
    // Persist the fresh cells (durably, one fsync per append) and stitch
    // cached + fresh back into seed order.
    let mut fresh = fresh.into_iter();
    seeds
        .iter()
        .zip(cached)
        .map(|(&seed, hit)| {
            hit.unwrap_or_else(|| {
                let e = fresh.next().expect("one fresh event per missing seed");
                if let Some(log) = log {
                    let base = format!("{kind}:{n}:{seed}");
                    log.record(&format!("{base}:inj"), e.injected_at)
                        .and_then(|()| {
                            log.record(
                                &format!("{base}:rec"),
                                e.recovered_at.unwrap_or(UNRECOVERED),
                            )
                        })
                        .unwrap_or_else(|err| panic!("cannot append to sweep log: {err}"));
                }
                e
            })
        })
        .collect()
}

fn main() {
    let exp = Experiment::from_env("recovery");
    let sims = exp.sims(5);
    let budget_c: f64 = exp.get("budget_c", 4000.0);
    // --full selects the scaling-study sweep: enough sizes, spread over
    // a factor of 6, for the per-injector power fits to resolve the
    // exponent.
    let default_sizes = if exp.flag("full") {
        "16,24,32,48,64,96"
    } else {
        "32,64"
    };
    let sizes: Vec<usize> = exp
        .args()
        .get_str("sizes")
        .unwrap_or(default_sizes)
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    assert!(!sizes.is_empty(), "sizes= parsed to an empty list");

    // Kill-and-resume support: a durable per-cell completion log.
    let mut log = exp.checkpoint_dir().map(|dir| {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
        let log = SweepLog::open(std::path::Path::new(dir).join("recovery-sweep.log"))
            .unwrap_or_else(|e| panic!("cannot open sweep log in {dir}: {e}"));
        if !log.is_empty() || log.dropped > 0 {
            exp.note(&format!(
                "sweep log: {} line(s) already complete, {} torn/corrupt line(s) dropped",
                log.len(),
                log.dropped
            ));
        }
        log
    });

    let mut table = Table::new(
        format!("Recovery time by injector, unit n^2 log2 n ({sims} sims)"),
        &["fault", "n", "recovered", "mean", "median", "max"],
    );
    let mut measurements = Vec::new();
    let mut fit_points: Vec<(&'static str, usize, f64)> = Vec::new();
    for kind in KINDS {
        for &n in &sizes {
            let budget = (budget_c * (n * n) as f64 * (n as f64).log2()).ceil() as u64;
            let events = measure(&exp, kind, n, sims, budget, &mut log);
            let norm = (n * n) as f64 * (n as f64).log2();
            let times: Vec<f64> = events
                .iter()
                .filter_map(RecoveryEvent::recovery_interactions)
                .map(|t| t as f64)
                .collect();
            // A scenario where no seed recovered still gets a row — an
            // all-"-" line is the signal that a budget regression (or a
            // genuine stabilization bug) ate the point.
            let row = if times.is_empty() {
                vec![
                    kind.to_string(),
                    n.to_string(),
                    format!("0/{sims}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]
            } else {
                let s = Summary::of(&times);
                if s.mean > 0.0 {
                    fit_points.push((kind, n, s.mean));
                }
                vec![
                    kind.to_string(),
                    n.to_string(),
                    format!("{}/{sims}", times.len()),
                    f3(s.mean / norm),
                    f3(s.median / norm),
                    f3(s.max / norm),
                ]
            };
            table.push(row);
            measurements.push(Json::obj([
                ("fault", kind.into()),
                ("n", n.into()),
                ("recovered", times.len().into()),
                (
                    "events",
                    Json::Arr(
                        events
                            .iter()
                            .map(|e| {
                                Json::obj([
                                    ("injected_at", e.injected_at.into()),
                                    (
                                        "recovered_at",
                                        e.recovered_at.map_or(Json::Null, Json::from),
                                    ),
                                    (
                                        "recovery_interactions",
                                        e.recovery_interactions().map_or(Json::Null, Json::from),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]));
        }
    }

    exp.emit(&table);

    // The scaling study: fit recovery time ≈ a·n^b per injector over
    // the per-size means. Theorem 2 puts recovery in the stabilization
    // band Θ(n² log n), so exponents should land a little above 2
    // (coin_bias, which only delays the lottery, may fit lower).
    let mut fits = Vec::new();
    if sizes.len() >= 2 {
        let mut fit_table = Table::new(
            "Recovery scaling fits: mean recovery ~ a * n^b per injector".to_string(),
            &["fault", "a", "exponent b", "R^2", "points"],
        );
        for kind in KINDS {
            let points: Vec<(f64, f64)> = fit_points
                .iter()
                .filter(|(k, _, _)| *k == kind)
                .map(|&(_, n, mean)| (n as f64, mean))
                .collect();
            if points.len() < 2 {
                continue;
            }
            let fit = power_fit(&points);
            fit_table.push(vec![
                kind.to_string(),
                format!("{:.4e}", fit.a),
                f3(fit.b),
                f3(fit.r_squared),
                points.len().to_string(),
            ]);
            fits.push(Json::obj([
                ("fault", kind.into()),
                ("a", fit.a.into()),
                ("b", fit.b.into()),
                ("r_squared", fit.r_squared.into()),
                ("points", points.len().into()),
            ]));
        }
        if !fit_table.rows.is_empty() {
            exp.emit(&fit_table);
        }
    }

    let payload = Json::obj([
        (
            "sizes",
            Json::Arr(sizes.iter().map(|&n| n.into()).collect()),
        ),
        ("sims", sims.into()),
        ("budget_c", budget_c.into()),
        ("check_every", "n".into()),
        ("measurements", Json::Arr(measurements)),
        ("fits", Json::Arr(fits)),
    ]);
    exp.write_json("BENCH_recovery.json", payload);
    exp.note(
        "\nexpected shape (paper): every injector recovers within the Theorem 2 \
         stabilization band — values roughly constant in the n^2 log2 n unit \
         (reset-forcing faults pay detection + reset + re-election + re-ranking; \
         coin_bias only delays the lottery), so fitted exponents sit a little \
         above 2.",
    );
}
