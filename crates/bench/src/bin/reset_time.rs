//! E10 — Lemma 9: `PROPAGATERESET` drives a triggered configuration to an
//! all-electing configuration within `O(n log n)` interactions.
//!
//! Start: a legal-looking main configuration (all phase agents) with one
//! triggered agent. Measure the interactions until no resetting agent
//! remains — at which point every agent has passed through dormancy and
//! re-entered leader election. A power fit against `n log n` should give
//! slope ≈ 1.
//!
//! Usage: `cargo run --release -p bench --bin reset_time -- [sims=20]
//! [--csv]`

use analysis::fit::power_fit;
use analysis::stats::Summary;
use bench::{f3, Experiment, Table};
use population::Simulator;
use ranking::stable::StableRanking;
use ranking::Params;

fn main() {
    let exp = Experiment::from_env("reset_time");
    let sims = exp.sims(20);

    let mut table = Table::new(
        format!("Lemma 9: triggered -> all-electing, unit n ln n ({sims} sims)"),
        &["n", "mean/(n ln n)", "median/(n ln n)", "max/(n ln n)"],
    );
    let mut points = Vec::new();
    for n in [64usize, 128, 256, 512, 1024] {
        let times: Vec<f64> = exp.run_seeds(sims, |seed| {
            let protocol = StableRanking::new(Params::new(n));
            let mut init = protocol.all_phase(1);
            // One triggered agent (as TRIGGERRESET would leave it).
            ranking::stable::reset::trigger_reset(
                protocol.params().r_max(),
                protocol.params().d_max(),
                &mut init[0],
            );
            let mut sim = Simulator::new(protocol, init, seed);
            let budget = 10_000 * (n as u64) * ((n as f64).log2().ceil() as u64);
            sim.run_until(
                |s| s.iter().all(|x| !x.is_resetting()),
                budget,
                (n / 4).max(1) as u64,
            )
            .converged_at()
            .expect("reset must run its course") as f64
        });
        let s = Summary::of(&times);
        let norm = (n as f64) * (n as f64).ln();
        points.push((n as f64, s.mean));
        table.push(vec![
            n.to_string(),
            f3(s.mean / norm),
            f3(s.median / norm),
            f3(s.max / norm),
        ]);
    }

    exp.emit(&table);
    let fit = power_fit(&points);
    exp.note(&format!(
        "\npower fit: T ~ {:.2} * n^{:.3} (R^2 = {:.4})",
        fit.a, fit.b, fit.r_squared
    ));
    exp.note(
        "expected shape: normalized values flat in n; exponent close to 1 \
         (n log n growth => exponent slightly above 1).",
    );
}
