//! E11 — the Cai–Izumi–Wada baseline runs in `Θ(n³)` expected
//! interactions, the gap the paper's `O(n² log n)` protocol closes.
//!
//! From the all-equal worst case, measure convergence to a silent
//! permutation and fit `T = a·n^b`: the exponent should land near 3,
//! versus ≈ 2.1–2.3 for the paper's protocols (cf. `table_comparison`).
//!
//! Usage: `cargo run --release -p bench --bin cai_scaling -- [sims=10]
//! [--csv]`

use analysis::fit::power_fit;
use baselines::cai::CaiRanking;
use bench::measure::{ranking_times, summary};
use bench::{f3, Experiment, Table};

fn main() {
    let exp = Experiment::from_env("cai_scaling");
    let sims = exp.sims(10);

    let mut table = Table::new(
        format!("Cai et al. convergence from all-equal, unit n^3 ({sims} sims)"),
        &["n", "mean/n^3", "median/n^3", "max/n^3"],
    );
    let mut points = Vec::new();
    for n in [8usize, 16, 32, 64, 128] {
        let budget = 400 * (n as u64).pow(3);
        let times = ranking_times(&exp, sims, budget, n as u64, |_| {
            let protocol = CaiRanking::new(n);
            let init = protocol.all_equal();
            (protocol, init)
        });
        assert!(
            times.iter().all(|t| t.is_some()),
            "Cai protocol must converge within budget"
        );
        let s = summary(&times).expect("all runs completed");
        points.push((n as f64, s.mean));
        table.push(vec![
            n.to_string(),
            f3(s.mean / (n as f64).powi(3)),
            f3(s.median / (n as f64).powi(3)),
            f3(s.max / (n as f64).powi(3)),
        ]);
    }

    exp.emit(&table);
    let fit = power_fit(&points);
    exp.note(&format!(
        "\npower fit: T ~ {:.3} * n^{:.3} (R^2 = {:.4})",
        fit.a, fit.b, fit.r_squared
    ));
    exp.note("expected shape: exponent near 3; normalized values roughly flat.");
}
