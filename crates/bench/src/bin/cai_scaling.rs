//! E11 — the Cai–Izumi–Wada baseline runs in `Θ(n³)` expected
//! interactions, the gap the paper's `O(n² log n)` protocol closes.
//!
//! From the all-equal worst case, measure convergence to a silent
//! permutation and fit `T = a·n^b`: the exponent should land near 3,
//! versus ≈ 2.1–2.3 for the paper's protocols (cf. `table_comparison`).
//!
//! Usage: `cargo run --release -p bench --bin cai_scaling -- [sims=10]`

use analysis::fit::power_fit;
use analysis::stats::Summary;
use baselines::cai::CaiRanking;
use bench::{f3, print_table, Args};
use population::runner::run_seed_range;
use population::{is_valid_ranking, Simulator};

fn main() {
    let args = Args::from_env();
    let sims: u64 = args.get("sims", 10);

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for n in [8usize, 16, 32, 64, 128] {
        let times: Vec<f64> = run_seed_range(sims, |seed| {
            let protocol = CaiRanking::new(n);
            let init = protocol.all_equal();
            let mut sim = Simulator::new(protocol, init, seed);
            let budget = 400 * (n as u64).pow(3);
            sim.run_until(is_valid_ranking, budget, n as u64)
                .converged_at()
                .expect("Cai protocol must converge") as f64
        });
        let s = Summary::of(&times);
        points.push((n as f64, s.mean));
        rows.push(vec![
            n.to_string(),
            f3(s.mean / (n as f64).powi(3)),
            f3(s.median / (n as f64).powi(3)),
            f3(s.max / (n as f64).powi(3)),
        ]);
    }

    print_table(
        &format!("Cai et al. convergence from all-equal, unit n^3 ({sims} sims)"),
        &["n", "mean/n^3", "median/n^3", "max/n^3"],
        &rows,
    );
    let fit = power_fit(&points);
    println!(
        "\npower fit: T ~ {:.3} * n^{:.3} (R^2 = {:.4})",
        fit.a, fit.b, fit.r_squared
    );
    println!("expected shape: exponent near 3; normalized values roughly flat.");
}
