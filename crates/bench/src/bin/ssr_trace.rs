//! `ssr-trace` — validate and summarize a flight-recorder JSONL trace.
//!
//! Reads a trace written by `telemetry::schema::render_trace` (e.g. by
//! `examples/trace.rs` or any `scenarios::run_recovery_traced` caller),
//! validates it against the versioned schema (header first, known kinds
//! only, per-kind required fields, monotone event timestamps), and
//! prints a digest: event counts by kind, the covered interaction-time
//! range, every fault firing with its injector name, a membership
//! summary for dynamic-population traces (join/leave rates per 10⁶
//! interactions plus the rank-reuse dwell — release → next claim of
//! the same rank — as a log₂ histogram), and an ASCII rendering of
//! each histogram line.
//!
//! Exit status is the validation verdict — `0` for a schema-valid
//! trace, `1` otherwise — so CI can gate on it directly. Pass `--check`
//! to suppress the digest and print a single `ok:` line (the CI trace
//! smoke's mode).
//!
//! Usage: `cargo run --release -p bench --bin ssr-trace --
//! <trace.jsonl> [--check]`

use std::process::ExitCode;

use telemetry::schema::{parse_line, validate, Value};
use telemetry::HistogramSnapshot;

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else if arg.starts_with("--") {
            eprintln!("unknown flag {arg}");
            eprintln!("usage: ssr-trace <trace.jsonl> [--check]");
            return ExitCode::FAILURE;
        } else {
            path = Some(arg);
        }
    }
    let Some(path) = path else {
        eprintln!("usage: ssr-trace <trace.jsonl> [--check]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let summary = match validate(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            return ExitCode::FAILURE;
        }
    };

    if check {
        println!(
            "ok: {path} — schema v{}, {} events ({} dropped), {} fault(s)",
            summary.version,
            summary.events,
            summary.dropped,
            summary.faults.len()
        );
        return ExitCode::SUCCESS;
    }

    println!("{path}: schema v{} — valid", summary.version);
    println!(
        "events: {} recorded in trace, {} surviving header count, {} overwritten (ring drops)",
        summary.events, summary.header_events, summary.dropped
    );
    if let Some((lo, hi)) = summary.t_range {
        println!("time range: interactions {lo} ..= {hi}");
    }
    if !summary.by_kind.is_empty() {
        println!("by kind:");
        for (kind, count) in &summary.by_kind {
            println!("  {kind:<13} {count}");
        }
    }
    if !summary.faults.is_empty() {
        println!("faults:");
        for (t, name) in &summary.faults {
            println!("  t={t:<12} {}", name.as_deref().unwrap_or("(unnamed)"));
        }
    }

    // Membership summary (dynamic-population traces): join/leave rates
    // over the covered time range, and the dwell between a rank's
    // release and its next claim, accumulated through the same log₂
    // `Registry` histogram the engines use.
    let mut membership: std::collections::BTreeMap<&str, u64> = Default::default();
    let mut released: std::collections::HashMap<u64, u64> = Default::default();
    let mut registry = telemetry::Registry::new();
    let dwell = registry.histogram("rank_reuse_dwell");
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(map) = parse_line(line) else { continue };
        let t = map.get("t").and_then(Value::as_u64).unwrap_or(0);
        match map.get("kind").and_then(Value::as_str) {
            Some("join") => *membership.entry("join").or_default() += 1,
            Some("leave") => *membership.entry("leave").or_default() += 1,
            Some("hibernate") => *membership.entry("hibernate").or_default() += 1,
            Some("revive") => *membership.entry("revive").or_default() += 1,
            Some("rank_release") => {
                if let Some(rank) = map.get("rank").and_then(Value::as_u64) {
                    released.insert(rank, t);
                }
            }
            Some("rank_claim") => {
                if let Some(rank) = map.get("rank").and_then(Value::as_u64) {
                    if let Some(freed_at) = released.remove(&rank) {
                        dwell.record(t.saturating_sub(freed_at));
                    }
                }
            }
            _ => {}
        }
    }
    if !membership.is_empty() {
        let span = summary.t_range.map_or(1, |(lo, hi)| (hi - lo).max(1));
        println!("membership (per-10^6-interaction rates over the covered range):");
        for (kind, count) in &membership {
            println!(
                "  {kind:<10} {count:>8}  ({:.2} /M)",
                *count as f64 * 1.0e6 / span as f64
            );
        }
        let snap = registry.snapshot();
        let reuse = snap.histogram("rank_reuse_dwell").unwrap();
        if reuse.count > 0 {
            println!(
                "rank-reuse dwell (release -> next claim, count {}, sum {}):",
                reuse.count, reuse.sum
            );
            print!("{}", reuse.render_ascii());
        }
        if !released.is_empty() {
            println!(
                "  ({} rank(s) still unclaimed at end of trace)",
                released.len()
            );
        }
    }

    // The validator has already accepted every line, so the metric and
    // histogram lines re-parse infallibly here.
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(map) = parse_line(line) else { continue };
        match map.get("kind").and_then(Value::as_str) {
            Some("metric") => {
                let name = map["name"].as_str().unwrap_or("?");
                let value = map["value"].as_u64().unwrap_or(0);
                println!("metric {name:<24} {value}");
            }
            Some("histogram") => {
                let name = map["name"].as_str().unwrap_or("?").to_string();
                let count = map["count"].as_u64().unwrap_or(0);
                let sum = map["sum"].as_u64().unwrap_or(0);
                let buckets: Vec<(u32, u64)> = match map.get("buckets") {
                    Some(Value::Arr(items)) => items
                        .iter()
                        .filter_map(|pair| match pair {
                            Value::Arr(kv) if kv.len() == 2 => {
                                Some((kv[0].as_u64()? as u32, kv[1].as_u64()?))
                            }
                            _ => None,
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                // `HistogramSnapshot::name` is `&'static str` (it names
                // registry cells); a short-lived CLI can afford to leak
                // the few parsed names to reuse its ASCII renderer.
                let snap = HistogramSnapshot {
                    name: Box::leak(name.into_boxed_str()),
                    count,
                    sum,
                    buckets,
                };
                println!("histogram {} (count {count}, sum {sum}):", snap.name);
                print!("{}", snap.render_ascii());
            }
            _ => {}
        }
    }
    ExitCode::SUCCESS
}
