//! E12 — ablation of the paper's two tunable constants.
//!
//! * `c_wait` controls how long the leader waits between phases. Too
//!   small and the leader re-enters as rank 1 before the phase epidemic
//!   finishes, handing out duplicate ranks that force a full reset; the
//!   paper's analysis needs `c_wait ≥ 24 + 48γ` but its own simulation
//!   uses 2 — this experiment shows where the cliff actually is.
//! * `c_live` sizes the liveness/lottery budget `L_max`. Too small and
//!   healthy runs are interrupted by spurious liveness resets (and the
//!   leader-election lottery times out before anyone can win ⌈log n⌉
//!   coin flips); large values only delay detection of genuinely dead
//!   configurations.
//!
//! Usage: `cargo run --release -p bench --bin ablation -- [n=128]
//! [sims=5] [--csv]`

use analysis::stats::Summary;
use bench::{f3, Experiment, Table};
use population::{is_valid_ranking, Simulator};
use ranking::stable::StableRanking;
use ranking::Params;

fn run_config(
    exp: &Experiment,
    n: usize,
    c_wait: f64,
    c_live: f64,
    sims: u64,
) -> (Option<Summary>, f64, u64) {
    let results = exp.run_seeds(sims, |seed| {
        let params = Params::new(n).with_c_wait(c_wait).with_c_live(c_live);
        let protocol = StableRanking::new(params);
        let init = protocol.initial();
        let mut sim = Simulator::new(protocol, init, seed);
        let budget = (8000.0 * (n * n) as f64 * (n as f64).log2()) as u64;
        let t = sim
            .run_until(is_valid_ranking, budget, n as u64)
            .converged_at();
        (t, sim.protocol().resets_triggered())
    });
    let times: Vec<f64> = results
        .iter()
        .filter_map(|(t, _)| t.map(|t| t as f64))
        .collect();
    let resets: u64 = results.iter().map(|(_, r)| *r).sum();
    let fails = results.iter().filter(|(t, _)| t.is_none()).count() as f64;
    (
        if times.is_empty() {
            None
        } else {
            Some(Summary::of(&times))
        },
        fails / sims as f64,
        resets / sims,
    )
}

fn main() {
    let exp = Experiment::from_env("ablation");
    let n: usize = exp.get("n", 128);
    let sims = exp.sims(5);
    let norm = (n * n) as f64 * (n as f64).log2();

    let mut table = Table::new(
        format!("Ablation at n = {n} ({sims} sims, clean start)"),
        &[
            "c_wait",
            "c_live",
            "T/(n^2 log n)",
            "fail rate",
            "resets/run",
        ],
    );
    let mut configs: Vec<(f64, f64)> = [0.5, 1.0, 2.0, 4.0].map(|w| (w, 4.0)).to_vec();
    configs.extend([2.5, 3.0, 8.0].map(|l| (2.0, l)));
    for (c_wait, c_live) in configs {
        let (s, fail, resets) = run_config(&exp, n, c_wait, c_live, sims);
        table.push(vec![
            f3(c_wait),
            f3(c_live),
            s.map(|s| f3(s.mean / norm)).unwrap_or_else(|| "-".into()),
            f3(fail),
            resets.to_string(),
        ]);
    }
    exp.emit(&table);
    exp.note(
        "\nexpected shape: small c_wait => premature unaware leaders => \
         duplicate ranks => extra resets and slower stabilization; small \
         c_live => lottery timeouts and spurious liveness resets (more \
         resets/run); the paper's (2, 4) sits in the efficient region.",
    );
}
