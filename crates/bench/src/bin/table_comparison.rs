//! E3/E4/E5 — the comparison table implied by Sections I–II of the paper:
//! state complexity and stabilization time of the paper's protocols
//! against the related-work baselines.
//!
//! Part 1 (analytic): state counts as functions of `n`, extending to
//! `n = 2²⁰` where the asymptotic separation (`n + O(log² n)` vs
//! `n + Ω(n)`) is unmistakable.
//!
//! Part 2 (measured): interactions to reach a valid silent ranking,
//! normalized by `n² log₂ n` (the paper's optimal order) — ours should be
//! flat, Cai et al. should grow linearly in `n / log n`.
//!
//! Usage: `cargo run --release -p bench --bin table_comparison --
//! [sims=5] [max_exp=8] [--csv]`

use analysis::stats::Summary;
use baselines::burman::BurmanRanking;
use baselines::cai::CaiRanking;
use baselines::naive::NaiveLeaderRanking;
use bench::measure::{ranking_times, summary};
use bench::{f3, Experiment, Table};
use leader_election::tournament::TournamentLe;
use ranking::audit::stable_state_bound;
use ranking::space_efficient::SpaceEfficientRanking;
use ranking::stable::StableRanking;
use ranking::Params;

fn main() {
    let exp = Experiment::from_env("table_comparison");
    let sims = exp.sims(5);
    let max_exp: u32 = exp.get("max_exp", 8);

    // ---------------- Part 1: analytic state counts ----------------
    let mut table = Table::new(
        "State complexity (analytic): total and overhead beyond the n ranks",
        &[
            "n",
            "StableRanking",
            "  (overhead)",
            "SpaceEfficient*",
            "Burman-style",
            "  (overhead)",
            "NaiveLeader",
            "Cai et al.",
        ],
    );
    for exp2 in [8u32, 10, 12, 16, 20] {
        let n = 1usize << exp2;
        let params = Params::new(n);
        let ours = stable_state_bound(&params);
        let se_overhead = 2 * u64::from(params.wait_max())
            + 2 * u64::from(params.coin_target())
            + TournamentLe::for_n(n).state_count();
        let burman = BurmanRanking::new(n).state_count();
        table.push(vec![
            format!("2^{exp2}"),
            ours.total().to_string(),
            ours.overhead().to_string(),
            (n as u64 + se_overhead).to_string(),
            burman.to_string(),
            (burman - n as u64).to_string(),
            (2 * n as u64 + 1).to_string(),
            n.to_string(),
        ]);
    }
    exp.emit(&table);
    exp.note(
        "* SpaceEfficientRanking uses the tournament LE substitute \
         (O(log^3 n) states; the paper's black box would give n + Theta(log n)).\n\
         StableRanking overhead is O(log^2 n): the paper's Theorem 2.",
    );

    // ---------------- Part 2: measured stabilization time ----------------
    let mut table = Table::new(
        format!("Stabilization time / (n^2 log2 n), mean of {sims} runs"),
        &[
            "n",
            "StableRanking",
            "SpaceEfficient",
            "Burman-style",
            "NaiveLeader",
            "Cai et al.",
        ],
    );
    for exp2 in 5..=max_exp.min(8) {
        let n = 1usize << exp2;
        let norm = (n * n) as f64 * (n as f64).log2();
        let budget = (8000.0 * norm) as u64;
        let check = n as u64;

        let stable = summary(&ranking_times(&exp, sims, budget, check, |seed| {
            let p = StableRanking::new(Params::new(n));
            let init = p.adversarial_uniform(seed * 31 + 7);
            (p, init)
        }));
        let se = summary(&ranking_times(&exp, sims, budget, check, |_| {
            let p = SpaceEfficientRanking::new(&Params::new(n), TournamentLe::for_n(n));
            let init = p.initial();
            (p, init)
        }));
        let burman = summary(&ranking_times(&exp, sims, budget, check, |seed| {
            let p = BurmanRanking::new(n);
            let init = p.adversarial(seed * 17 + 3);
            (p, init)
        }));
        let naive = summary(&ranking_times(&exp, sims, budget, check, |_| {
            let p = NaiveLeaderRanking::new(n);
            let init = p.initial();
            (p, init)
        }));
        let cai = if n <= 128 {
            summary(&ranking_times(
                &exp,
                sims,
                200 * (n as u64).pow(3),
                check,
                |_| {
                    let p = CaiRanking::new(n);
                    let init = p.all_equal();
                    (p, init)
                },
            ))
        } else {
            None
        };

        let cell = |s: &Option<Summary>| {
            s.as_ref()
                .map(|s| f3(s.mean / norm))
                .unwrap_or_else(|| "-".to_string())
        };
        table.push(vec![
            n.to_string(),
            cell(&stable),
            cell(&se),
            cell(&burman),
            cell(&naive),
            cell(&cai),
        ]);
    }
    exp.emit(&table);
    exp.note(
        "expected shape: all leader-based protocols flat (Theta(n^2 log n)); \
         Cai et al. grows ~n/log n (its Theta(n^3) cost). StableRanking and \
         Burman-style start from adversarial configurations, the others from \
         clean ones.",
    );
}
