//! E3/E4/E5 — the comparison table implied by Sections I–II of the paper:
//! state complexity and stabilization time of the paper's protocols
//! against the related-work baselines.
//!
//! Part 1 (analytic): state counts as functions of `n`, extending to
//! `n = 2²⁰` where the asymptotic separation (`n + O(log² n)` vs
//! `n + Ω(n)`) is unmistakable.
//!
//! Part 2 (measured): interactions to reach a valid silent ranking,
//! normalized by `n² log₂ n` (the paper's optimal order) — ours should be
//! flat, Cai et al. should grow linearly in `n / log n`.
//!
//! Usage: `cargo run --release -p bench --bin table_comparison --
//! [sims=5] [max_exp=8]`

use analysis::stats::Summary;
use baselines::burman::BurmanRanking;
use baselines::cai::CaiRanking;
use baselines::naive::NaiveLeaderRanking;
use bench::{f3, print_table, Args};
use leader_election::tournament::TournamentLe;
use population::runner::run_seed_range;
use population::{is_valid_ranking, Protocol, RankOutput, Simulator};
use ranking::audit::stable_state_bound;
use ranking::space_efficient::SpaceEfficientRanking;
use ranking::stable::StableRanking;
use ranking::Params;

fn measure<P, F>(make: F, sims: u64, budget: u64, check: u64) -> Option<Summary>
where
    P: Protocol,
    P::State: RankOutput + Send,
    F: Fn(u64) -> (P, Vec<P::State>) + Sync,
{
    let times: Vec<f64> = run_seed_range(sims, |seed| {
        let (protocol, init) = make(seed);
        let mut sim = Simulator::new(protocol, init, seed);
        sim.run_until(is_valid_ranking, budget, check)
            .converged_at()
            .map(|t| t as f64)
    })
    .into_iter()
    .flatten()
    .collect();
    if times.is_empty() {
        None
    } else {
        Some(Summary::of(&times))
    }
}

fn main() {
    let args = Args::from_env();
    let sims: u64 = args.get("sims", 5);
    let max_exp: u32 = args.get("max_exp", 8);

    // ---------------- Part 1: analytic state counts ----------------
    let mut rows = Vec::new();
    for exp in [8u32, 10, 12, 16, 20] {
        let n = 1usize << exp;
        let params = Params::new(n);
        let ours = stable_state_bound(&params);
        let se_overhead = 2 * u64::from(params.wait_max())
            + 2 * u64::from(params.coin_target())
            + TournamentLe::for_n(n).state_count();
        let burman = BurmanRanking::new(n).state_count();
        rows.push(vec![
            format!("2^{exp}"),
            ours.total().to_string(),
            ours.overhead().to_string(),
            (n as u64 + se_overhead).to_string(),
            burman.to_string(),
            (burman - n as u64).to_string(),
            (2 * n as u64 + 1).to_string(),
            n.to_string(),
        ]);
    }
    print_table(
        "State complexity (analytic): total and overhead beyond the n ranks",
        &[
            "n",
            "StableRanking",
            "  (overhead)",
            "SpaceEfficient*",
            "Burman-style",
            "  (overhead)",
            "NaiveLeader",
            "Cai et al.",
        ],
        &rows,
    );
    println!(
        "* SpaceEfficientRanking uses the tournament LE substitute \
         (O(log^3 n) states; the paper's black box would give n + Theta(log n)).\n\
         StableRanking overhead is O(log^2 n): the paper's Theorem 2."
    );

    // ---------------- Part 2: measured stabilization time ----------------
    let mut rows = Vec::new();
    for exp in 5..=max_exp.min(8) {
        let n = 1usize << exp;
        let norm = (n * n) as f64 * (n as f64).log2();
        let budget = (8000.0 * norm) as u64;
        let check = n as u64;

        let stable = measure(
            |seed| {
                let p = StableRanking::new(Params::new(n));
                let init = p.adversarial_uniform(seed * 31 + 7);
                (p, init)
            },
            sims,
            budget,
            check,
        );
        let se = measure(
            |_| {
                let p = SpaceEfficientRanking::new(&Params::new(n), TournamentLe::for_n(n));
                let init = p.initial();
                (p, init)
            },
            sims,
            budget,
            check,
        );
        let burman = measure(
            |seed| {
                let p = BurmanRanking::new(n);
                let init = p.adversarial(seed * 17 + 3);
                (p, init)
            },
            sims,
            budget,
            check,
        );
        let naive = measure(
            |_| {
                let p = NaiveLeaderRanking::new(n);
                let init = p.initial();
                (p, init)
            },
            sims,
            budget,
            check,
        );
        let cai = if n <= 128 {
            measure(
                |_| {
                    let p = CaiRanking::new(n);
                    let init = p.all_equal();
                    (p, init)
                },
                sims,
                200 * (n as u64).pow(3),
                check,
            )
        } else {
            None
        };

        let cell = |s: &Option<Summary>| {
            s.as_ref()
                .map(|s| f3(s.mean / norm))
                .unwrap_or_else(|| "-".to_string())
        };
        rows.push(vec![
            n.to_string(),
            cell(&stable),
            cell(&se),
            cell(&burman),
            cell(&naive),
            cell(&cai),
        ]);
    }
    print_table(
        &format!("Stabilization time / (n^2 log2 n), mean of {sims} runs"),
        &[
            "n",
            "StableRanking",
            "SpaceEfficient",
            "Burman-style",
            "NaiveLeader",
            "Cai et al.",
        ],
        &rows,
    );
    println!(
        "expected shape: all leader-based protocols flat (Theta(n^2 log n)); \
         Cai et al. grows ~n/log n (its Theta(n^3) cost). StableRanking and \
         Burman-style start from adversarial configurations, the others from \
         clean ones."
    );
}
