//! E14 — Byzantine-agent benchmark: honest-stabilization time vs `k`
//! and `n` per adversary strategy, plus the exhaustive tiny-`n`
//! classification of each strategy.
//!
//! Each run starts from the clean leader-election start with `k`
//! persistent adversaries *infiltrating* `n` honest agents
//! (`scenarios::byzantine::Byzantine` over the packed word path) and
//! measures the interactions until the honest agents first hold valid
//! distinct ranks (`population::HonestRanking`) — the only
//! stabilization a population with persistent adversaries can offer.
//! Strategies are the canonical six (`ranking_byz::STRATEGIES`):
//! `recorrupt`, `rank_squatter`, `mimic`, `coin_jammer`, `lurker`,
//! `crash`.
//!
//! With two or more sizes the binary fits `t ≈ a·n^b` per
//! `(strategy, k)` over the per-size mean honest-stabilization times.
//! Unless `--no-classify`, it also runs the exhaustive model checker
//! at tiny `n` (`scenarios::byzantine::classify`) in **both placement
//! models** and reports each strategy's verdict: *tolerated* (honest
//! validity reachable from every reachable configuration, all
//! absorbing configurations honest-valid), *livelocked* (some
//! reachable configuration can never become honest-valid), or
//! *safety-violating* (a reachable silent configuration with invalid
//! honest ranks). `recorrupt` is classified with its full state-space
//! branching universe (`ranking_byz::recorrupt_exhaustive`), so its
//! verdict would quantify over every rewrite the adversary could
//! choose — in practice that universe exceeds any affordable cap and
//! the row honestly reads "inconclusive".
//!
//! Measured shape (committed `BENCH_byz.json`; discussion in
//! `docs/BENCHMARKS.md`): `crash`, `lurker`, and `coin_jammer` are
//! tolerated — honest stabilization stays in the Theorem 2
//! `Θ(n² log n)` band at a constant-factor premium (fitted exponents
//! ≈ 1.4–2.7 on 4 sizes). The duplicate-forcers (`rank_squatter`,
//! `mimic`) and the reset-seeding `recorrupt` never honest-stabilize
//! within budget at any measured (n, k): possibilistically tolerated
//! (the classification shows honest validity stays reachable),
//! probabilistically starved — each ranking round must outrace
//! adversary-minted duplicate-meeting resets that recur every
//! `Θ(n²)` interactions or faster. The replacement-model rows prove
//! the structural livelock motivating the infiltration default:
//! under crash/lurker replacement **every** reachable configuration
//! is a dead end (the phase geometry hard-codes `n` rank takers).
//!
//! Writes `BENCH_byz.json` (override with `out=`).
//!
//! Usage: `cargo run --release -p bench --bin byzantine --
//! [sizes=16,24,32,48] [ks=1,2,4] [sims=5] [budget_c=3000] [squat=1]
//! [classify_n=3] [classify_cap=500000] [classify_cap_recorrupt=20000]
//! [classify_kinds=a,b,...] [seed0=0] [shards=0]
//! [out=BENCH_byz.json] [--no-classify] [--csv]`
//!
//! `shards=S` with `S >= 1` routes every run through the sharded
//! engine (`run_honest_sharded`, merged per-lane observation) instead
//! of the sequential simulator — same measurement, different engine.
//! `squat=R` points the rank squatter at rank `R` (default 1, the
//! leader's own rank — the most contested choice).

use analysis::fit::power_fit;
use analysis::stats::Summary;
use bench::{f3, Experiment, Json, Table};
use population::Packed;
use ranking::stable::StableRanking;
use ranking::Params;
use scenarios::byzantine::{run_honest, run_honest_sharded, Byzantine};
use scenarios::{classify, ranking_byz};

/// The strategy kinds measured, in table order (the canonical list).
const KINDS: [&str; 6] = ranking_byz::STRATEGIES;

/// Wrapper seed for a run: independent of (but derived from) the
/// scheduler seed, so adversary placement varies across sims.
fn wrapper_seed(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xB42)
}

/// One honest-stabilization measurement on the packed path.
fn run_one(
    kind: &str,
    n: usize,
    k: usize,
    seed: u64,
    budget: u64,
    shards: usize,
    squat: u64,
) -> Option<u64> {
    let protocol = StableRanking::new(Params::new(n));
    let strategy: Box<dyn scenarios::Strategy<Packed<StableRanking>>> = if kind == "rank_squatter" {
        Box::new(ranking_byz::rank_squatter_packed(squat))
    } else {
        ranking_byz::standard_packed(kind, &protocol)
    };
    let packed = Packed(protocol);
    let init = packed.pack_all(&packed.inner().initial());
    let byz = Byzantine::new(packed, strategy, k, wrapper_seed(seed));
    let init = byz.init(init);
    if shards >= 1 {
        let mut sim = shard::ShardedSimulator::new(byz, init, seed, shards);
        run_honest_sharded(&mut sim, budget, n as u64)
    } else {
        let mut sim = population::Simulator::new(byz, init, seed);
        run_honest(&mut sim, budget, n as u64)
    }
}

fn main() {
    let exp = Experiment::from_env("byzantine");
    let sims = exp.sims(5);
    let budget_c: f64 = exp.get("budget_c", 3000.0);
    let shards: usize = exp.get("shards", 0);
    let squat: u64 = exp.get("squat", 1);
    let sizes: Vec<usize> = exp
        .args()
        .get_str("sizes")
        .unwrap_or("16,24,32,48")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let ks: Vec<usize> = exp
        .args()
        .get_str("ks")
        .unwrap_or("1,2,4")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    assert!(!sizes.is_empty(), "sizes= parsed to an empty list");
    assert!(!ks.is_empty(), "ks= parsed to an empty list");

    let mut table = Table::new(
        format!("Honest-stabilization time by strategy, unit n^2 log2 n ({sims} sims)"),
        &["strategy", "n", "k", "stabilized", "mean", "median", "max"],
    );
    let mut measurements = Vec::new();
    let mut fit_points: Vec<(&'static str, usize, usize, f64)> = Vec::new();
    for kind in KINDS {
        for &n in &sizes {
            for &k in &ks {
                if k >= n {
                    continue;
                }
                let budget = (budget_c * (n * n) as f64 * (n as f64).log2()).ceil() as u64;
                let times: Vec<Option<u64>> = exp.run_seeds(sims, |seed| {
                    run_one(kind, n, k, seed, budget, shards, squat)
                });
                let hit: Vec<f64> = times.iter().flatten().map(|&t| t as f64).collect();
                let norm = (n * n) as f64 * (n as f64).log2();
                let row = if hit.is_empty() {
                    vec![
                        kind.to_string(),
                        n.to_string(),
                        k.to_string(),
                        format!("0/{sims}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]
                } else {
                    let s = Summary::of(&hit);
                    // Only fully-uncensored points enter the power
                    // fits: a mean over the runs that happened to beat
                    // the budget is right-censored and would bias the
                    // fitted exponent downward with no marker in the
                    // artifact.
                    if s.mean > 0.0 && hit.len() as u64 == sims {
                        fit_points.push((kind, n, k, s.mean));
                    }
                    vec![
                        kind.to_string(),
                        n.to_string(),
                        k.to_string(),
                        format!("{}/{sims}", hit.len()),
                        f3(s.mean / norm),
                        f3(s.median / norm),
                        f3(s.max / norm),
                    ]
                };
                table.push(row);
                measurements.push(Json::obj([
                    ("strategy", kind.into()),
                    ("n", n.into()),
                    ("k", k.into()),
                    ("stabilized", hit.len().into()),
                    (
                        "times",
                        Json::Arr(
                            times
                                .iter()
                                .map(|t| t.map_or(Json::Null, Json::from))
                                .collect(),
                        ),
                    ),
                ]));
            }
        }
    }
    exp.emit(&table);

    // Power fits: mean honest-stabilization ≈ a·n^b per (strategy, k).
    // Tolerated strategies should land in the Θ(n² log n) band (b a
    // little above 2, like the fault-free protocol and the recovery
    // study); a much larger exponent is the quantitative signature of a
    // strategy the honest population must out-race.
    let mut fits = Vec::new();
    if sizes.len() >= 2 {
        let mut fit_table = Table::new(
            "Honest-stabilization scaling: mean ~ a * n^b per (strategy, k), \
             fully-stabilized points only"
                .to_string(),
            &["strategy", "k", "a", "exponent b", "R^2", "points"],
        );
        for kind in KINDS {
            for &k in &ks {
                let points: Vec<(f64, f64)> = fit_points
                    .iter()
                    .filter(|(s, _, kk, _)| *s == kind && *kk == k)
                    .map(|&(_, n, _, mean)| (n as f64, mean))
                    .collect();
                if points.len() < 2 {
                    continue;
                }
                let fit = power_fit(&points);
                fit_table.push(vec![
                    kind.to_string(),
                    k.to_string(),
                    format!("{:.4e}", fit.a),
                    f3(fit.b),
                    f3(fit.r_squared),
                    points.len().to_string(),
                ]);
                fits.push(Json::obj([
                    ("strategy", kind.into()),
                    ("k", k.into()),
                    ("a", fit.a.into()),
                    ("b", fit.b.into()),
                    ("r_squared", fit.r_squared.into()),
                    ("points", points.len().into()),
                ]));
            }
        }
        if !fit_table.rows.is_empty() {
            exp.emit(&fit_table);
        }
    }

    // Exhaustive classification at tiny n: explore every configuration
    // reachable from the clean start under every adversary behavior,
    // in both placement models. Infiltration is what the curves above
    // measure; replacement exists to *prove* the structural livelock
    // (the protocol's phase geometry hard-codes its participant count,
    // so a non-participating adversary that replaces an honest agent
    // leaves the leader waiting for a phase agent that cannot exist).
    let mut classifications = Vec::new();
    if !exp.flag("no-classify") {
        let cn: usize = exp.get("classify_n", 3);
        // Pin-style strategies (fixed disguise) conclude at ~325k
        // reachable configurations with 3 honest agents; participating
        // strategies (mimic, coin_jammer) exceed any practical cap on
        // the infiltrate model and honestly report "inconclusive".
        let cap: usize = exp.get("classify_cap", 500_000);
        // The fully nondeterministic recorrupt branches over the whole
        // state space at every touch; its reachable set dwarfs the
        // others', so it gets its own (much smaller) default cap and is
        // expected to report "inconclusive" — its verdict rests on the
        // probabilistic evidence above.
        let cap_recorrupt: usize = exp.get("classify_cap_recorrupt", 20_000);
        let kinds: Vec<String> = exp
            .args()
            .get_str("classify_kinds")
            .map(|s| s.split(',').map(|k| k.trim().to_string()).collect())
            .unwrap_or_else(|| KINDS.iter().map(|k| k.to_string()).collect());
        let mut ctable = Table::new(
            format!("Exhaustive classification at {cn} honest agents, k = 1 (cap {cap})"),
            &[
                "strategy",
                "model",
                "verdict",
                "reachable",
                "silent",
                "silent bad",
                "unrecoverable",
            ],
        );
        for kind in &kinds {
            for model in ["infiltrate", "replace"] {
                let protocol = StableRanking::new(Params::new(cn));
                let init = protocol.initial();
                // recorrupt needs its branching universe for soundness.
                let strategy: Box<dyn scenarios::Strategy<StableRanking>> = if kind == "recorrupt" {
                    Box::new(ranking_byz::recorrupt_exhaustive(&protocol))
                } else {
                    ranking_byz::standard(kind, &protocol)
                };
                let byz = if model == "infiltrate" {
                    Byzantine::new(protocol, strategy, 1, 1)
                } else {
                    Byzantine::replacing(protocol, strategy, 1, 1)
                };
                let init = byz.init(init);
                let kind_cap = if kind == "recorrupt" {
                    cap_recorrupt
                } else {
                    cap
                };
                let (row, json) = match classify(&byz, init, kind_cap) {
                    Some(c) => (
                        vec![
                            kind.clone(),
                            model.to_string(),
                            c.verdict.label().to_string(),
                            c.reachable.to_string(),
                            c.silent.to_string(),
                            c.silent_invalid.to_string(),
                            c.unrecoverable.to_string(),
                        ],
                        Json::obj([
                            ("strategy", kind.as_str().into()),
                            ("model", model.into()),
                            ("n", cn.into()),
                            ("verdict", c.verdict.label().into()),
                            ("reachable", c.reachable.into()),
                            ("silent", c.silent.into()),
                            ("silent_invalid", c.silent_invalid.into()),
                            ("unrecoverable", c.unrecoverable.into()),
                        ]),
                    ),
                    None => (
                        vec![
                            kind.clone(),
                            model.to_string(),
                            format!("inconclusive (cap {kind_cap} hit)"),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                        ],
                        Json::obj([
                            ("strategy", kind.as_str().into()),
                            ("model", model.into()),
                            ("n", cn.into()),
                            ("verdict", "inconclusive".into()),
                        ]),
                    ),
                };
                ctable.push(row);
                classifications.push(json);
            }
        }
        exp.emit(&ctable);
    }

    let payload = Json::obj([
        (
            "sizes",
            Json::Arr(sizes.iter().map(|&n| n.into()).collect()),
        ),
        ("ks", Json::Arr(ks.iter().map(|&k| k.into()).collect())),
        ("sims", sims.into()),
        ("budget_c", budget_c.into()),
        ("check_every", "n".into()),
        (
            "engine",
            if shards >= 1 { "sharded" } else { "sequential" }.into(),
        ),
        ("measurements", Json::Arr(measurements)),
        ("fits", Json::Arr(fits)),
        ("classification", Json::Arr(classifications)),
    ]);
    exp.write_json("BENCH_byz.json", payload);
    exp.note(
        "\nexpected shape: crash, lurker, and coin_jammer are tolerated — honest \
         stabilization roughly constant in the n^2 log2 n unit, a constant-factor \
         premium over the fault-free protocol. rank_squatter, mimic, and recorrupt \
         never honest-stabilize within budget: each ranking round must outrace the \
         adversary-minted duplicate-meeting resets (possibilistically tolerated per \
         the classification, probabilistically starved). The replace-model rows \
         prove the structural livelock that motivates the infiltration default.",
    );
}
