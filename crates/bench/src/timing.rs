//! Wall-clock micro-benchmark helper (replaces the external `criterion`
//! dependency for the `benches/` targets and the engine-throughput
//! experiment).
//!
//! Methodology: run a warm-up, then time `samples` repetitions of the
//! workload and report the distribution. The *median* is the headline
//! number — robust to scheduler noise on shared machines — with min/max
//! retained for dispersion.

use std::time::Instant;

/// Timing distribution over repeated runs of a workload.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Median seconds per run.
    pub median_s: f64,
    /// Fastest run, seconds.
    pub min_s: f64,
    /// Slowest run, seconds.
    pub max_s: f64,
    /// Number of timed runs.
    pub samples: usize,
}

impl Timing {
    /// Throughput in events per second, given events per run.
    pub fn per_second(&self, events_per_run: f64) -> f64 {
        events_per_run / self.median_s
    }
}

/// Time `samples` runs of `work` (after `warmup` untimed runs).
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn time_runs(warmup: usize, samples: usize, mut work: impl FnMut()) -> Timing {
    assert!(samples > 0, "need at least one timed sample");
    for _ in 0..warmup {
        work();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            work();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    Timing {
        median_s: times[times.len() / 2],
        min_s: times[0],
        max_s: times[times.len() - 1],
        samples,
    }
}

/// Run and report one named benchmark: `events_per_run` events per
/// invocation of `work`, printed as events/second.
pub fn bench(name: &str, events_per_run: u64, warmup: usize, samples: usize, work: impl FnMut()) {
    let t = time_runs(warmup, samples, work);
    println!(
        "{name:<44} {:>10.2} M/s  (median of {}, min {:.2} M/s, max {:.2} M/s)",
        t.per_second(events_per_run as f64) / 1e6,
        t.samples,
        events_per_run as f64 / t.max_s / 1e6,
        events_per_run as f64 / t.min_s / 1e6,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_between_min_and_max() {
        let mut x = 0u64;
        let t = time_runs(1, 5, || {
            for i in 0..10_000 {
                x = x.wrapping_add(i);
            }
        });
        std::hint::black_box(x);
        assert!(t.min_s <= t.median_s && t.median_s <= t.max_s);
        assert_eq!(t.samples, 5);
    }

    #[test]
    fn per_second_scales_with_events() {
        let t = Timing {
            median_s: 0.5,
            min_s: 0.4,
            max_s: 0.6,
            samples: 3,
        };
        assert_eq!(t.per_second(1_000_000.0), 2_000_000.0);
    }
}
