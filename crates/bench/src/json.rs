//! Minimal JSON emission (no external dependencies).
//!
//! Experiments persist machine-readable results — e.g. the engine
//! throughput trajectory in `BENCH_engine.json` — alongside their
//! human-readable tables. This module provides the small value type and
//! serializer they need; there is deliberately no parser.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (kept exact; not routed through f64).
    Int(i64),
    /// Unsigned integer (kept exact; not routed through f64).
    UInt(u64),
    /// Floating-point number. Non-finite values serialize as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(v) => write!(f, "{v}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => write!(f, "null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape(k, f)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Pretty-print with two-space indentation (for committed artifacts
/// that humans diff).
pub fn pretty(value: &Json) -> String {
    fn go(value: &Json, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match value {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    go(item, indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    out.push_str(&Json::Str(k.clone()).to_string());
                    out.push_str(": ");
                    go(v, indent + 1, out);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
    let mut out = String::new();
    go(value, 0, &mut out);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Json::obj([
            ("name", "engine".into()),
            ("speedup", 1.5.into()),
            ("ns", Json::arr([1000u64.into(), 100_000u64.into()])),
            ("ok", true.into()),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"engine","speedup":1.5,"ns":[1000,100000],"ok":true,"nan":null}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = Json::Str("a\"b\\c\nd".to_string());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn large_u64_survives_exactly() {
        let v = Json::from(u64::MAX);
        assert_eq!(v.to_string(), u64::MAX.to_string());
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Json::obj([("a", Json::arr([1u64.into()]))]);
        assert_eq!(pretty(&v), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }
}
