//! The unified experiment harness.
//!
//! Every binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation. They all share the same shape — parse a few CLI knobs,
//! fan a measurement out over seeds, aggregate into tables, emit as an
//! aligned table, CSV, or JSON — and [`Experiment`] implements that
//! shape once:
//!
//! * **CLI**: `key=value` arguments and `--flag`s ([`crate::cli::Args`]),
//!   plus the shared conventions `sims=`, `seed0=`, `out=`, `--csv`.
//! * **Seed fan-out**: [`Experiment::run_seeds`] dispatches one job per
//!   seed over [`population::runner::run_seeds`] (scoped threads, results
//!   in seed order).
//! * **Emission**: [`Experiment::emit`] renders tables aligned for
//!   humans or as CSV under `--csv`; [`Experiment::write_json`] persists
//!   structured results (default path overridable with `out=`).

use telemetry::RunManifest;

use crate::cli::Args;
use crate::json::{self, Json};
use crate::table::Table;

/// One experiment run: name + parsed CLI + emission conventions.
#[derive(Debug)]
pub struct Experiment {
    name: String,
    args: Args,
}

impl Experiment {
    /// Build from the process arguments.
    pub fn from_env(name: &str) -> Self {
        Self::with_args(name, Args::from_env())
    }

    /// Build from explicit arguments (testable).
    pub fn with_args(name: &str, args: Args) -> Self {
        Self {
            name: name.to_string(),
            args,
        }
    }

    /// The experiment name (used in default artifact paths).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parsed arguments.
    pub fn args(&self) -> &Args {
        &self.args
    }

    /// `key=value` lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.args.get(key, default)
    }

    /// Is `--flag` present?
    pub fn flag(&self, name: &str) -> bool {
        self.args.flag(name)
    }

    /// Number of simulations per point: `sims=` with a default.
    pub fn sims(&self, default: u64) -> u64 {
        self.args.get("sims", default)
    }

    /// The durability directory, if the run asked for one:
    /// `checkpoint_dir=` names where snapshot rotations and sweep logs
    /// live. Binaries that support crash-consistent restarts share this
    /// one spelling (see `docs/DURABILITY.md`).
    pub fn checkpoint_dir(&self) -> Option<&str> {
        self.args.get_str("checkpoint_dir")
    }

    /// Checkpoint cadence in interactions: `checkpoint_every=` with a
    /// default.
    pub fn checkpoint_every(&self, default: u64) -> u64 {
        self.args.get("checkpoint_every", default)
    }

    /// An explicit snapshot file to resume from: `resume=`. Overrides
    /// the rotation directory's newest-valid pick; binaries without a
    /// `checkpoint_dir=` can still restart from a named file.
    pub fn resume_path(&self) -> Option<&str> {
        self.args.get_str("resume")
    }

    /// The seed list for `count` simulations: `seed0=, seed0+1, …`
    /// (`seed0` defaults to 0, overridable for independent replications).
    pub fn seeds(&self, count: u64) -> Vec<u64> {
        let seed0: u64 = self.args.get("seed0", 0);
        (seed0..seed0 + count).collect()
    }

    /// Run `job` once per seed in parallel, returning results in seed
    /// order. Seeds are `seed0= .. seed0+count`.
    pub fn run_seeds<R, F>(&self, count: u64, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(u64) -> R + Sync,
    {
        population::runner::run_seeds(&self.seeds(count), job)
    }

    /// Emit a table: CSV to stdout under `--csv`, aligned otherwise.
    ///
    /// Binaries that emit several tables produce several CSV sections;
    /// each is preceded by a `# <title>` comment line so consumers can
    /// split the stream (or drop comments, e.g. pandas `comment='#'`).
    pub fn emit(&self, table: &Table) {
        if self.flag("csv") {
            println!("# {}", table.title);
            print!("{}", table.render_csv());
        } else {
            print!("{}", table.render_aligned());
        }
    }

    /// Print a free-form note (suppressed under `--csv` so piped output
    /// stays machine-readable).
    pub fn note(&self, text: &str) {
        if !self.flag("csv") {
            println!("{text}");
        }
    }

    /// The run-provenance manifest for this invocation: experiment
    /// name, the parsed CLI arguments and flags, git revision, rustc
    /// version, host cores, and capture time (each environment probe
    /// degrading to `"unknown"` when unavailable).
    pub fn manifest(&self) -> RunManifest {
        RunManifest::capture(&self.name)
            .with_args(self.args.entries())
            .with_flags(self.args.flags().iter().cloned())
    }

    /// Render a [`RunManifest`] as a JSON object (the `manifest` block
    /// of every artifact envelope).
    pub fn manifest_json(manifest: &RunManifest) -> Json {
        Json::obj([
            ("experiment", manifest.experiment.as_str().into()),
            (
                "args",
                Json::Obj(
                    manifest
                        .args
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "flags",
                Json::Arr(
                    manifest
                        .flags
                        .iter()
                        .map(|f| Json::Str(f.clone()))
                        .collect(),
                ),
            ),
            ("git_rev", manifest.git_rev.as_str().into()),
            ("rustc", manifest.rustc.as_str().into()),
            ("host_cores", manifest.host_cores.into()),
            ("unix_time_s", manifest.unix_time_s.into()),
            ("schema_version", manifest.schema_version.into()),
        ])
    }

    /// Write a JSON artifact to `default_path` (overridable with
    /// `out=`), pretty-printed, wrapped in an envelope recording the
    /// experiment name and a run-provenance [`RunManifest`]
    /// (arguments, git revision, rustc, host cores, capture time).
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — experiment artifacts are
    /// the whole point of a run, so failing loudly beats a silent skip.
    pub fn write_json(&self, default_path: &str, payload: Json) {
        let path = self.args.get_str("out").unwrap_or(default_path).to_string();
        let envelope = Json::obj([
            ("experiment", self.name.as_str().into()),
            ("manifest", Self::manifest_json(&self.manifest())),
            ("results", payload),
        ]);
        std::fs::write(&path, json::pretty(&envelope))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        self.note(&format!("wrote {path}"));
    }

    /// Convert a table into a JSON array of row objects (headers become
    /// keys; cells stay strings — numeric reinterpretation is the
    /// consumer's choice).
    pub fn table_json(table: &Table) -> Json {
        Json::Arr(
            table
                .rows
                .iter()
                .map(|row| {
                    Json::Obj(
                        table
                            .headers
                            .iter()
                            .zip(row)
                            .map(|(h, c)| (h.clone(), Json::Str(c.clone())))
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(args: &[&str]) -> Experiment {
        Experiment::with_args("demo", Args::parse(args.iter().map(|s| s.to_string())))
    }

    #[test]
    fn seeds_start_at_seed0() {
        assert_eq!(exp(&[]).seeds(3), vec![0, 1, 2]);
        assert_eq!(exp(&["seed0=10"]).seeds(3), vec![10, 11, 12]);
    }

    #[test]
    fn run_seeds_is_in_order() {
        let out = exp(&[]).run_seeds(8, |s| s * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn sims_reads_argument_with_default() {
        assert_eq!(exp(&[]).sims(25), 25);
        assert_eq!(exp(&["sims=4"]).sims(25), 4);
    }

    #[test]
    fn checkpoint_conventions_share_one_spelling() {
        let e = exp(&[
            "checkpoint_dir=ckpt",
            "checkpoint_every=5000",
            "resume=a.ssr",
        ]);
        assert_eq!(e.checkpoint_dir(), Some("ckpt"));
        assert_eq!(e.checkpoint_every(1), 5000);
        assert_eq!(e.resume_path(), Some("a.ssr"));
        let bare = exp(&[]);
        assert_eq!(bare.checkpoint_dir(), None);
        assert_eq!(bare.checkpoint_every(7), 7);
        assert_eq!(bare.resume_path(), None);
    }

    #[test]
    fn manifest_carries_sorted_cli_args_and_flags() {
        let e = exp(&["n=8", "--full", "a=1"]);
        let m = e.manifest();
        assert_eq!(m.experiment, "demo");
        assert_eq!(
            m.args,
            vec![("a".into(), "1".into()), ("n".into(), "8".into())]
        );
        assert_eq!(m.flags, ["full"]);
        let j = Experiment::manifest_json(&m).to_string();
        assert!(j.contains("\"git_rev\""), "{j}");
        assert!(j.contains("\"schema_version\""), "{j}");
        assert!(j.contains("\"args\":{\"a\":\"1\",\"n\":\"8\"}"), "{j}");
    }

    #[test]
    fn table_json_zips_headers_and_cells() {
        let mut t = Table::new("t", &["n", "mean"]);
        t.push(vec!["8".into(), "1.5".into()]);
        let j = Experiment::table_json(&t);
        assert_eq!(j.to_string(), r#"[{"n":"8","mean":"1.5"}]"#);
    }
}
