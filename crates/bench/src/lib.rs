//! Unified experiment harness for the figure/table regeneration
//! binaries.
//!
//! Every binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see the module docs of each). They are all built on
//! [`Experiment`]: shared CLI parsing (`key=value` plus `--flag`s), seed
//! fan-out over scoped threads, and structured emission (aligned table,
//! CSV under `--csv`, JSON artifacts via `out=`), e.g.
//!
//! ```text
//! cargo run --release -p bench --bin fig3 -- sims=100 --full --csv
//! cargo run --release -p bench --bin engine_throughput -- out=BENCH_engine.json
//! ```
//!
//! Shared CLI conventions across all binaries:
//!
//! | argument  | meaning                                            |
//! |-----------|----------------------------------------------------|
//! | `sims=N`  | simulations per measured point                     |
//! | `seed0=S` | first seed of the fan-out (default 0)              |
//! | `--csv`   | machine-readable CSV instead of aligned tables     |
//! | `out=P`   | override the JSON artifact path (where supported)  |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiment;
pub mod json;
pub mod measure;
pub mod table;
pub mod timing;

pub use cli::Args;
pub use experiment::Experiment;
pub use json::Json;
pub use table::{f3, Table};
