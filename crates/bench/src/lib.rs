//! Shared harness for the figure/table regeneration binaries.
//!
//! Every binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §4 and EXPERIMENTS.md). They share the tiny
//! CLI convention implemented here: `key=value` arguments plus bare flags,
//! e.g.
//!
//! ```text
//! cargo run --release -p bench --bin fig3 -- sims=100 --full
//! ```
//!
//! Results are printed as aligned tables (and the raw series as CSV to
//! stdout when `--csv` is passed) so they can be compared directly with
//! the paper's plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Parsed command-line arguments: `key=value` pairs and `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        for arg in args {
            if let Some(flag) = arg.strip_prefix("--") {
                out.flags.push(flag.to_string());
            } else if let Some((k, v)) = arg.split_once('=') {
                out.values.insert(k.to_string(), v.to_string());
            }
        }
        out
    }

    /// `key=value` lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Is `--flag` present?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Print an aligned table with a header row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Print rows as CSV (for piping into plotting tools).
pub fn print_csv(headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", headers.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
}

/// Format a float with three significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_values_and_flags() {
        let a = Args::parse(
            ["n=128", "--full", "sims=25"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.get("n", 0usize), 128);
        assert_eq!(a.get("sims", 0usize), 25);
        assert_eq!(a.get("missing", 7u64), 7);
        assert!(a.flag("full"));
        assert!(!a.flag("csv"));
    }

    #[test]
    fn malformed_values_fall_back_to_default() {
        let a = Args::parse(["n=abc".to_string()]);
        assert_eq!(a.get("n", 42usize), 42);
    }
}
