//! End-to-end stabilization wall time at a small population size, across
//! the implemented protocols. Complements the `bench` binaries (which
//! report the interaction counts the paper uses) with a like-for-like
//! wall-clock comparison of the implementations. Run with
//! `cargo bench -p bench`.

use std::hint::black_box;

use baselines::burman::BurmanRanking;
use baselines::naive::NaiveLeaderRanking;
use bench::timing::time_runs;
use leader_election::tournament::TournamentLe;
use population::{is_valid_ranking, Simulator};
use ranking::space_efficient::SpaceEfficientRanking;
use ranking::stable::StableRanking;
use ranking::Params;

const N: usize = 64;

fn budget() -> u64 {
    (8000.0 * (N * N) as f64 * (N as f64).log2()) as u64
}

fn report(name: &str, mut run: impl FnMut(u64)) {
    let mut seed = 0;
    let t = time_runs(1, 10, || {
        seed += 1;
        run(seed);
    });
    println!(
        "{name:<44} {:>9.3} ms/run  (median of {}, min {:.3} ms, max {:.3} ms)",
        t.median_s * 1e3,
        t.samples,
        t.min_s * 1e3,
        t.max_s * 1e3
    );
}

fn main() {
    report("stabilize_stable_n64_adversarial", |seed| {
        let protocol = StableRanking::new(Params::new(N));
        let init = protocol.adversarial_uniform(seed);
        let mut sim = Simulator::new(protocol, init, seed);
        let stop = sim.run_until(is_valid_ranking, budget(), N as u64);
        black_box(stop.converged_at());
    });
    report("stabilize_space_efficient_n64", |seed| {
        let protocol = SpaceEfficientRanking::new(&Params::new(N), TournamentLe::for_n(N));
        let init = protocol.initial();
        let mut sim = Simulator::new(protocol, init, seed);
        let stop = sim.run_until(is_valid_ranking, budget(), N as u64);
        black_box(stop.converged_at());
    });
    report("stabilize_burman_n64_adversarial", |seed| {
        let protocol = BurmanRanking::new(N);
        let init = protocol.adversarial(seed);
        let mut sim = Simulator::new(protocol, init, seed);
        let stop = sim.run_until(is_valid_ranking, budget(), N as u64);
        black_box(stop.converged_at());
    });
    report("stabilize_naive_n64", |seed| {
        let protocol = NaiveLeaderRanking::new(N);
        let init = protocol.initial();
        let mut sim = Simulator::new(protocol, init, seed);
        let stop = sim.run_until(is_valid_ranking, budget(), N as u64);
        black_box(stop.converged_at());
    });
}
