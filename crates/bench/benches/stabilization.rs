//! End-to-end stabilization wall time at a small population size, across
//! the implemented protocols. Complements the `bench` binaries (which
//! report the interaction counts the paper uses) with a like-for-like
//! wall-clock comparison of the implementations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use baselines::burman::BurmanRanking;
use baselines::naive::NaiveLeaderRanking;
use leader_election::tournament::TournamentLe;
use population::{is_valid_ranking, Simulator};
use ranking::space_efficient::SpaceEfficientRanking;
use ranking::stable::StableRanking;
use ranking::Params;

const N: usize = 64;

fn budget() -> u64 {
    (8000.0 * (N * N) as f64 * (N as f64).log2()) as u64
}

fn bench_stable(c: &mut Criterion) {
    let mut seed = 0;
    c.bench_function("stabilize_stable_n64_adversarial", |b| {
        b.iter(|| {
            seed += 1;
            let protocol = StableRanking::new(Params::new(N));
            let init = protocol.adversarial_uniform(seed);
            let mut sim = Simulator::new(protocol, init, seed);
            let stop = sim.run_until(is_valid_ranking, budget(), N as u64);
            black_box(stop.converged_at())
        });
    });
}

fn bench_space_efficient(c: &mut Criterion) {
    let mut seed = 0;
    c.bench_function("stabilize_space_efficient_n64", |b| {
        b.iter(|| {
            seed += 1;
            let protocol = SpaceEfficientRanking::new(&Params::new(N), TournamentLe::for_n(N));
            let init = protocol.initial();
            let mut sim = Simulator::new(protocol, init, seed);
            let stop = sim.run_until(is_valid_ranking, budget(), N as u64);
            black_box(stop.converged_at())
        });
    });
}

fn bench_burman(c: &mut Criterion) {
    let mut seed = 0;
    c.bench_function("stabilize_burman_n64_adversarial", |b| {
        b.iter(|| {
            seed += 1;
            let protocol = BurmanRanking::new(N);
            let init = protocol.adversarial(seed);
            let mut sim = Simulator::new(protocol, init, seed);
            let stop = sim.run_until(is_valid_ranking, budget(), N as u64);
            black_box(stop.converged_at())
        });
    });
}

fn bench_naive(c: &mut Criterion) {
    let mut seed = 0;
    c.bench_function("stabilize_naive_n64", |b| {
        b.iter(|| {
            seed += 1;
            let protocol = NaiveLeaderRanking::new(N);
            let init = protocol.initial();
            let mut sim = Simulator::new(protocol, init, seed);
            let stop = sim.run_until(is_valid_ranking, budget(), N as u64);
            black_box(stop.converged_at())
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_stable, bench_space_efficient, bench_burman, bench_naive
}
criterion_main!(benches);
