//! Summary statistics over experiment outputs.

/// Summary of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for a single value).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
}

impl Summary {
    /// Summarize a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
        }
    }

    /// The `q`-quantile of the summarized sample is not stored; use
    /// [`quantile`] on the raw data for other quantiles.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) of a sample, with linear interpolation.
///
/// # Panics
///
/// Panics on an empty sample, a `NaN` value, or `q` outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "cannot take quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&sorted, q)
}

fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with Bessel correction: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn single_value_summary() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(quantile(&a, 0.5), quantile(&b, 0.5));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::of(&[10.0, 10.0, 10.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }
}
