//! Spectral-gap estimation for interaction topologies.
//!
//! For a connected undirected graph with adjacency `A` and degree
//! matrix `D`, the random-walk matrix `P = D⁻¹A` has eigenvalues
//! `1 = λ₁ > λ₂ ≥ … ≥ λₙ ≥ −1`. The **spectral gap** `1 − λ₂` governs
//! how fast local information spreads: expanders have `Θ(1)` gap, the
//! ring's gap vanishes as `Θ(1/n²)`. It is the natural x-axis for the
//! stabilization-time-vs-topology curve in `BENCH_topo.json` — protocol
//! convergence on a graph-restricted scheduler is rate-limited by
//! mixing, and the gap *is* the mixing rate.
//!
//! The estimator is power iteration — but on the **lazy** chain
//! `Q = (I + P)/2` rather than `P` itself. `P` on a bipartite graph
//! (even ring, torus with an even side) has `λₙ = −1`, whose magnitude
//! ties `λ₂`'s and defeats naive power iteration; `Q`'s spectrum is
//! `(1 + λᵢ)/2 ∈ [0, 1]`, strictly ordered the same way, so the
//! second-largest eigenvalue of `Q` is always `(1 + λ₂)/2` regardless
//! of bipartiteness. We deflate the known top eigenvector (the all-ones
//! vector, with stationary left measure `π_i = deg_i / 2m`) via the
//! π-weighted projection, iterate, and read `λ₂` off the Rayleigh
//! quotient. Closed forms pin the tests: complete graph gap
//! `n/(n−1)`, ring `1 − cos(2π/n)`, torus via
//! `(cos(2πa/w) + cos(2πb/h))/2`.

/// Result of a spectral-gap estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapEstimate {
    /// Second-largest eigenvalue `λ₂` of the walk matrix `P = D⁻¹A`
    /// (signed — can be negative on graphs whose second eigenvalue is).
    pub lambda2: f64,
    /// The spectral gap `1 − λ₂`.
    pub gap: f64,
    /// Power-iteration steps actually used (equal to the budget when
    /// the tolerance was not reached — pessimistic, not an error).
    pub iterations: usize,
}

/// Estimate the spectral gap of the normalized adjacency `P = D⁻¹A` of
/// the connected undirected graph given in CSR form (`offsets` has
/// `n + 1` entries; vertex `i`'s neighbors are
/// `targets[offsets[i]..offsets[i+1]]`).
///
/// Runs at most `max_iters` lazy-walk power-iteration steps, stopping
/// early once the iterate's Rayleigh quotient moves less than `tol`
/// between steps. `max_iters = 20_000, tol = 1e-12` resolves every
/// graph benched here to ~9 digits.
///
/// # Panics
///
/// Panics on an empty graph, malformed CSR (offsets/targets length
/// mismatch), or an isolated vertex (degree 0 makes `D⁻¹` undefined —
/// and an agent that can never interact is a modeling error upstream).
pub fn normalized_gap(
    offsets: &[usize],
    targets: &[u32],
    max_iters: usize,
    tol: f64,
) -> GapEstimate {
    let n = offsets.len().checked_sub(1).expect("empty CSR offsets");
    assert!(n > 0, "spectral gap of an empty graph");
    assert_eq!(offsets[n], targets.len(), "CSR offsets/targets mismatch");
    let degree: Vec<f64> = (0..n)
        .map(|i| (offsets[i + 1] - offsets[i]) as f64)
        .collect();
    assert!(
        degree.iter().all(|&d| d > 0.0),
        "isolated vertex: normalized adjacency undefined"
    );
    let two_m: f64 = degree.iter().sum();
    // Stationary measure of the walk; the π-weighted inner product is
    // the one in which P is self-adjoint, so deflation must use it.
    let pi: Vec<f64> = degree.iter().map(|&d| d / two_m).collect();

    // Deterministic non-trivial start vector (index ramp), deflated.
    let mut v: Vec<f64> = (0..n)
        .map(|i| (i as f64) - (n as f64 - 1.0) / 2.0)
        .collect();
    deflate(&mut v, &pi);
    assert!(
        normalize(&mut v, &pi),
        "start vector degenerate (single-vertex graph?)"
    );

    let mut next = vec![0.0f64; n];
    let mut mu_prev = f64::NAN;
    let mut used = max_iters;
    for step in 0..max_iters {
        // next = Q v with Q = (I + D⁻¹A)/2.
        for i in 0..n {
            let mut acc = 0.0;
            for &j in &targets[offsets[i]..offsets[i + 1]] {
                acc += v[j as usize];
            }
            next[i] = 0.5 * (v[i] + acc / degree[i]);
        }
        deflate(&mut next, &pi);
        // Rayleigh quotient μ = ⟨v, Qv⟩_π with ‖v‖_π = 1.
        let mu: f64 = v
            .iter()
            .zip(&next)
            .zip(&pi)
            .map(|((&a, &b), &p)| p * a * b)
            .sum();
        // Q can annihilate the whole deflated subspace (K₂: λ₂ = −1,
        // lazy eigenvalue 0) — then μ is exact, not an iterate.
        if !normalize(&mut next, &pi) {
            used = step + 1;
            mu_prev = mu;
            break;
        }
        std::mem::swap(&mut v, &mut next);
        if (mu - mu_prev).abs() < tol {
            used = step + 1;
            mu_prev = mu;
            break;
        }
        mu_prev = mu;
    }
    // μ is the second-largest eigenvalue of Q; undo the lazy map.
    let lambda2 = 2.0 * mu_prev - 1.0;
    GapEstimate {
        lambda2,
        gap: 1.0 - lambda2,
        iterations: used,
    }
}

/// Remove the π-component along the all-ones top eigenvector:
/// `v ← v − (Σ πᵢ vᵢ) · 1`.
fn deflate(v: &mut [f64], pi: &[f64]) {
    let proj: f64 = v.iter().zip(pi).map(|(&x, &p)| p * x).sum();
    for x in v.iter_mut() {
        *x -= proj;
    }
}

/// Scale to unit π-norm (`Σ πᵢ vᵢ² = 1`); returns `false` (leaving `v`
/// untouched) if the iterate collapsed to zero.
fn normalize(v: &mut [f64], pi: &[f64]) -> bool {
    let norm: f64 = v
        .iter()
        .zip(pi)
        .map(|(&x, &p)| p * x * x)
        .sum::<f64>()
        .sqrt();
    if norm <= 0.0 {
        return false;
    }
    for x in v.iter_mut() {
        *x /= norm;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CSR for the complete graph on `n` vertices.
    fn complete_csr(n: usize) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = vec![0usize];
        let mut targets = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    targets.push(j as u32);
                }
            }
            offsets.push(targets.len());
        }
        (offsets, targets)
    }

    /// CSR for the cycle on `n` vertices.
    fn ring_csr(n: usize) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = vec![0usize];
        let mut targets = Vec::new();
        for i in 0..n {
            let prev = ((i + n - 1) % n) as u32;
            let next = ((i + 1) % n) as u32;
            targets.push(prev.min(next));
            targets.push(prev.max(next));
            offsets.push(targets.len());
        }
        (offsets, targets)
    }

    /// CSR for the w×h torus (wrap in both dimensions).
    fn torus_csr(w: usize, h: usize) -> (Vec<usize>, Vec<u32>) {
        let at = |r: usize, c: usize| (r * w + c) as u32;
        let mut offsets = vec![0usize];
        let mut targets = Vec::new();
        for r in 0..h {
            for c in 0..w {
                let mut row = vec![
                    at(r, (c + 1) % w),
                    at(r, (c + w - 1) % w),
                    at((r + 1) % h, c),
                    at((r + h - 1) % h, c),
                ];
                row.sort_unstable();
                targets.extend(row);
                offsets.push(targets.len());
            }
        }
        (offsets, targets)
    }

    #[test]
    fn complete_graph_matches_closed_form() {
        // K_n: λ₂(P) = −1/(n−1), gap = n/(n−1).
        for n in [3usize, 8, 50] {
            let (o, t) = complete_csr(n);
            let est = normalized_gap(&o, &t, 20_000, 1e-13);
            let expect = n as f64 / (n as f64 - 1.0);
            assert!(
                (est.gap - expect).abs() < 1e-8,
                "K_{n}: gap {} vs {}",
                est.gap,
                expect
            );
        }
    }

    #[test]
    fn ring_matches_closed_form_even_and_odd() {
        // C_n: λ₂(P) = cos(2π/n). Even n is bipartite (λₙ = −1) —
        // the lazy-walk trick must still land on λ₂, not |λₙ|.
        for n in [8usize, 9, 32, 33] {
            let (o, t) = ring_csr(n);
            let est = normalized_gap(&o, &t, 50_000, 1e-14);
            let expect = (2.0 * std::f64::consts::PI / n as f64).cos();
            assert!(
                (est.lambda2 - expect).abs() < 1e-7,
                "C_{n}: λ₂ {} vs {}",
                est.lambda2,
                expect
            );
        }
    }

    #[test]
    fn torus_matches_closed_form() {
        // w×h torus: λ(P) = (cos(2πa/w) + cos(2πb/h))/2; λ₂ takes the
        // smallest nonzero frequency on the longer side.
        let (w, h) = (6usize, 4usize);
        let (o, t) = torus_csr(w, h);
        let est = normalized_gap(&o, &t, 50_000, 1e-14);
        let expect = (1.0 + (2.0 * std::f64::consts::PI / w as f64).cos()) / 2.0;
        assert!(
            (est.lambda2 - expect).abs() < 1e-7,
            "torus: λ₂ {} vs {}",
            est.lambda2,
            expect
        );
    }

    #[test]
    fn two_vertices_single_edge() {
        // K_2: P swaps the vertices, λ₂ = −1, gap = 2 (the maximum).
        let offsets = vec![0usize, 1, 2];
        let targets = vec![1u32, 0];
        let est = normalized_gap(&offsets, &targets, 10_000, 1e-13);
        assert!((est.gap - 2.0).abs() < 1e-9, "K_2 gap {}", est.gap);
    }

    #[test]
    fn gap_orders_ring_below_complete() {
        let (ro, rt) = ring_csr(24);
        let (co, ct) = complete_csr(24);
        let ring = normalized_gap(&ro, &rt, 20_000, 1e-12);
        let complete = normalized_gap(&co, &ct, 20_000, 1e-12);
        assert!(ring.gap < complete.gap);
        assert!(ring.gap > 0.0);
    }

    #[test]
    #[should_panic(expected = "isolated vertex")]
    fn rejects_isolated_vertex() {
        // Vertex 2 has no neighbors.
        let offsets = vec![0usize, 1, 2, 2];
        let targets = vec![1u32, 0];
        let _ = normalized_gap(&offsets, &targets, 100, 1e-9);
    }
}
