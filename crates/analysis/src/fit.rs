//! Least-squares fits for scaling-law checks.
//!
//! The experiments verify statements like "stabilization time is
//! `Θ(n² log n)`" by regressing measured times against candidate models.
//! [`linear_fit`] is ordinary least squares on `(x, y)` pairs;
//! [`power_fit`] fits `y = a·x^b` in log–log space, so `b` estimates the
//! polynomial exponent (≈ 2 for `n²`-type growth, ≈ 3 for the Cai et al.
//! baseline).

/// Result of a linear regression `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 = perfect fit).
    pub r_squared: f64,
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// # Panics
///
/// Panics with fewer than two points or when all `x` are equal.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(
        denom.abs() > f64::EPSILON * n * sxx.max(1.0),
        "x values are all equal; slope undefined"
    );
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Result of a power-law fit `y ≈ a · x^b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// Prefactor `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
    /// `R²` of the underlying log–log linear fit.
    pub r_squared: f64,
}

/// Fit `y = a·x^b` by linear regression in log–log space.
///
/// # Panics
///
/// Panics if any coordinate is not strictly positive.
pub fn power_fit(points: &[(f64, f64)]) -> PowerFit {
    assert!(
        points.iter().all(|p| p.0 > 0.0 && p.1 > 0.0),
        "power fit requires strictly positive coordinates"
    );
    let logs: Vec<(f64, f64)> = points.iter().map(|p| (p.0.ln(), p.1.ln())).collect();
    let lf = linear_fit(&logs);
    PowerFit {
        a: lf.intercept.exp(),
        b: lf.slope,
        r_squared: lf.r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 3.0).abs() < 1e-10);
        assert!((f.intercept - 2.0).abs() < 1e-10);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_reasonable_r2() {
        let pts: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let x = i as f64;
                (x, 2.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            })
            .collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 2.0).abs() < 0.05);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn cubic_power_law_recovered() {
        let pts: Vec<(f64, f64)> = [8.0, 16.0, 32.0, 64.0, 128.0]
            .iter()
            .map(|&x| (x, 0.5 * x * x * x))
            .collect();
        let f = power_fit(&pts);
        assert!((f.b - 3.0).abs() < 1e-9);
        assert!((f.a - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quadratic_log_shape_has_exponent_near_two() {
        // y = n² log₂ n should fit with exponent slightly above 2.
        let pts: Vec<(f64, f64)> = [64.0, 128.0, 256.0, 512.0, 1024.0]
            .iter()
            .map(|&x: &f64| (x, x * x * x.log2()))
            .collect();
        let f = power_fit(&pts);
        assert!(
            f.b > 2.0 && f.b < 2.5,
            "exponent {} outside (2, 2.5) for n² log n data",
            f.b
        );
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        let _ = linear_fit(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn power_fit_rejects_nonpositive() {
        let _ = power_fit(&[(0.0, 1.0), (1.0, 2.0)]);
    }
}
