//! Statistics and tail-bound helpers for the experiments.
//!
//! Three jobs:
//!
//! 1. [`stats`] — summary statistics (mean, standard deviation, quantiles)
//!    for experiment outputs;
//! 2. [`fit`] — least-squares fitting used to check scaling laws such as
//!    `T = Θ(n² log n)` (experiments E3/E11);
//! 3. [`bounds`] — the paper's Appendix A tail bounds (Lemmas 12–14) as
//!    executable formulas, so tests and experiments can compare measured
//!    hitting times against the analytic guarantees;
//! 4. [`spectral`] — spectral-gap estimation for interaction graphs
//!    (power iteration on the lazy normalized adjacency), the x-axis of
//!    the topology benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod fit;
pub mod spectral;
pub mod stats;
