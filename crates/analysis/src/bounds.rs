//! The paper's Appendix A tail bounds as executable formulas.
//!
//! These let tests and experiments compare *measured* hitting times of the
//! substrate primitives against the *analytic* high-probability bounds:
//!
//! * Lemma 12 (negative binomial): for `X ~ NegBin(r, p)`,
//!   `Pr[X > (2/p)(r + γ log n)] ≤ n^{-γ}`.
//! * Lemma 13 (coupon collector): for `X ~ CouponCollector(k)`,
//!   `Pr[X > k(log k + γ log n)] ≤ n^{-γ}`.
//! * Lemma 14 (one-way epidemic): for `X ~ OWE(n, m)`,
//!   `Pr[X > (3n²/m)(log m + 2γ log n)] ≤ 2n^{-γ}`.
//!
//! All logarithms are natural, as in the paper's appendix.

/// Lemma 12.1: high-probability upper bound on a `NegBin(r, p)` variable.
///
/// # Panics
///
/// Panics unless `0 < p ≤ 1`, `r ≥ 1`, `n ≥ 2`.
pub fn negbin_upper(r: f64, p: f64, n: f64, gamma: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be a probability");
    assert!(r >= 1.0, "r must be at least 1");
    assert!(n >= 2.0, "population must have at least two agents");
    (2.0 / p) * (r + gamma * n.ln())
}

/// Lemma 12.2: lower bound — `Pr[X ≤ r/(2p)] ≤ exp(−r/6)`.
pub fn negbin_lower(r: f64, p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be a probability");
    0.5 * r / p
}

/// Lemma 13: coupon-collector upper bound `k(log k + γ log n)`.
pub fn coupon_collector_upper(k: f64, n: f64, gamma: f64) -> f64 {
    assert!(k >= 1.0 && n >= k, "need 1 ≤ k ≤ n");
    k * (k.ln() + gamma * n.ln())
}

/// Lemma 14: one-way epidemic upper bound
/// `(3n²/m)(log m + 2γ log n)` for an epidemic among `m` of `n` agents.
///
/// # Panics
///
/// Panics unless `2 ≤ m ≤ n`.
pub fn owe_upper(n: f64, m: f64, gamma: f64) -> f64 {
    assert!(m >= 2.0 && m <= n, "need 2 ≤ m ≤ n");
    3.0 * n * n / m * (m.ln() + 2.0 * gamma * n.ln())
}

/// The waiting-phase bound used in Lemma 6:
/// `T_wait ≤ (c_wait + γ) · 2^k · n log n` interactions for phase `k`.
pub fn wait_phase_upper(n: f64, k: u32, c_wait: f64, gamma: f64) -> f64 {
    (c_wait + gamma) * 2f64.powi(k as i32) * n * n.ln()
}

/// The ranking-phase bound used in Lemma 7:
/// `T_rank ≤ 2n² + 2γ·2^k·n log n` interactions for phase `k`.
pub fn rank_phase_upper(n: f64, k: u32, gamma: f64) -> f64 {
    2.0 * n * n + 2.0 * gamma * 2f64.powi(k as i32) * n * n.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negbin_bound_formula() {
        // r = 10, p = 1/2, n = e², γ = 1: (2/0.5)(10 + 2) = 48.
        let b = negbin_upper(10.0, 0.5, std::f64::consts::E.powi(2), 1.0);
        assert!((b - 48.0).abs() < 1e-9);
    }

    #[test]
    fn negbin_lower_formula() {
        assert!((negbin_lower(10.0, 0.5) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn owe_bound_dominates_complete_epidemic_mean() {
        // The mean of a full one-way epidemic is ≈ 2n ln n interactions
        // (n² / m summed over m); the bound at m = n must exceed it.
        let n = 1000.0f64;
        let mean_approx = 2.0 * n * n.ln();
        assert!(owe_upper(n, n, 1.0) > mean_approx);
    }

    #[test]
    fn owe_bound_grows_as_m_shrinks() {
        let n = 512.0;
        assert!(owe_upper(n, 4.0, 1.0) > owe_upper(n, 256.0, 1.0));
    }

    #[test]
    fn coupon_collector_formula() {
        let k = 100.0;
        let b = coupon_collector_upper(k, k, 1.0);
        assert!((b - 100.0 * (100f64.ln() * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn phase_bounds_increase_with_k() {
        let n = 256.0;
        assert!(wait_phase_upper(n, 3, 2.0, 1.0) > wait_phase_upper(n, 1, 2.0, 1.0));
        assert!(rank_phase_upper(n, 8, 1.0) > rank_phase_upper(n, 1, 1.0));
    }

    #[test]
    #[should_panic(expected = "2 ≤ m ≤ n")]
    fn owe_rejects_tiny_m() {
        let _ = owe_upper(10.0, 1.0, 1.0);
    }
}
