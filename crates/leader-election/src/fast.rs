//! `FastLeaderElection` — Protocol 5 of the paper, implemented exactly.
//!
//! Each agent holds a counter `LECount ∈ [0, L_max]`, a counter
//! `coinCount ∈ [0, ⌈log n⌉]` and flags `leaderDone`, `isLeader`. On each
//! activation as initiator the agent decrements `LECount` and, while not
//! done, observes the responder's synthetic coin: the first observed tails
//! finishes it as a non-leader; an agent whose `coinCount` is exhausted by
//! heads observations becomes the leader. A leader with
//! `LECount ≥ L_max/2` transitions to the main protocol (waiting agent);
//! an agent whose `LECount` hits zero triggers a reset.
//!
//! The module exposes the protocol as a *pure* state machine
//! ([`FastLe::step`]) returning an [`FastLeEffect`] so that the embedding
//! protocol (`StableRanking`) decides how to realize "become waiting
//! leader" and "trigger reset" in its own state space. A standalone
//! wrapper ([`FastLeLottery`]) runs the lottery alone for the Lemma 30
//! experiment (unique-leader probability ≥ 1/(8e)).

use population::Protocol;

/// Parameters of Protocol 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastLe {
    /// `L_max`: interaction budget before an agent assumes election failed.
    pub l_max: u32,
    /// `⌈log n⌉`: number of heads to observe to win the lottery.
    pub coin_target: u32,
}

impl FastLe {
    /// Paper defaults for population size `n`: `coin_target = ⌈log₂ n⌉`,
    /// `L_max = ⌈c_live · log₂ n⌉` (Appendix C bounds `L_max ∈ Θ(log n)`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `c_live` is not finite and positive.
    pub fn for_n(n: usize, c_live: f64) -> Self {
        assert!(n >= 2, "population must have at least two agents");
        assert!(
            c_live.is_finite() && c_live > 0.0,
            "c_live must be positive"
        );
        let log2n = (n as f64).log2();
        Self {
            l_max: (c_live * log2n).ceil() as u32,
            coin_target: log2n.ceil() as u32,
        }
    }

    /// The initial state `q_{0,i}` of Appendix C (the coin bit `i` lives in
    /// the embedding protocol's state).
    pub fn initial_state(&self) -> FastLeState {
        FastLeState {
            le_count: self.l_max,
            coin_count: self.coin_target,
            leader_done: false,
            is_leader: false,
        }
    }

    /// One activation of `u` as initiator observing the responder's coin.
    ///
    /// Implements Protocol 5 lines 1–15; the effect tells the embedder
    /// whether `u` must transition to the main phase (lines 9–12) or
    /// trigger a reset (lines 13–15). On [`FastLeEffect::BecomeWaitingLeader`]
    /// and [`FastLeEffect::TimedOut`] the caller is responsible for
    /// discarding the leader-election state (the paper sets all fields to
    /// `⊥`).
    #[inline]
    pub fn step(&self, u: &mut FastLeState, responder_coin: bool) -> FastLeEffect {
        // Line 1: LECount(u) ← LECount(u) − 1.
        u.le_count = u.le_count.saturating_sub(1);
        if !u.leader_done {
            if !responder_coin {
                // Line 2: a tails observation ends the lottery, no leader.
                u.leader_done = true;
            } else if u.coin_count > 0 {
                // Lines 4–5: count the heads.
                u.coin_count -= 1;
            } else {
                // Lines 6–8: enough heads in a row — become leader.
                u.is_leader = true;
                u.leader_done = true;
            }
        }
        // Lines 9–12: leader elected fast enough starts the main phase.
        if u.is_leader && u.le_count >= self.l_max / 2 {
            return FastLeEffect::BecomeWaitingLeader;
        }
        // Lines 13–15: out of budget — election failed, reset.
        if u.le_count == 0 {
            return FastLeEffect::TimedOut;
        }
        FastLeEffect::None
    }

    /// [`step`](FastLe::step) over the packed representation of
    /// [`FastLeState::to_bits`]: unpacks into registers, steps, and
    /// repacks, so the word-packed simulation path shares the exact
    /// Protocol 5 logic (equivalence is by construction, and pinned by
    /// a property test).
    #[inline]
    pub fn step_bits(&self, bits: u64, responder_coin: bool) -> (u64, FastLeEffect) {
        let mut s = FastLeState::from_bits(bits);
        let effect = self.step(&mut s, responder_coin);
        (s.to_bits(), effect)
    }
}

/// Per-agent state of Protocol 5 (the synthetic coin lives in the
/// embedding protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FastLeState {
    /// Remaining interaction budget (`LECount`).
    pub le_count: u32,
    /// Remaining heads to observe (`coinCount`).
    pub coin_count: u32,
    /// Has this agent finished the lottery (`leaderDone`)?
    pub leader_done: bool,
    /// Did this agent win the lottery (`isLeader`)?
    pub is_leader: bool,
}

/// Width of each counter field in the packed representation.
const FIELD_BITS: u32 = 16;
const FIELD_MASK: u64 = (1 << FIELD_BITS) - 1;
const DONE_BIT: u64 = 1 << 32;
const LEADER_BIT: u64 = 1 << 33;

impl FastLeState {
    /// Number of bits used by [`to_bits`](FastLeState::to_bits):
    /// `LECount` (16) | `coinCount` (16) | `leaderDone` | `isLeader`.
    pub const BITS: u32 = 34;

    /// Pack into the low [`BITS`](FastLeState::BITS) bits of a word —
    /// the leader-election lanes of the packed-state representation
    /// used by the simulator's word-packed hot path.
    ///
    /// Lossless for counters below `2^16`, which `L_max = ⌈c_live log₂ n⌉`
    /// and `coinCount ≤ ⌈log₂ n⌉` satisfy for every representable `n`
    /// (debug-asserted).
    #[inline]
    pub fn to_bits(self) -> u64 {
        debug_assert!(u64::from(self.le_count) <= FIELD_MASK, "LECount overflow");
        debug_assert!(
            u64::from(self.coin_count) <= FIELD_MASK,
            "coinCount overflow"
        );
        u64::from(self.le_count)
            | (u64::from(self.coin_count) << FIELD_BITS)
            | if self.leader_done { DONE_BIT } else { 0 }
            | if self.is_leader { LEADER_BIT } else { 0 }
    }

    /// Inverse of [`to_bits`](FastLeState::to_bits). Bits above
    /// [`BITS`](FastLeState::BITS) are ignored.
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        Self {
            le_count: (bits & FIELD_MASK) as u32,
            coin_count: ((bits >> FIELD_BITS) & FIELD_MASK) as u32,
            leader_done: bits & DONE_BIT != 0,
            is_leader: bits & LEADER_BIT != 0,
        }
    }
}

/// What the embedding protocol must do after a [`FastLe::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastLeEffect {
    /// Keep executing leader election.
    None,
    /// Protocol 5 lines 9–12: the agent is the leader and starts the main
    /// phase as a waiting agent.
    BecomeWaitingLeader,
    /// Protocol 5 lines 13–15: the interaction budget ran out; trigger a
    /// reset.
    TimedOut,
}

/// Standalone lottery population for the Lemma 30 experiment: every agent
/// runs [`FastLe`] plus a synthetic coin; winners freeze. Used to measure
/// `Pr[exactly one leader] ≥ 1/(8e)`.
#[derive(Debug, Clone)]
pub struct FastLeLottery {
    params: FastLe,
    n: usize,
}

/// Agent state of [`FastLeLottery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LotteryState {
    /// Synthetic coin, toggled on every activation as responder.
    pub coin: bool,
    /// The embedded Protocol 5 state.
    pub le: FastLeState,
    /// Set when the agent ran out of budget (`LECount = 0`).
    pub timed_out: bool,
}

impl FastLeLottery {
    /// Lottery over `n` agents with paper-default parameters.
    pub fn new(n: usize, c_live: f64) -> Self {
        Self {
            params: FastLe::for_n(n, c_live),
            n,
        }
    }

    /// Initial configuration: coins alternate (a balanced start, cf. the
    /// `q_{0,i}` states of Appendix C).
    pub fn initial(&self) -> Vec<LotteryState> {
        (0..self.n)
            .map(|i| LotteryState {
                coin: i % 2 == 0,
                le: self.params.initial_state(),
                timed_out: false,
            })
            .collect()
    }

    /// True once every agent has decided (done or timed out).
    pub fn all_decided(states: &[LotteryState]) -> bool {
        states.iter().all(|s| s.le.leader_done || s.timed_out)
    }

    /// Number of lottery winners.
    pub fn winner_count(states: &[LotteryState]) -> usize {
        states.iter().filter(|s| s.le.is_leader).count()
    }

    /// Any agent timed out?
    pub fn any_timeout(states: &[LotteryState]) -> bool {
        states.iter().any(|s| s.timed_out)
    }
}

impl Protocol for FastLeLottery {
    type State = LotteryState;

    fn n(&self) -> usize {
        self.n
    }

    fn transition(&self, u: &mut LotteryState, v: &mut LotteryState) -> bool {
        if !u.timed_out {
            let effect = self.params.step(&mut u.le, v.coin);
            if effect == FastLeEffect::TimedOut {
                u.timed_out = true;
            }
        }
        // Protocol 3 lines 9–10: the responder's coin flips.
        v.coin = !v.coin;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::run_seed_range;
    use population::Simulator;

    fn params() -> FastLe {
        FastLe {
            l_max: 40,
            coin_target: 4,
        }
    }

    #[test]
    fn for_n_uses_paper_formulas() {
        let p = FastLe::for_n(1024, 4.0);
        assert_eq!(p.coin_target, 10);
        assert_eq!(p.l_max, 40);
    }

    #[test]
    fn first_tails_finishes_as_non_leader() {
        let p = params();
        let mut s = p.initial_state();
        let effect = p.step(&mut s, false);
        assert_eq!(effect, FastLeEffect::None);
        assert!(s.leader_done && !s.is_leader);
        assert_eq!(s.le_count, 39);
    }

    #[test]
    fn heads_run_elects_leader_and_transitions() {
        let p = params();
        let mut s = p.initial_state();
        // coin_target = 4 heads consume the counter...
        for _ in 0..4 {
            assert_eq!(p.step(&mut s, true), FastLeEffect::None);
            assert!(!s.leader_done);
        }
        assert_eq!(s.coin_count, 0);
        // ...and the next heads observation wins the lottery; since
        // LECount = 35 ≥ L_max/2 = 20 the winner immediately becomes a
        // waiting agent (lines 9–12).
        assert_eq!(p.step(&mut s, true), FastLeEffect::BecomeWaitingLeader);
        assert!(s.is_leader && s.leader_done);
    }

    #[test]
    fn tails_after_heads_still_non_leader() {
        let p = params();
        let mut s = p.initial_state();
        for _ in 0..3 {
            p.step(&mut s, true);
        }
        p.step(&mut s, false);
        assert!(s.leader_done && !s.is_leader);
    }

    #[test]
    fn done_agent_ignores_lottery_but_keeps_counting_down() {
        let p = params();
        let mut s = p.initial_state();
        p.step(&mut s, false); // done, non-leader
        let cc = s.coin_count;
        for _ in 0..10 {
            p.step(&mut s, true);
        }
        assert_eq!(s.coin_count, cc, "lottery must be frozen after done");
        assert_eq!(s.le_count, 40 - 11);
    }

    #[test]
    fn budget_exhaustion_times_out() {
        let p = params();
        let mut s = p.initial_state();
        p.step(&mut s, false); // done as non-leader
        let mut last = FastLeEffect::None;
        for _ in 0..39 {
            last = p.step(&mut s, true);
        }
        assert_eq!(last, FastLeEffect::TimedOut);
        assert_eq!(s.le_count, 0);
    }

    #[test]
    fn slow_leader_does_not_transition_below_half_budget() {
        // A leader elected when LECount < L_max/2 must not become waiting
        // (Protocol 5 line 9 requires LECount ≥ L_max/2).
        // We need an agent that wins *late*: the lottery freezes on the
        // first tails, so use a large coin_count to keep it undecided
        // while the budget drains.
        let slow = FastLe {
            l_max: 40,
            coin_target: 25,
        };
        let mut s = slow.initial_state();
        for i in 0..25 {
            assert_eq!(slow.step(&mut s, true), FastLeEffect::None, "step {i}");
        }
        // 26th heads: wins, but le_count = 40 − 26 = 14 < 20 = L_max/2.
        let effect = slow.step(&mut s, true);
        assert_eq!(effect, FastLeEffect::None);
        assert!(s.is_leader, "won the lottery");
        // It lingers until the budget runs out, then times out.
        let mut last = FastLeEffect::None;
        for _ in 0..14 {
            last = slow.step(&mut s, true);
        }
        assert_eq!(last, FastLeEffect::TimedOut);
    }

    #[test]
    fn lottery_unique_winner_probability_matches_lemma_30() {
        // Lemma 30: Pr[exactly one winner] ≥ 1/(8e) ≈ 0.046. The bound is
        // loose; empirically the probability is ≈ 0.25–0.45. We assert the
        // lemma's bound with 400 trials at n = 128 (binomial std dev of the
        // estimate ≈ 0.02, so p̂ ≥ 0.1 gives a comfortable margin).
        let n = 128;
        let trials = 400;
        let unique: usize = run_seed_range(trials, |seed| {
            let protocol = FastLeLottery::new(n, 4.0);
            let init = protocol.initial();
            let mut sim = Simulator::new(protocol, init, seed);
            sim.run_until(FastLeLottery::all_decided, 10_000_000, n as u64);
            usize::from(FastLeLottery::winner_count(sim.states()) == 1)
        })
        .into_iter()
        .sum();
        let p_hat = unique as f64 / trials as f64;
        assert!(
            p_hat >= 0.1,
            "unique-winner probability {p_hat} below Lemma 30 expectation"
        );
    }

    #[test]
    fn lottery_winner_count_is_small() {
        // The expected number of winners is Θ(1); assert it never explodes.
        let n = 256;
        let max_winners: usize = run_seed_range(50, |seed| {
            let protocol = FastLeLottery::new(n, 4.0);
            let init = protocol.initial();
            let mut sim = Simulator::new(protocol, init, seed);
            sim.run_until(FastLeLottery::all_decided, 10_000_000, n as u64);
            FastLeLottery::winner_count(sim.states())
        })
        .into_iter()
        .max()
        .unwrap();
        assert!(max_winners <= 6, "saw {max_winners} simultaneous winners");
    }

    #[test]
    fn bits_roundtrip_over_the_full_state_space() {
        let p = params();
        for le in 0..=p.l_max {
            for cc in 0..=p.coin_target {
                for (done, lead) in [(false, false), (true, false), (true, true)] {
                    let s = FastLeState {
                        le_count: le,
                        coin_count: cc,
                        leader_done: done,
                        is_leader: lead,
                    };
                    let bits = s.to_bits();
                    assert!(bits < 1 << FastLeState::BITS);
                    assert_eq!(FastLeState::from_bits(bits), s);
                }
            }
        }
    }

    #[test]
    fn step_bits_matches_step() {
        let p = params();
        for coin in [false, true] {
            let mut s = p.initial_state();
            let mut bits = s.to_bits();
            for _ in 0..p.l_max {
                let effect = p.step(&mut s, coin);
                let (next_bits, bits_effect) = p.step_bits(bits, coin);
                assert_eq!(bits_effect, effect);
                assert_eq!(FastLeState::from_bits(next_bits), s);
                bits = next_bits;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_population() {
        let _ = FastLe::for_n(1, 4.0);
    }
}
