//! `TournamentLe` — the workspace substitute for the paper's black-box
//! leader election (Gasieniec–Stachowiak, used by Protocol 1).
//!
//! The paper only relies on the *interface* of that protocol (its
//! Lemma 15): every agent eventually sets `leaderDone`, and when all have,
//! there is w.h.p. exactly one agent with `isLeader = 1`. We meet the same
//! interface with a paced coin-race in the spirit of the lottery/tournament
//! constructions of Alistarh et al. (SODA'17) and Bilke et al. (PODC'17):
//!
//! * Every agent starts as a **contender** and plays `R` *epochs*. An epoch
//!   lasts `D` of the agent's own initiator-activations; at each epoch
//!   boundary the contender draws a fresh bit from the responder's
//!   synthetic coin.
//! * A contender's *value* is the pair `(epoch, bit)`, ordered
//!   lexicographically (a later epoch beats any bit). Values are gossiped
//!   through the population; a contender that hears a value strictly
//!   greater than its own — someone flipped heads in an epoch where it
//!   flipped tails, or someone pulled ahead — becomes a **follower**.
//! * A contender that completes all `R` epochs becomes the **leader** and
//!   raises a `finished` flag that spreads as a one-way epidemic, setting
//!   `leaderDone` everywhere and eliminating any remaining contenders.
//!
//! Two contenders survive together only if their `(epoch, bit)` values
//! never order strictly at a meeting, which requires agreeing coin flips
//! epoch after epoch: with `R = 2⌈log₂ n⌉ + 6` the per-pair survival
//! probability is ≈ `2^{-R} ≤ n^{-2}/64`, giving a w.h.p. unique leader
//! after a union bound over pairs. The epoch length `D = 3⌈log₂ n⌉` keeps
//! gossip (an `O(n log n)`-interaction epidemic) faster than epoch
//! turnover. Total: `O(R·D·n) = O(n log² n)` interactions, matching
//! Lemma 15's time bound; the state cost is `O(log³ n)` instead of the
//! original's `O(log log n)` (see DESIGN.md §3).

use crate::LeaderElectionBehavior;

/// Parameters of the tournament.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TournamentLe {
    /// Number of sudden-death epochs `R`.
    pub epochs: u32,
    /// Initiator-activations per epoch `D`.
    pub epoch_len: u32,
}

impl TournamentLe {
    /// Defaults for population size `n`: `R = 2⌈log₂ n⌉ + 6`,
    /// `D = 3⌈log₂ n⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn for_n(n: usize) -> Self {
        assert!(n >= 2, "population must have at least two agents");
        let log2n = (n as f64).log2().ceil() as u32;
        Self {
            epochs: 2 * log2n + 6,
            epoch_len: 3 * log2n.max(1),
        }
    }

    /// Upper bound on the number of distinct states of this behavior, used
    /// by the state-space audit. Contenders contribute
    /// `R·2·D` (epoch × bit × tick) states, followers `(R+1)·2·2`
    /// (gossip epoch × gossip bit × finished), leaders `1`; everything is
    /// doubled by the synthetic coin.
    pub fn state_count(&self) -> u64 {
        let contender = u64::from(self.epochs) * 2 * u64::from(self.epoch_len);
        let follower = (u64::from(self.epochs) + 1) * 2 * 2;
        2 * (contender + follower + 1)
    }
}

/// A contender's comparable progress value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RaceValue {
    /// Current epoch (dominant in the ordering).
    pub epoch: u32,
    /// Coin bit drawn at the start of the epoch.
    pub bit: bool,
}

/// Gossip carried by followers: the largest value heard plus the finished
/// flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gossip {
    /// Largest [`RaceValue`] heard so far.
    pub best: RaceValue,
    /// Has some contender completed all epochs?
    pub finished: bool,
}

/// Role of an agent in the tournament.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RaceRole {
    /// Still in the race.
    Contender {
        /// Current progress value.
        value: RaceValue,
        /// Remaining initiator-activations in this epoch.
        ticks: u32,
    },
    /// Eliminated; relays gossip.
    Follower(Gossip),
    /// Completed all epochs without being eliminated.
    Leader,
}

/// Full per-agent state: role plus the synthetic coin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RaceState {
    /// Synthetic coin, toggled on each activation as responder.
    pub coin: bool,
    /// Tournament role.
    pub role: RaceRole,
}

impl TournamentLe {
    fn observed(&self, role: &RaceRole) -> Gossip {
        match role {
            RaceRole::Contender { value, .. } => Gossip {
                best: *value,
                finished: false,
            },
            RaceRole::Follower(g) => *g,
            RaceRole::Leader => Gossip {
                best: RaceValue {
                    epoch: self.epochs,
                    bit: true,
                },
                finished: true,
            },
        }
    }

    fn merge(a: Gossip, b: Gossip) -> Gossip {
        Gossip {
            best: a.best.max(b.best),
            finished: a.finished || b.finished,
        }
    }

    /// Apply elimination/relay of gossip `g` to one agent.
    fn absorb(&self, role: &mut RaceRole, g: Gossip) {
        match role {
            RaceRole::Contender { value, .. } => {
                if g.finished || g.best > *value {
                    *role = RaceRole::Follower(g);
                }
            }
            RaceRole::Follower(own) => *own = Self::merge(*own, g),
            RaceRole::Leader => {}
        }
    }
}

impl LeaderElectionBehavior for TournamentLe {
    type State = RaceState;

    fn initial_state(&self) -> RaceState {
        RaceState {
            coin: false,
            role: RaceRole::Contender {
                value: RaceValue {
                    epoch: 0,
                    bit: false,
                },
                ticks: self.epoch_len,
            },
        }
    }

    fn transition(&self, u: &mut RaceState, v: &mut RaceState) {
        // Exchange gossip and apply eliminations (two-way; gossip is
        // max-merge so symmetry is safe).
        let g = Self::merge(self.observed(&u.role), self.observed(&v.role));
        self.absorb(&mut u.role, g);
        self.absorb(&mut v.role, g);

        // Pacing: the initiator, if still a contender, spends one tick and
        // advances an epoch when its budget is used up, drawing the next
        // epoch's bit from the responder's synthetic coin.
        if let RaceRole::Contender { value, ticks } = &mut u.role {
            *ticks -= 1;
            if *ticks == 0 {
                value.epoch += 1;
                if value.epoch == self.epochs {
                    u.role = RaceRole::Leader;
                } else {
                    value.bit = v.coin;
                    *ticks = self.epoch_len;
                }
            }
        }

        // The responder's synthetic coin flips on every activation.
        v.coin = !v.coin;
    }

    fn is_leader(&self, s: &RaceState) -> bool {
        matches!(s.role, RaceRole::Leader)
    }

    fn leader_done(&self, s: &RaceState) -> bool {
        match s.role {
            RaceRole::Leader => true,
            RaceRole::Follower(g) => g.finished,
            RaceRole::Contender { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeaderElectionProtocol;
    use population::runner::run_seed_range;
    use population::{Simulator, StopReason};

    fn elect(n: usize, seed: u64) -> (usize, u64) {
        let protocol = LeaderElectionProtocol::new(TournamentLe::for_n(n), n);
        let init = protocol.initial();
        let mut sim = Simulator::new(protocol, init, seed);
        let budget = 500 * (n as u64) * 64; // generous c·n·log²n
        let stop = sim.run_until(
            |s| s.iter().all(|x| TournamentLe::for_n(n).leader_done(x)),
            budget,
            n as u64,
        );
        let t = match stop {
            StopReason::Converged(t) => t,
            StopReason::BudgetExhausted => panic!("election did not finish in {budget}"),
        };
        let leaders = sim.protocol().leader_count(sim.states());
        (leaders, t)
    }

    #[test]
    fn race_value_ordering_is_lexicographic() {
        let lo = RaceValue {
            epoch: 3,
            bit: true,
        };
        let hi = RaceValue {
            epoch: 4,
            bit: false,
        };
        assert!(hi > lo, "later epoch beats any bit");
        let tails = RaceValue {
            epoch: 4,
            bit: false,
        };
        let heads = RaceValue {
            epoch: 4,
            bit: true,
        };
        assert!(heads > tails);
    }

    #[test]
    fn contender_hearing_greater_value_is_eliminated() {
        let le = TournamentLe::for_n(16);
        let mut u = le.initial_state();
        let mut v = le.initial_state();
        v.role = RaceRole::Contender {
            value: RaceValue {
                epoch: 2,
                bit: true,
            },
            ticks: 5,
        };
        le.transition(&mut u, &mut v);
        assert!(
            matches!(u.role, RaceRole::Follower(_)),
            "laggard must become follower, got {:?}",
            u.role
        );
        assert!(matches!(v.role, RaceRole::Contender { .. }));
    }

    #[test]
    fn finished_gossip_eliminates_contenders_and_sets_done() {
        let le = TournamentLe::for_n(16);
        let mut u = le.initial_state();
        let mut v = le.initial_state();
        v.role = RaceRole::Leader;
        le.transition(&mut u, &mut v);
        assert!(le.leader_done(&u), "follower of a finished race is done");
        assert!(!le.is_leader(&u));
        assert!(le.is_leader(&v));
    }

    #[test]
    fn epoch_advances_after_epoch_len_initiations() {
        let le = TournamentLe {
            epochs: 3,
            epoch_len: 4,
        };
        let mut u = le.initial_state();
        let mut v = le.initial_state();
        v.role = RaceRole::Follower(Gossip {
            best: RaceValue {
                epoch: 0,
                bit: false,
            },
            finished: false,
        });
        for _ in 0..3 {
            le.transition(&mut u, &mut v);
            assert!(matches!(
                u.role,
                RaceRole::Contender {
                    value: RaceValue { epoch: 0, .. },
                    ..
                }
            ));
        }
        le.transition(&mut u, &mut v);
        match u.role {
            RaceRole::Contender { value, ticks } => {
                assert_eq!(value.epoch, 1);
                assert_eq!(ticks, 4);
            }
            other => panic!("expected contender, got {other:?}"),
        }
    }

    #[test]
    fn lone_survivor_becomes_leader() {
        let le = TournamentLe {
            epochs: 2,
            epoch_len: 2,
        };
        let mut u = le.initial_state();
        let mut v = le.initial_state();
        v.role = RaceRole::Follower(Gossip {
            best: RaceValue {
                epoch: 0,
                bit: false,
            },
            finished: false,
        });
        // 2 epochs × 2 ticks = 4 initiator activations to finish.
        for _ in 0..4 {
            le.transition(&mut u, &mut v);
        }
        assert!(le.is_leader(&u));
        // The finished flag reaches the follower on the next meeting.
        le.transition(&mut u, &mut v);
        assert!(le.leader_done(&v), "follower hears the finished flag");
    }

    #[test]
    fn responder_coin_toggles_every_interaction() {
        let le = TournamentLe::for_n(8);
        let mut u = le.initial_state();
        let mut v = le.initial_state();
        assert!(!v.coin);
        le.transition(&mut u, &mut v);
        assert!(v.coin);
        le.transition(&mut u, &mut v);
        assert!(!v.coin);
    }

    #[test]
    fn election_always_produces_at_least_one_leader() {
        for n in [8, 32, 128] {
            let results = run_seed_range(20, |seed| elect(n, seed));
            for (leaders, _) in results {
                assert!(leaders >= 1, "n={n}: no leader elected");
            }
        }
    }

    #[test]
    fn election_is_almost_always_unique() {
        // 60 elections at n = 64: with R = 2·6+6 = 18, a duplicate-leader
        // event has probability ≲ n²·2⁻¹⁸ ≈ 1.6%, so allow one failure.
        let results = run_seed_range(60, |seed| elect(64, seed));
        let dupes = results.iter().filter(|(l, _)| *l > 1).count();
        assert!(dupes <= 1, "{dupes}/60 elections had multiple leaders");
    }

    #[test]
    fn election_time_scales_like_n_log_squared() {
        // Interface contract: O(n log² n). Check the normalized time is
        // bounded by a modest constant across sizes.
        for n in [32usize, 64, 128] {
            let times = run_seed_range(8, |seed| elect(n, seed).1 as f64);
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let log2n = (n as f64).log2();
            let normalized = mean / (n as f64 * log2n * log2n);
            assert!(
                normalized < 40.0,
                "n={n}: normalized election time {normalized}"
            );
        }
    }

    #[test]
    fn state_count_formula_is_sane() {
        let le = TournamentLe::for_n(1024);
        // R = 26, D = 30: 2·(26·2·30 + 27·4 + 1) = 2·(1560+108+1) = 3338.
        assert_eq!(le.state_count(), 3338);
    }
}
