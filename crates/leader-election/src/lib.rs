//! Leader-election substrates for the ranking protocols.
//!
//! The paper uses leader election in two places:
//!
//! 1. **Protocol 1** (`SpaceEfficientRanking`) consumes a black-box leader
//!    election with the interface of its Lemma 15: states `q_LE`, a flag
//!    `isLeader`, and a flag `leaderDone` that is set when the agent
//!    believes election has finished; when all agents are done there is
//!    w.h.p. exactly one leader. The paper instantiates this with
//!    Gasieniec–Stachowiak (SODA'18). We substitute
//!    [`tournament::TournamentLe`], a paced coin-race with gossip
//!    elimination offering the same interface (see DESIGN.md §3 for the
//!    state-complexity tradeoff).
//! 2. **Protocol 5** (`FastLeaderElection`) is the paper's own lottery used
//!    inside the self-stabilizing `StableRanking`; [`fast`] implements it
//!    exactly, as a pure state machine that the ranking crate embeds.
//!
//! [`LeaderElectionBehavior`] is the common interface, and
//! [`LeaderElectionProtocol`] wraps any implementation as a standalone
//! population protocol so election can be tested and benchmarked in
//! isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fast;
pub mod junta;
pub mod tournament;

use std::fmt::Debug;

use population::Protocol;

/// The leader-election interface assumed by Protocol 1 (cf. Lemma 15).
pub trait LeaderElectionBehavior {
    /// Per-agent leader-election state (`q_LE` plus the `leaderDone` flag).
    type State: Copy + PartialEq + Debug;

    /// The state every agent starts in.
    fn initial_state(&self) -> Self::State;

    /// One interaction between two leader-electing agents
    /// `(initiator, responder)`.
    fn transition(&self, initiator: &mut Self::State, responder: &mut Self::State);

    /// Does this agent currently believe it is the leader?
    fn is_leader(&self, state: &Self::State) -> bool;

    /// Has this agent concluded that leader election is over?
    fn leader_done(&self, state: &Self::State) -> bool;
}

/// Adapter running a [`LeaderElectionBehavior`] as a standalone population
/// protocol (used by tests and the election experiments).
#[derive(Debug, Clone)]
pub struct LeaderElectionProtocol<L> {
    behavior: L,
    n: usize,
}

impl<L: LeaderElectionBehavior> LeaderElectionProtocol<L> {
    /// Wrap `behavior` for a population of size `n`.
    pub fn new(behavior: L, n: usize) -> Self {
        Self { behavior, n }
    }

    /// The wrapped behavior.
    pub fn behavior(&self) -> &L {
        &self.behavior
    }

    /// All-agents-initial configuration.
    pub fn initial(&self) -> Vec<L::State> {
        (0..self.n).map(|_| self.behavior.initial_state()).collect()
    }

    /// Number of agents that currently claim leadership.
    pub fn leader_count(&self, states: &[L::State]) -> usize {
        states.iter().filter(|s| self.behavior.is_leader(s)).count()
    }

    /// True when every agent has set `leaderDone`.
    pub fn all_done(&self, states: &[L::State]) -> bool {
        states.iter().all(|s| self.behavior.leader_done(s))
    }
}

impl<L: LeaderElectionBehavior> Protocol for LeaderElectionProtocol<L> {
    type State = L::State;

    fn n(&self) -> usize {
        self.n
    }

    fn transition(&self, u: &mut Self::State, v: &mut Self::State) -> bool {
        let (bu, bv) = (*u, *v);
        self.behavior.transition(u, v);
        *u != bu || *v != bv
    }
}
