//! Junta election — stage 1 of the Gasieniec–Stachowiak leader-election
//! protocol that the paper uses as its black box (extension module).
//!
//! The full GS'18 protocol achieves `O(log log n)` states by first
//! electing a *junta*: a subpopulation of between 1 and `o(n)` agents
//! that subsequently drives a phase clock. The junta is selected by a
//! capped geometric race: every agent climbs one level per observed
//! heads of the synthetic coin and stops climbing at the first tails;
//! the cap is `⌈log₂ log₂ n⌉ + 1` levels, so the whole mechanism costs
//! only `O(log log n)` states — this module demonstrates concretely where
//! the black box's state frugality comes from (our `tournament`
//! substitute trades this for simplicity; see DESIGN.md §3).
//!
//! An agent that reaches the cap is a **junta member**. Since reaching
//! level `ℓ` requires `ℓ` consecutive heads, membership probability is
//! `2^{-(⌈log₂ log₂ n⌉+1)} ≈ 1/(2 log₂ n)`, giving an expected junta size
//! of `n/(2 log₂ n)`: w.h.p. non-empty yet strongly sublinear — exactly
//! the property the GS phase clock needs.

use population::Protocol;

/// Junta-election protocol (capped geometric race).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JuntaElection {
    n: usize,
    /// Level cap `⌈log₂ log₂ n⌉ + 1`.
    pub level_cap: u32,
}

/// Per-agent state: `O(log log n)` values in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JuntaState {
    /// Synthetic coin, toggled on each activation as responder.
    pub coin: bool,
    /// Current level (`0 ..= level_cap`).
    pub level: u32,
    /// Still climbing (has seen only heads so far)?
    pub climbing: bool,
}

impl JuntaElection {
    /// Junta election for population size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (the cap formula needs `log₂ log₂ n ≥ 0`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "junta election needs n >= 4");
        let loglog = (n as f64).log2().log2().ceil().max(0.0) as u32;
        Self {
            n,
            level_cap: loglog + 1,
        }
    }

    /// Initial configuration: everyone at level 0, climbing, coins
    /// alternating.
    pub fn initial(&self) -> Vec<JuntaState> {
        (0..self.n)
            .map(|i| JuntaState {
                coin: i % 2 == 0,
                level: 0,
                climbing: true,
            })
            .collect()
    }

    /// Is this agent a junta member (reached the cap)?
    pub fn is_member(&self, s: &JuntaState) -> bool {
        s.level == self.level_cap
    }

    /// Number of junta members in a configuration.
    pub fn junta_size(&self, states: &[JuntaState]) -> usize {
        states.iter().filter(|s| self.is_member(s)).count()
    }

    /// Have all agents finished climbing (the race is decided)?
    pub fn decided(states: &[JuntaState]) -> bool {
        states.iter().all(|s| !s.climbing)
    }

    /// Exact number of distinct states: coin × (levels × climbing-flag,
    /// minus the unreachable `climbing` variants at the cap).
    /// `O(log log n)` — the headline of this construction.
    pub fn state_count(&self) -> u64 {
        // Levels 0..cap-1 with climbing ∈ {true, false}, plus the cap
        // (membership implies climbing is over), all doubled by the coin.
        2 * (2 * u64::from(self.level_cap) + 1)
    }
}

impl Protocol for JuntaElection {
    type State = JuntaState;

    fn n(&self) -> usize {
        self.n
    }

    fn transition(&self, u: &mut JuntaState, v: &mut JuntaState) -> bool {
        if u.climbing {
            if v.coin {
                u.level += 1;
                if u.level == self.level_cap {
                    u.climbing = false; // junta member
                }
            } else {
                u.climbing = false; // first tails ends the climb
            }
        }
        // The responder's coin flips on every interaction, so the
        // configuration always changes (the race itself is never silent;
        // GS'18 uses it only as a bootstrap stage).
        v.coin = !v.coin;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::run_seed_range;
    use population::Simulator;

    #[test]
    fn cap_is_loglog_plus_one() {
        assert_eq!(JuntaElection::new(256).level_cap, 4); // ⌈log₂ 8⌉ + 1
        assert_eq!(JuntaElection::new(65536).level_cap, 5);
        assert_eq!(JuntaElection::new(4).level_cap, 2);
    }

    #[test]
    fn state_count_is_tiny() {
        // n = 2^16: 2·(2·5+1) = 22 states — versus the tournament
        // substitute's thousands. This is the O(log log n) of GS'18.
        assert_eq!(JuntaElection::new(65536).state_count(), 22);
        assert!(JuntaElection::new(1 << 20).state_count() < 30);
    }

    #[test]
    fn heads_climb_tails_stop() {
        let j = JuntaElection::new(256);
        let mut u = JuntaState {
            coin: false,
            level: 0,
            climbing: true,
        };
        let mut heads = JuntaState {
            coin: true,
            level: 0,
            climbing: true,
        };
        j.transition(&mut u, &mut heads);
        assert_eq!(u.level, 1);
        assert!(u.climbing);
        let mut tails = JuntaState {
            coin: false,
            level: 3,
            climbing: true,
        };
        j.transition(&mut u, &mut tails);
        assert!(!u.climbing, "first tails ends the climb");
        assert_eq!(u.level, 1);
    }

    #[test]
    fn reaching_the_cap_makes_a_member() {
        let j = JuntaElection::new(256); // cap 4
        let mut u = JuntaState {
            coin: false,
            level: 3,
            climbing: true,
        };
        let mut heads = JuntaState {
            coin: true,
            level: 0,
            climbing: false,
        };
        j.transition(&mut u, &mut heads);
        assert!(j.is_member(&u));
        assert!(!u.climbing);
        // A member's level never moves again.
        let mut more_heads = JuntaState {
            coin: true,
            level: 0,
            climbing: false,
        };
        j.transition(&mut u, &mut more_heads);
        assert_eq!(u.level, j.level_cap);
    }

    #[test]
    fn junta_is_nonempty_and_sublinear() {
        // E[size] = n/(2 log₂ n) = 32 at n = 512; over 30 seeds the size
        // must always be ≥ 1 and well below n/4.
        let n = 512;
        let sizes = run_seed_range(30, |seed| {
            let j = JuntaElection::new(n);
            let init = j.initial();
            let mut sim = Simulator::new(j, init, seed);
            sim.run_until(JuntaElection::decided, 10_000_000, n as u64)
                .converged_at()
                .expect("race decides quickly");
            sim.protocol().junta_size(sim.states())
        });
        for size in &sizes {
            assert!(*size >= 1, "empty junta");
            assert!(*size < n / 4, "junta too large: {size}");
        }
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        // Expected ≈ 32; allow generous slack for the capped race and the
        // coin warm-up bias.
        assert!(
            (8.0..96.0).contains(&mean),
            "mean junta size {mean} far from n/(2 log n) = 28.4"
        );
    }

    #[test]
    fn race_decides_in_linearithmic_time() {
        // Every agent stops climbing within O(n log log n) interactions:
        // each needs at most cap+1 own-initiator activations.
        let n = 256;
        for seed in 0..5 {
            let j = JuntaElection::new(n);
            let init = j.initial();
            let mut sim = Simulator::new(j, init, seed);
            let stop = sim.run_until(JuntaElection::decided, 200 * n as u64, n as u64);
            assert!(stop.converged_at().is_some());
        }
    }

    #[test]
    fn levels_never_exceed_cap() {
        let n = 128;
        let j = JuntaElection::new(n);
        let init = j.initial();
        let mut sim = Simulator::new(j, init, 3);
        for _ in 0..200 {
            sim.run(100);
            for s in sim.states() {
                assert!(s.level <= sim.protocol().level_cap);
            }
        }
    }
}
