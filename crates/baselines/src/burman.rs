//! A reconstruction of the Burman et al. (PODC'21) silent self-stabilizing
//! ranking protocol with `n + Ω(n)` states.
//!
//! The structural difference from the paper's `StableRanking` is exactly
//! one design decision: here the leader is *aware* — it stores the next
//! rank to assign (`Leader{next}`, `Ω(n)` overhead states) instead of
//! deriving it from the phase geometry. Everything else mirrors the
//! paper's machinery so the comparison isolates that decision:
//! `FastLeaderElection` elects the leader, a TTL reset epidemic recovers
//! from errors, and liveness is tracked with the same coin-gated
//! `aliveCount` scheme (assign on heads, refresh on tails).
//!
//! Error detectors: duplicate ranks on meeting, two leaders on meeting, a
//! leader meeting a rank-1 agent (the leader claims rank 1 itself), and
//! `aliveCount` expiry.

use leader_election::fast::{FastLe, FastLeEffect, FastLeState};
use population::{Protocol, RankOutput};

/// Unranked sub-roles of the Burman-style protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BuRole {
    /// Reset propagation (propagating while `reset > 0`, else dormant).
    Reset {
        /// TTL of the reset epidemic.
        reset: u32,
        /// Dormancy countdown.
        delay: u32,
    },
    /// Running `FastLeaderElection`.
    Elect(FastLeState),
    /// Waiting to be assigned a rank by the leader.
    Seek {
        /// Liveness counter.
        alive: u32,
    },
}

/// Agent state of the Burman-style protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BurmanState {
    /// Holds a final rank.
    Ranked(u64),
    /// The aware leader: remembers the next rank to assign — the `Ω(n)`
    /// overhead the paper eliminates.
    Leader {
        /// Next rank to hand out (`2 ..= n`).
        next: u64,
    },
    /// Unranked agent: coin plus sub-role.
    Un {
        /// Synthetic coin (toggles on each activation as responder).
        coin: bool,
        /// Current sub-role.
        role: BuRole,
    },
}

impl RankOutput for BurmanState {
    fn rank(&self) -> Option<u64> {
        match self {
            BurmanState::Ranked(r) => Some(*r),
            // The aware leader owns rank 1 throughout.
            BurmanState::Leader { .. } => Some(1),
            BurmanState::Un { .. } => None,
        }
    }
}

impl BurmanState {
    fn is_resetting(&self) -> bool {
        matches!(
            self,
            BurmanState::Un {
                role: BuRole::Reset { .. },
                ..
            }
        )
    }

    fn is_electing(&self) -> bool {
        matches!(
            self,
            BurmanState::Un {
                role: BuRole::Elect(_),
                ..
            }
        )
    }

    fn coin(&self) -> Option<bool> {
        match self {
            BurmanState::Un { coin, .. } => Some(*coin),
            _ => None,
        }
    }

    fn alive_mut(&mut self) -> Option<&mut u32> {
        match self {
            BurmanState::Un {
                role: BuRole::Seek { alive },
                ..
            } => Some(alive),
            _ => None,
        }
    }
}

/// The Burman-style protocol with its parameters.
#[derive(Debug, Clone)]
pub struct BurmanRanking {
    n: usize,
    fast: FastLe,
    l_max: u32,
    r_max: u32,
    d_max: u32,
}

impl BurmanRanking {
    /// Build the protocol for `n` agents with the same `Θ(log n)` counter
    /// sizes as the paper's protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "population must have at least two agents");
        let log2n = (n as f64).log2();
        Self {
            n,
            fast: FastLe::for_n(n, 4.0),
            l_max: ((4.0 * log2n).ceil() as u32).max(2),
            r_max: ((2.0 * log2n).ceil() as u32).max(1),
            d_max: ((4.0 * log2n).ceil() as u32).max(1),
        }
    }

    /// Clean start: everyone electing.
    pub fn initial(&self) -> Vec<BurmanState> {
        (0..self.n)
            .map(|i| BurmanState::Un {
                coin: i % 2 == 0,
                role: BuRole::Elect(self.fast.initial_state()),
            })
            .collect()
    }

    /// Adversarial configuration from a seed.
    pub fn adversarial(&self, seed: u64) -> Vec<BurmanState> {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..self.n)
            .map(|_| {
                let coin = rng.random_bool(0.5);
                match rng.random_range(0..5u8) {
                    0 => BurmanState::Ranked(rng.random_range(1..=self.n as u64)),
                    1 => BurmanState::Leader {
                        next: rng.random_range(2..=self.n as u64),
                    },
                    2 => BurmanState::Un {
                        coin,
                        role: BuRole::Reset {
                            reset: rng.random_range(0..=self.r_max),
                            delay: rng.random_range(1..=self.d_max),
                        },
                    },
                    3 => BurmanState::Un {
                        coin,
                        role: BuRole::Elect(self.fast.initial_state()),
                    },
                    _ => BurmanState::Un {
                        coin,
                        role: BuRole::Seek {
                            alive: rng.random_range(1..=self.l_max),
                        },
                    },
                }
            })
            .collect()
    }

    /// Analytic state count: `n` ranks + `n−1` leader states + unranked
    /// overhead — the `n + Ω(n)` shape of the comparison table.
    pub fn state_count(&self) -> u64 {
        let reset = (u64::from(self.r_max) + 1) * (u64::from(self.d_max) + 1);
        let elect = (u64::from(self.fast.l_max) + 1) * (u64::from(self.fast.coin_target) + 1) * 4;
        let seek = u64::from(self.l_max) + 1;
        self.n as u64 + (self.n as u64 - 1) + 2 * (reset + elect + seek)
    }

    fn trigger(&self, x: &mut BurmanState) {
        let coin = x.coin().unwrap_or(false);
        *x = BurmanState::Un {
            coin,
            role: BuRole::Reset {
                reset: self.r_max,
                delay: self.d_max,
            },
        };
    }

    fn reset_step(&self, u: &mut BurmanState, v: &mut BurmanState) {
        #[derive(PartialEq, Clone, Copy)]
        enum C {
            Prop,
            Dorm,
            Comp,
        }
        let class = |s: &BurmanState| match s {
            BurmanState::Un {
                role: BuRole::Reset { reset, .. },
                ..
            } => {
                if *reset > 0 {
                    C::Prop
                } else {
                    C::Dorm
                }
            }
            _ => C::Comp,
        };
        let rc = |s: &BurmanState| match s {
            BurmanState::Un {
                role: BuRole::Reset { reset, .. },
                ..
            } => *reset,
            _ => unreachable!(),
        };
        let set_rc = |s: &mut BurmanState, val: u32| {
            if let BurmanState::Un {
                role: BuRole::Reset { reset, .. },
                ..
            } = s
            {
                *reset = val;
            }
        };
        let tick = |s: &mut BurmanState| {
            if let BurmanState::Un {
                coin,
                role: BuRole::Reset { reset: 0, delay },
            } = s
            {
                let next = delay.saturating_sub(1);
                if next == 0 {
                    *s = BurmanState::Un {
                        coin: *coin,
                        role: BuRole::Elect(self.fast.initial_state()),
                    };
                } else {
                    *delay = next;
                }
            }
        };
        let infect = |s: &mut BurmanState, ttl: u32| {
            let coin = s.coin().unwrap_or(false);
            *s = BurmanState::Un {
                coin,
                role: BuRole::Reset {
                    reset: ttl,
                    delay: self.d_max,
                },
            };
        };
        match (class(u), class(v)) {
            (C::Prop, C::Comp) => {
                let t = rc(u) - 1;
                set_rc(u, t);
                infect(v, t);
            }
            (C::Comp, C::Prop) => {
                let t = rc(v) - 1;
                set_rc(v, t);
                infect(u, t);
            }
            (C::Prop, C::Prop) => {
                let m = rc(u).max(rc(v)).saturating_sub(1);
                set_rc(u, m);
                set_rc(v, m);
            }
            (C::Prop, C::Dorm) => {
                set_rc(u, rc(u) - 1);
                tick(v);
            }
            (C::Dorm, C::Prop) => {
                tick(u);
                set_rc(v, rc(v) - 1);
            }
            (C::Dorm, C::Dorm) => {
                tick(u);
                tick(v);
            }
            (C::Dorm, C::Comp) => tick(u),
            (C::Comp, C::Dorm) => tick(v),
            (C::Comp, C::Comp) => unreachable!("reset step needs a resetting agent"),
        }
    }
}

impl Protocol for BurmanRanking {
    type State = BurmanState;

    fn n(&self) -> usize {
        self.n
    }

    fn transition(&self, u: &mut BurmanState, v: &mut BurmanState) -> bool {
        let before = (*u, *v);

        if u.is_resetting() || v.is_resetting() {
            self.reset_step(u, v);
        } else if u.is_electing() && v.is_electing() {
            let v_coin = v.coin().expect("electing agents carry a coin");
            if let BurmanState::Un {
                coin,
                role: BuRole::Elect(le),
            } = u
            {
                let coin_u = *coin;
                match self.fast.step(le, v_coin) {
                    FastLeEffect::None => {}
                    FastLeEffect::BecomeWaitingLeader => {
                        // The aware leader: takes rank 1 and the counter.
                        let _ = coin_u;
                        *u = BurmanState::Leader { next: 2 };
                    }
                    FastLeEffect::TimedOut => self.trigger(u),
                }
            }
        } else if u.is_electing() || v.is_electing() {
            for slot in [&mut *u, &mut *v] {
                if slot.is_electing() {
                    let coin = slot.coin().expect("electing agents carry a coin");
                    *slot = BurmanState::Un {
                        coin,
                        role: BuRole::Seek { alive: self.l_max },
                    };
                }
            }
        } else {
            self.main_step(u, v);
        }

        if let BurmanState::Un { coin, .. } = v {
            *coin = !*coin;
        }

        (*u, *v) != before
    }
}

impl BurmanRanking {
    fn main_step(&self, u: &mut BurmanState, v: &mut BurmanState) {
        // Error detection: duplicate ranks (the leader counts as rank 1).
        let dup = matches!((u.rank(), v.rank()), (Some(a), Some(b)) if a == b);
        if dup {
            self.trigger(u);
            return;
        }

        // Liveness propagation between two seekers: max − 1.
        if u.alive_mut().is_some() && v.alive_mut().is_some() {
            let au = *u.alive_mut().expect("checked");
            let av = *v.alive_mut().expect("checked");
            let m = au.max(av).saturating_sub(1);
            *u.alive_mut().expect("checked") = m;
            *v.alive_mut().expect("checked") = m;
        }

        // Meeting a top-ranked agent decrements the seeker's counter
        // (covers the lone-seeker case).
        let n = self.n as u64;
        if matches!(u.rank(), Some(r) if r == n || r == n - 1) {
            if let Some(alive) = v.alive_mut() {
                *alive = alive.saturating_sub(1);
            }
        }
        if v.alive_mut().map(|a| *a) == Some(0) {
            self.trigger(u);
            return;
        }

        // The aware leader assigns on heads, refreshes on tails.
        if let (
            BurmanState::Leader { next },
            BurmanState::Un {
                coin,
                role: BuRole::Seek { alive },
            },
        ) = (&mut *u, &mut *v)
        {
            {
                if *coin {
                    let assigned = *next;
                    *v = BurmanState::Ranked(assigned);
                    if assigned < n {
                        *next = assigned + 1;
                    } else {
                        *u = BurmanState::Ranked(1);
                    }
                } else {
                    *alive = self.l_max;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::run_seed_range;
    use population::silence::is_silent;
    use population::{is_valid_ranking, Simulator};

    #[test]
    fn leader_assigns_on_heads_and_refreshes_on_tails() {
        let p = BurmanRanking::new(8);
        let mut u = BurmanState::Leader { next: 2 };
        let mut v = BurmanState::Un {
            coin: true,
            role: BuRole::Seek { alive: 3 },
        };
        p.transition(&mut u, &mut v);
        assert_eq!(v, BurmanState::Ranked(2));
        assert_eq!(u, BurmanState::Leader { next: 3 });

        let mut w = BurmanState::Un {
            coin: false,
            role: BuRole::Seek { alive: 3 },
        };
        p.transition(&mut u, &mut w);
        assert!(matches!(
            w,
            BurmanState::Un {
                role: BuRole::Seek { alive },
                ..
            } if alive == p.l_max
        ));
    }

    #[test]
    fn leader_retires_as_rank_one() {
        let p = BurmanRanking::new(4);
        let mut u = BurmanState::Leader { next: 4 };
        let mut v = BurmanState::Un {
            coin: true,
            role: BuRole::Seek { alive: 5 },
        };
        p.transition(&mut u, &mut v);
        assert_eq!(v, BurmanState::Ranked(4));
        assert_eq!(u, BurmanState::Ranked(1));
    }

    #[test]
    fn two_leaders_meeting_reset() {
        let p = BurmanRanking::new(8);
        let mut u = BurmanState::Leader { next: 3 };
        let mut v = BurmanState::Leader { next: 5 };
        p.transition(&mut u, &mut v);
        assert!(u.is_resetting(), "both claim rank 1 → duplicate → reset");
    }

    #[test]
    fn leader_meeting_rank_one_resets() {
        let p = BurmanRanking::new(8);
        let mut u = BurmanState::Leader { next: 3 };
        let mut v = BurmanState::Ranked(1);
        p.transition(&mut u, &mut v);
        assert!(u.is_resetting());
    }

    #[test]
    fn duplicate_ranks_reset() {
        let p = BurmanRanking::new(8);
        let mut u = BurmanState::Ranked(4);
        let mut v = BurmanState::Ranked(4);
        p.transition(&mut u, &mut v);
        assert!(u.is_resetting());
    }

    #[test]
    fn legal_configuration_is_silent() {
        let p = BurmanRanking::new(8);
        let states: Vec<BurmanState> = (1..=8).map(BurmanState::Ranked).collect();
        assert!(is_silent(&p, &states));
    }

    #[test]
    fn leader_plus_complete_ranks_is_silent_and_valid() {
        // The aware leader outputs rank 1; with ranks 2..=n around it the
        // configuration is already legal and silent.
        let p = BurmanRanking::new(6);
        let mut states = vec![BurmanState::Leader { next: 4 }];
        states.extend((2..=6).map(BurmanState::Ranked));
        assert!(is_valid_ranking(&states));
        assert!(is_silent(&p, &states));
    }

    #[test]
    fn stabilizes_from_clean_start() {
        let n = 24;
        let failures: usize = run_seed_range(6, |seed| {
            let p = BurmanRanking::new(n);
            let init = p.initial();
            let mut sim = Simulator::new(p, init, seed);
            let budget = (6000.0 * (n * n) as f64 * (n as f64).log2()) as u64;
            let stop = sim.run_until(is_valid_ranking, budget, n as u64);
            usize::from(stop.converged_at().is_none())
        })
        .into_iter()
        .sum();
        assert_eq!(failures, 0);
    }

    #[test]
    fn stabilizes_from_adversarial_configurations() {
        let n = 20;
        let failures: usize = run_seed_range(8, |seed| {
            let p = BurmanRanking::new(n);
            let init = p.adversarial(seed * 13 + 5);
            let mut sim = Simulator::new(p, init, seed);
            let budget = (8000.0 * (n * n) as f64 * (n as f64).log2()) as u64;
            let stop = sim.run_until(is_valid_ranking, budget, n as u64);
            let ok = stop.converged_at().is_some() && is_silent(sim.protocol(), sim.states());
            usize::from(!ok)
        })
        .into_iter()
        .sum();
        assert_eq!(failures, 0);
    }

    #[test]
    fn state_count_is_n_plus_omega_n() {
        let p = BurmanRanking::new(1024);
        let count = p.state_count();
        // n ranks + (n−1) leader states dominate: ≥ 2n − 1.
        assert!(count >= 2 * 1024 - 1);
        // And the overhead beyond the ranks is Ω(n).
        assert!(count - 1024 >= 1023);
    }
}
