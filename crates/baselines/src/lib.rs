//! Baseline protocols from the paper's related-work section, used by the
//! comparison experiments (E5) and as ablations.
//!
//! * [`cai::CaiRanking`] — the silent self-stabilizing leader-election /
//!   ranking protocol of Cai, Izumi and Wada with exactly `n` states and
//!   `O(n³)` expected interactions.
//! * [`burman::BurmanRanking`] — a reconstruction of the Burman et al.
//!   (PODC'21) silent self-stabilizing ranking with `n + Ω(n)` overhead
//!   states: the leader *remembers the next rank to assign*, which is
//!   exactly the `Ω(n)` state cost the paper's unaware-leader design
//!   eliminates. Error detection and resets mirror the paper's machinery.
//! * [`naive::NaiveLeaderRanking`] — the non-self-stabilizing folklore
//!   baseline: a designated leader hands out ranks `2 ..= n` sequentially
//!   (`n + Ω(n)` states, `Θ(n² log n)` interactions), the ablation showing
//!   that the paper's phase construction buys *space*, not time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burman;
pub mod cai;
pub mod naive;
