//! The Cai–Izumi–Wada protocol: silent self-stabilizing leader election
//! with exactly `n` states (the information-theoretic minimum), cited in
//! Section II of the paper.
//!
//! Every agent holds a value in `{0, …, n−1}`; when two agents with equal
//! values meet, the responder increments its value modulo `n`. The silent
//! configurations are exactly the permutations, so the protocol solves
//! ranking too (output `value + 1`), with leader = value 0. Convergence
//! takes `O(n³)` interactions in expectation — the time the paper's
//! protocol beats by a `n/log n` factor while paying only `O(log² n)`
//! extra states.

use population::{Protocol, RankOutput};

/// Agent state: a value in `{0, …, n−1}` (output rank is `value + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CaiState(pub u64);

impl RankOutput for CaiState {
    fn rank(&self) -> Option<u64> {
        Some(self.0 + 1)
    }
}

/// The Cai–Izumi–Wada protocol for `n` agents.
#[derive(Debug, Clone)]
pub struct CaiRanking {
    n: usize,
}

impl CaiRanking {
    /// Protocol over `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "population must have at least two agents");
        Self { n }
    }

    /// The worst-case initial configuration: all agents equal.
    pub fn all_equal(&self) -> Vec<CaiState> {
        vec![CaiState(0); self.n]
    }

    /// An arbitrary configuration from a seed (values uniform in
    /// `0..n`).
    pub fn adversarial(&self, seed: u64) -> Vec<CaiState> {
        // Cheap deterministic scatter; the exact distribution is
        // irrelevant for a self-stabilizing protocol.
        (0..self.n as u64)
            .map(|i| {
                CaiState((i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed)) % self.n as u64)
            })
            .collect()
    }
}

impl Protocol for CaiRanking {
    type State = CaiState;

    fn n(&self) -> usize {
        self.n
    }

    fn transition(&self, u: &mut CaiState, v: &mut CaiState) -> bool {
        if u.0 == v.0 {
            v.0 = (v.0 + 1) % self.n as u64;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::run_seed_range;
    use population::silence::is_silent;
    use population::{is_valid_ranking, Simulator};

    #[test]
    fn permutation_is_silent() {
        let p = CaiRanking::new(6);
        let states: Vec<CaiState> = (0..6).map(CaiState).collect();
        assert!(is_silent(&p, &states));
    }

    #[test]
    fn equal_pair_changes_responder_only() {
        let p = CaiRanking::new(4);
        let mut u = CaiState(2);
        let mut v = CaiState(2);
        assert!(p.transition(&mut u, &mut v));
        assert_eq!(u, CaiState(2));
        assert_eq!(v, CaiState(3));
    }

    #[test]
    fn increment_wraps_modulo_n() {
        let p = CaiRanking::new(4);
        let mut u = CaiState(3);
        let mut v = CaiState(3);
        p.transition(&mut u, &mut v);
        assert_eq!(v, CaiState(0));
    }

    #[test]
    fn converges_from_all_equal() {
        for n in [4usize, 8, 16, 32] {
            let failures = run_seed_range(5, |seed| {
                let p = CaiRanking::new(n);
                let init = p.all_equal();
                let mut sim = Simulator::new(p, init, seed);
                // O(n³) expected; budget 50·n³.
                let budget = 50 * (n as u64).pow(3);
                let stop = sim.run_until(is_valid_ranking, budget, n as u64);
                let ok = stop.converged_at().is_some() && is_silent(sim.protocol(), sim.states());
                usize::from(!ok)
            })
            .into_iter()
            .sum::<usize>();
            assert_eq!(failures, 0, "n={n}: {failures} runs failed");
        }
    }

    #[test]
    fn converges_from_adversarial_configurations() {
        let n = 16;
        let failures: usize = run_seed_range(10, |seed| {
            let p = CaiRanking::new(n);
            let init = p.adversarial(seed);
            let mut sim = Simulator::new(p, init, seed + 1000);
            let budget = 50 * (n as u64).pow(3);
            let stop = sim.run_until(is_valid_ranking, budget, n as u64);
            usize::from(stop.converged_at().is_none())
        })
        .into_iter()
        .sum();
        assert_eq!(failures, 0);
    }

    #[test]
    fn exactly_n_states_are_used() {
        // The defining property: the state space is [n], nothing more.
        let n = 9;
        let p = CaiRanking::new(n);
        let mut sim = Simulator::new(p, CaiRanking::new(n).all_equal(), 3);
        let mut seen = std::collections::HashSet::new();
        // Audit after every single interaction (check_every = 1).
        let mut audit = population::observe::Sampler::new(|_, states: &[CaiState]| {
            for s in states {
                assert!(s.0 < n as u64, "state escaped [n]");
                seen.insert(s.0);
            }
        });
        sim.run_observed(2000, 1, &mut audit);
        assert!(seen.len() <= n);
    }
}
