//! The folklore non-self-stabilizing baseline: a *designated* leader
//! assigns ranks `2 ..= n` one meeting at a time and finally takes rank 1.
//!
//! This is what the paper's introduction calls the straightforward
//! solution once a leader exists — and why it is not space efficient: the
//! leader must remember the next rank to assign, costing `Ω(n)` overhead
//! states (`Leader{next}` for each `next`). Protocol 1 removes exactly
//! this counter via the unaware-leader phase construction at the same
//! `Θ(n² log n)` running time, which experiment E5 demonstrates.

use population::{Protocol, RankOutput};

/// Agent state of the naive baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NaiveState {
    /// The designated leader, remembering the next rank to assign.
    Leader {
        /// Next rank to hand out (`2 ..= n`).
        next: u64,
    },
    /// Not yet ranked.
    Unranked,
    /// Holds a final rank.
    Ranked(u64),
}

impl RankOutput for NaiveState {
    fn rank(&self) -> Option<u64> {
        match self {
            // The leader owns rank 1 throughout (it is "aware").
            NaiveState::Leader { .. } => Some(1),
            NaiveState::Ranked(r) => Some(*r),
            NaiveState::Unranked => None,
        }
    }
}

/// The naive designated-leader ranking protocol.
#[derive(Debug, Clone)]
pub struct NaiveLeaderRanking {
    n: usize,
}

impl NaiveLeaderRanking {
    /// Protocol over `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "population must have at least two agents");
        Self { n }
    }

    /// Initial configuration: agent 0 is the designated leader, everyone
    /// else unranked.
    pub fn initial(&self) -> Vec<NaiveState> {
        let mut states = vec![NaiveState::Unranked; self.n];
        states[0] = NaiveState::Leader { next: 2 };
        states
    }
}

impl Protocol for NaiveLeaderRanking {
    type State = NaiveState;

    fn n(&self) -> usize {
        self.n
    }

    fn transition(&self, u: &mut NaiveState, v: &mut NaiveState) -> bool {
        match (&mut *u, &mut *v) {
            (NaiveState::Leader { next }, NaiveState::Unranked) => {
                *v = NaiveState::Ranked(*next);
                if *next < self.n as u64 {
                    *next += 1;
                } else {
                    *u = NaiveState::Ranked(1);
                }
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use population::runner::run_seed_range;
    use population::silence::is_silent;
    use population::{is_valid_ranking, Simulator};

    #[test]
    fn leader_assigns_sequentially() {
        let p = NaiveLeaderRanking::new(3);
        let mut u = NaiveState::Leader { next: 2 };
        let mut v = NaiveState::Unranked;
        assert!(p.transition(&mut u, &mut v));
        assert_eq!(v, NaiveState::Ranked(2));
        assert_eq!(u, NaiveState::Leader { next: 3 });
        let mut w = NaiveState::Unranked;
        p.transition(&mut u, &mut w);
        assert_eq!(w, NaiveState::Ranked(3));
        assert_eq!(
            u,
            NaiveState::Ranked(1),
            "leader retires after the last rank"
        );
    }

    #[test]
    fn only_leader_unranked_pairs_interact() {
        let p = NaiveLeaderRanking::new(4);
        let mut a = NaiveState::Ranked(2);
        let mut b = NaiveState::Unranked;
        assert!(!p.transition(&mut a, &mut b));
        let mut c = NaiveState::Unranked;
        let mut d = NaiveState::Leader { next: 2 };
        // Unranked initiator, leader responder: assignment is
        // initiator-driven, so nothing happens.
        assert!(!p.transition(&mut c, &mut d));
    }

    #[test]
    fn ranks_everyone_and_is_silent() {
        for n in [4usize, 16, 64] {
            let failures: usize = run_seed_range(5, |seed| {
                let p = NaiveLeaderRanking::new(n);
                let init = p.initial();
                let mut sim = Simulator::new(p, init, seed);
                let budget = 100 * (n as u64).pow(2) * (n as f64).log2().ceil() as u64;
                let stop = sim.run_until(is_valid_ranking, budget, n as u64);
                let ok = stop.converged_at().is_some() && is_silent(sim.protocol(), sim.states());
                usize::from(!ok)
            })
            .into_iter()
            .sum();
            assert_eq!(failures, 0, "n={n}");
        }
    }

    #[test]
    fn time_shape_is_n2_logn() {
        // Coupon-collector shape: T/(n² ln n) should be Θ(1).
        for n in [32usize, 64] {
            let times = run_seed_range(5, |seed| {
                let p = NaiveLeaderRanking::new(n);
                let init = p.initial();
                let mut sim = Simulator::new(p, init, seed);
                let budget = 200 * (n as u64).pow(2) * 7;
                sim.run_until(is_valid_ranking, budget, n as u64)
                    .converged_at()
                    .expect("must converge") as f64
            });
            let mean = times.iter().sum::<f64>() / times.len() as f64;
            let normalized = mean / ((n * n) as f64 * (n as f64).ln());
            assert!(
                normalized > 0.2 && normalized < 5.0,
                "n={n}: normalized time {normalized} outside coupon-collector range"
            );
        }
    }
}
