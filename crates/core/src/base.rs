//! Protocol 2 — `RANKING` — as a pure, shared state machine.
//!
//! Both `SpaceEfficientRanking` (Protocol 1) and `Ranking⁺` (Protocol 4)
//! execute this transition over the three agent roles of the main phase:
//! *ranked* (holds `rank ∈ [n]`), *phase* (holds `phase ∈ [⌈log₂ n⌉]`) and
//! *waiting* (holds `waitCount`). Implementing it once keeps the paper's
//! core logic in a single audited place; the embedders adapt their richer
//! state types to [`RankRole`] views and interpret the returned
//! [`RankingStep`] effects (Protocol 4 needs to know when the initiator
//! became waiting to initialize its coin and liveness counter, lines
//! 17–18).
//!
//! Line-by-line correspondence with the paper is kept in comments.

use crate::fseq::FSeq;

/// The three main-phase roles of Protocol 2.
///
/// The paper's space constraint — an agent holds *exactly one* of `rank`,
/// `phase`, `waitCount` — is enforced by this being an `enum`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RankRole {
    /// `rank(v) ∈ [n]`.
    Ranked(u64),
    /// `phase(v) ∈ [⌈log₂ n⌉]`.
    Phase(u32),
    /// `waitCount(v) ∈ [⌈c_wait log n⌉]`.
    Waiting(u32),
}

impl RankRole {
    /// The rank output by this role, if ranked.
    pub fn rank(&self) -> Option<u64> {
        match self {
            RankRole::Ranked(r) => Some(*r),
            _ => None,
        }
    }

    /// The stored phase, if a phase agent.
    pub fn phase(&self) -> Option<u32> {
        match self {
            RankRole::Phase(k) => Some(*k),
            _ => None,
        }
    }
}

/// Effects of one [`ranking_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RankingStep {
    /// Did any state change?
    pub changed: bool,
    /// Protocol 2 lines 8–9 fired: the initiator gave out the last rank of
    /// a non-final phase and became a waiting agent. Protocol 4 (lines
    /// 17–18) initializes the new waiting agent's coin and liveness
    /// counter when this is set.
    pub initiator_became_waiting: bool,
}

/// One interaction of Protocol 2 between initiator `u` and responder `v`.
///
/// `wait_max` is `⌈c_wait · log n⌉`, the reset value for `waitCount`.
pub fn ranking_step(fseq: &FSeq, wait_max: u32, u: &mut RankRole, v: &mut RankRole) -> RankingStep {
    let mut step = RankingStep::default();

    // Line 1: if phase(v) = ⊥ then return — only phase-agent responders
    // trigger any action.
    let k = match *v {
        RankRole::Phase(k) => k,
        _ => return step,
    };

    match u {
        // Lines 2–11: a ranked initiator may assign a rank or certify the
        // end of phase k.
        RankRole::Ranked(r) => {
            let window = fseq.leader_window(k); // f_k − f_{k+1}
            if *r >= 1 && *r <= window {
                // Lines 4–5: u is (believes itself) the unaware leader —
                // assign rank f_{k+1} + r to v.
                *v = RankRole::Ranked(fseq.f(k + 1) + *r);
                step.changed = true;
                if *r < window {
                    // Lines 6–7: phase k not finished; take the next rank.
                    *r += 1;
                } else if k < fseq.kmax() {
                    // Lines 8–9: end of a non-final phase — become a
                    // waiting agent. (In the final phase the leader simply
                    // keeps rank 1 and the protocol is silent.)
                    *u = RankRole::Waiting(wait_max);
                    step.initiator_became_waiting = true;
                }
            }
            // Lines 10–11: the holder of the *last* rank of phase k tells
            // v that phase k is over. Evaluated sequentially, as in the
            // paper; note lines 4–9 and this branch are mutually
            // exclusive because f_k − f_{k+1} < f_k.
            if let RankRole::Ranked(r_now) = u {
                if *r_now == fseq.f(k) {
                    if let RankRole::Phase(kv) = v {
                        // Saturate at k_max: the paper's state space caps
                        // phase at ⌈log₂ n⌉; exceeding it is only reachable
                        // from corrupted configurations, where staying at
                        // k_max keeps the agent rankable (and any resulting
                        // duplicate rank is caught by Ranking⁺).
                        if *kv < fseq.kmax() {
                            *kv += 1;
                            step.changed = true;
                        }
                    }
                }
            }
        }
        // Lines 12–14: two phase agents spread the more advanced phase.
        RankRole::Phase(ku) => {
            let m = (*ku).max(k);
            if *ku != m || k != m {
                *u = RankRole::Phase(m);
                *v = RankRole::Phase(m);
                step.changed = true;
            }
        }
        // Lines 15–19: a waiting agent counts down on meetings with phase
        // agents and finally re-enters as the unaware leader with rank 1.
        RankRole::Waiting(w) => {
            *w -= 1;
            step.changed = true;
            if *w == 0 {
                *u = RankRole::Ranked(1);
            }
        }
    }
    step
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs8() -> FSeq {
        FSeq::new(8) // f = [8, 4, 2, 1], kmax = 3
    }

    #[test]
    fn ranked_responder_blocks_everything() {
        let fs = fs8();
        for u0 in [
            RankRole::Ranked(3),
            RankRole::Phase(2),
            RankRole::Waiting(5),
        ] {
            let mut u = u0;
            let mut v = RankRole::Ranked(7);
            let step = ranking_step(&fs, 6, &mut u, &mut v);
            assert!(!step.changed);
            assert_eq!(u, u0);
            assert_eq!(v, RankRole::Ranked(7));
        }
    }

    #[test]
    fn waiting_responder_blocks_everything() {
        let fs = fs8();
        let mut u = RankRole::Ranked(1);
        let mut v = RankRole::Waiting(3);
        let step = ranking_step(&fs, 6, &mut u, &mut v);
        assert!(!step.changed);
        assert_eq!(v, RankRole::Waiting(3));
    }

    #[test]
    fn leader_assigns_phase_one_sequence() {
        // n = 8, phase 1: window = f1 − f2 = 4, ranks 5..=8 assigned.
        let fs = fs8();
        let mut leader = RankRole::Ranked(1);
        for expected_rank in 5..=7 {
            let mut v = RankRole::Phase(1);
            let step = ranking_step(&fs, 6, &mut leader, &mut v);
            assert!(step.changed && !step.initiator_became_waiting);
            assert_eq!(v, RankRole::Ranked(expected_rank));
        }
        assert_eq!(leader, RankRole::Ranked(4));
        // Fourth assignment: rank 8 = f_1 goes out, leader starts waiting.
        let mut v = RankRole::Phase(1);
        let step = ranking_step(&fs, 6, &mut leader, &mut v);
        assert!(step.changed && step.initiator_became_waiting);
        assert_eq!(v, RankRole::Ranked(8));
        assert_eq!(leader, RankRole::Waiting(6));
    }

    #[test]
    fn final_phase_leader_keeps_rank_one() {
        // Phase 3 (final for n = 8): window = f3 − f4 = 1; the leader
        // assigns rank 2 and stays at rank 1 — the protocol becomes silent.
        let fs = fs8();
        let mut leader = RankRole::Ranked(1);
        let mut v = RankRole::Phase(3);
        let step = ranking_step(&fs, 6, &mut leader, &mut v);
        assert!(step.changed);
        assert!(!step.initiator_became_waiting);
        assert_eq!(v, RankRole::Ranked(2));
        assert_eq!(leader, RankRole::Ranked(1));
    }

    #[test]
    fn non_leader_ranked_agent_does_not_assign() {
        // rank 5 > window 4 in phase 1: no assignment, no phase bump
        // (5 ≠ f_1 = 8).
        let fs = fs8();
        let mut u = RankRole::Ranked(5);
        let mut v = RankRole::Phase(1);
        let step = ranking_step(&fs, 6, &mut u, &mut v);
        assert!(!step.changed);
        assert_eq!(u, RankRole::Ranked(5));
        assert_eq!(v, RankRole::Phase(1));
    }

    #[test]
    fn last_rank_holder_advances_phase() {
        // Holder of f_1 = 8 certifies the end of phase 1.
        let fs = fs8();
        let mut u = RankRole::Ranked(8);
        let mut v = RankRole::Phase(1);
        let step = ranking_step(&fs, 6, &mut u, &mut v);
        assert!(step.changed);
        assert_eq!(u, RankRole::Ranked(8));
        assert_eq!(v, RankRole::Phase(2));
    }

    #[test]
    fn phase_bump_saturates_at_kmax() {
        // Corrupted-configuration case: f_3 = 2 meets a phase-3 agent;
        // phase must not exceed kmax = 3 (state-space cap).
        let fs = fs8();
        let mut u = RankRole::Ranked(2);
        let mut v = RankRole::Phase(3);
        let step = ranking_step(&fs, 6, &mut u, &mut v);
        assert!(!step.changed);
        assert_eq!(v, RankRole::Phase(3));
    }

    #[test]
    fn phase_agents_adopt_maximum() {
        let fs = fs8();
        let mut u = RankRole::Phase(1);
        let mut v = RankRole::Phase(3);
        let step = ranking_step(&fs, 6, &mut u, &mut v);
        assert!(step.changed);
        assert_eq!(u, RankRole::Phase(3));
        assert_eq!(v, RankRole::Phase(3));

        // Equal phases: no change.
        let step = ranking_step(&fs, 6, &mut u, &mut v);
        assert!(!step.changed);
    }

    #[test]
    fn waiting_agent_counts_down_on_phase_meetings_only() {
        let fs = fs8();
        let mut u = RankRole::Waiting(3);
        // Meeting a ranked agent: no decrement (line 1 guard).
        let mut r = RankRole::Ranked(6);
        ranking_step(&fs, 6, &mut u, &mut r);
        assert_eq!(u, RankRole::Waiting(3));
        // Meetings with phase agents decrement.
        let mut v = RankRole::Phase(2);
        ranking_step(&fs, 6, &mut u, &mut v);
        assert_eq!(u, RankRole::Waiting(2));
        ranking_step(&fs, 6, &mut u, &mut v);
        assert_eq!(u, RankRole::Waiting(1));
        // Final decrement: the unaware leader is reborn with rank 1.
        let step = ranking_step(&fs, 6, &mut u, &mut v);
        assert!(step.changed);
        assert_eq!(u, RankRole::Ranked(1));
        // The phase agent itself is untouched by the countdown.
        assert_eq!(v, RankRole::Phase(2));
    }

    #[test]
    fn mid_window_leader_resumes_after_wait() {
        // Phase 2 of n = 8: window = f2 − f3 = 2, ranks 3..=4.
        let fs = fs8();
        let mut leader = RankRole::Ranked(1);
        let mut v1 = RankRole::Phase(2);
        ranking_step(&fs, 6, &mut leader, &mut v1);
        assert_eq!(v1, RankRole::Ranked(3));
        assert_eq!(leader, RankRole::Ranked(2));
        let mut v2 = RankRole::Phase(2);
        let step = ranking_step(&fs, 6, &mut leader, &mut v2);
        assert_eq!(v2, RankRole::Ranked(4));
        assert!(step.initiator_became_waiting);
        assert_eq!(leader, RankRole::Waiting(6));
    }

    #[test]
    fn full_scripted_run_for_n4_reaches_permutation() {
        // Hand-driven schedule for n = 4 (f = [4, 2, 1], kmax = 2):
        // leader assigns 3, 4 in phase 1, waits, rank-4 holder bumps the
        // remaining phase agent, leader returns and assigns 2.
        let fs = FSeq::new(4);
        let wait_max = 2;
        let mut a = RankRole::Ranked(1); // unaware leader
        let mut b = RankRole::Phase(1);
        let mut c = RankRole::Phase(1);
        let mut d = RankRole::Phase(1);

        ranking_step(&fs, wait_max, &mut a, &mut b); // b := rank 3
        assert_eq!(b, RankRole::Ranked(3));
        let s = ranking_step(&fs, wait_max, &mut a, &mut c); // c := rank 4
        assert_eq!(c, RankRole::Ranked(4));
        assert!(s.initiator_became_waiting);
        assert_eq!(a, RankRole::Waiting(2));

        // Rank 4 = f_1 certifies end of phase 1 to d.
        ranking_step(&fs, wait_max, &mut c, &mut d);
        assert_eq!(d, RankRole::Phase(2));

        // Leader waits out two meetings with d, returns as rank 1.
        ranking_step(&fs, wait_max, &mut a, &mut d);
        ranking_step(&fs, wait_max, &mut a, &mut d);
        assert_eq!(a, RankRole::Ranked(1));

        // Final phase: d gets rank f_3 + 1 = 2.
        ranking_step(&fs, wait_max, &mut a, &mut d);
        assert_eq!(d, RankRole::Ranked(2));
        assert_eq!(a, RankRole::Ranked(1));

        let mut ranks = [a, b, c, d]
            .iter()
            .map(|r| r.rank().expect("all ranked"))
            .collect::<Vec<_>>();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn role_accessors() {
        assert_eq!(RankRole::Ranked(5).rank(), Some(5));
        assert_eq!(RankRole::Ranked(5).phase(), None);
        assert_eq!(RankRole::Phase(2).phase(), Some(2));
        assert_eq!(RankRole::Waiting(1).rank(), None);
    }
}
