//! Phase geometry of the ranking protocols.
//!
//! Section IV of the paper defines the sequence `f_1 = n`,
//! `f_i = ⌈f_{i-1}/2⌉`, and performs the ranking in `⌈log₂ n⌉` phases: in
//! phase `k` the ranks `f_{k+1}+1, …, f_k` are assigned, while the unaware
//! leader's own rank stays in `1 ..= f_k − f_{k+1}` — small enough that it
//! is the only ranked agent in that window, which is how it recognizes
//! itself when meeting an unranked agent.
//!
//! [`FSeq`] precomputes the sequence and exposes the derived quantities the
//! protocols need, with the invariants pinned by tests:
//!
//! * `f_k = ⌈n / 2^{k-1}⌉`,
//! * `f_{k_max} = 2` and `f_{k_max + 1} = 1` for `n ≥ 2`,
//! * the phase windows `[f_{k+1}+1, f_k]` partition `2 ..= n`.

/// Precomputed `f`-sequence for a population of size `n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FSeq {
    /// `f[k-1] = f_k`; the vector ends with the first entry equal to 1,
    /// i.e. `f[kmax] = f_{kmax+1} = 1`.
    f: Vec<u64>,
}

impl FSeq {
    /// Build the sequence for population size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the paper's model needs two agents to interact).
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "population must have at least two agents");
        let mut f = vec![n];
        while *f.last().expect("nonempty") > 1 {
            f.push(f.last().expect("nonempty").div_ceil(2));
        }
        Self { f }
    }

    /// Population size `n = f_1`.
    pub fn n(&self) -> u64 {
        self.f[0]
    }

    /// Number of phases, `k_max = ⌈log₂ n⌉`.
    pub fn kmax(&self) -> u32 {
        (self.f.len() - 1) as u32
    }

    /// `f_k` for `1 ≤ k ≤ k_max + 1` (with `f_{k_max+1} = 1`).
    ///
    /// # Panics
    ///
    /// Panics for `k = 0` or `k > k_max + 1`.
    pub fn f(&self, k: u32) -> u64 {
        assert!(k >= 1, "f is 1-indexed");
        self.f[(k - 1) as usize]
    }

    /// Inclusive range of ranks assigned in phase `k`:
    /// `f_{k+1}+1 ..= f_k`.
    pub fn phase_ranks(&self, k: u32) -> std::ops::RangeInclusive<u64> {
        self.f(k + 1) + 1..=self.f(k)
    }

    /// `f_k − f_{k+1}`: the number of ranks assigned in phase `k`, which is
    /// also the upper end of the window `1 ..= f_k − f_{k+1}` in which the
    /// unaware leader's own rank moves during phase `k`.
    pub fn leader_window(&self, k: u32) -> u64 {
        self.f(k) - self.f(k + 1)
    }

    /// The liveness-check threshold of Protocol 4 line 13:
    /// `⌊n · 2^{−k}⌋`. Note this may differ from
    /// [`leader_window`](Self::leader_window) by one when `n` is not a
    /// power of two; the protocol uses both, each where the paper says so.
    pub fn productive_threshold(&self, k: u32) -> u64 {
        let shift = k.min(63);
        self.n() >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn powers_of_two_halve_exactly() {
        let fs = FSeq::new(256);
        assert_eq!(fs.kmax(), 8);
        for k in 1..=8 {
            assert_eq!(fs.f(k), 256 >> (k - 1));
        }
        assert_eq!(fs.f(9), 1);
    }

    #[test]
    fn small_odd_example_from_hand() {
        // n = 5: f = [5, 3, 2, 1]; kmax = 3 = ⌈log₂ 5⌉.
        let fs = FSeq::new(5);
        assert_eq!(fs.kmax(), 3);
        assert_eq!(fs.f(1), 5);
        assert_eq!(fs.f(2), 3);
        assert_eq!(fs.f(3), 2);
        assert_eq!(fs.f(4), 1);
        assert_eq!(fs.phase_ranks(1), 4..=5);
        assert_eq!(fs.phase_ranks(2), 3..=3);
        assert_eq!(fs.phase_ranks(3), 2..=2);
    }

    #[test]
    fn n_equals_two_has_single_phase() {
        let fs = FSeq::new(2);
        assert_eq!(fs.kmax(), 1);
        assert_eq!(fs.phase_ranks(1), 2..=2);
        assert_eq!(fs.leader_window(1), 1);
    }

    #[test]
    fn productive_threshold_matches_paper_formula() {
        let fs = FSeq::new(256);
        assert_eq!(fs.productive_threshold(1), 128);
        assert_eq!(fs.productive_threshold(8), 1);
        let odd = FSeq::new(7);
        // ⌊7/4⌋ = 1 while f_2 − f_3 = 4 − 2 = 2: the documented mismatch.
        assert_eq!(odd.productive_threshold(2), 1);
        assert_eq!(odd.leader_window(2), 2);
    }

    proptest! {
        #[test]
        fn closed_form_matches_recurrence(n in 2u64..100_000) {
            let fs = FSeq::new(n);
            for k in 1..=fs.kmax() {
                let pow = 1u64 << (k - 1).min(63);
                prop_assert_eq!(fs.f(k), n.div_ceil(pow));
            }
        }

        #[test]
        fn kmax_is_ceil_log2(n in 2u64..100_000) {
            let fs = FSeq::new(n);
            let expected = 64 - (n - 1).leading_zeros();
            prop_assert_eq!(fs.kmax(), expected);
        }

        #[test]
        fn phase_windows_partition_two_to_n(n in 2u64..5_000) {
            let fs = FSeq::new(n);
            let mut covered = vec![false; n as usize + 1];
            for k in 1..=fs.kmax() {
                for r in fs.phase_ranks(k) {
                    prop_assert!(r >= 2 && r <= n, "rank {} out of range", r);
                    prop_assert!(!covered[r as usize], "rank {} assigned twice", r);
                    covered[r as usize] = true;
                }
            }
            prop_assert!(covered[2..=n as usize].iter().all(|&c| c),
                "not all ranks covered");
        }

        #[test]
        fn sequence_is_strictly_decreasing(n in 2u64..100_000) {
            let fs = FSeq::new(n);
            for k in 1..=fs.kmax() {
                prop_assert!(fs.f(k) > fs.f(k + 1));
            }
        }

        #[test]
        fn leader_window_is_positive_and_window_sums_to_n_minus_1(n in 2u64..50_000) {
            let fs = FSeq::new(n);
            let mut total = 0;
            for k in 1..=fs.kmax() {
                prop_assert!(fs.leader_window(k) >= 1);
                total += fs.leader_window(k);
            }
            prop_assert_eq!(total, n - 1);
        }

        #[test]
        fn final_phase_assigns_rank_two(n in 2u64..100_000) {
            let fs = FSeq::new(n);
            prop_assert_eq!(fs.f(fs.kmax()), 2);
            prop_assert_eq!(fs.f(fs.kmax() + 1), 1);
        }

        #[test]
        fn productive_threshold_within_one_of_leader_window(n in 2u64..50_000) {
            // Documented deviation #3: the two thresholds agree on powers
            // of two and differ by at most... in general ⌊n·2^{-k}⌋ can be
            // below f_k − f_{k+1}; check it never *exceeds* it by more
            // than 0 and never undershoots by more than 1 for k = 1.
            let fs = FSeq::new(n);
            prop_assert!(fs.productive_threshold(1) <= fs.leader_window(1));
            prop_assert!(fs.productive_threshold(1) + 1 >= fs.leader_window(1));
        }
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn rejects_n_below_two() {
        let _ = FSeq::new(1);
    }

    #[test]
    #[should_panic(expected = "1-indexed")]
    fn rejects_k_zero() {
        let _ = FSeq::new(8).f(0);
    }
}
