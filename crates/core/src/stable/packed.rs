//! Packed single-word representation of [`StableState`].
//!
//! The paper's headline result is a state space of `n + O(log² n)`
//! states — small enough that the *entire* agent state fits comfortably
//! in one `u64`. The structured [`StableState`] enum is the readable
//! reference representation, but it occupies 24 bytes and its
//! transition walks a tree of matches; [`PackedState`] is the
//! simulation representation: 8 bytes, flat structure-of-arrays
//! storage, and a branch-reduced transition (`StableRanking`'s
//! `transition_packed`) driven by the precomputed
//! [`StepTables`](crate::stable::tables::StepTables).
//!
//! # Layout
//!
//! ```text
//! bit    63 .. 39 38 37   36 .. 21   20 .. 5   4     3 .. 0
//!        ┌────────┬──┬──┬──────────┬─────────┬────┬────────┐
//! Ranked │            rank (59 bits)         │ 0  │  0000  │
//! Reset  │ 0      │     │ delayCnt │ resetCnt│coin│  0001  │
//! Elect  │ 0      │IL│LD│ coinCnt* │ LECount │coin│  0010  │
//! Wait   │ 0      │     │ waitCnt  │ aliveCnt│coin│  0100  │
//! Phase  │ 0      │     │ phase    │ aliveCnt│coin│  1000  │
//!        └────────┴──┴──┴──────────┴─────────┴────┴────────┘
//! ```
//!
//! * bits 0..4 — the role tag, **one-hot** (`Ranked` is all-zero): the
//!   dispatcher's role tests compile to single fused bit operations on
//!   the two interacting words — "either agent resetting" is
//!   `(u | v) & TAG_RESET`, "both electing" is `u & v & TAG_ELECT`,
//!   "both waiting" is `u & v & TAG_WAITING`, "unranked main agent" is
//!   `w & (TAG_WAITING | TAG_PHASE)` — instead of chains of compares;
//! * bit 4 — the synthetic coin (always 0 for ranked agents, which
//!   store *nothing but their rank* — the paper's space constraint);
//! * bits 5..21 / 21..37 — two 16-bit counter lanes (`A` / `B`);
//! * `Elect` embeds [`FastLeState::to_bits`] at bit 5: `LECount` in
//!   lane A, `coinCount` in lane B (marked `*`: its lane is 16 bits at
//!   bit 21 inside the embedded encoding), `leaderDone` (`LD`) at bit
//!   37 and `isLeader` (`IL`) at bit 38;
//! * `Ranked` uses bits 5..64 for the rank, so a ranked word is simply
//!   `rank << 5` and rank comparison is word comparison.
//!
//! The codec is parameter-free and lossless both ways:
//! `unpack(pack(s)) == s` for every valid state and `pack(unpack(w)) == w`
//! for every word `pack` produces (property-tested over the full state
//! space in `tests/packed_equivalence.rs`).

use leader_election::fast::FastLeState;
use population::RankOutput;
use telemetry::{AgentClass, TraceState};

use crate::stable::state::{MainKind, StableState, UnRole, UnState};

/// Number of low bits holding the one-hot role tag.
pub const TAG_BITS: u32 = 4;
/// Role tag: ranked agent (`rank` in bits 5..64). All tag bits zero, so
/// a ranked word is exactly `rank << 5`.
pub const TAG_RANKED: u64 = 0;
/// Role tag bit: `PROPAGATERESET` participant.
pub const TAG_RESET: u64 = 1 << 0;
/// Role tag bit: `FASTLEADERELECTION` participant.
pub const TAG_ELECT: u64 = 1 << 1;
/// Role tag bit: main-protocol waiting agent.
pub const TAG_WAITING: u64 = 1 << 2;
/// Role tag bit: main-protocol phase agent.
pub const TAG_PHASE: u64 = 1 << 3;
/// Mask selecting the unranked main roles (the agents carrying an
/// `aliveCount`).
pub const TAG_MAIN_UN: u64 = TAG_WAITING | TAG_PHASE;

/// Mask selecting the tag bits.
pub const TAG_MASK: u64 = (1 << TAG_BITS) - 1;
/// The synthetic-coin bit (bit 4).
pub const COIN_BIT: u64 = 1 << TAG_BITS;
/// Shift of counter lane A (`resetCount` / `LECount` / `aliveCount`),
/// and of the rank / embedded leader-election bits.
pub const A_SHIFT: u32 = TAG_BITS + 1;
/// Shift of counter lane B (`delayCount` / `waitCount` / `phase`).
pub const B_SHIFT: u32 = A_SHIFT + 16;
/// Width mask of one counter lane.
pub const LANE_MASK: u64 = 0xFFFF;

/// A full [`StableState`] packed into one machine word.
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackedState(pub u64);

impl PackedState {
    /// A ranked agent (`rank ∈ [n]`, nothing else — not even a coin).
    #[inline]
    pub fn ranked(rank: u64) -> Self {
        debug_assert!(
            rank < 1 << (64 - A_SHIFT),
            "rank overflows the packed layout"
        );
        PackedState(rank << A_SHIFT)
    }

    /// A `PROPAGATERESET` participant.
    #[inline]
    pub fn reset(coin: bool, reset_count: u32, delay_count: u32) -> Self {
        PackedState(TAG_RESET | coin_bit(coin) | lane_a(reset_count) | lane_b(delay_count))
    }

    /// A `FASTLEADERELECTION` participant.
    #[inline]
    pub fn elect(coin: bool, le: FastLeState) -> Self {
        PackedState(TAG_ELECT | coin_bit(coin) | (le.to_bits() << A_SHIFT))
    }

    /// A main-protocol agent (waiting or phase).
    #[inline]
    pub fn main(coin: bool, alive: u32, kind: MainKind) -> Self {
        let (tag, value) = match kind {
            MainKind::Waiting(w) => (TAG_WAITING, w),
            MainKind::Phase(k) => (TAG_PHASE, k),
        };
        PackedState(tag | coin_bit(coin) | lane_a(alive) | lane_b(value))
    }

    /// The raw word.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// The role tag (one of the `TAG_*` constants).
    #[inline]
    pub fn tag(self) -> u64 {
        self.0 & TAG_MASK
    }

    /// The synthetic coin (meaningless — always `false` — for ranked
    /// agents).
    #[inline]
    pub fn coin(self) -> bool {
        self.0 & COIN_BIT != 0
    }

    /// Counter lane A: `resetCount` / `LECount` / `aliveCount`.
    #[inline]
    pub fn lane_a(self) -> u32 {
        ((self.0 >> A_SHIFT) & LANE_MASK) as u32
    }

    /// Counter lane B: `delayCount` / `waitCount` / `phase`.
    #[inline]
    pub fn lane_b(self) -> u32 {
        ((self.0 >> B_SHIFT) & LANE_MASK) as u32
    }

    /// Overwrite counter lane A.
    #[inline]
    pub fn set_lane_a(&mut self, value: u32) {
        debug_assert!(u64::from(value) <= LANE_MASK);
        self.0 = (self.0 & !(LANE_MASK << A_SHIFT)) | (u64::from(value) << A_SHIFT);
    }

    /// Overwrite counter lane B.
    #[inline]
    pub fn set_lane_b(&mut self, value: u32) {
        debug_assert!(u64::from(value) <= LANE_MASK);
        self.0 = (self.0 & !(LANE_MASK << B_SHIFT)) | (u64::from(value) << B_SHIFT);
    }

    /// The rank of a ranked word (undefined for other tags).
    #[inline]
    pub fn rank_value(self) -> u64 {
        self.0 >> A_SHIFT
    }

    /// The embedded [`FastLeState`] bits of an elect word.
    #[inline]
    pub fn le_bits(self) -> u64 {
        self.0 >> A_SHIFT
    }

    /// Is this word an unranked *main* agent (waiting or phase) — the
    /// agents that carry an `aliveCount` in lane A?
    #[inline]
    pub fn is_unranked_main(self) -> bool {
        self.0 & TAG_MAIN_UN != 0
    }

    /// Toggle the synthetic coin (Protocol 3 lines 9–10; callers must
    /// ensure the word is unranked).
    #[inline]
    pub fn toggle_coin(&mut self) {
        self.0 ^= COIN_BIT;
    }

    /// Force the synthetic coin to `value` if the word is unranked; a
    /// no-op on ranked words (which store nothing but their rank).
    ///
    /// This is the packed-path access a word-level adversary needs: the
    /// `scenarios` crate's `CoinJammer` strategy pins its coin after
    /// every touch, overriding the responder-toggle of Protocol 3
    /// lines 9–10 — on packed runs it does so directly on the word,
    /// without a codec round-trip.
    #[inline]
    pub fn set_coin(&mut self, value: bool) {
        if self.0 & TAG_MASK != 0 {
            self.0 = (self.0 & !COIN_BIT) | if value { COIN_BIT } else { 0 };
        }
    }

    /// Pack a structured state (lossless; see the module docs for the
    /// layout).
    #[inline]
    pub fn pack(state: &StableState) -> Self {
        match *state {
            StableState::Ranked(r) => Self::ranked(r),
            StableState::Un(UnState { coin, role }) => match role {
                UnRole::Reset {
                    reset_count,
                    delay_count,
                } => Self::reset(coin, reset_count, delay_count),
                UnRole::Elect(le) => Self::elect(coin, le),
                UnRole::Main { alive, kind } => Self::main(coin, alive, kind),
            },
        }
    }

    /// Unpack back into the structured representation (exact inverse of
    /// [`pack`](PackedState::pack)).
    ///
    /// # Panics
    ///
    /// Panics on a word whose tag is not one of the five roles — such
    /// words are never produced by `pack` or by the packed transition.
    #[inline]
    pub fn unpack(self) -> StableState {
        match self.tag() {
            TAG_RANKED => StableState::Ranked(self.rank_value()),
            TAG_RESET => StableState::Un(UnState {
                coin: self.coin(),
                role: UnRole::Reset {
                    reset_count: self.lane_a(),
                    delay_count: self.lane_b(),
                },
            }),
            TAG_ELECT => StableState::Un(UnState {
                coin: self.coin(),
                role: UnRole::Elect(FastLeState::from_bits(self.le_bits())),
            }),
            TAG_WAITING => StableState::Un(UnState {
                coin: self.coin(),
                role: UnRole::Main {
                    alive: self.lane_a(),
                    kind: MainKind::Waiting(self.lane_b()),
                },
            }),
            TAG_PHASE => StableState::Un(UnState {
                coin: self.coin(),
                role: UnRole::Main {
                    alive: self.lane_a(),
                    kind: MainKind::Phase(self.lane_b()),
                },
            }),
            tag => unreachable!("invalid packed tag {tag}"),
        }
    }

    /// Fallible [`unpack`](PackedState::unpack) for words of unknown
    /// provenance (snapshot restore, fuzzing): rejects any word that is
    /// not the *exact* encoding of some structured state — a non-one-hot
    /// tag, or stray bits the codec would silently drop (e.g. a coin bit
    /// under a ranked tag, or garbage above an embedded field).
    ///
    /// Acceptance here is purely structural (the word round-trips
    /// through the codec); whether the decoded state belongs to the
    /// declared state space for some `Params` is a separate check
    /// (`StableState::is_valid_for`) layered on top by the snapshot
    /// loader.
    pub fn try_unpack(self) -> Result<StableState, String> {
        let tag = self.tag();
        if !matches!(
            tag,
            TAG_RANKED | TAG_RESET | TAG_ELECT | TAG_WAITING | TAG_PHASE
        ) {
            return Err(format!("word {:#x}: tag {tag:#b} is not one-hot", self.0));
        }
        let state = self.unpack();
        if Self::pack(&state).0 != self.0 {
            return Err(format!(
                "word {:#x}: stray bits outside the {} encoding",
                self.0,
                match tag {
                    TAG_RANKED => "ranked",
                    TAG_RESET => "reset",
                    TAG_ELECT => "elect",
                    TAG_WAITING => "waiting",
                    _ => "phase",
                }
            ));
        }
        Ok(state)
    }
}

#[inline]
fn coin_bit(coin: bool) -> u64 {
    if coin {
        COIN_BIT
    } else {
        0
    }
}

#[inline]
fn lane_a(value: u32) -> u64 {
    debug_assert!(u64::from(value) <= LANE_MASK, "lane A overflow");
    u64::from(value) << A_SHIFT
}

#[inline]
fn lane_b(value: u32) -> u64 {
    debug_assert!(u64::from(value) <= LANE_MASK, "lane B overflow");
    u64::from(value) << B_SHIFT
}

impl std::fmt::Debug for PackedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Show the decoded structure: raw words are unreadable in test
        // failures, and the codec is parameter-free, so decoding is
        // always available.
        write!(f, "PackedState({:#x} = {:?})", self.0, self.unpack())
    }
}

impl RankOutput for PackedState {
    #[inline]
    fn rank(&self) -> Option<u64> {
        if self.tag() == TAG_RANKED {
            Some(self.rank_value())
        } else {
            None
        }
    }
}

/// Classification straight off the word's tag bits — no unpack, so a
/// flight recorder can diff packed lanes at block boundaries for the
/// cost of a few mask tests per agent. Must agree with `StableState`'s
/// implementation through the codec (pinned by a unit test below).
impl TraceState for PackedState {
    #[inline]
    fn agent_class(&self) -> AgentClass {
        match self.tag() {
            TAG_RANKED => AgentClass::Ranked(self.rank_value()),
            TAG_RESET => AgentClass::Resetting,
            TAG_ELECT => AgentClass::Electing,
            TAG_WAITING => AgentClass::Waiting,
            TAG_PHASE => AgentClass::Phase(self.lane_b()),
            tag => unreachable!("invalid packed tag {tag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leader_election::fast::FastLe;

    #[test]
    fn ranked_words_are_shifted_ranks() {
        for r in [1u64, 2, 7, 1 << 40] {
            let w = PackedState::ranked(r);
            assert_eq!(w.tag(), TAG_RANKED);
            assert!(!w.coin());
            assert_eq!(w.rank_value(), r);
            assert_eq!(w.bits(), r << A_SHIFT);
            assert_eq!(RankOutput::rank(&w), Some(r));
        }
    }

    #[test]
    fn unranked_words_have_no_rank_output() {
        let w = PackedState::reset(true, 3, 9);
        assert_eq!(RankOutput::rank(&w), None);
        assert!(w.coin());
        assert_eq!(w.lane_a(), 3);
        assert_eq!(w.lane_b(), 9);
    }

    #[test]
    fn lane_writes_do_not_clobber_neighbours() {
        let mut w = PackedState::main(true, 7, MainKind::Phase(3));
        w.set_lane_a(0xFFFF);
        assert_eq!(w.lane_a(), 0xFFFF);
        assert_eq!(w.lane_b(), 3);
        assert!(w.coin());
        assert_eq!(w.tag(), TAG_PHASE);
        w.set_lane_b(0xABCD);
        assert_eq!(w.lane_a(), 0xFFFF);
        assert_eq!(w.lane_b(), 0xABCD);
    }

    #[test]
    fn elect_roundtrips_the_fast_le_flags() {
        let fast = FastLe {
            l_max: 24,
            coin_target: 6,
        };
        for (done, lead) in [(false, false), (true, false), (true, true)] {
            let le = FastLeState {
                le_count: 13,
                coin_count: 2,
                leader_done: done,
                is_leader: lead,
            };
            let s = StableState::Un(UnState {
                coin: true,
                role: UnRole::Elect(le),
            });
            assert_eq!(PackedState::pack(&s).unpack(), s);
        }
        let init = StableState::Un(UnState {
            coin: false,
            role: UnRole::Elect(fast.initial_state()),
        });
        assert_eq!(PackedState::pack(&init).unpack(), init);
    }

    #[test]
    fn agent_class_agrees_with_the_enum_through_the_codec() {
        let states = [
            StableState::Ranked(1),
            StableState::Ranked(1 << 30),
            StableState::Un(UnState {
                coin: true,
                role: UnRole::Reset {
                    reset_count: 3,
                    delay_count: 9,
                },
            }),
            StableState::Un(UnState {
                coin: false,
                role: UnRole::Elect(FastLeState {
                    le_count: 13,
                    coin_count: 2,
                    leader_done: true,
                    is_leader: true,
                }),
            }),
            StableState::Un(UnState {
                coin: true,
                role: UnRole::Main {
                    alive: 5,
                    kind: MainKind::Waiting(2),
                },
            }),
            StableState::Un(UnState {
                coin: false,
                role: UnRole::Main {
                    alive: 5,
                    kind: MainKind::Phase(4),
                },
            }),
        ];
        for s in states {
            assert_eq!(
                PackedState::pack(&s).agent_class(),
                s.agent_class(),
                "codec changed the trace class of {s:?}"
            );
        }
        assert_eq!(PackedState::ranked(7).agent_class(), AgentClass::Ranked(7));
    }

    #[test]
    fn coin_toggle_flips_exactly_one_bit() {
        let mut w = PackedState::main(false, 5, MainKind::Waiting(2));
        let before = w.bits();
        w.toggle_coin();
        assert_eq!(w.bits() ^ before, COIN_BIT);
        assert!(w.coin());
    }

    #[test]
    fn set_coin_pins_unranked_words_and_skips_ranked_ones() {
        let mut w = PackedState::main(false, 5, MainKind::Waiting(2));
        w.set_coin(true);
        assert!(w.coin());
        w.set_coin(true); // idempotent
        assert!(w.coin());
        w.set_coin(false);
        assert!(!w.coin());
        assert_eq!(w.lane_a(), 5);
        assert_eq!(w.lane_b(), 2);

        let mut r = PackedState::ranked(7);
        let before = r.bits();
        r.set_coin(true);
        assert_eq!(r.bits(), before, "ranked words carry no coin");
    }
}
