//! The block transition kernel: `StableRanking`'s implementation of the
//! [`BatchedProtocol`] seam.
//!
//! The scalar packed path (`transition_packed`) already replaced enum
//! walks with tag tests and table lookups, but per pair it still pays
//! the `FastLe::step_bits` field unpack / effect-enum round trip, a
//! full `ranking_plus_step_packed` call on every main/main meeting —
//! including the null meetings a converged population consists of —
//! and an atomic RMW per instrumented event. The kernel processes a
//! whole schedule block in one in-order pass with those costs
//! restructured away:
//!
//! ```text
//!  schedule block (≤ 4096 pairs)
//!        │  in-order pass, one pair at a time
//!        ▼
//!  classify: branchless one-hot mask tests over the two loaded words
//!        │    reset: (u|v) & TAG_RESET       both-elect: u & v & TAG_ELECT
//!        │    one-elect: (u|v) & TAG_ELECT   main/main: otherwise
//!        ▼
//!  dispatch (same skewed branch chain as the scalar dispatcher)
//!        ├─ reset-involved → propagate_step_packed
//!        ├─ both-electing  → branchless lottery word step
//!        ├─ one-electing   → mask-selected join_phase1 rebirth
//!        └─ main/main      → ranked×ranked null fast path (no store),
//!        │                   else ranking_plus
//!        ▼  shared tail: branchless coin toggle + changed compare
//!  words (flat SoA Vec<PackedState>)
//! ```
//!
//! Because the pass executes pairs in draw order, it is bit-for-bit the
//! scalar packed loop by construction: repeated agents inside a block
//! need no special handling — a pair reads whatever the previous pair
//! wrote, exactly as the scalar loop does. (An earlier revision of this
//! kernel instead split blocks into hazard-free segments with an
//! occupancy bitset and ran per-class stashed lanes, so each class body
//! became a tight homogeneous loop. Measured on the `engine_throughput`
//! workload it *lost* to the scalar packed loop by ~2× — the per-pair
//! bookkeeping (six bitset updates, a 24-byte stash write + read) and
//! the short expected segment length (≈ √(πn/8) pairs before the first
//! repeated agent, ~63 at `n = 10⁴`) cost more than the removed
//! dispatch branches, while the reset and Ranking⁺ lanes still ran the
//! same helper bodies as the scalar path. The in-order form keeps every
//! per-class win and pays none of the segmentation tax.)
//!
//! The per-class wins over `transition_packed`:
//!
//! * **main/main**: two distinct ranked agents are a null pair —
//!   detected with one mask test, no store, no coin to toggle. This is
//!   the silent-configuration fast path: a converged population takes
//!   it on essentially every interaction, and there the kernel measures
//!   ~1.3–1.5× the scalar packed loop (~80% of the engine-bound
//!   epidemic ceiling; the `*_silent` rows of `BENCH_engine.json`).
//! * **both-electing**: the embedded Protocol 5 lottery runs as
//!   straight-line mask arithmetic directly on the packed word
//!   (`elect_step_word`) — no field unpack, no effect enum — with
//!   real branches only for the two rare effects (leader rebirth,
//!   timeout reset).
//! * **everywhere**: the responder coin toggle is a branchless
//!   mask-multiply, the changed flag is a non-shortcircuit compare, and
//!   reset-event / dispatch-mix instrumentation is accumulated in
//!   locals and flushed with one relaxed `fetch_add` per counter per
//!   block (the scalar dispatcher pays one per event). The mix feeds
//!   [`StableRanking::dispatch_mix`] so `engine_throughput` can
//!   attribute a kernel regression to a workload shift.
//!
//! On the churn-heavy transient from a clean start (the non-`silent`
//! bench rows) the kernel measures within ~10–20% of the scalar loop
//! either way: those interactions are dominated by the branchy
//! propagate / Ranking⁺ helper bodies both paths share, and paired A/B
//! runs show that even a bit-identical copy of the scalar loop reached
//! through the kernel's call route measures ~0.9× on the benchmark
//! host, so much of the residual is codegen/layout noise rather than
//! algorithmic cost.
//!
//! Equivalence with the scalar packed loop — and, through it, with the
//! structured enum path — is property-tested in
//! `tests/packed_equivalence.rs` (random runs, block boundaries,
//! repeated-agent blocks, faulted and sharded runs).

use population::schedule::Pair;
use population::{pair_mut, BatchedProtocol, PackedProtocol};

use crate::stable::packed::{PackedState, A_SHIFT, COIN_BIT, TAG_ELECT, TAG_MASK, TAG_RESET};
use crate::stable::ranking_plus::ranking_plus_step_packed;
use crate::stable::reset;
use crate::stable::tables::StepTables;
use crate::stable::StableRanking;

/// `LECount` position inside an elect word (16 bits).
const LE_SHIFT: u32 = A_SHIFT;
/// `coinCount` position inside an elect word (16 bits).
const CC_SHIFT: u32 = A_SHIFT + 16;
/// `leaderDone` bit of an elect word.
const DONE_BIT: u64 = 1 << (A_SHIFT + 32);
/// `isLeader` bit of an elect word.
const LEADER_BIT: u64 = 1 << (A_SHIFT + 33);
/// Width mask of the embedded 16-bit counter fields.
const FIELD_MASK: u64 = 0xFFFF;

/// One both-electing interaction as straight-line word arithmetic: the
/// Protocol 5 lottery update of `FastLe::step` with the branches
/// replaced by mask selects, operating directly on the packed word.
/// Returns the initiator's new word and whether a timeout reset was
/// triggered. Must match `FastLe::step_bits` through the word layout
/// exactly (pinned by a unit test below and by the trajectory
/// equivalence suite).
#[inline(always)]
fn elect_step_word(t: &StepTables, half: u64, u: u64, v: u64) -> (u64, bool) {
    // Line 1: LECount ← LECount − 1 (saturating).
    let le = (u >> LE_SHIFT) & FIELD_MASK;
    let le1 = le - u64::from(le != 0);
    // Lines 2–8, applied only while ¬leaderDone: a tails observation
    // finishes the lottery; heads decrement coinCount; heads with an
    // exhausted coinCount win.
    let heads = v & COIN_BIT != 0;
    let live = u & DONE_BIT == 0;
    let cc = (u >> CC_SHIFT) & FIELD_MASK;
    let win = live & heads & (cc == 0);
    let dec = u64::from(live & heads & (cc != 0));
    let mut w = (u & !(FIELD_MASK << LE_SHIFT)) | (le1 << LE_SHIFT);
    w -= dec << CC_SHIFT;
    w |= u64::from(live & (!heads | win)) * DONE_BIT;
    w |= u64::from(win) * LEADER_BIT;
    // Lines 9–15: the two rare effects stay real branches — both are
    // once-per-agent-per-lottery events, so the predictor sees them as
    // almost-never-taken.
    if w & LEADER_BIT != 0 && le1 >= half {
        return (t.leader_wait.bits() | (u & COIN_BIT), false);
    }
    if le1 == 0 {
        return (t.triggered.bits() | (u & COIN_BIT), true);
    }
    (w, false)
}

impl BatchedProtocol for StableRanking {
    fn transition_block(&self, words: &mut [PackedState], pairs: &[Pair]) -> u64 {
        // n = 2 routes through the deterministic-election special case
        // inside `transition_packed`, which reads `params.n()`; keep it
        // on the scalar loop rather than teaching the kernel a case the
        // schedule only produces for a two-agent population.
        if self.params.n() == 2 {
            let mut changed = 0;
            for &(i, j) in pairs {
                let (u, v) = pair_mut(words, i as usize, j as usize);
                changed += u64::from(self.transition_packed(u, v));
            }
            return changed;
        }

        let t = &self.tables;
        let half = u64::from(self.fast.l_max / 2);
        let join = t.join_phase1.bits();
        let mut changed = 0u64;
        let mut resets = 0u64;
        let mut mix = [0u64; 4];

        for &(i, j) in pairs {
            let (u, v) = pair_mut(words, i as usize, j as usize);
            let (pu, pv) = (u.0, v.0);

            // One-hot classification over the two loaded words — each
            // test is a single fused mask op — feeding the same skewed
            // branch chain as the scalar dispatcher (which the
            // predictor tracks far better than a computed jump: a
            // `match` on the arithmetic class index measured ~5%
            // slower on the same workload). Only the class-specific
            // core lives in each arm; the responder coin toggle and
            // the changed compare are one shared tail, so the loop
            // body stays compact.
            let or = pu | pv;
            if or & TAG_RESET != 0 {
                // Reset-involved: Protocol 3 line 1.
                mix[0] += 1;
                reset::propagate_step_packed(t, u, v);
            } else if pu & pv & TAG_ELECT != 0 {
                // Both electing: the branchless lottery word step, no
                // field unpack / effect-enum round trip.
                mix[1] += 1;
                let (nu, reset_triggered) = elect_step_word(t, half, pu, pv);
                resets += u64::from(reset_triggered);
                u.0 = nu;
            } else if or & TAG_ELECT != 0 {
                // Exactly one electing: precomposed phase-1 rebirth
                // for the electing side (Protocol 3 lines 4–6),
                // mask-selected so the initiator/responder distinction
                // costs no branch.
                mix[2] += 1;
                let ue = pu & TAG_ELECT != 0;
                u.0 = if ue { join | (pu & COIN_BIT) } else { pu };
                v.0 = if ue { pv } else { join | (pv & COIN_BIT) };
            } else {
                // Both in main states: the silent-configuration fast
                // path first — two distinct ranked agents are a null
                // pair (no state change, no coin to toggle, no store),
                // and once ranking stabilizes almost every interaction
                // takes this exit — full Ranking⁺ otherwise.
                mix[3] += 1;
                if or & TAG_MASK == 0 && pu != pv {
                    continue;
                }
                let out = ranking_plus_step_packed(t, u, v);
                resets += u64::from(out.reset_triggered);
            }
            // Shared tail, Protocol 3 lines 9–10: the responder coin
            // toggles if it has one (unranked ⇔ some tag bit set) — a
            // branchless mask-multiply — and the changed flag is a
            // non-shortcircuit compare against the loaded words.
            v.0 ^= COIN_BIT * u64::from(v.0 & TAG_MASK != 0);
            changed += u64::from((u.0 != pu) | (v.0 != pv));
        }

        // Flush the locally accumulated instrumentation to the metrics
        // registry: one relaxed RMW per counter per block instead of
        // one per event.
        if resets > 0 {
            self.metrics.resets.add(resets);
        }
        for (hits, count) in self.metrics.classes.iter().zip(mix) {
            if count > 0 {
                hits.add(count);
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::stable::state::{StableState, UnRole, UnState};
    use leader_election::fast::FastLeState;
    use population::{Packed, Protocol};

    fn protocol(n: usize) -> StableRanking {
        StableRanking::new(Params::new(n))
    }

    /// The branchless lottery word step must agree with
    /// `FastLe::step_bits` (and the dispatcher built on it) over the
    /// full elect state space × both responder coins.
    #[test]
    fn elect_step_word_matches_the_scalar_dispatcher() {
        let p = protocol(64);
        let t = p.tables();
        let half = u64::from(p.fast_le().l_max / 2);
        for le in 0..=p.fast_le().l_max {
            for cc in 0..=p.fast_le().coin_target {
                for (done, lead) in [(false, false), (true, false), (true, true)] {
                    for (u_coin, v_coin) in [(false, false), (false, true), (true, false)] {
                        let state = StableState::Un(UnState {
                            coin: u_coin,
                            role: UnRole::Elect(FastLeState {
                                le_count: le,
                                coin_count: cc,
                                leader_done: done,
                                is_leader: lead,
                            }),
                        });
                        let u = PackedState::pack(&state);
                        let v = PackedState::elect(
                            v_coin,
                            FastLeState {
                                le_count: 1,
                                coin_count: 0,
                                leader_done: true,
                                is_leader: false,
                            },
                        );
                        let mut su = u;
                        let mut sv = v;
                        let resets_before = p.resets_triggered();
                        p.transition_packed(&mut su, &mut sv);
                        let (nu, reset) = elect_step_word(t, half, u.0, v.0);
                        assert_eq!(
                            nu, su.0,
                            "initiator diverged at le={le} cc={cc} done={done} \
                             lead={lead} v_coin={v_coin}"
                        );
                        assert_eq!(
                            reset,
                            p.resets_triggered() == resets_before + 1,
                            "reset flag diverged at le={le} cc={cc} done={done} lead={lead}"
                        );
                        assert_eq!(sv.0, v.0 ^ COIN_BIT, "responder must only toggle its coin");
                    }
                }
            }
        }
    }

    /// Crafted blocks with repeated agents: the kernel's in-order pass
    /// must reproduce the scalar loop exactly — including the
    /// degenerate all-same-pair block, where every pair reads the
    /// previous pair's writes.
    #[test]
    fn repeated_agent_blocks_reproduce_the_scalar_loop() {
        let n = 16u32;
        let pair_sets: Vec<Vec<Pair>> = vec![
            vec![(0, 1); 64],
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 5)],
            (0..200).map(|k| (k % n, (k * 7 + 1) % n)).collect(),
        ];
        for (case, pairs) in pair_sets.into_iter().enumerate() {
            let pairs: Vec<Pair> = pairs.into_iter().filter(|&(i, j)| i != j).collect();
            let p = Packed(protocol(n as usize));
            let init = p.pack_all(&p.inner().adversarial_uniform(case as u64 + 5));

            let mut kernel_words = init.clone();
            let kernel_changed = Protocol::transition_block(&p, &mut kernel_words, &pairs);

            let mut scalar_words = init;
            let mut scalar_changed = 0u64;
            let q = Packed(protocol(n as usize));
            for &(i, j) in &pairs {
                let (u, v) = pair_mut(&mut scalar_words, i as usize, j as usize);
                scalar_changed += u64::from(q.inner().transition_packed(u, v));
            }

            assert_eq!(kernel_words, scalar_words, "case {case}: words diverged");
            assert_eq!(kernel_changed, scalar_changed, "case {case}: changed count");
            assert_eq!(
                p.inner().resets_triggered(),
                q.inner().resets_triggered(),
                "case {case}: reset instrumentation"
            );
        }
    }

    /// The dispatch-mix counters account for every kernel-executed pair.
    #[test]
    fn dispatch_mix_counts_every_pair() {
        let p = Packed(protocol(32));
        let init = p.pack_all(&p.inner().initial());
        let mut sim = population::Simulator::new(p, init, 3);
        sim.run_batched(10_000);
        let mix = sim.protocol().inner().dispatch_mix();
        assert_eq!(mix.iter().sum::<u64>(), 10_000, "mix must cover the run");
        // A clean start is all-electing: the hot lane dominates early.
        assert!(mix[1] > 0, "both-elect lane never ran");
    }
}
