//! [`WordState`] implementations: snapshot word serialization for every
//! `StableRanking` execution shape.
//!
//! The impl here covers the readable enum path (`StableRanking`
//! itself); the packed kernel path (`Packed<StableRanking>`) and the
//! scalar-reference twin (`ScalarBlock<Packed<StableRanking>>`) get
//! theirs from `population`'s blanket impls, which route through this
//! one — so every shape serializes through the *same* parameter-free
//! [`PackedState`] codec. A snapshot is therefore
//! execution-shape-agnostic: words written by a kernel run restore into
//! an enum run and vice versa, which is what lets the resume property
//! suite cross-check paths against one snapshot format.
//!
//! Decoding validates twice, per the [`WordState`] contract:
//!
//! 1. **structurally** — [`PackedState::try_unpack`] rejects words that
//!    are not exact codec outputs (non-one-hot tags, stray bits);
//! 2. **semantically** — [`StableState::is_valid_for`] rejects states
//!    outside the declared `n + O(log² n)` state space for this
//!    protocol's parameters (an out-of-range rank, an overflowed
//!    counter).
//!
//! This is the *silence* dividend: the legal state space is a closed,
//! locally checkable predicate, so restored state is validated rather
//! than trusted — a corrupted snapshot word can never enter a run.

use population::WordState;

use crate::stable::packed::PackedState;
use crate::stable::{StableRanking, StableState};

/// Decode `word` and check it against the state space for `protocol`'s
/// parameters — the shared body of all three impls.
fn decode(protocol: &StableRanking, word: u64) -> Result<StableState, String> {
    let state = PackedState(word).try_unpack()?;
    if !state.is_valid_for(protocol.params()) {
        return Err(format!(
            "word {word:#x} decodes to {state:?}, outside the state space for n = {}",
            protocol.params().n()
        ));
    }
    Ok(state)
}

impl WordState for StableRanking {
    fn state_to_word(&self, state: &StableState) -> u64 {
        PackedState::pack(state).bits()
    }

    fn state_from_word(&self, word: u64) -> Result<StableState, String> {
        decode(self, word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::enumerate_states;
    use crate::params::Params;
    use population::{Packed, ScalarBlock};

    #[test]
    fn every_legal_state_round_trips_on_all_shapes() {
        let params = Params::new(24);
        let enum_p = StableRanking::new(params.clone());
        let packed_p = Packed(StableRanking::new(params.clone()));
        let scalar_p = ScalarBlock(Packed(StableRanking::new(params.clone())));
        for state in enumerate_states(&params) {
            let w = enum_p.state_to_word(&state);
            assert_eq!(enum_p.state_from_word(w).unwrap(), state);
            let pw = PackedState::pack(&state);
            assert_eq!(packed_p.state_to_word(&pw), w);
            assert_eq!(packed_p.state_from_word(w).unwrap(), pw);
            assert_eq!(scalar_p.state_from_word(w).unwrap(), pw);
        }
    }

    #[test]
    fn garbage_words_are_rejected_not_panicked() {
        let protocol = StableRanking::new(Params::new(16));
        // Non-one-hot tag, stray coin bit under a ranked tag, rank far
        // outside [n], counter overflow in a reset word.
        for bad in [
            0b0011u64,                // two tag bits
            0b1111,                   // four tag bits
            (5 << 5) | 0b1_0000,      // ranked with a coin bit
            1_000_000u64 << 5,        // rank 1e6 in an n=16 space
            (0xFFFF << 5) | 0b0_0001, // resetCount 65535 > R_max
            u64::MAX,                 // everything wrong at once
        ] {
            assert!(
                protocol.state_from_word(bad).is_err(),
                "word {bad:#x} must be rejected"
            );
        }
    }

    #[test]
    fn validation_is_parameter_dependent() {
        // Rank 20 is legal for n = 24 but outside the space for n = 16:
        // the same word must decode differently under different Params.
        let word = StableRanking::new(Params::new(24)).state_to_word(&StableState::Ranked(20));
        assert!(StableRanking::new(Params::new(24))
            .state_from_word(word)
            .is_ok());
        assert!(StableRanking::new(Params::new(16))
            .state_from_word(word)
            .is_err());
    }
}
