//! Human-readable rendering of `STABLERANKING` states, for traces,
//! examples and failing-test output.
//!
//! The notation follows the paper: `rank=r` for ranked agents; unranked
//! agents show their coin (`H`/`T`) and role — `reset(rc,dc)`,
//! `elect(LECount, coinCount, done?, leader?)`, `wait(w)|alive=a`,
//! `phase(k)|alive=a`.

use std::fmt;

use crate::stable::state::{MainKind, StableState, UnRole, UnState};

impl fmt::Display for StableState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StableState::Ranked(r) => write!(f, "rank={r}"),
            StableState::Un(UnState { coin, role }) => {
                let c = if *coin { 'H' } else { 'T' };
                match role {
                    UnRole::Reset {
                        reset_count,
                        delay_count,
                    } => write!(f, "{c}|reset({reset_count},{delay_count})"),
                    UnRole::Elect(le) => {
                        write!(
                            f,
                            "{c}|elect({},{}{}{})",
                            le.le_count,
                            le.coin_count,
                            if le.leader_done { ",done" } else { "" },
                            if le.is_leader { ",leader" } else { "" }
                        )
                    }
                    UnRole::Main { alive, kind } => match kind {
                        MainKind::Waiting(w) => write!(f, "{c}|wait({w})|alive={alive}"),
                        MainKind::Phase(k) => write!(f, "{c}|phase({k})|alive={alive}"),
                    },
                }
            }
        }
    }
}

/// Render a whole configuration compactly (agents separated by spaces).
pub fn configuration(states: &[StableState]) -> String {
    states
        .iter()
        .map(|s| format!("[{s}]"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use leader_election::fast::FastLeState;

    #[test]
    fn ranked_renders_rank() {
        assert_eq!(StableState::Ranked(7).to_string(), "rank=7");
    }

    #[test]
    fn resetting_renders_counters_and_coin() {
        let s = StableState::Un(UnState {
            coin: true,
            role: UnRole::Reset {
                reset_count: 3,
                delay_count: 9,
            },
        });
        assert_eq!(s.to_string(), "H|reset(3,9)");
    }

    #[test]
    fn electing_renders_flags_only_when_set() {
        let s = StableState::Un(UnState {
            coin: false,
            role: UnRole::Elect(FastLeState {
                le_count: 12,
                coin_count: 2,
                leader_done: false,
                is_leader: false,
            }),
        });
        assert_eq!(s.to_string(), "T|elect(12,2)");
        let done = StableState::Un(UnState {
            coin: false,
            role: UnRole::Elect(FastLeState {
                le_count: 12,
                coin_count: 0,
                leader_done: true,
                is_leader: true,
            }),
        });
        assert_eq!(done.to_string(), "T|elect(12,0,done,leader)");
    }

    #[test]
    fn main_roles_render_kind_and_liveness() {
        let w = StableState::Un(UnState {
            coin: true,
            role: UnRole::Main {
                alive: 5,
                kind: MainKind::Waiting(2),
            },
        });
        assert_eq!(w.to_string(), "H|wait(2)|alive=5");
        let p = StableState::Un(UnState {
            coin: false,
            role: UnRole::Main {
                alive: 8,
                kind: MainKind::Phase(3),
            },
        });
        assert_eq!(p.to_string(), "T|phase(3)|alive=8");
    }

    #[test]
    fn configuration_renders_all_agents() {
        let cfg = vec![StableState::Ranked(1), StableState::Ranked(2)];
        assert_eq!(configuration(&cfg), "[rank=1] [rank=2]");
    }

    #[test]
    fn display_is_never_empty() {
        // C-DEBUG-NONEMPTY, applied to Display.
        let states = [
            StableState::Ranked(1),
            StableState::Un(UnState {
                coin: false,
                role: UnRole::Reset {
                    reset_count: 0,
                    delay_count: 0,
                },
            }),
        ];
        for s in &states {
            assert!(!s.to_string().is_empty());
        }
    }
}
