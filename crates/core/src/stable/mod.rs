//! `STABLERANKING` (Protocol 3) — the paper's headline result, Theorem 2:
//! silent *self-stabilizing* ranking with `n + O(log² n)` states,
//! stabilizing in `O(n² log n)` interactions w.h.p. from **any** initial
//! configuration.
//!
//! The dispatcher composes three sub-protocols, mirroring Protocol 3 line
//! by line:
//!
//! 1. [`reset`] — `PROPAGATERESET` consumes the interaction when either
//!    agent is propagating or dormant (line 1);
//! 2. `FASTLEADERELECTION` runs when both agents are electing (lines 2–3),
//!    via [`leader_election::fast`];
//! 3. an electing agent meeting a main-state agent joins the main protocol
//!    as a phase-1 agent (lines 4–6);
//! 4. two main-state agents execute [`ranking_plus`] (lines 7–8);
//! 5. finally, the responder's synthetic coin is toggled (lines 9–10).

pub mod display;
pub mod kernel;
pub mod packed;
pub mod ranking_plus;
pub mod reset;
pub mod state;
pub mod tables;
pub mod words;

use leader_election::fast::{FastLe, FastLeEffect};
use population::{PackedProtocol, Protocol};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::fseq::FSeq;
use crate::params::Params;
use crate::stable::packed::{A_SHIFT, COIN_BIT, TAG_ELECT, TAG_MASK, TAG_RESET};
use crate::stable::ranking_plus::{ranking_plus_step, ranking_plus_step_packed, RpCtx};
use crate::stable::state::{MainKind, UnRole, UnState};
use crate::stable::tables::StepTables;
use telemetry::{Counter, Registry};

pub use crate::stable::packed::PackedState;
pub use crate::stable::state::StableState;

/// The self-stabilizing ranking protocol of Theorem 2.
///
/// The value is `Sync`: all transition state (`Params`, `FSeq`,
/// [`StepTables`]) is immutable after construction, and the
/// instrumentation lives in relaxed-atomic counters on the protocol's
/// [metrics registry](StableRanking::metrics), so one protocol value can
/// drive a sharded multi-threaded run (`crates/shard`) without locking.
#[derive(Debug, Clone)]
pub struct StableRanking {
    params: Params,
    fseq: FSeq,
    fast: FastLe,
    tables: StepTables,
    metrics: Metrics,
}

/// Names of the four dispatch-mix counters on the metrics registry,
/// indexed like [`StableRanking::dispatch_mix`]:
/// `[reset-involved, both-electing, one-electing, main/main]`.
pub const DISPATCH_COUNTERS: [&str; 4] = [
    "dispatch_reset",
    "dispatch_both_elect",
    "dispatch_one_elect",
    "dispatch_main_main",
];

/// Name of the reset-event counter on the metrics registry.
pub const RESETS_COUNTER: &str = "resets_triggered";

/// The protocol's slice of the unified metrics registry: the reset-event
/// counter and the kernel's dispatch-mix counters, with the hot-path
/// handles the transition code updates through.
#[derive(Debug)]
struct Metrics {
    registry: Registry,
    resets: Counter,
    classes: [Counter; 4],
}

impl Metrics {
    fn new() -> Self {
        let mut registry = Registry::new();
        let resets = registry.counter(RESETS_COUNTER);
        let classes = DISPATCH_COUNTERS.map(|name| registry.counter(name));
        Self {
            registry,
            resets,
            classes,
        }
    }
}

impl Clone for Metrics {
    /// Cloning snapshots the counter *values* into a fresh registry:
    /// cloned protocol values count independently (the kernel's
    /// differential tests rely on this), matching the semantics of the
    /// per-value `AtomicU64` fields the registry replaced.
    fn clone(&self) -> Self {
        let fresh = Metrics::new();
        fresh.resets.add(self.resets.get());
        for (new, old) in fresh.classes.iter().zip(&self.classes) {
            new.add(old.get());
        }
        fresh
    }
}

impl StableRanking {
    /// Build the protocol for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `L_max < 2·(⌈log₂ n⌉ + 1)`: a `FASTLEADERELECTION`
    /// winner needs `⌈log₂ n⌉ + 1` heads observations and must still hold
    /// `LECount ≥ L_max/2` to start the main phase (Protocol 5 line 9),
    /// so smaller budgets make electing a leader *impossible* and the
    /// protocol livelocks in reset → elect → timeout cycles. The paper's
    /// default `c_live = 4` always satisfies this.
    pub fn new(params: Params) -> Self {
        let fseq = params.fseq();
        let fast = FastLe::for_n(params.n(), params.c_live());
        assert!(
            fast.l_max >= 2 * (fast.coin_target + 1),
            "c_live = {} gives L_max = {} < 2(⌈log n⌉+1) = {}: the lottery can \
             never elect a leader (see Protocol 5 line 9)",
            params.c_live(),
            fast.l_max,
            2 * (fast.coin_target + 1)
        );
        let tables = StepTables::new(&params, &fseq, &fast);
        Self {
            params,
            fseq,
            fast,
            tables,
            metrics: Metrics::new(),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The phase geometry in use.
    pub fn fseq(&self) -> &FSeq {
        &self.fseq
    }

    /// The embedded `FASTLEADERELECTION` parameters.
    pub fn fast_le(&self) -> &FastLe {
        &self.fast
    }

    /// The precomputed transition tables driving the packed hot path.
    pub fn tables(&self) -> &StepTables {
        &self.tables
    }

    /// Number of resets triggered so far across all interactions executed
    /// through this protocol value (experiment instrumentation) — a view
    /// of the [`RESETS_COUNTER`] counter on the
    /// [metrics registry](StableRanking::metrics). In a sharded run the
    /// counter aggregates across threads (relaxed ordering: the total is
    /// exact once the run has joined, but mid-run reads may lag).
    pub fn resets_triggered(&self) -> u64 {
        self.metrics.resets.get()
    }

    /// Per-class interaction counts executed through the block kernel's
    /// classified lanes ([`kernel`]), indexed
    /// `[reset-involved, both-electing, one-electing, main/main]`.
    ///
    /// Only block-kernel interactions are counted — the scalar paths
    /// ([`transition`](Protocol::transition),
    /// [`transition_packed`](PackedProtocol::transition_packed), and the
    /// kernel's `n = 2` fallback) don't classify, so they don't count.
    /// The `engine_throughput` bench records this dispatch mix alongside
    /// kernel throughput: a perf regression that coincides with a mix
    /// shift is a workload change, not a kernel change. Same relaxed
    /// aggregation semantics as
    /// [`resets_triggered`](StableRanking::resets_triggered); a view of
    /// the [`DISPATCH_COUNTERS`] counters on the
    /// [metrics registry](StableRanking::metrics).
    pub fn dispatch_mix(&self) -> [u64; 4] {
        [0, 1, 2, 3].map(|c| self.metrics.classes[c].get())
    }

    /// The protocol's metrics registry: the single source of truth for
    /// its instrumentation ([`RESETS_COUNTER`], [`DISPATCH_COUNTERS`]),
    /// enumerable for trace emission alongside a `Recorder`'s own
    /// registry. Cloned protocol values get a fresh registry seeded with
    /// the current values (independent counting, see `Metrics::clone`).
    pub fn metrics(&self) -> &Registry {
        &self.metrics.registry
    }

    fn elect_state(&self, coin: bool) -> StableState {
        StableState::Un(UnState {
            coin,
            role: UnRole::Elect(self.fast.initial_state()),
        })
    }

    /// The clean-start elector state `q_{0,i}` with the given synthetic
    /// coin — the state a *freshly joined* agent enters the population
    /// in. This is the per-agent building block of
    /// [`initial`](StableRanking::initial), exposed so the dynamic
    /// engine (`crates/dynamic`) can spawn arrivals and locally re-seed
    /// agents whose state fell outside the space on an epoch shrink.
    pub fn elector(&self, coin: bool) -> StableState {
        self.elect_state(coin)
    }

    fn phase_state(&self, coin: bool, alive: u32, k: u32) -> StableState {
        StableState::Un(UnState {
            coin,
            role: UnRole::Main {
                alive,
                kind: MainKind::Phase(k),
            },
        })
    }

    // ------------------------------------------------------------------
    // Initial configurations
    // ------------------------------------------------------------------

    /// The "clean" start: every agent in the initial leader-election state
    /// `q_{0,i}` with alternating coins (Appendix C).
    pub fn initial(&self) -> Vec<StableState> {
        (0..self.params.n())
            .map(|i| self.elect_state(i % 2 == 0))
            .collect()
    }

    /// Figure 2's worst-case initialization: agents hold ranks `2 ..= n`
    /// and a single phase agent has phase 1 with a maximal liveness
    /// counter. Resetting from here requires detecting that rank 1 can
    /// never be... assigned without a duplicate — `Θ(n² log n)`
    /// interactions in expectation.
    pub fn figure2(&self) -> Vec<StableState> {
        let n = self.params.n();
        let mut states: Vec<StableState> = (2..=n as u64).map(StableState::Ranked).collect();
        states.push(self.phase_state(false, self.params.l_max(), 1));
        states
    }

    /// Figure 3's initialization: one agent is the rank-1 unaware leader,
    /// all others are still in a leader-election state.
    pub fn figure3(&self) -> Vec<StableState> {
        let n = self.params.n();
        let mut states = vec![StableState::Ranked(1)];
        states.extend((1..n).map(|i| self.elect_state(i % 2 == 0)));
        states
    }

    /// A uniformly random configuration over the (valid) state space —
    /// the adversarial initialization used by the self-stabilization
    /// tests. Deterministic in `seed`.
    pub fn adversarial_uniform(&self, seed: u64) -> Vec<StableState> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..self.params.n())
            .map(|_| self.random_state(&mut rng))
            .collect()
    }

    /// One uniformly random state from the (valid) state space — the
    /// per-agent building block of
    /// [`adversarial_uniform`](StableRanking::adversarial_uniform),
    /// exposed so fault injectors (the `scenarios` crate) can corrupt
    /// individual agents with fresh garbage mid-run.
    pub fn random_state(&self, rng: &mut SmallRng) -> StableState {
        let p = &self.params;
        let coin = rng.random_bool(0.5);
        match rng.random_range(0..6u8) {
            0 => StableState::Ranked(rng.random_range(1..=p.n() as u64)),
            1 => StableState::Un(UnState {
                coin,
                role: UnRole::Reset {
                    reset_count: rng.random_range(0..=p.r_max()),
                    delay_count: rng.random_range(1..=p.d_max()),
                },
            }),
            2 => {
                let leader_done = rng.random_bool(0.5);
                let is_leader = leader_done && rng.random_bool(0.3);
                StableState::Un(UnState {
                    coin,
                    role: UnRole::Elect(leader_election::fast::FastLeState {
                        le_count: rng.random_range(1..=self.fast.l_max),
                        coin_count: rng.random_range(0..=self.fast.coin_target),
                        leader_done,
                        is_leader,
                    }),
                })
            }
            3 => StableState::Un(UnState {
                coin,
                role: UnRole::Main {
                    alive: rng.random_range(1..=p.l_max()),
                    kind: MainKind::Waiting(rng.random_range(1..=p.wait_max())),
                },
            }),
            _ => self.phase_state(
                coin,
                rng.random_range(1..=p.l_max()),
                rng.random_range(1..=self.fseq.kmax()),
            ),
        }
    }

    /// Adversarial configuration where every agent holds the same rank —
    /// maximal duplication.
    pub fn all_same_rank(&self, rank: u64) -> Vec<StableState> {
        vec![StableState::Ranked(rank); self.params.n()]
    }

    /// Adversarial configuration where every agent is waiting.
    pub fn all_waiting(&self) -> Vec<StableState> {
        (0..self.params.n())
            .map(|i| {
                StableState::Un(UnState {
                    coin: i % 2 == 0,
                    role: UnRole::Main {
                        alive: self.params.l_max(),
                        kind: MainKind::Waiting(self.params.wait_max()),
                    },
                })
            })
            .collect()
    }

    /// Adversarial configuration where every agent is a phase agent at
    /// phase `k` — a *dead* configuration (no leader will ever appear
    /// without a reset).
    pub fn all_phase(&self, k: u32) -> Vec<StableState> {
        (0..self.params.n())
            .map(|i| self.phase_state(i % 2 == 0, self.params.l_max(), k))
            .collect()
    }

    /// The legal configuration: a permutation of ranks (stabilization
    /// target; useful for closure tests).
    pub fn legal(&self) -> Vec<StableState> {
        (1..=self.params.n() as u64)
            .map(StableState::Ranked)
            .collect()
    }

    fn rp_ctx(&self) -> RpCtx<'_> {
        RpCtx {
            fseq: &self.fseq,
            wait_max: self.params.wait_max(),
            l_max: self.params.l_max(),
            r_max: self.params.r_max(),
            d_max: self.params.d_max(),
        }
    }

    fn count_reset(&self) {
        self.metrics.resets.inc();
    }
}

impl Protocol for StableRanking {
    type State = StableState;

    fn n(&self) -> usize {
        self.params.n()
    }

    #[inline]
    fn transition(&self, u: &mut StableState, v: &mut StableState) -> bool {
        let before = (*u, *v);

        if reset::applicable(u, v) {
            // Protocol 3 line 1: propagate resets / wake dormant agents.
            reset::propagate_step(&self.fast, self.params.d_max(), u, v);
        } else if u.is_electing() && v.is_electing() {
            if self.params.n() == 2 {
                // Two-agent special case: the lottery of Protocol 5 is
                // structurally unwinnable at n = 2 — the lone responder's
                // synthetic coin toggles on every response (lines 9–10),
                // so one agent's successive coin observations strictly
                // alternate and the required two consecutive heads never
                // occur. With a single possible partner, anonymity buys
                // nothing: the initiator of the first elect–elect meeting
                // simply wins, deterministically, and starts the main
                // phase as the waiting leader.
                let coin = u.coin().expect("electing agents carry a coin");
                *u = StableState::Un(UnState {
                    coin,
                    role: UnRole::Main {
                        alive: self.params.l_max(),
                        kind: MainKind::Waiting(self.params.wait_max()),
                    },
                });
            }
            // Lines 2–3: both electing — run FASTLEADERELECTION for the
            // initiator, observing the responder's coin.
            else if let StableState::Un(UnState {
                coin,
                role: UnRole::Elect(le),
            }) = u
            {
                let coin_u = *coin;
                let v_coin = v.coin().expect("electing agents carry a coin");
                match self.fast.step(le, v_coin) {
                    FastLeEffect::None => {}
                    FastLeEffect::BecomeWaitingLeader => {
                        // Protocol 5 lines 10–11: forget the LE state and
                        // start the main phase as the waiting leader; the
                        // coin is maintained.
                        *u = StableState::Un(UnState {
                            coin: coin_u,
                            role: UnRole::Main {
                                alive: self.params.l_max(),
                                kind: MainKind::Waiting(self.params.wait_max()),
                            },
                        });
                    }
                    FastLeEffect::TimedOut => {
                        // Protocol 5 lines 13–15: no leader emerged in
                        // time — trigger a reset.
                        reset::trigger_reset(self.params.r_max(), self.params.d_max(), u);
                        self.count_reset();
                    }
                }
            }
        } else if u.is_electing() || v.is_electing() {
            // Lines 4–6: an electing agent meets a main-state agent: it
            // forgets everything but its coin and joins as a phase-1
            // agent with a fresh liveness counter.
            for slot in [&mut *u, &mut *v] {
                if slot.is_electing() {
                    let coin = slot.coin().expect("electing agents carry a coin");
                    *slot = self.phase_state(coin, self.params.l_max(), 1);
                }
            }
        } else {
            // Lines 7–8: both in main states — run Ranking⁺.
            let outcome = ranking_plus_step(&self.rp_ctx(), u, v);
            if outcome.reset_triggered {
                self.count_reset();
            }
        }

        // Lines 9–10: the responder's coin toggles if it has one.
        if let StableState::Un(un) = v {
            un.coin = !un.coin;
        }

        (*u, *v) != before
    }
}

impl PackedProtocol for StableRanking {
    type Packed = PackedState;

    fn pack(&self, state: &StableState) -> PackedState {
        PackedState::pack(state)
    }

    fn unpack(&self, word: PackedState) -> StableState {
        word.unpack()
    }

    /// The Protocol 3 dispatcher over packed words — same branch
    /// structure as [`transition`](Protocol::transition), but every
    /// threshold comes from the precomputed [`StepTables`], role tests
    /// are tag compares, and the "forget everything" rebirths (lottery
    /// winner, phase-1 joiner, triggered agent, fresh elector) are
    /// single precomposed words OR-ed with the surviving coin bit.
    /// Bit-for-bit trajectory-equivalent to the structured path
    /// (property-tested in `tests/packed_equivalence.rs`).
    #[inline]
    fn transition_packed(&self, u: &mut PackedState, v: &mut PackedState) -> bool {
        let before = (*u, *v);
        let t = &self.tables;

        // The one-hot tags make the dispatch tests single fused bit
        // operations over the two words.
        if (u.0 | v.0) & TAG_RESET != 0 {
            // Protocol 3 line 1: propagate resets / wake dormant agents.
            reset::propagate_step_packed(t, u, v);
        } else if u.0 & v.0 & TAG_ELECT != 0 {
            if self.params.n() == 2 {
                // Two-agent special case (see `transition`): the lottery
                // cannot be won against a single alternating coin, so the
                // initiator of the first elect–elect meeting becomes the
                // waiting leader deterministically.
                u.0 = t.leader_wait.bits() | (u.0 & COIN_BIT);
            } else {
                // Lines 2–3: both electing — run FASTLEADERELECTION for
                // the initiator, observing the responder's coin.
                let (bits, effect) = self.fast.step_bits(u.le_bits(), v.coin());
                match effect {
                    FastLeEffect::None => {
                        u.0 = (u.0 & (TAG_MASK | COIN_BIT)) | (bits << A_SHIFT);
                    }
                    FastLeEffect::BecomeWaitingLeader => {
                        // Protocol 5 lines 10–11: forget the LE state and
                        // start the main phase; the coin is maintained.
                        u.0 = t.leader_wait.bits() | (u.0 & COIN_BIT);
                    }
                    FastLeEffect::TimedOut => {
                        // Protocol 5 lines 13–15: trigger a reset.
                        reset::trigger_reset_packed(t, u);
                        self.count_reset();
                    }
                }
            }
        } else if (u.0 | v.0) & TAG_ELECT != 0 {
            // Lines 4–6: an electing agent meets a main-state agent and
            // joins as a phase-1 agent, keeping only its coin.
            if u.0 & TAG_ELECT != 0 {
                u.0 = t.join_phase1.bits() | (u.0 & COIN_BIT);
            } else {
                v.0 = t.join_phase1.bits() | (v.0 & COIN_BIT);
            }
        } else {
            // Lines 7–8: both in main states — run Ranking⁺.
            let outcome = ranking_plus_step_packed(t, u, v);
            if outcome.reset_triggered {
                self.count_reset();
            }
        }

        // Lines 9–10: the responder's coin toggles if it has one
        // (unranked ⇔ some tag bit set).
        if v.0 & TAG_MASK != 0 {
            v.toggle_coin();
        }

        (*u, *v) != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leader_election::fast::FastLeState;
    use population::runner::run_seed_range;
    use population::silence::{first_active_pair, is_silent};
    use population::RankOutput;
    use population::{is_valid_ranking, Simulator};

    fn protocol(n: usize) -> StableRanking {
        StableRanking::new(Params::new(n))
    }

    /// Generous w.h.p. budget: c · n² · log₂ n.
    fn budget(n: usize, c: f64) -> u64 {
        (c * (n * n) as f64 * (n as f64).log2()).ceil() as u64
    }

    fn stabilizes_from(init: Vec<StableState>, n: usize, seed: u64, c: f64) -> Option<u64> {
        let p = protocol(n);
        let mut sim = Simulator::new(p, init, seed);
        let stop = sim.run_until(is_valid_ranking, budget(n, c), n as u64);
        let t = stop.converged_at()?;
        // Theorem 2 demands silence, not just validity.
        assert!(
            is_silent(sim.protocol(), sim.states()),
            "valid but not silent: active pair {:?}",
            first_active_pair(sim.protocol(), sim.states())
        );
        Some(t)
    }

    #[test]
    #[should_panic(expected = "never elect a leader")]
    fn rejects_unviable_lottery_budget() {
        // c_live = 1 gives L_max = ⌈log n⌉ < 2(⌈log n⌉+1): no agent can
        // ever win the lottery and still satisfy Protocol 5 line 9.
        let _ = StableRanking::new(Params::new(16).with_c_live(1.0));
    }

    #[test]
    fn legal_configuration_is_silent_closure() {
        // Closure property (end of Theorem 2's proof): a permutation of
        // ranks never changes under any ordered pair.
        for n in [2usize, 3, 8, 33] {
            let p = protocol(n);
            assert!(
                is_silent(&p, &p.legal()),
                "n={n}: legal configuration not silent"
            );
        }
    }

    #[test]
    fn responder_coin_toggles() {
        let p = protocol(8);
        let mut u = StableState::Ranked(1);
        let mut v = p.elect_state(false);
        // Ranked u meets electing v: v joins as phase agent (coin kept),
        // then the coin toggles.
        p.transition(&mut u, &mut v);
        assert_eq!(v.coin(), Some(true));
        assert_eq!(v.phase(), Some(1));
    }

    #[test]
    fn electing_meets_main_joins_as_phase_one() {
        let p = protocol(8);
        let mut u = p.elect_state(true);
        let mut v = StableState::Ranked(4);
        assert!(p.transition(&mut u, &mut v));
        assert_eq!(u.phase(), Some(1));
        assert_eq!(u.alive(), Some(p.params().l_max()));
        assert_eq!(u.coin(), Some(true), "initiator coin not toggled");
        assert_eq!(v, StableState::Ranked(4));
    }

    #[test]
    fn fast_le_winner_becomes_waiting_leader() {
        let p = protocol(8);
        // Agent one heads-observation away from winning.
        let mut u = StableState::Un(UnState {
            coin: true,
            role: UnRole::Elect(FastLeState {
                le_count: p.fast_le().l_max,
                coin_count: 0,
                leader_done: false,
                is_leader: false,
            }),
        });
        let mut v = p.elect_state(true); // responder coin = heads
        p.transition(&mut u, &mut v);
        assert!(u.is_waiting(), "lottery winner starts the main phase");
        assert_eq!(u.alive(), Some(p.params().l_max()));
    }

    #[test]
    fn fast_le_timeout_triggers_reset() {
        let p = protocol(8);
        let mut u = StableState::Un(UnState {
            coin: true,
            role: UnRole::Elect(FastLeState {
                le_count: 1,
                coin_count: 3,
                leader_done: true,
                is_leader: false,
            }),
        });
        let mut v = p.elect_state(false);
        p.transition(&mut u, &mut v);
        assert!(u.is_resetting(), "LECount hit 0 → triggered agent");
        assert_eq!(p.resets_triggered(), 1);
    }

    #[test]
    fn reset_branch_takes_priority() {
        let p = protocol(8);
        let mut u = StableState::Un(UnState {
            coin: false,
            role: UnRole::Reset {
                reset_count: 3,
                delay_count: p.params().d_max(),
            },
        });
        let mut v = p.elect_state(false);
        p.transition(&mut u, &mut v);
        assert!(v.is_resetting(), "electing agent infected by the reset");
    }

    #[test]
    fn two_agent_election_is_deterministic() {
        // n = 2: the lottery is unwinnable (the lone responder's coin
        // alternates), so the first elect–elect meeting elects the
        // initiator outright.
        let p = protocol(2);
        let mut u = p.elect_state(true);
        let mut v = p.elect_state(false);
        assert!(p.transition(&mut u, &mut v));
        assert!(u.is_waiting(), "initiator must win immediately");
        assert_eq!(u.alive(), Some(p.params().l_max()));
        assert_eq!(u.coin(), Some(true), "winner keeps its coin");
        assert!(v.is_electing(), "responder only toggles its coin");
        assert_eq!(p.resets_triggered(), 0);
    }

    #[test]
    fn stabilizes_at_n_equals_two() {
        // The boundary size Theorem 2 still covers; livelocked forever
        // before the deterministic two-agent election special case.
        let ok = run_seed_range(8, |seed| {
            let init = protocol(2).adversarial_uniform(seed.wrapping_mul(31) + 100);
            stabilizes_from(init, 2, seed, 8000.0).is_some()
        });
        let failures = ok.iter().filter(|b| !**b).count();
        assert_eq!(failures, 0, "{failures}/8 n=2 adversarial starts failed");
    }

    #[test]
    fn stabilizes_from_clean_start() {
        let n = 32;
        let ok = run_seed_range(8, |seed| {
            stabilizes_from(protocol(n).initial(), n, seed, 4000.0).is_some()
        });
        let failures = ok.iter().filter(|b| !**b).count();
        assert_eq!(failures, 0, "{failures}/8 clean starts failed");
    }

    #[test]
    fn stabilizes_from_adversarial_uniform() {
        let n = 24;
        let ok = run_seed_range(10, |seed| {
            let init = protocol(n).adversarial_uniform(seed.wrapping_mul(7919));
            stabilizes_from(init, n, seed, 6000.0).is_some()
        });
        let failures = ok.iter().filter(|b| !**b).count();
        assert_eq!(failures, 0, "{failures}/10 adversarial starts failed");
    }

    #[test]
    fn stabilizes_from_figure2_worst_case() {
        let n = 32;
        let ok = run_seed_range(6, |seed| {
            stabilizes_from(protocol(n).figure2(), n, seed, 6000.0).is_some()
        });
        let failures = ok.iter().filter(|b| !**b).count();
        assert_eq!(failures, 0, "{failures}/6 figure-2 starts failed");
    }

    #[test]
    fn stabilizes_from_figure3_init() {
        let n = 32;
        let ok = run_seed_range(6, |seed| {
            stabilizes_from(protocol(n).figure3(), n, seed, 6000.0).is_some()
        });
        let failures = ok.iter().filter(|b| !**b).count();
        assert_eq!(failures, 0, "{failures}/6 figure-3 starts failed");
    }

    #[test]
    fn stabilizes_from_all_same_rank() {
        let n = 24;
        let ok = run_seed_range(6, |seed| {
            stabilizes_from(protocol(n).all_same_rank(5), n, seed, 6000.0).is_some()
        });
        let failures = ok.iter().filter(|b| !**b).count();
        assert_eq!(failures, 0, "{failures}/6 all-same-rank starts failed");
    }

    #[test]
    fn stabilizes_from_all_waiting() {
        let n = 24;
        let ok = run_seed_range(6, |seed| {
            stabilizes_from(protocol(n).all_waiting(), n, seed, 6000.0).is_some()
        });
        let failures = ok.iter().filter(|b| !**b).count();
        assert_eq!(failures, 0, "{failures}/6 all-waiting starts failed");
    }

    #[test]
    fn stabilizes_from_dead_all_phase_configuration() {
        let n = 24;
        let kmax = protocol(n).fseq().kmax();
        for k in [1, kmax] {
            let ok = run_seed_range(4, |seed| {
                stabilizes_from(protocol(n).all_phase(k), n, seed, 6000.0).is_some()
            });
            let failures = ok.iter().filter(|b| !**b).count();
            assert_eq!(failures, 0, "{failures}/4 all-phase-{k} starts failed");
        }
    }

    #[test]
    fn stabilizes_for_non_power_of_two_sizes() {
        for n in [6usize, 13, 20, 27] {
            let ok = run_seed_range(4, |seed| {
                let init = protocol(n).adversarial_uniform(seed + 31);
                stabilizes_from(init, n, seed, 8000.0).is_some()
            });
            let failures = ok.iter().filter(|b| !**b).count();
            assert_eq!(failures, 0, "n={n}: {failures}/4 runs failed");
        }
    }

    #[test]
    fn figure2_initialization_matches_caption() {
        let p = protocol(256);
        let init = p.figure2();
        assert_eq!(init.len(), 256);
        let ranked: Vec<u64> = init.iter().filter_map(|s| s.rank()).collect();
        assert_eq!(ranked.len(), 255);
        assert_eq!(*ranked.iter().min().expect("nonempty"), 2);
        assert_eq!(*ranked.iter().max().expect("nonempty"), 256);
        let phase_agents: Vec<&StableState> = init.iter().filter(|s| s.phase().is_some()).collect();
        assert_eq!(phase_agents.len(), 1);
        assert_eq!(phase_agents[0].alive(), Some(p.params().l_max()));
    }

    #[test]
    fn duplicate_rank_meeting_eventually_resets_whole_population() {
        // From an all-same-rank configuration the very first interaction
        // triggers a reset; within O(n log n) the population is electing.
        let n = 16;
        let p = protocol(n);
        let init = p.all_same_rank(1);
        let mut sim = Simulator::new(p, init, 3);
        let stop = sim.run_until(
            |s| s.iter().all(|x| x.is_electing() || x.is_resetting()),
            200_000,
            4,
        );
        assert!(stop.converged_at().is_some(), "population never reset");
        assert!(sim.protocol().resets_triggered() >= 1);
    }
}
