//! State space of `STABLERANKING` (Protocol 3).
//!
//! The paper's state space is the disjoint union
//!
//! ```text
//! Q = [n]  ⊎  {0,1} × ( [R_max]×[D_max]  ⊎  Q_SLE  ⊎  [L_max] × (waitCount ⊎ phase) )
//!     rank     coin     PropagateReset      FastLE     aliveCount   RANKING roles
//! ```
//!
//! Crucially, a **ranked agent stores nothing but its rank** — not even a
//! coin. This is the space constraint that forces the "unaware leader"
//! design, and the `enum` below makes violating it unrepresentable.

use leader_election::fast::FastLeState;
use population::RankOutput;
use telemetry::{AgentClass, TraceState};

use crate::params::Params;

/// Full agent state of `STABLERANKING`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StableState {
    /// A ranked agent: `rank ∈ [n]`, nothing else.
    Ranked(u64),
    /// An unranked agent: a synthetic coin plus one of the unranked roles.
    Un(UnState),
}

/// The unranked half of the state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnState {
    /// Synthetic coin, toggled on every activation as responder
    /// (Protocol 3 lines 9–10).
    pub coin: bool,
    /// Which sub-protocol the agent is currently executing.
    pub role: UnRole,
}

/// Sub-protocol roles of unranked agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnRole {
    /// `PROPAGATERESET` participant: *propagating* while
    /// `reset_count > 0`, *dormant* while `reset_count = 0 < delay_count`.
    Reset {
        /// `resetCount ∈ [0, R_max]`.
        reset_count: u32,
        /// `delayCount ∈ [0, D_max]`.
        delay_count: u32,
    },
    /// `FASTLEADERELECTION` participant (Protocol 5).
    Elect(FastLeState),
    /// Main-protocol participant (`Ranking⁺`, Protocol 4).
    Main {
        /// `aliveCount ∈ [0, L_max]` liveness counter.
        alive: u32,
        /// Waiting or phase agent.
        kind: MainKind,
    },
}

/// The two unranked main-protocol roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MainKind {
    /// `waitCount ∈ [1, ⌈c_wait log n⌉]`.
    Waiting(u32),
    /// `phase ∈ [1, ⌈log₂ n⌉]`.
    Phase(u32),
}

impl StableState {
    /// Is this agent in a main state (`Q_Main` of Protocol 4)? Note that
    /// ranked agents *are* main states.
    pub fn is_main(&self) -> bool {
        matches!(
            self,
            StableState::Ranked(_)
                | StableState::Un(UnState {
                    role: UnRole::Main { .. },
                    ..
                })
        )
    }

    /// Is this agent running `PROPAGATERESET` (propagating or dormant)?
    pub fn is_resetting(&self) -> bool {
        matches!(
            self,
            StableState::Un(UnState {
                role: UnRole::Reset { .. },
                ..
            })
        )
    }

    /// Is this agent running `FASTLEADERELECTION`?
    pub fn is_electing(&self) -> bool {
        matches!(
            self,
            StableState::Un(UnState {
                role: UnRole::Elect(_),
                ..
            })
        )
    }

    /// Is this a waiting agent?
    pub fn is_waiting(&self) -> bool {
        matches!(
            self,
            StableState::Un(UnState {
                role: UnRole::Main {
                    kind: MainKind::Waiting(_),
                    ..
                },
                ..
            })
        )
    }

    /// The stored phase, if this is a phase agent.
    pub fn phase(&self) -> Option<u32> {
        match self {
            StableState::Un(UnState {
                role:
                    UnRole::Main {
                        kind: MainKind::Phase(k),
                        ..
                    },
                ..
            }) => Some(*k),
            _ => None,
        }
    }

    /// The liveness counter, if this is an unranked main agent.
    pub fn alive(&self) -> Option<u32> {
        match self {
            StableState::Un(UnState {
                role: UnRole::Main { alive, .. },
                ..
            }) => Some(*alive),
            _ => None,
        }
    }

    /// The synthetic coin, if the agent has one (all unranked agents do).
    pub fn coin(&self) -> Option<bool> {
        match self {
            StableState::Un(u) => Some(u.coin),
            StableState::Ranked(_) => None,
        }
    }

    /// Is this state inside the protocol's state space for `params`?
    ///
    /// Every counter must respect its bound: `rank ∈ [1, n]`,
    /// `resetCount ≤ R_max`, `delayCount ≤ D_max`, `LECount ≤ L_max`,
    /// `coinCount ≤ ⌈log n⌉`, `aliveCount ≤ L_max`,
    /// `waitCount ∈ [1, waitMax]`, `phase ∈ [1, ⌈log₂ n⌉]`, and
    /// `isLeader ⇒ leaderDone` never... is required only of reachable
    /// states — a lone `isLeader` flag is tolerated here because
    /// adversarial initializations may contain it.
    pub fn is_valid_for(&self, params: &Params) -> bool {
        match self {
            StableState::Ranked(r) => *r >= 1 && *r <= params.n() as u64,
            StableState::Un(UnState { role, .. }) => match role {
                UnRole::Reset {
                    reset_count,
                    delay_count,
                } => *reset_count <= params.r_max() && *delay_count <= params.d_max(),
                UnRole::Elect(le) => {
                    le.le_count <= params.l_max() && le.coin_count <= params.coin_target()
                }
                UnRole::Main { alive, kind } => {
                    *alive <= params.l_max()
                        && match kind {
                            MainKind::Waiting(w) => *w >= 1 && *w <= params.wait_max(),
                            MainKind::Phase(k) => *k >= 1 && *k <= params.coin_target(),
                        }
                }
            },
        }
    }

    /// Encode the state to a dense integer, injectively, for the
    /// state-space audit. The encoding is mixed-radix over the parameter
    /// bounds; two distinct states always map to distinct codes as long as
    /// they respect the bounds in `params` (guaranteed for protocol-reachable
    /// states).
    pub fn encode(&self, params: &Params) -> u64 {
        let n = params.n() as u64;
        match self {
            StableState::Ranked(r) => r - 1, // 0 .. n-1
            StableState::Un(UnState { coin, role }) => {
                let coin_bit = u64::from(*coin);
                let role_code = match role {
                    UnRole::Reset {
                        reset_count,
                        delay_count,
                    } => {
                        // 0 .. (R_max+1)(D_max+1)
                        u64::from(*reset_count) * (u64::from(params.d_max()) + 1)
                            + u64::from(*delay_count)
                    }
                    UnRole::Elect(le) => {
                        let base =
                            (u64::from(params.r_max()) + 1) * (u64::from(params.d_max()) + 1);
                        let flags = u64::from(le.leader_done) * 2 + u64::from(le.is_leader);
                        base + ((u64::from(le.le_count) * (u64::from(params.coin_target()) + 1)
                            + u64::from(le.coin_count))
                            * 4
                            + flags)
                    }
                    UnRole::Main { alive, kind } => {
                        let base = (u64::from(params.r_max()) + 1)
                            * (u64::from(params.d_max()) + 1)
                            + (u64::from(params.l_max()) + 1)
                                * (u64::from(params.coin_target()) + 1)
                                * 4;
                        let kind_code = match kind {
                            MainKind::Waiting(w) => u64::from(*w),
                            MainKind::Phase(k) => u64::from(params.wait_max()) + 1 + u64::from(*k),
                        };
                        let kind_radix =
                            u64::from(params.wait_max()) + u64::from(params.coin_target()) + 2;
                        base + u64::from(*alive) * kind_radix + kind_code
                    }
                };
                n + role_code * 2 + coin_bit
            }
        }
    }
}

impl RankOutput for StableState {
    fn rank(&self) -> Option<u64> {
        match self {
            StableState::Ranked(r) => Some(*r),
            StableState::Un(_) => None,
        }
    }
}

impl TraceState for StableState {
    fn agent_class(&self) -> AgentClass {
        match self {
            StableState::Ranked(r) => AgentClass::Ranked(*r),
            StableState::Un(UnState { role, .. }) => match role {
                UnRole::Reset { .. } => AgentClass::Resetting,
                UnRole::Elect(_) => AgentClass::Electing,
                UnRole::Main {
                    kind: MainKind::Waiting(_),
                    ..
                } => AgentClass::Waiting,
                UnRole::Main {
                    kind: MainKind::Phase(k),
                    ..
                } => AgentClass::Phase(*k),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leader_election::fast::FastLe;
    use std::collections::HashSet;

    fn params() -> Params {
        Params::new(64)
    }

    #[test]
    fn role_predicates() {
        let p = params();
        let fast = FastLe::for_n(p.n(), p.c_live());
        let ranked = StableState::Ranked(3);
        assert!(ranked.is_main() && !ranked.is_waiting());
        assert_eq!(ranked.rank(), Some(3));
        assert_eq!(ranked.coin(), None);

        let waiting = StableState::Un(UnState {
            coin: true,
            role: UnRole::Main {
                alive: 4,
                kind: MainKind::Waiting(2),
            },
        });
        assert!(waiting.is_main() && waiting.is_waiting());
        assert_eq!(waiting.alive(), Some(4));
        assert_eq!(waiting.phase(), None);

        let phase = StableState::Un(UnState {
            coin: false,
            role: UnRole::Main {
                alive: 1,
                kind: MainKind::Phase(3),
            },
        });
        assert_eq!(phase.phase(), Some(3));

        let dormant = StableState::Un(UnState {
            coin: false,
            role: UnRole::Reset {
                reset_count: 0,
                delay_count: 5,
            },
        });
        assert!(dormant.is_resetting() && !dormant.is_main());

        let elect = StableState::Un(UnState {
            coin: false,
            role: UnRole::Elect(fast.initial_state()),
        });
        assert!(elect.is_electing() && !elect.is_main());
    }

    #[test]
    fn encode_is_injective_over_representative_states() {
        let p = params();
        let fast = FastLe::for_n(p.n(), p.c_live());
        let mut states = Vec::new();
        for r in 1..=p.n() as u64 {
            states.push(StableState::Ranked(r));
        }
        for coin in [false, true] {
            for rc in 0..=p.r_max() {
                for dc in 0..=p.d_max() {
                    states.push(StableState::Un(UnState {
                        coin,
                        role: UnRole::Reset {
                            reset_count: rc,
                            delay_count: dc,
                        },
                    }));
                }
            }
            for lc in 0..=fast.l_max {
                for cc in 0..=fast.coin_target {
                    for (done, lead) in [(false, false), (true, false), (true, true)] {
                        states.push(StableState::Un(UnState {
                            coin,
                            role: UnRole::Elect(FastLeState {
                                le_count: lc,
                                coin_count: cc,
                                leader_done: done,
                                is_leader: lead,
                            }),
                        }));
                    }
                }
            }
            for alive in 0..=p.l_max() {
                for w in 1..=p.wait_max() {
                    states.push(StableState::Un(UnState {
                        coin,
                        role: UnRole::Main {
                            alive,
                            kind: MainKind::Waiting(w),
                        },
                    }));
                }
                for k in 1..=p.coin_target() {
                    states.push(StableState::Un(UnState {
                        coin,
                        role: UnRole::Main {
                            alive,
                            kind: MainKind::Phase(k),
                        },
                    }));
                }
            }
        }
        let codes: HashSet<u64> = states.iter().map(|s| s.encode(&p)).collect();
        assert_eq!(codes.len(), states.len(), "encoding must be injective");
    }

    #[test]
    fn ranked_codes_are_the_first_n() {
        let p = params();
        for r in 1..=p.n() as u64 {
            assert_eq!(StableState::Ranked(r).encode(&p), r - 1);
        }
        let un = StableState::Un(UnState {
            coin: false,
            role: UnRole::Reset {
                reset_count: 0,
                delay_count: 0,
            },
        });
        assert!(un.encode(&p) >= p.n() as u64);
    }
}
