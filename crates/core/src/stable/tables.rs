//! Flat, precomputed transition tables for the packed hot path.
//!
//! Every threshold the `STABLERANKING` dispatcher consults per
//! interaction — counter ceilings from [`Params`], the phase geometry
//! from [`FSeq`], and the handful of fixed "rebirth" states (triggered
//! reset, fresh leader-election entrant, phase-1 joiner, waiting
//! leader) — is computed **once** here, at protocol construction.
//! The transition then reduces to integer compares, table lookups, and
//! OR-ing a precomposed word with a coin bit: no `f64` log/ceil, no
//! enum construction, no recomputation of the `f`-sequence.

use leader_election::fast::FastLe;

use crate::fseq::FSeq;
use crate::params::Params;
use crate::stable::packed::{PackedState, LANE_MASK};
use crate::stable::state::MainKind;

/// Precomputed thresholds and precomposed words for one
/// `StableRanking` instance. Built once in `StableRanking::new`.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTables {
    /// Population size `n`.
    pub n: u64,
    /// Number of phases, `⌈log₂ n⌉`.
    pub kmax: u32,
    /// `⌈c_wait log₂ n⌉`.
    pub wait_max: u32,
    /// `L_max = ⌈c_live log₂ n⌉`.
    pub l_max: u32,
    /// `R_max = ⌈c_reset log₂ n⌉`.
    pub r_max: u32,
    /// `D_max = ⌈c_delay log₂ n⌉`.
    pub d_max: u32,
    /// `f[k-1] = f_k` for `k ∈ [1, kmax+1]` (the `FSeq` values).
    f: Vec<u64>,
    /// `window[k-1] = f_k − f_{k+1}` for `k ∈ [1, kmax]`.
    window: Vec<u64>,
    /// Triggered agent (`TRIGGERRESET`): `(resetCount, delayCount) =
    /// (R_max, D_max)`, coin bit zero — OR the victim's coin in.
    pub triggered: PackedState,
    /// Fresh `FASTLEADERELECTION` entrant (dormant wake-up target),
    /// coin bit zero.
    pub elect_init: PackedState,
    /// Phase-1 joiner with a full liveness counter (Protocol 3 lines
    /// 4–6), coin bit zero.
    pub join_phase1: PackedState,
    /// Waiting agent with full counters (`aliveCount = L_max`,
    /// `waitCount = waitMax`), coin bit zero — the lottery winner's and
    /// the mid-ranking leader's rebirth state.
    pub leader_wait: PackedState,
}

impl StepTables {
    /// Build the tables from the protocol's parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any counter ceiling overflows its 16-bit packed lane
    /// (unreachable for any representable `n` and sane constants).
    pub fn new(params: &Params, fseq: &FSeq, fast: &FastLe) -> Self {
        let kmax = fseq.kmax();
        for (name, value) in [
            ("waitMax", params.wait_max()),
            ("L_max", params.l_max()),
            ("R_max", params.r_max()),
            ("D_max", params.d_max()),
            ("LE L_max", fast.l_max),
            ("kmax", kmax),
        ] {
            assert!(
                u64::from(value) <= LANE_MASK,
                "{name} = {value} overflows a 16-bit packed counter lane"
            );
        }
        let f: Vec<u64> = (1..=kmax + 1).map(|k| fseq.f(k)).collect();
        let window = (1..=kmax).map(|k| fseq.leader_window(k)).collect();
        Self {
            n: fseq.n(),
            kmax,
            wait_max: params.wait_max(),
            l_max: params.l_max(),
            r_max: params.r_max(),
            d_max: params.d_max(),
            f,
            window,
            triggered: PackedState::reset(false, params.r_max(), params.d_max()),
            elect_init: PackedState::elect(false, fast.initial_state()),
            join_phase1: PackedState::main(false, params.l_max(), MainKind::Phase(1)),
            leader_wait: PackedState::main(
                false,
                params.l_max(),
                MainKind::Waiting(params.wait_max()),
            ),
        }
    }

    /// `f_k` for `1 ≤ k ≤ kmax + 1` (panics outside that range, like
    /// [`FSeq::f`]).
    #[inline]
    pub fn f(&self, k: u32) -> u64 {
        self.f[(k - 1) as usize]
    }

    /// `f_k − f_{k+1}` for `1 ≤ k ≤ kmax`.
    #[inline]
    pub fn window(&self, k: u32) -> u64 {
        self.window[(k - 1) as usize]
    }

    /// The liveness-check threshold `⌊n · 2^{−k}⌋` (Protocol 4 line
    /// 13); a pure shift, mirroring [`FSeq::productive_threshold`].
    #[inline]
    pub fn productive_threshold(&self, k: u32) -> u64 {
        self.n >> k.min(63)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables(n: usize) -> StepTables {
        let params = Params::new(n);
        let fseq = params.fseq();
        let fast = FastLe::for_n(n, params.c_live());
        StepTables::new(&params, &fseq, &fast)
    }

    #[test]
    fn tables_mirror_fseq_and_params() {
        for n in [2usize, 5, 16, 33, 256, 1000] {
            let params = Params::new(n);
            let fseq = params.fseq();
            let t = tables(n);
            assert_eq!(t.n, n as u64);
            assert_eq!(t.kmax, fseq.kmax());
            assert_eq!(t.wait_max, params.wait_max());
            assert_eq!(t.l_max, params.l_max());
            assert_eq!(t.r_max, params.r_max());
            assert_eq!(t.d_max, params.d_max());
            for k in 1..=fseq.kmax() {
                assert_eq!(t.f(k), fseq.f(k), "f({k}) at n={n}");
                assert_eq!(t.window(k), fseq.leader_window(k), "window({k}) at n={n}");
                assert_eq!(
                    t.productive_threshold(k),
                    fseq.productive_threshold(k),
                    "threshold({k}) at n={n}"
                );
            }
            assert_eq!(t.f(fseq.kmax() + 1), 1);
        }
    }

    #[test]
    fn precomposed_words_decode_to_the_rebirth_states() {
        use crate::stable::state::{StableState, UnRole, UnState};
        let n = 64;
        let params = Params::new(n);
        let fast = FastLe::for_n(n, params.c_live());
        let t = tables(n);
        assert_eq!(
            t.triggered.unpack(),
            StableState::Un(UnState {
                coin: false,
                role: UnRole::Reset {
                    reset_count: params.r_max(),
                    delay_count: params.d_max(),
                },
            })
        );
        assert_eq!(
            t.elect_init.unpack(),
            StableState::Un(UnState {
                coin: false,
                role: UnRole::Elect(fast.initial_state()),
            })
        );
        assert_eq!(
            t.join_phase1.unpack(),
            StableState::Un(UnState {
                coin: false,
                role: UnRole::Main {
                    alive: params.l_max(),
                    kind: MainKind::Phase(1),
                },
            })
        );
        assert_eq!(
            t.leader_wait.unpack(),
            StableState::Un(UnState {
                coin: false,
                role: UnRole::Main {
                    alive: params.l_max(),
                    kind: MainKind::Waiting(params.wait_max()),
                },
            })
        );
    }
}
