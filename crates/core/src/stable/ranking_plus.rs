//! `Ranking⁺` (Protocol 4): the base RANKING protocol hardened with error
//! detection, liveness checking, and the synthetic coin.
//!
//! Executed when both agents are in main states (ranked, waiting, or
//! phase). Three error classes trigger a reset:
//!
//! 1. two agents with the same rank meet (line 1),
//! 2. two waiting agents meet (line 2),
//! 3. an `aliveCount` reaches zero (lines 9–11) — no progress possible.
//!
//! The liveness counter is propagated max-minus-one between unranked
//! agents (lines 5–6), decremented when meeting a rank-`n−1`/`n` agent
//! (lines 7–8, covering the one-unranked-agent case), and refreshed to
//! `L_max` by *productive pairs* observed with `coin(v) = 0` (lines
//! 12–14). The base protocol runs only when `coin(v) = 1` (lines 15–18).

use population::RankOutput;

use crate::base::{ranking_step, RankRole};
use crate::fseq::FSeq;
use crate::stable::packed::{PackedState, TAG_MASK, TAG_PHASE, TAG_RANKED, TAG_WAITING};
use crate::stable::reset::{trigger_reset, trigger_reset_packed};
use crate::stable::state::{MainKind, StableState, UnRole, UnState};
use crate::stable::tables::StepTables;

/// Immutable context for a `Ranking⁺` step.
#[derive(Debug, Clone, Copy)]
pub struct RpCtx<'a> {
    /// Phase geometry.
    pub fseq: &'a FSeq,
    /// `⌈c_wait log n⌉`.
    pub wait_max: u32,
    /// `L_max = ⌈c_live log n⌉`.
    pub l_max: u32,
    /// `R_max` for triggered resets.
    pub r_max: u32,
    /// `D_max` for triggered resets.
    pub d_max: u32,
}

/// Outcome of a `Ranking⁺` step (used by experiments to count resets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RpOutcome {
    /// A reset was triggered during this interaction.
    pub reset_triggered: bool,
}

fn alive_mut(s: &mut StableState) -> Option<&mut u32> {
    match s {
        StableState::Un(UnState {
            role: UnRole::Main { alive, .. },
            ..
        }) => Some(alive),
        _ => None,
    }
}

fn as_role(s: &StableState) -> RankRole {
    match s {
        StableState::Ranked(r) => RankRole::Ranked(*r),
        StableState::Un(UnState {
            role: UnRole::Main { kind, .. },
            ..
        }) => match kind {
            MainKind::Waiting(w) => RankRole::Waiting(*w),
            MainKind::Phase(k) => RankRole::Phase(*k),
        },
        _ => unreachable!("Ranking⁺ requires main states"),
    }
}

/// Write a possibly-changed [`RankRole`] back into the full state,
/// handling the representation changes:
///
/// * unranked → ranked drops coin and liveness counter (the paper's space
///   constraint);
/// * ranked → waiting is Protocol 4 lines 17–18: the new waiting agent
///   gets `(coin, aliveCount) = (0, L_max)`.
fn write_back(l_max: u32, old: &StableState, new_role: RankRole) -> StableState {
    match (old, new_role) {
        (_, RankRole::Ranked(r)) => StableState::Ranked(r),
        (StableState::Ranked(_), RankRole::Waiting(w)) => StableState::Un(UnState {
            coin: false,
            role: UnRole::Main {
                alive: l_max,
                kind: MainKind::Waiting(w),
            },
        }),
        (StableState::Un(un), RankRole::Waiting(w)) => StableState::Un(UnState {
            coin: un.coin,
            role: UnRole::Main {
                alive: alive_of(un),
                kind: MainKind::Waiting(w),
            },
        }),
        (StableState::Un(un), RankRole::Phase(k)) => StableState::Un(UnState {
            coin: un.coin,
            role: UnRole::Main {
                alive: alive_of(un),
                kind: MainKind::Phase(k),
            },
        }),
        (StableState::Ranked(_), RankRole::Phase(_)) => {
            unreachable!("base ranking never turns a ranked agent into a phase agent")
        }
    }
}

fn alive_of(un: &UnState) -> u32 {
    match un.role {
        UnRole::Main { alive, .. } => alive,
        _ => unreachable!("main state expected"),
    }
}

/// One `Ranking⁺` interaction between main-state agents `u` and `v`.
///
/// # Panics
///
/// Panics (in debug builds) if either agent is not in a main state; the
/// `STABLERANKING` dispatcher guarantees this.
pub fn ranking_plus_step(ctx: &RpCtx<'_>, u: &mut StableState, v: &mut StableState) -> RpOutcome {
    debug_assert!(u.is_main() && v.is_main(), "Ranking⁺ requires main states");
    let mut out = RpOutcome::default();

    // Lines 1–4: directly detectable errors — duplicate rank or two
    // waiting agents; trigger a reset on u and do nothing else.
    let duplicate_rank = matches!((u.rank(), v.rank()), (Some(a), Some(b)) if a == b);
    if duplicate_rank || (u.is_waiting() && v.is_waiting()) {
        trigger_reset(ctx.r_max, ctx.d_max, u);
        out.reset_triggered = true;
        return out;
    }

    // Lines 5–6: both liveness-checking (unranked) agents adopt
    // max − 1.
    if let (Some(&au), Some(&av)) = (alive_mut(u).map(|a| &*a), alive_mut(v).map(|a| &*a)) {
        let m = au.max(av).saturating_sub(1);
        *alive_mut(u).expect("checked") = m;
        *alive_mut(v).expect("checked") = m;
    }

    // Lines 7–8: meeting an agent ranked n−1 or n decrements the
    // responder's counter (this covers the case of a single unranked
    // agent, which otherwise would never decrement).
    let n = ctx.fseq.n();
    if matches!(u.rank(), Some(r) if r == n || r == n - 1) {
        if let Some(alive) = alive_mut(v) {
            *alive = alive.saturating_sub(1);
        }
    }

    // Lines 9–11: liveness expired — reset.
    if v.alive() == Some(0) {
        trigger_reset(ctx.r_max, ctx.d_max, u);
        out.reset_triggered = true;
        return out;
    }

    match v.coin() {
        // Lines 12–14: coin 0 — a productive pair refreshes the
        // responder's liveness counter instead of making progress.
        Some(false) => {
            let productive = u.is_waiting()
                || matches!(
                    (u.rank(), v.phase()),
                    (Some(r), Some(k)) if r <= ctx.fseq.productive_threshold(k)
                );
            if productive {
                *alive_mut(v).expect("phase/waiting agents carry aliveCount") = ctx.l_max;
            }
        }
        // Lines 15–18: coin 1 — execute the base protocol; a ranked
        // initiator that became waiting gets (coin, aliveCount) =
        // (0, L_max) via `write_back`.
        Some(true) => {
            let mut ru = as_role(u);
            let mut rv = as_role(v);
            let step = ranking_step(ctx.fseq, ctx.wait_max, &mut ru, &mut rv);
            if step.changed {
                *u = write_back(ctx.l_max, u, ru);
                *v = write_back(ctx.l_max, v, rv);
            }
        }
        // v is ranked: neither branch of lines 12–18 applies.
        None => {}
    }
    out
}

// ----------------------------------------------------------------------
// Packed path — `Ranking⁺` over the single-word representation, with
// every threshold served by the precomputed `StepTables`. Mirrors
// `ranking_plus_step` line by line; equivalence is pinned by the
// packed-vs-enum trajectory property tests.
// ----------------------------------------------------------------------

/// Packed [`ranking_plus_step`]: one `Ranking⁺` interaction between
/// main-state words.
#[inline]
pub fn ranking_plus_step_packed(
    t: &StepTables,
    u: &mut PackedState,
    v: &mut PackedState,
) -> RpOutcome {
    let mut out = RpOutcome::default();

    // Lines 1–4: duplicate rank (ranked words are bare shifted ranks,
    // so rank equality is word equality; both-ranked is "no tag bit
    // set on either word") or two waiting agents.
    let duplicate_rank = (u.0 | v.0) & TAG_MASK == 0 && u.bits() == v.bits();
    if duplicate_rank || u.0 & v.0 & TAG_WAITING != 0 {
        trigger_reset_packed(t, u);
        out.reset_triggered = true;
        return out;
    }

    // Lines 5–6: both liveness-checking (unranked) agents adopt max − 1.
    let u_main_un = u.is_unranked_main();
    let v_main_un = v.is_unranked_main();
    if u_main_un && v_main_un {
        let m = u.lane_a().max(v.lane_a()).saturating_sub(1);
        u.set_lane_a(m);
        v.set_lane_a(m);
    }

    // Lines 7–8: meeting an agent ranked n−1 or n decrements the
    // responder's counter (one wrapping compare covers both ranks).
    if u.0 & TAG_MASK == 0 && v_main_un && u.rank_value().wrapping_sub(t.n - 1) <= 1 {
        v.set_lane_a(v.lane_a().saturating_sub(1));
    }

    // Lines 9–11: liveness expired — reset.
    if v_main_un && v.lane_a() == 0 {
        trigger_reset_packed(t, u);
        out.reset_triggered = true;
        return out;
    }

    if v.0 & TAG_MASK == 0 {
        // v is ranked: neither branch of lines 12–18 applies.
        return out;
    }
    if !v.coin() {
        // Lines 12–14: coin 0 — a productive pair refreshes the
        // responder's liveness counter instead of making progress.
        let productive = u.0 & TAG_WAITING != 0
            || (u.0 & TAG_MASK == 0
                && v.0 & TAG_PHASE != 0
                && u.rank_value() <= t.productive_threshold(v.lane_b()));
        if productive {
            v.set_lane_a(t.l_max);
        }
    } else {
        // Lines 15–18: coin 1 — execute the base protocol.
        base_step_packed(t, u, v);
    }
    out
}

/// Packed [`ranking_step`](crate::base::ranking_step) fused with the
/// `write_back` representation changes of Protocol 4 lines 17–18:
/// unranked → ranked drops coin and liveness (a bare shifted-rank
/// word), ranked → waiting rebirths as the precomposed
/// `(coin, aliveCount) = (0, L_max)` waiting word.
#[inline]
fn base_step_packed(t: &StepTables, u: &mut PackedState, v: &mut PackedState) {
    // Protocol 2 line 1: only phase-agent responders trigger action.
    if v.0 & TAG_PHASE == 0 {
        return;
    }
    let k = v.lane_b();
    match u.tag() {
        TAG_RANKED => {
            // Lines 2–11: a ranked initiator may assign a rank or
            // certify the end of phase k.
            let r = u.rank_value();
            let window = t.window(k);
            if r >= 1 && r <= window {
                // Lines 4–5: assign rank f_{k+1} + r to v.
                *v = PackedState::ranked(t.f(k + 1) + r);
                if r < window {
                    // Lines 6–7: take the next rank.
                    *u = PackedState::ranked(r + 1);
                } else if k < t.kmax {
                    // Lines 8–9: end of a non-final phase — wait.
                    *u = t.leader_wait;
                }
            }
            // Lines 10–11: the holder of the last rank of phase k tells
            // v that phase k is over (mutually exclusive with the
            // assignment above; v may just have been ranked).
            if u.0 & TAG_MASK == 0 && u.rank_value() == t.f(k) && v.0 & TAG_PHASE != 0 {
                let kv = v.lane_b();
                if kv < t.kmax {
                    v.set_lane_b(kv + 1);
                }
            }
        }
        TAG_PHASE => {
            // Lines 12–14: two phase agents spread the max phase.
            let ku = u.lane_b();
            let m = ku.max(k);
            if ku != m || k != m {
                u.set_lane_b(m);
                v.set_lane_b(m);
            }
        }
        TAG_WAITING => {
            // Lines 15–19: count down; on zero, reborn as the rank-1
            // unaware leader.
            let w = u.lane_b() - 1;
            if w == 0 {
                *u = PackedState::ranked(1);
            } else {
                u.set_lane_b(w);
            }
        }
        _ => unreachable!("Ranking⁺ requires main states"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    fn ctx(fseq: &FSeq) -> RpCtx<'_> {
        let p = Params::new(fseq.n() as usize);
        RpCtx {
            fseq,
            wait_max: p.wait_max(),
            l_max: p.l_max(),
            r_max: p.r_max(),
            d_max: p.d_max(),
        }
    }

    fn phase(coin: bool, alive: u32, k: u32) -> StableState {
        StableState::Un(UnState {
            coin,
            role: UnRole::Main {
                alive,
                kind: MainKind::Phase(k),
            },
        })
    }

    fn waiting(coin: bool, alive: u32, w: u32) -> StableState {
        StableState::Un(UnState {
            coin,
            role: UnRole::Main {
                alive,
                kind: MainKind::Waiting(w),
            },
        })
    }

    #[test]
    fn duplicate_ranks_trigger_reset_on_initiator() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = StableState::Ranked(5);
        let mut v = StableState::Ranked(5);
        let out = ranking_plus_step(&c, &mut u, &mut v);
        assert!(out.reset_triggered);
        assert!(u.is_resetting(), "u is the triggered agent (paper line 3)");
        assert_eq!(v, StableState::Ranked(5), "v untouched in this step");
    }

    #[test]
    fn distinct_ranks_are_silent() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = StableState::Ranked(5);
        let mut v = StableState::Ranked(6);
        let out = ranking_plus_step(&c, &mut u, &mut v);
        assert!(!out.reset_triggered);
        assert_eq!(u, StableState::Ranked(5));
        assert_eq!(v, StableState::Ranked(6));
    }

    #[test]
    fn two_waiting_agents_trigger_reset() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = waiting(false, 4, 2);
        let mut v = waiting(true, 4, 3);
        let out = ranking_plus_step(&c, &mut u, &mut v);
        assert!(out.reset_triggered);
        assert!(u.is_resetting());
        assert!(v.is_waiting());
    }

    #[test]
    fn liveness_counters_adopt_max_minus_one() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = phase(false, 3, 1);
        let mut v = phase(false, 9, 1);
        ranking_plus_step(&c, &mut u, &mut v);
        assert_eq!(u.alive(), Some(8));
        assert_eq!(v.alive(), Some(8));
    }

    #[test]
    fn high_rank_initiator_decrements_responder_liveness() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        for r in [15, 16] {
            let mut u = StableState::Ranked(r);
            let mut v = phase(true, 5, 4);
            ranking_plus_step(&c, &mut u, &mut v);
            assert_eq!(v.alive(), Some(4), "rank {r} must decrement");
        }
        // Other ranks don't.
        let mut u = StableState::Ranked(14);
        let mut v = phase(true, 5, 4);
        ranking_plus_step(&c, &mut u, &mut v);
        assert_eq!(v.alive(), Some(5));
    }

    #[test]
    fn liveness_expiry_triggers_reset() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = StableState::Ranked(16);
        let mut v = phase(true, 1, 4);
        let out = ranking_plus_step(&c, &mut u, &mut v);
        assert!(out.reset_triggered);
        assert!(u.is_resetting(), "paper line 10 triggers the reset on u");
        assert_eq!(v.alive(), Some(0));
    }

    #[test]
    fn coin_zero_refreshes_liveness_of_productive_responder() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        // Unaware leader (rank 1 ≤ ⌊16·2⁻¹⌋ = 8) meets a phase-1 agent
        // showing tails: no rank assigned, liveness refreshed to L_max.
        let mut u = StableState::Ranked(1);
        let mut v = phase(false, 2, 1);
        ranking_plus_step(&c, &mut u, &mut v);
        assert_eq!(v.alive(), Some(c.l_max));
        assert_eq!(v.phase(), Some(1), "no rank was assigned on tails");
        assert_eq!(u, StableState::Ranked(1));
    }

    #[test]
    fn coin_zero_waiting_initiator_also_refreshes() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = waiting(true, 7, 3);
        let mut v = phase(false, 2, 1);
        ranking_plus_step(&c, &mut u, &mut v);
        assert_eq!(v.alive(), Some(c.l_max));
        // Base protocol did NOT run: waitCount untouched on tails.
        assert!(matches!(
            u,
            StableState::Un(UnState {
                role: UnRole::Main {
                    kind: MainKind::Waiting(3),
                    ..
                },
                ..
            })
        ));
    }

    #[test]
    fn coin_zero_unproductive_pair_changes_nothing_but_counters() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        // rank 9 > threshold 8: not the unaware leader — no refresh.
        let mut u = StableState::Ranked(9);
        let mut v = phase(false, 5, 1);
        ranking_plus_step(&c, &mut u, &mut v);
        assert_eq!(v.alive(), Some(5));
    }

    #[test]
    fn coin_one_runs_base_protocol_and_assigns_rank() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = StableState::Ranked(1);
        let mut v = phase(true, 5, 1);
        ranking_plus_step(&c, &mut u, &mut v);
        // f_2 + 1 = 9 for n = 16.
        assert_eq!(v, StableState::Ranked(9), "rank drops coin and liveness");
        assert_eq!(u, StableState::Ranked(2));
    }

    #[test]
    fn initiator_becoming_waiting_gets_coin_zero_and_fresh_liveness() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        // Leader at the end of phase 1's window (f1 − f2 = 8) assigns the
        // last rank and becomes waiting with (coin, alive) = (0, L_max).
        let mut u = StableState::Ranked(8);
        let mut v = phase(true, 5, 1);
        ranking_plus_step(&c, &mut u, &mut v);
        assert_eq!(v, StableState::Ranked(16));
        match u {
            StableState::Un(UnState {
                coin,
                role: UnRole::Main { alive, kind },
            }) => {
                assert!(!coin, "Protocol 4 line 18: coin = 0");
                assert_eq!(alive, c.l_max);
                assert_eq!(kind, MainKind::Waiting(c.wait_max));
            }
            other => panic!("expected waiting agent, got {other:?}"),
        }
    }

    #[test]
    fn waiting_countdown_gated_on_coin() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = waiting(true, 7, 2);
        // Tails: refresh only (tested above). Heads: countdown.
        let mut v = phase(true, 6, 1);
        ranking_plus_step(&c, &mut u, &mut v);
        assert!(matches!(
            u,
            StableState::Un(UnState {
                role: UnRole::Main {
                    kind: MainKind::Waiting(1),
                    ..
                },
                ..
            })
        ));
        // Final tick: reborn as the rank-1 unaware leader, dropping coin
        // and liveness.
        let mut v2 = phase(true, 6, 1);
        ranking_plus_step(&c, &mut u, &mut v2);
        assert_eq!(u, StableState::Ranked(1));
    }

    #[test]
    fn ranked_responder_is_inert() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = phase(true, 5, 2);
        let mut v = StableState::Ranked(3);
        let out = ranking_plus_step(&c, &mut u, &mut v);
        assert!(!out.reset_triggered);
        assert_eq!(u, phase(true, 5, 2));
        assert_eq!(v, StableState::Ranked(3));
    }

    #[test]
    fn phase_propagation_happens_on_heads_only() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = phase(false, 8, 3);
        let mut v = phase(true, 8, 1);
        ranking_plus_step(&c, &mut u, &mut v);
        assert_eq!(u.phase(), Some(3));
        assert_eq!(v.phase(), Some(3), "heads responder adopts max phase");

        let mut u2 = phase(false, 8, 3);
        let mut v2 = phase(false, 8, 1);
        ranking_plus_step(&c, &mut u2, &mut v2);
        assert_eq!(v2.phase(), Some(1), "tails responder does not");
    }

    #[test]
    fn both_counters_hitting_zero_still_resets() {
        let fs = FSeq::new(16);
        let c = ctx(&fs);
        let mut u = phase(true, 1, 1);
        let mut v = phase(true, 1, 1);
        // max(1,1) − 1 = 0 for both → line 9 catches v at zero.
        let out = ranking_plus_step(&c, &mut u, &mut v);
        assert!(out.reset_triggered);
        assert!(u.is_resetting());
    }
}
