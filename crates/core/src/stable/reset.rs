//! `PROPAGATERESET` (Section V-A, after Burman et al.).
//!
//! When an agent detects an error it becomes *triggered*: `resetCount` is
//! set to `R_max` and every other variable except the coin is forgotten.
//! Triggered (propagating) agents spread the reset as a one-way epidemic
//! with a TTL (`resetCount`); infected agents become *dormant* for
//! `D_max` interactions, long enough for the epidemic to die out and for
//! the synthetic coins to mix, and then re-enter `FASTLEADERELECTION`
//! afresh.
//!
//! Rules implemented verbatim from the paper:
//!
//! * propagating × computing — propagator decrements `resetCount`; the
//!   computing agent becomes propagating with
//!   `(resetCount, delayCount) = (resetCount(propagator), D_max)`;
//! * propagating × propagating — both adopt `max − 1` (unless both are 0,
//!   in which case they are dormant, not propagating);
//! * propagating × dormant — propagator decrements `resetCount`, dormant
//!   decrements `delayCount`;
//! * dormant × anything — the dormant agent decrements `delayCount`;
//! * `delayCount = 0` — forget the reset state and start leader election,
//!   keeping the coin.

use leader_election::fast::FastLe;

use crate::stable::packed::{PackedState, COIN_BIT, TAG_RESET};
use crate::stable::state::{StableState, UnRole, UnState};
use crate::stable::tables::StepTables;

/// Classification of an agent for the reset rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResetClass {
    Propagating,
    Dormant,
    Computing,
}

fn classify(s: &StableState) -> ResetClass {
    match s {
        StableState::Un(UnState {
            role: UnRole::Reset { reset_count, .. },
            ..
        }) => {
            if *reset_count > 0 {
                ResetClass::Propagating
            } else {
                ResetClass::Dormant
            }
        }
        _ => ResetClass::Computing,
    }
}

/// Turn `x` into a triggered agent (`TRIGGERRESET`): `resetCount = R_max`,
/// `delayCount = D_max`, every other variable forgotten; the coin is
/// preserved if present, otherwise initialized to 0 (ranked agents have no
/// coin).
pub fn trigger_reset(r_max: u32, d_max: u32, x: &mut StableState) {
    let coin = x.coin().unwrap_or(false);
    *x = StableState::Un(UnState {
        coin,
        role: UnRole::Reset {
            reset_count: r_max,
            delay_count: d_max,
        },
    });
}

/// Does the reset protocol consume this interaction? (Protocol 3 line 1
/// "if applicable": at least one participant is resetting.)
pub fn applicable(u: &StableState, v: &StableState) -> bool {
    u.is_resetting() || v.is_resetting()
}

/// One `PROPAGATERESET` interaction. Must only be called when
/// [`applicable`] holds.
pub fn propagate_step(fast: &FastLe, d_max: u32, u: &mut StableState, v: &mut StableState) {
    debug_assert!(applicable(u, v), "reset step requires a resetting agent");
    match (classify(u), classify(v)) {
        (ResetClass::Propagating, ResetClass::Computing) => infect(d_max, u, v),
        (ResetClass::Computing, ResetClass::Propagating) => infect(d_max, v, u),
        (ResetClass::Propagating, ResetClass::Propagating) => {
            let m = reset_count(u).max(reset_count(v)).saturating_sub(1);
            set_reset_count(u, m);
            set_reset_count(v, m);
        }
        (ResetClass::Propagating, ResetClass::Dormant) => {
            set_reset_count(u, reset_count(u) - 1);
            tick_dormant(fast, v);
        }
        (ResetClass::Dormant, ResetClass::Propagating) => {
            tick_dormant(fast, u);
            set_reset_count(v, reset_count(v) - 1);
        }
        (ResetClass::Dormant, ResetClass::Dormant) => {
            tick_dormant(fast, u);
            tick_dormant(fast, v);
        }
        (ResetClass::Dormant, ResetClass::Computing) => tick_dormant(fast, u),
        (ResetClass::Computing, ResetClass::Dormant) => tick_dormant(fast, v),
        (ResetClass::Computing, ResetClass::Computing) => {
            unreachable!("propagate_step called without a resetting agent")
        }
    }
}

fn infect(d_max: u32, propagator: &mut StableState, target: &mut StableState) {
    let rc = reset_count(propagator) - 1;
    set_reset_count(propagator, rc);
    let coin = target.coin().unwrap_or(false);
    *target = StableState::Un(UnState {
        coin,
        role: UnRole::Reset {
            reset_count: rc,
            delay_count: d_max,
        },
    });
}

fn reset_count(s: &StableState) -> u32 {
    match s {
        StableState::Un(UnState {
            role: UnRole::Reset { reset_count, .. },
            ..
        }) => *reset_count,
        _ => unreachable!("not a resetting agent"),
    }
}

fn set_reset_count(s: &mut StableState, value: u32) {
    if let StableState::Un(UnState {
        role: UnRole::Reset { reset_count, .. },
        ..
    }) = s
    {
        *reset_count = value;
    } else {
        unreachable!("not a resetting agent");
    }
}

/// Decrement a dormant agent's `delayCount`; on reaching zero it wakes up
/// into the initial `FASTLEADERELECTION` state, keeping its coin
/// (Section V-A, last paragraph). A corrupted `(0, 0)` state self-heals
/// the same way.
fn tick_dormant(fast: &FastLe, s: &mut StableState) {
    if let StableState::Un(UnState {
        coin,
        role: UnRole::Reset {
            reset_count: 0,
            delay_count,
        },
    }) = s
    {
        let next = delay_count.saturating_sub(1);
        if next == 0 {
            *s = StableState::Un(UnState {
                coin: *coin,
                role: UnRole::Elect(fast.initial_state()),
            });
        } else {
            *delay_count = next;
        }
    } else {
        unreachable!("not a dormant agent");
    }
}

// ----------------------------------------------------------------------
// Packed path — the same rules over the single-word representation.
// Each function mirrors its structured counterpart line by line; the
// equivalence is pinned by the packed-vs-enum trajectory property tests.
// ----------------------------------------------------------------------

/// Packed [`trigger_reset`]: overwrite `x` with the precomposed
/// triggered word, preserving the coin bit. Ranked words have a zero
/// coin bit, so the "coin initialized to 0" case falls out for free.
#[inline]
pub fn trigger_reset_packed(t: &StepTables, x: &mut PackedState) {
    x.0 = t.triggered.bits() | (x.0 & COIN_BIT);
}

/// Packed [`applicable`].
#[inline]
pub fn applicable_packed(u: PackedState, v: PackedState) -> bool {
    (u.0 | v.0) & TAG_RESET != 0
}

/// Is this word a *propagating* resetter (`resetCount > 0`)? Dormant
/// resetters have `resetCount = 0`.
#[inline]
fn propagating(w: PackedState) -> bool {
    w.lane_a() > 0
}

/// Packed [`propagate_step`]. Must only be called when
/// [`applicable_packed`] holds.
#[inline]
pub fn propagate_step_packed(t: &StepTables, u: &mut PackedState, v: &mut PackedState) {
    debug_assert!(
        applicable_packed(*u, *v),
        "reset step requires a resetting agent"
    );
    let u_reset = u.0 & TAG_RESET != 0;
    let v_reset = v.0 & TAG_RESET != 0;
    match (u_reset, v_reset) {
        (true, true) => match (propagating(*u), propagating(*v)) {
            (true, true) => {
                let m = u.lane_a().max(v.lane_a()).saturating_sub(1);
                u.set_lane_a(m);
                v.set_lane_a(m);
            }
            (true, false) => {
                u.set_lane_a(u.lane_a() - 1);
                tick_dormant_packed(t, v);
            }
            (false, true) => {
                tick_dormant_packed(t, u);
                v.set_lane_a(v.lane_a() - 1);
            }
            (false, false) => {
                tick_dormant_packed(t, u);
                tick_dormant_packed(t, v);
            }
        },
        (true, false) => {
            if propagating(*u) {
                infect_packed(t, u, v);
            } else {
                tick_dormant_packed(t, u);
            }
        }
        (false, true) => {
            if propagating(*v) {
                infect_packed(t, v, u);
            } else {
                tick_dormant_packed(t, v);
            }
        }
        (false, false) => unreachable!("propagate_step called without a resetting agent"),
    }
}

/// Packed `infect`: decrement the propagator's TTL and overwrite the
/// target with a reset word carrying `(resetCount, delayCount) =
/// (TTL − 1, D_max)` and the target's own coin.
#[inline]
fn infect_packed(t: &StepTables, propagator: &mut PackedState, target: &mut PackedState) {
    let rc = propagator.lane_a() - 1;
    propagator.set_lane_a(rc);
    *target =
        PackedState(PackedState::reset(false, rc, t.d_max).bits() | (target.bits() & COIN_BIT));
}

/// Packed `tick_dormant`: decrement `delayCount`, waking into the
/// precomposed initial leader-election word (coin kept) on reaching
/// zero. A corrupted `(0, 0)` word self-heals the same way.
#[inline]
fn tick_dormant_packed(t: &StepTables, s: &mut PackedState) {
    let next = s.lane_b().saturating_sub(1);
    if next == 0 {
        s.0 = t.elect_init.bits() | (s.0 & COIN_BIT);
    } else {
        s.set_lane_b(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::state::MainKind;
    use population::RankOutput;

    fn fast() -> FastLe {
        FastLe {
            l_max: 24,
            coin_target: 6,
        }
    }

    fn prop(rc: u32, dc: u32) -> StableState {
        StableState::Un(UnState {
            coin: true,
            role: UnRole::Reset {
                reset_count: rc,
                delay_count: dc,
            },
        })
    }

    fn phase_agent(k: u32) -> StableState {
        StableState::Un(UnState {
            coin: true,
            role: UnRole::Main {
                alive: 9,
                kind: MainKind::Phase(k),
            },
        })
    }

    #[test]
    fn trigger_preserves_coin_of_unranked() {
        let mut x = phase_agent(2);
        trigger_reset(10, 20, &mut x);
        assert_eq!(
            x,
            StableState::Un(UnState {
                coin: true,
                role: UnRole::Reset {
                    reset_count: 10,
                    delay_count: 20
                }
            })
        );
    }

    #[test]
    fn trigger_initializes_coin_of_ranked_to_zero() {
        let mut x = StableState::Ranked(7);
        trigger_reset(10, 20, &mut x);
        assert_eq!(x.coin(), Some(false));
        assert!(x.is_resetting());
    }

    #[test]
    fn propagating_infects_computing_with_decremented_ttl() {
        let mut u = prop(5, 20);
        let mut v = phase_agent(1);
        propagate_step(&fast(), 20, &mut u, &mut v);
        assert_eq!(u, prop(4, 20));
        // Infected agent keeps its coin, gets (resetCount(u), D_max).
        assert_eq!(
            v,
            StableState::Un(UnState {
                coin: true,
                role: UnRole::Reset {
                    reset_count: 4,
                    delay_count: 20
                }
            })
        );
    }

    #[test]
    fn infection_works_in_both_orientations() {
        let mut u = phase_agent(1);
        let mut v = prop(3, 20);
        propagate_step(&fast(), 20, &mut u, &mut v);
        assert!(u.is_resetting());
        assert_eq!(v, prop(2, 20));
    }

    #[test]
    fn ranked_agents_are_infected_and_lose_their_rank() {
        let mut u = prop(5, 20);
        let mut v = StableState::Ranked(3);
        propagate_step(&fast(), 20, &mut u, &mut v);
        assert!(v.is_resetting());
        assert_eq!(v.rank(), None);
        assert_eq!(v.coin(), Some(false), "ranked agents had no coin");
    }

    #[test]
    fn two_propagating_adopt_max_minus_one() {
        let mut u = prop(3, 20);
        let mut v = prop(7, 20);
        propagate_step(&fast(), 20, &mut u, &mut v);
        assert_eq!(u, prop(6, 20));
        assert_eq!(v, prop(6, 20));
    }

    #[test]
    fn propagating_meeting_dormant_decrements_both_counters() {
        let mut u = prop(3, 20);
        let mut v = prop(0, 10); // dormant
        propagate_step(&fast(), 20, &mut u, &mut v);
        assert_eq!(u, prop(2, 20));
        assert_eq!(v, prop(0, 9));
    }

    #[test]
    fn dormant_decrements_against_computing() {
        let mut u = prop(0, 10);
        let mut v = phase_agent(1);
        propagate_step(&fast(), 20, &mut u, &mut v);
        assert_eq!(u, prop(0, 9));
        assert_eq!(v, phase_agent(1), "computing agent unaffected by dormant");
    }

    #[test]
    fn two_dormant_both_decrement() {
        let mut u = prop(0, 5);
        let mut v = prop(0, 2);
        propagate_step(&fast(), 20, &mut u, &mut v);
        assert_eq!(u, prop(0, 4));
        assert_eq!(v, prop(0, 1));
    }

    #[test]
    fn dormant_wakes_into_leader_election_keeping_coin() {
        let f = fast();
        let mut u = prop(0, 1);
        let mut v = phase_agent(1);
        propagate_step(&f, 20, &mut u, &mut v);
        match u {
            StableState::Un(UnState {
                coin,
                role: UnRole::Elect(le),
            }) => {
                assert!(coin, "coin preserved through the whole reset");
                assert_eq!(le, f.initial_state());
            }
            other => panic!("expected electing agent, got {other:?}"),
        }
    }

    #[test]
    fn propagator_reaching_zero_becomes_dormant_not_electing() {
        let mut u = prop(1, 20);
        let mut v = phase_agent(1);
        propagate_step(&fast(), 20, &mut u, &mut v);
        assert_eq!(u, prop(0, 20), "TTL 0 means dormant, delay untouched");
        assert!(v.is_resetting(), "infection still happened with TTL 0");
    }

    #[test]
    fn corrupted_zero_zero_state_self_heals() {
        let f = fast();
        let mut u = prop(0, 0);
        let mut v = phase_agent(1);
        propagate_step(&f, 20, &mut u, &mut v);
        assert!(u.is_electing(), "(0,0) wakes up instead of sticking");
    }

    #[test]
    fn applicability() {
        assert!(applicable(&prop(1, 1), &phase_agent(1)));
        assert!(applicable(&phase_agent(1), &prop(0, 1)));
        assert!(!applicable(&phase_agent(1), &StableState::Ranked(2)));
    }
}
