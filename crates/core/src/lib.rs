//! The paper's contribution: silent ranking protocols for population
//! protocols, reproduced from *Silent Self-Stabilizing Ranking: Time
//! Optimal and Space Efficient* (Berenbrink, Elsässer, Götte, Hintze,
//! Kaaser; ICDCS 2025).
//!
//! # Protocols
//!
//! * [`space_efficient::SpaceEfficientRanking`] — Protocol 1 (Theorem 1):
//!   non-self-stabilizing silent ranking. A leader elected by a black-box
//!   leader election assigns ranks in `⌈log₂ n⌉` geometric phases,
//!   storing nothing but a small rank — it is an *unaware* leader that
//!   recognizes its role only when meeting an unranked agent.
//! * [`stable::StableRanking`] — Protocols 3+4+5 (Theorem 2): the
//!   self-stabilizing version with `n + O(log² n)` states, combining the
//!   base protocol with error detection (duplicate ranks, duplicate
//!   waiting agents, liveness expiry), a synthetic coin, the
//!   `FastLeaderElection` lottery, and the `PropagateReset` recovery
//!   protocol.
//!
//! # Supporting modules
//!
//! * [`fseq`] — the phase geometry `f₁ = n`, `f_i = ⌈f_{i−1}/2⌉`.
//! * [`base`] — Protocol 2 (`RANKING`) as a pure state machine shared by
//!   both protocols.
//! * [`params`] — every tunable constant, with the paper's simulation
//!   defaults (`c_wait = 2`, `c_live = 4`).
//! * [`audit`] — analytic and observed state-space accounting backing the
//!   space claims.
//! * [`epoch`] — [`epoch::EpochParams`], the hysteresis
//!   layer that re-derives `Params` when a *dynamic* population's live
//!   count drifts past a band (the `crates/dynamic` engine's regime
//!   handoff).
//!
//! # Example: self-stabilizing ranking from garbage
//!
//! ```
//! use population::{is_valid_ranking, Simulator};
//! use ranking::stable::StableRanking;
//! use ranking::Params;
//!
//! let protocol = StableRanking::new(Params::new(32));
//! let garbage = protocol.adversarial_uniform(7);
//! let mut sim = Simulator::new(protocol, garbage, 42);
//! let stop = sim.run_until(|s| is_valid_ranking(s), 50_000_000, 32);
//! assert!(stop.converged_at().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod base;
pub mod epoch;
pub mod fseq;
pub mod params;
pub mod space_efficient;
pub mod stable;

pub use epoch::EpochParams;
pub use fseq::FSeq;
pub use params::Params;
